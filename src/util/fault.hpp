// Deterministic fault injection (DESIGN.md §R).
//
// A process-wide injector with named sites threaded through the I/O and
// serving layers.  Chaos tests (and operators reproducing a field
// failure) arm it with a spec string — via configure() or the
// RNX_FAULT_SPEC environment variable — and every armed run replays the
// EXACT same failure sequence: rules fire on deterministic hit counts
// (or a seeded Bernoulli stream), never on wall time or thread timing.
//
// Spec grammar (semicolon-separated rules):
//
//   RNX_FAULT_SPEC="<site>=<directive>[,<modifier>...];..."
//
//   directives:  nth:K     fire on exactly the Kth hit of the site
//                every:N   fire on every Nth hit
//                prob:P    fire with probability P per hit (seeded
//                          stream; add seed:S to change it)
//                always    fire on every hit
//   modifiers:   limit:M   stop after M firings
//                param:U   integer payload a site may consume (e.g.
//                          serve.execute.slow sleeps param microseconds)
//                seed:S    Bernoulli stream seed for prob (default 1)
//
// A trailing '*' in <site> prefix-matches ("io.*" arms every I/O site).
// Example: RNX_FAULT_SPEC="io.shard.bitflip=nth:2;serve.execute=prob:0.1"
//
// Injection sites (each documented at its call site):
//   io.atomic.write      sample_io: stream write fails before rename
//   io.atomic.rename     sample_io: rename over the target fails
//   io.shard.truncate    shards: short read of a shard file
//   io.shard.bitflip     shards: one bit flipped before checksum verify
//   io.manifest.bitflip  shards: one bit flipped in the manifest body
//   source.producer      source: prefetch thread throws mid-stream
//   serve.execute        scheduler: whole-batch execution failure
//   serve.execute.slow   scheduler: sleep param microseconds per batch
//
// Zero-cost when disarmed: every site guards with fault_fires(), which
// is one relaxed atomic load when no spec is configured.  fire() itself
// takes a mutex (sites are I/O- or batch-granular, never per-sample hot
// loops) so hit counting is exact under concurrency — the producer-
// thread and scheduler sites fire from worker threads.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rnx::util {

/// What an armed site throws when the site has no better-typed error to
/// surface through (e.g. the streaming producer).  I/O sites instead
/// corrupt/fail the operation and let the NORMAL typed error path
/// (ShardChecksumError, ManifestError, ...) report it — chaos tests
/// verify the real detection machinery, not a parallel error world.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

class FaultInjector {
 public:
  /// The process-wide injector.  First use reads RNX_FAULT_SPEC (a bad
  /// env spec aborts with a descriptive message — a chaos run that
  /// silently ignores its spec would "pass" by testing nothing).
  static FaultInjector& instance();

  /// Replace the active spec.  Throws std::invalid_argument on grammar
  /// errors; an empty spec disarms (same as reset()).
  void configure(const std::string& spec);
  /// Disarm and drop all rules and counters.
  void reset();

  /// True when any rule is armed — the zero-cost fast path.
  [[nodiscard]] bool enabled() const noexcept;

  /// Count a hit at `site`; true when the matching rule fires.  Always
  /// false (and not counted) when disarmed.
  [[nodiscard]] bool fire(std::string_view site);

  /// fire(), then throw FaultInjectedError naming the site.
  void maybe_throw(std::string_view site);

  /// The param:U payload of the rule matching `site` (0 when none).
  [[nodiscard]] std::uint64_t param(std::string_view site) const;

  /// Hits / firings recorded against the rule matching `site` — lets
  /// sites derive deterministic corruption offsets and lets tests
  /// assert a sequence actually exercised its target.
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;
  [[nodiscard]] std::uint64_t fired(std::string_view site) const;

 private:
  FaultInjector();
  struct Impl;
  Impl* impl_;  ///< leaked singleton state (never destroyed: sites may
                ///< fire during static teardown of user threads)
};

/// The guard every injection site uses:
///   if (fault_fires("io.shard.bitflip")) { ...corrupt... }
[[nodiscard]] inline bool fault_fires(std::string_view site) {
  FaultInjector& fi = FaultInjector::instance();
  return fi.enabled() && fi.fire(site);
}

}  // namespace rnx::util
