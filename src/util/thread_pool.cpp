#include "util/thread_pool.hpp"

#include <algorithm>

namespace rnx::util {

ThreadPool::ThreadPool(std::size_t threads) : lanes_(std::max<std::size_t>(threads, 1)) {
  workers_.reserve(lanes_ - 1);
  for (std::size_t i = 0; i + 1 < lanes_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  MutexLock lock(mu_);
  for (;;) {
    while (!shutdown_ && !(generation_ != seen && next_ < count_))
      cv_start_.wait(mu_);
    if (shutdown_) return;
    seen = generation_;
    while (generation_ == seen && next_ < count_) {
      // Snapshot the job function POINTER under the lock: fn_ is only
      // rebound between generations, but the pre-annotation code read it
      // after unlock() — exactly the "probably fine" unguarded read the
      // thread-safety analysis rejects (DESIGN.md §L).
      const std::function<void(std::size_t)>* const fn = fn_;
      const std::size_t i = next_++;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !first_error_) first_error_ = err;
      if (++done_ == count_) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const MutexLock job(job_mu_);
  run_job(count, fn);
}

bool ThreadPool::try_parallel_for(std::size_t count,
                                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return true;
  if (!job_mu_.try_lock()) return false;
  const MutexLock job(job_mu_, kAdoptLock);
  run_job(count, fn);
  return true;
}

void ThreadPool::run_job(std::size_t count,
                         const std::function<void(std::size_t)>& fn) {
  MutexLock lock(mu_);
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  done_ = 0;
  first_error_ = nullptr;
  ++generation_;
  if (lanes_ > 1 && count > 1) cv_start_.notify_all();

  // The calling thread is a full lane.
  while (next_ < count_) {
    const std::size_t i = next_++;
    lock.unlock();
    std::exception_ptr err;
    try {
      fn(i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !first_error_) first_error_ = err;
    if (++done_ == count_) cv_done_.notify_all();
  }
  while (done_ != count_) cv_done_.wait(mu_);

  count_ = 0;  // idle: late-waking workers fall back to sleep
  fn_ = nullptr;
  if (first_error_) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace rnx::util
