#include "util/fault.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace rnx::util {

namespace {

struct Rule {
  enum class Kind : std::uint8_t { kNth, kEvery, kProb, kAlways };
  std::string pattern;  ///< site name, optionally ending in '*'
  Kind kind = Kind::kAlways;
  std::uint64_t n = 1;          ///< nth / every operand
  double p = 0.0;               ///< prob operand
  std::uint64_t seed = 1;       ///< prob stream seed
  std::uint64_t limit = ~0ull;  ///< max firings
  std::uint64_t param = 0;      ///< site-defined payload
  RngStream rng{1};
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;

  [[nodiscard]] bool matches(std::string_view site) const noexcept {
    if (!pattern.empty() && pattern.back() == '*')
      return site.substr(0, pattern.size() - 1) ==
             std::string_view(pattern).substr(0, pattern.size() - 1);
    return site == pattern;
  }
};

std::uint64_t parse_u64(const std::string& s, const std::string& ctx) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("FaultInjector: bad integer '" + s +
                                "' in " + ctx);
  return std::stoull(s);
}

double parse_prob(const std::string& s, const std::string& ctx) {
  std::size_t used = 0;
  double v = -1.0;
  try {
    v = std::stod(s, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != s.size() || v < 0.0 || v > 1.0)
    throw std::invalid_argument("FaultInjector: bad probability '" + s +
                                "' in " + ctx + " (need [0,1])");
  return v;
}

Rule parse_rule(const std::string& entry) {
  const auto eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size())
    throw std::invalid_argument("FaultInjector: rule '" + entry +
                                "' is not <site>=<directive>[,...]");
  Rule r;
  r.pattern = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);
  bool first = true;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string tok = rest.substr(0, comma);
    rest = comma == std::string::npos ? std::string() : rest.substr(comma + 1);
    const auto colon = tok.find(':');
    const std::string key = tok.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? std::string() : tok.substr(colon + 1);
    if (first) {
      first = false;
      if (key == "nth") {
        r.kind = Rule::Kind::kNth;
        r.n = parse_u64(arg, entry);
        if (r.n == 0)
          throw std::invalid_argument("FaultInjector: nth:0 in " + entry);
      } else if (key == "every") {
        r.kind = Rule::Kind::kEvery;
        r.n = parse_u64(arg, entry);
        if (r.n == 0)
          throw std::invalid_argument("FaultInjector: every:0 in " + entry);
      } else if (key == "prob") {
        r.kind = Rule::Kind::kProb;
        r.p = parse_prob(arg, entry);
      } else if (key == "always") {
        r.kind = Rule::Kind::kAlways;
      } else {
        throw std::invalid_argument("FaultInjector: unknown directive '" +
                                    key + "' in " + entry);
      }
      continue;
    }
    if (key == "limit") {
      r.limit = parse_u64(arg, entry);
    } else if (key == "param") {
      r.param = parse_u64(arg, entry);
    } else if (key == "seed") {
      r.seed = parse_u64(arg, entry);
    } else {
      throw std::invalid_argument("FaultInjector: unknown modifier '" + key +
                                  "' in " + entry);
    }
  }
  r.rng = RngStream(r.seed);
  return r;
}

std::vector<Rule> parse_spec(const std::string& spec) {
  std::vector<Rule> rules;
  std::string rest = spec;
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string entry = rest.substr(0, semi);
    rest = semi == std::string::npos ? std::string() : rest.substr(semi + 1);
    if (entry.empty()) continue;
    rules.push_back(parse_rule(entry));
  }
  return rules;
}

}  // namespace

struct FaultInjector::Impl {
  std::atomic<bool> armed{false};
  mutable Mutex mu;
  std::vector<Rule> rules RNX_GUARDED_BY(mu);  ///< spec order; first match wins

  Rule* match(std::string_view site) RNX_REQUIRES(mu) {
    for (Rule& r : rules)
      if (r.matches(site)) return &r;
    return nullptr;
  }
  const Rule* match(std::string_view site) const RNX_REQUIRES(mu) {
    for (const Rule& r : rules)
      if (r.matches(site)) return &r;
    return nullptr;
  }
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  if (const char* spec = std::getenv("RNX_FAULT_SPEC");
      spec != nullptr && spec[0] != '\0') {
    try {
      configure(spec);
    } catch (const std::exception& e) {
      // A chaos run whose spec silently failed to parse would test
      // nothing; fail the process loudly instead.
      // rnx-lint: allow(printf-family) — fatal path before logging exists
      std::fprintf(stderr, "fatal: RNX_FAULT_SPEC: %s\n", e.what());
      std::abort();
    }
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* singleton = new FaultInjector();
  return *singleton;
}

void FaultInjector::configure(const std::string& spec) {
  std::vector<Rule> rules = parse_spec(spec);  // may throw; state untouched
  const MutexLock lock(impl_->mu);
  impl_->rules = std::move(rules);
  impl_->armed.store(!impl_->rules.empty(), std::memory_order_relaxed);
}

void FaultInjector::reset() {
  const MutexLock lock(impl_->mu);
  impl_->rules.clear();
  impl_->armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::enabled() const noexcept {
  return impl_->armed.load(std::memory_order_relaxed);
}

bool FaultInjector::fire(std::string_view site) {
  if (!enabled()) return false;
  const MutexLock lock(impl_->mu);
  Rule* r = impl_->match(site);
  if (r == nullptr) return false;
  ++r->hits;
  bool f = false;
  switch (r->kind) {
    case Rule::Kind::kNth: f = r->hits == r->n; break;
    case Rule::Kind::kEvery: f = r->hits % r->n == 0; break;
    case Rule::Kind::kProb: f = r->rng.bernoulli(r->p); break;
    case Rule::Kind::kAlways: f = true; break;
  }
  if (f && r->fired >= r->limit) f = false;
  if (f) ++r->fired;
  return f;
}

void FaultInjector::maybe_throw(std::string_view site) {
  if (enabled() && fire(site))
    throw FaultInjectedError("injected fault at site '" + std::string(site) +
                             "'");
}

std::uint64_t FaultInjector::param(std::string_view site) const {
  const MutexLock lock(impl_->mu);
  const Rule* r = impl_->match(site);
  return r != nullptr ? r->param : 0;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  const MutexLock lock(impl_->mu);
  const Rule* r = impl_->match(site);
  return r != nullptr ? r->hits : 0;
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  const MutexLock lock(impl_->mu);
  const Rule* r = impl_->match(site);
  return r != nullptr ? r->fired : 0;
}

}  // namespace rnx::util
