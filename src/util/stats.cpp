#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rnx::util {

void Welford::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Welford::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

namespace {
// Nearest-rank percentile: the ceil(q/100 * N)-th order statistic,
// clamped to [1, N].  Always an observed sample — no interpolation —
// so a p99 over a 10-element latency window reports the worst sample
// (rank ceil(9.9) = 10) instead of a value fabricated between the two
// largest.  See the contract note in stats.hpp.
double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}
}  // namespace

double percentile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

Cdf::Cdf(std::vector<double> xs) : xs_(std::move(xs)) {
  if (xs_.empty()) throw std::invalid_argument("Cdf: empty sample");
  std::sort(xs_.begin(), xs_.end());
}

double Cdf::percentile(double q) const { return percentile_sorted(xs_, q); }

double Cdf::at(double x) const {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(it - xs_.begin()) /
         static_cast<double>(xs_.size());
}

std::vector<std::pair<double, double>> Cdf::series(std::size_t n) const {
  if (n < 2) throw std::invalid_argument("Cdf::series: need >= 2 points");
  std::vector<std::pair<double, double>> out;
  out.reserve(n);
  const double lo = xs_.front();
  const double hi = xs_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram: bad range or bin count");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace rnx::util
