// Tiny leveled logger.  Library code logs through this so examples and
// benches can silence progress output (e.g. inside google-benchmark loops).
#pragma once

#include <sstream>
#include <string>

namespace rnx::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.  Thread-safe: the
/// level is atomic and emitted lines are serialized, so trainer lanes and
/// forward_batch workers may log concurrently (see DESIGN.md §T).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line at the given level ("[info] message\n" to stderr).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream ss;
  (ss << ... << args);
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(args...));
}

}  // namespace rnx::util
