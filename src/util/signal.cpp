#include "util/signal.hpp"

#include <atomic>
#include <csignal>

namespace rnx::util {

namespace {

std::atomic<int> g_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free flag");

void rnx_on_signal(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
}

}  // namespace

void install_interrupt_handlers() noexcept {
  std::signal(SIGINT, rnx_on_signal);
  std::signal(SIGTERM, rnx_on_signal);
}

bool interrupt_requested() noexcept {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int interrupt_exit_code() noexcept {
  const int s = g_signal.load(std::memory_order_relaxed);
  return 128 + (s == 0 ? SIGINT : s);
}

void clear_interrupt() noexcept {
  g_signal.store(0, std::memory_order_relaxed);
}

}  // namespace rnx::util
