// Shared-queue thread pool for data-parallel loops.
//
// The pool exposes one primitive, parallel_for: run fn(i) for every i in
// [0, count), distributing indices over the workers with an atomic
// counter (dynamic scheduling — per-sample work in training is very
// uneven, so static chunking would idle workers).  The calling thread
// participates, so a pool of size 1 degenerates to an inline loop with no
// synchronization traffic beyond one atomic.
//
// Determinism contract (DESIGN.md §T): the pool itself makes no ordering
// promises — which worker runs which index is scheduling-dependent.
// Callers that need reproducible results write into pre-sized per-index
// slots and reduce the slots in index order afterwards; the trainer's
// gradient merge does exactly that, which is why training results are
// bitwise-identical for *any* thread count.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace rnx::util {

class ThreadPool {
 public:
  /// A pool that runs parallel_for on `threads` lanes total (the caller
  /// counts as one lane, so `threads - 1` workers are spawned).
  /// threads == 0 is normalized to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  [[nodiscard]] std::size_t size() const noexcept { return lanes_; }

  /// Run fn(i) for i in [0, count); blocks until every index finished.
  /// fn runs concurrently on up to size() lanes (including the caller).
  /// If any invocation throws, the first exception (in completion order)
  /// is rethrown here after all indices were dispatched.
  /// Safe to call from several threads at once: the pool runs one job at
  /// a time and concurrent callers queue on an internal job mutex (use
  /// try_parallel_for to fall back to inline work instead of waiting).
  /// Not reentrant: fn must not call parallel_for on the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// As parallel_for, but if another job currently owns the pool, returns
  /// false immediately without running anything — the caller is expected
  /// to do the work inline on its own thread.  The serving scheduler uses
  /// this so concurrent batch executions never block each other on the
  /// pool (DESIGN.md §B2).
  [[nodiscard]] bool try_parallel_for(std::size_t count,
                                      const std::function<void(std::size_t)>& fn);

  /// Best-effort hardware concurrency, never 0.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();
  void run_job(std::size_t count, const std::function<void(std::size_t)>& fn)
      RNX_REQUIRES(job_mu_);

  std::size_t lanes_;
  std::vector<std::thread> workers_;

  /// Serializes whole jobs: held for the duration of one parallel_for
  /// call, guarding no data of its own (the job state below is under
  /// mu_, which workers take and drop per index).
  Mutex job_mu_;  // rnx-lint: allow(guarded-by) — serializes, guards no field
  Mutex mu_;
  CondVar cv_start_;
  CondVar cv_done_;
  std::uint64_t generation_ RNX_GUARDED_BY(mu_) = 0;  ///< bumped per job
  bool shutdown_ RNX_GUARDED_BY(mu_) = false;
  // Current job; count_ == 0 between jobs, so late-waking workers skip.
  const std::function<void(std::size_t)>* fn_ RNX_GUARDED_BY(mu_) = nullptr;
  std::size_t count_ RNX_GUARDED_BY(mu_) = 0;
  std::size_t next_ RNX_GUARDED_BY(mu_) = 0;  ///< next index to claim
  std::size_t done_ RNX_GUARDED_BY(mu_) = 0;  ///< indices finished
  std::exception_ptr first_error_ RNX_GUARDED_BY(mu_);
};

}  // namespace rnx::util
