// Bounded multi-producer / multi-consumer queue.
//
// The serving layer's load drivers (tools/rnx_serve, bench_serve_latency)
// decouple request *generation* from request *submission* with this
// primitive: a pacing thread pushes work descriptors, client threads pop
// and submit.  Push never blocks — a full queue refuses the item, which
// is exactly the shed-at-admission behavior the serving stack wants at
// every layer (DESIGN.md §B2); pop blocks until an item arrives or the
// queue is closed.
//
// close() wakes every waiting consumer; items already queued still drain
// (pop returns them before reporting empty), so a producer can close the
// queue as its end-of-stream marker without losing the tail.
//
// Producers that must not drop (the dataset prefetch thread feeding
// streaming training, DESIGN.md §D) use the blocking push(): it waits
// for space instead of refusing, and returns false only once the queue
// is closed — the consumer's abandon signal.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace rnx::util {

template <typename T>
class BoundedQueue {
 public:
  /// capacity == 0 is normalized to 1 (a zero-capacity queue could never
  /// transfer an item).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue without blocking.  Returns false — and drops the item — when
  /// the queue is full or closed.
  bool try_push(T item) {
    {
      const MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Enqueue, waiting until space frees up.  Returns false — and drops
  /// the item — only when the queue is closed (before or while
  /// waiting): the producer's signal that the consumer is gone.
  bool push(T item) {
    {
      const MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) cv_space_.wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeue without blocking; std::nullopt when nothing is queued.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      const MutexLock lock(mu_);
      out = pop_locked();
    }
    if (out) cv_space_.notify_one();
    return out;
  }

  /// Dequeue, waiting until an item arrives.  Returns std::nullopt only
  /// once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      const MutexLock lock(mu_);
      while (!closed_ && items_.empty()) cv_.wait(mu_);
      out = pop_locked();
    }
    if (out) cv_space_.notify_one();
    return out;
  }

  /// Mark end-of-stream: future pushes fail, waiting producers and
  /// consumers wake.
  void close() {
    {
      const MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    cv_space_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const MutexLock lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    const MutexLock lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::optional<T> pop_locked() RNX_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;        ///< items available / closed
  CondVar cv_space_;  ///< space available / closed
  std::deque<T> items_ RNX_GUARDED_BY(mu_);
  bool closed_ RNX_GUARDED_BY(mu_) = false;
};

}  // namespace rnx::util
