// Wall-clock stopwatch for coarse experiment timing (dataset generation,
// training epochs).  Microbenchmarks use google-benchmark instead.
#pragma once

#include <chrono>

namespace rnx::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rnx::util
