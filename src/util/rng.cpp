#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace rnx::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

RngStream::RngStream(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

RngStream RngStream::derive(std::string_view label,
                            std::uint64_t index) const noexcept {
  // Mix the parent state (without advancing it) with the label hash and
  // index through splitmix64 to obtain an independent child.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ s_[3];
  sm ^= hash_label(label);
  sm += 0x632be59bd9b4e019ULL * (index + 1);
  RngStream child;
  for (auto& s : child.s_) s = splitmix64(sm);
  return child;
}

std::uint64_t RngStream::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Lemire-style rejection-free-enough bounded draw (bias < 2^-64 * span).
  return lo + static_cast<std::int64_t>(next() % span);
}

double RngStream::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();  // avoid log(0)
  return -mean * std::log(u);
}

double RngStream::normal(double mean, double stddev) noexcept {
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool RngStream::bernoulli(double p) noexcept { return uniform() < p; }

double RngStream::pareto(double alpha, double xm) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::array<std::uint64_t, 4> RngStream::state() const noexcept {
  return {s_[0], s_[1], s_[2], s_[3]};
}

RngStream RngStream::from_state(
    const std::array<std::uint64_t, 4>& s) noexcept {
  RngStream out;
  for (std::size_t i = 0; i < 4; ++i) out.s_[i] = s[i];
  return out;
}

}  // namespace rnx::util
