// Minimal aligned-table and CSV emitters.  Benches use these to print the
// paper-style rows to stdout and to write plottable CSV files next to the
// binaries.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rnx::util {

/// Collects rows of cells and renders a column-aligned text table.
/// Numeric formatting is the caller's responsibility (push preformatted
/// strings or use the cell() helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  /// Render to a stream with 2-space column separation and a rule under
  /// the header.
  void print(std::ostream& os) const;
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Format a double with fixed precision (for consistent columns).
  [[nodiscard]] static std::string cell(double v, int precision = 4);
  [[nodiscard]] static std::string cell(std::size_t v);
  [[nodiscard]] static std::string cell(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Line-buffered CSV writer; throws std::runtime_error if the file cannot
/// be opened.  Values containing commas/quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void add_row(const std::vector<std::string>& cells);
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  void* file_;  // std::ofstream, kept opaque to avoid <fstream> in header
  std::size_t columns_;
};

}  // namespace rnx::util
