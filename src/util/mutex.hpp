// Annotated synchronization wrappers (DESIGN.md §L).
//
// util::Mutex / util::MutexLock / util::CondVar are thin, zero-overhead
// wrappers over std::mutex / RAII locking / std::condition_variable_any
// that carry Clang thread-safety capabilities (util/annotations.hpp).
// All of src/ locks through these — rnx_lint's raw-mutex rule bans the
// std primitives outside this header — so the static-analysis CI leg
// can prove, at compile time, that every RNX_GUARDED_BY field is only
// touched with its mutex held.
//
// Idioms (doctrine + examples in DESIGN.md §L):
//
//   mutable Mutex mu_;
//   std::deque<T> items_ RNX_GUARDED_BY(mu_);
//
//   { const MutexLock lock(mu_); items_.push_back(x); }      // scoped
//
//   MutexLock lock(mu_);                                     // cv wait
//   while (!ready_) cv_.wait(mu_);
//
//   if (!mu_.try_lock()) return false;                       // try-lock
//   const MutexLock lock(mu_, kAdoptLock);
//
// Condition waits take the Mutex itself (absl::CondVar shape), not the
// lock object: the predicate loop then lives in the calling function,
// where the analysis can see the capability is held — a predicate
// lambda would be analyzed as a separate function that holds nothing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace rnx::util {

/// Annotated exclusive lock.  Prefer MutexLock over calling
/// lock()/unlock() directly; the manual form exists for adopt/try
/// patterns and for the wrapper internals.
class RNX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RNX_ACQUIRE() { mu_.lock(); }
  void unlock() RNX_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() RNX_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;  // rnx-lint: allow(raw-mutex) — the wrapped primitive
};

/// Tag for adopting an already-held Mutex (after a successful
/// try_lock()) into a MutexLock's scope.
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

/// RAII holder: acquires at construction, releases at scope exit.
/// lock()/unlock() allow the condition-wait and handoff patterns that
/// std::unique_lock supported; the analysis tracks the held state
/// through them.
class RNX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RNX_ACQUIRE(mu) : mu_(&mu), held_(true) {
    mu_->lock();
  }
  /// Adopt a mutex the caller already holds (try-lock pattern).
  MutexLock(Mutex& mu, AdoptLockT) RNX_REQUIRES(mu) : mu_(&mu), held_(true) {}
  ~MutexLock() RNX_RELEASE() {
    if (held_) mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquire after a manual unlock() (worker-loop handoff pattern).
  void lock() RNX_ACQUIRE() {
    mu_->lock();
    held_ = true;
  }
  void unlock() RNX_RELEASE() {
    mu_->unlock();
    held_ = false;
  }

 private:
  Mutex* mu_;
  bool held_;
};

/// Condition variable bound to util::Mutex.  Waits take the Mutex (which
/// the caller must hold); write the predicate as a while loop around the
/// wait so the guarded reads happen in the annotated caller's scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, wait, re-acquire.  Spurious wakeups
  /// happen: always wrap in a predicate loop.
  void wait(Mutex& mu) RNX_REQUIRES(mu) { cv_.wait(mu); }

  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& tp)
      RNX_REQUIRES(mu) {
    return cv_.wait_until(mu, tp);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& d)
      RNX_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any waits on the Mutex wrapper directly (it only
  // needs BasicLockable), so no native-handle leakage is required.
  std::condition_variable_any cv_;  // rnx-lint: allow(raw-mutex)
};

}  // namespace rnx::util
