// Deterministic, splittable random number streams.
//
// Every stochastic component of the library (topology draws, traffic
// matrices, flow arrival processes, weight initialization, shuffling) hangs
// off a named RngStream derived from a root seed.  Derivation is pure
// (splitmix64 over the parent state and a label hash), so results are
// reproducible regardless of evaluation order: two flows with different ids
// always see independent streams, and re-running with the same seed yields
// bit-identical datasets and models.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rnx::util {

/// xoshiro256** PRNG with splitmix64 seeding.  Satisfies
/// std::uniform_random_bit_generator, so it can drive <random>
/// distributions, but the common draws are provided as members for
/// cross-platform determinism (libstdc++ distribution algorithms are
/// implementation-defined; ours are not).
class RngStream {
 public:
  using result_type = std::uint64_t;

  /// Root stream from a numeric seed.
  explicit RngStream(std::uint64_t seed) noexcept;

  /// Derive an independent child stream, e.g. per flow / per sample.
  /// Children with different (label, index) pairs are statistically
  /// independent of each other and of the parent.
  [[nodiscard]] RngStream derive(std::string_view label,
                                 std::uint64_t index = 0) const noexcept;

  /// Raw 64 random bits (advances the stream).
  result_type operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;
  /// Exponentially distributed draw with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;
  /// Standard normal via Box-Muller (no cached spare; deterministic).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Bernoulli draw.
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Pareto draw with shape alpha (>0) and scale xm (>0): xm / U^{1/alpha}.
  [[nodiscard]] double pareto(double alpha, double xm) noexcept;

  /// Raw engine state, for checkpointing: from_state() reconstructs a
  /// stream that continues EXACTLY where this one stands (the trainer's
  /// crash-safe resume relies on restoring the shuffle stream bitwise).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept;
  [[nodiscard]] static RngStream from_state(
      const std::array<std::uint64_t, 4>& s) noexcept;

 private:
  RngStream() = default;
  std::uint64_t next() noexcept;
  std::uint64_t s_[4]{};
};

/// splitmix64 step: the canonical 64-bit mixer used for seeding/derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a hash of a label, used to separate derived streams by name.
[[nodiscard]] std::uint64_t hash_label(std::string_view label) noexcept;

}  // namespace rnx::util
