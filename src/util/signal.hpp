// Cooperative SIGINT/SIGTERM handling for the CLI tools (DESIGN.md §R).
//
// The handlers only set a flag; the tools poll it at safe boundaries —
// rnx_train between optimizer batches (where it finalizes a checkpoint),
// rnx_datagen between committed samples (where it finalizes the shard +
// manifest), rnx_serve between submissions (where it drains the
// scheduler).  Every on-disk artifact goes through the atomic
// write-temp-then-rename path, so an interrupted run leaves either the
// previous artifact or the new one — never a torn file — and exits with
// the conventional 128+signal code (130 for SIGINT).
#pragma once

namespace rnx::util {

/// Install SIGINT and SIGTERM handlers that record the signal instead of
/// killing the process.  Idempotent.
void install_interrupt_handlers() noexcept;

/// True once a handled signal arrived.
[[nodiscard]] bool interrupt_requested() noexcept;

/// Conventional exit code for the received signal (128 + signum); 130
/// when nothing arrived (callers only consult this after
/// interrupt_requested()).
[[nodiscard]] int interrupt_exit_code() noexcept;

/// Re-arm (tests).
void clear_interrupt() noexcept;

}  // namespace rnx::util
