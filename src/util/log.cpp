#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace rnx::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes std::cerr (external state — nothing to RNX_GUARDED_BY):
// lines from concurrent lanes must not interleave.
Mutex g_out_mu;  // rnx-lint: allow(guarded-by) — guards a stream, not a field

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  const MutexLock lock(g_out_mu);
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace rnx::util
