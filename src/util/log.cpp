#include "util/log.hpp"

#include <iostream>

namespace rnx::util {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace rnx::util
