#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rnx::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width != header width");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      w[c] = std::max(w[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(w[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c + 1 < w.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::cell(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::cell(std::size_t v) { return std::to_string(v); }
std::string Table::cell(long long v) { return std::to_string(v); }

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), columns_(header.size()) {
  auto* f = new std::ofstream(path);
  if (!*f) {
    delete f;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  file_ = f;
  add_row(header);
}

CsvWriter::~CsvWriter() { delete static_cast<std::ofstream*>(file_); }

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  auto& f = *static_cast<std::ofstream*>(file_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    f << csv_escape(cells[i]);
    if (i + 1 < cells.size()) f << ',';
  }
  f << '\n';
}

}  // namespace rnx::util
