// Clang thread-safety annotation macros (DESIGN.md §L).
//
// These wrap Clang's -Wthread-safety attribute names so annotated code
// compiles unchanged under GCC (the attributes expand to nothing) while
// the static-analysis CI leg builds with clang and
// -Werror=thread-safety, turning lock-discipline violations — a guarded
// field read outside its mutex, a forgotten unlock on an early return —
// into compile errors.  TSan catches the interleavings the tests happen
// to hit; this proves the discipline for every path the compiler can
// see, before any test runs.
//
// Use through the util::Mutex / util::MutexLock / util::CondVar wrappers
// (util/mutex.hpp): raw std::mutex carries no capability, so the
// analysis cannot see it — which is why rnx_lint's raw-mutex rule bans
// the std primitives outside the wrapper header.
//
// Annotation cheat sheet (full doctrine in DESIGN.md §L):
//   RNX_GUARDED_BY(mu_)    on a data member: reads/writes need mu_ held
//   RNX_PT_GUARDED_BY(mu_) on a pointer member: the pointee needs mu_
//   RNX_REQUIRES(mu_)      on a function: caller must hold mu_
//   RNX_ACQUIRE/RNX_RELEASE on lock/unlock-shaped functions
//   RNX_CAPABILITY("mutex") on a lockable type
//   RNX_SCOPED_CAPABILITY  on an RAII lock holder
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RNX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RNX_THREAD_ANNOTATION
#define RNX_THREAD_ANNOTATION(x)  // no-op: GCC and pre-capability clang
#endif

/// A type whose instances can be held: `class RNX_CAPABILITY("mutex") M`.
#define RNX_CAPABILITY(x) RNX_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires in its constructor, releases in its
/// destructor (std::lock_guard shape).
#define RNX_SCOPED_CAPABILITY RNX_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define RNX_GUARDED_BY(x) RNX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer
/// itself may be read freely).
#define RNX_PT_GUARDED_BY(x) RNX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the caller holds the listed capabilities.
/// The _locked helper convention maps onto this.
#define RNX_REQUIRES(...) \
  RNX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (empty list = `this` for a
/// capability type's own lock()).
#define RNX_ACQUIRE(...) \
  RNX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define RNX_RELEASE(...) \
  RNX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires iff it returns `b` (try_lock shape).
#define RNX_TRY_ACQUIRE(...) \
  RNX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called WITHOUT the listed capabilities held
/// (deadlock guard for self-locking public APIs).
#define RNX_EXCLUDES(...) RNX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trust-me edge for
/// paths the analysis cannot follow).
#define RNX_ASSERT_CAPABILITY(x) RNX_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define RNX_RETURN_CAPABILITY(x) RNX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress analysis inside one function.  Pair with a
/// comment explaining why the discipline holds anyway.
#define RNX_NO_THREAD_SAFETY_ANALYSIS \
  RNX_THREAD_ANNOTATION(no_thread_safety_analysis)
