// Streaming and batch statistics used across the simulator, the dataset
// pipeline and the evaluation harness: Welford accumulators (numerically
// stable online mean/variance), percentiles, histograms and empirical CDFs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rnx::util {

/// Numerically stable online accumulator for mean / variance / extrema
/// (Welford's algorithm).  Used by the simulator for per-path delay and
/// jitter without storing per-packet samples.
class Welford {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator (parallel-combine form).
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (0 when fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept;
  /// Sample (Bessel-corrected) variance.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Nearest-rank percentile of an unsorted sample, q in [0, 100]:
/// returns the ceil(q/100 * N)-th smallest sample, clamped to [1, N]
/// (q <= 0 -> min, q >= 100 -> max).  The result is always an observed
/// sample value — never interpolated — which is the conservative choice
/// for small tail samples: p99 of a 10-element latency vector is the
/// worst observation, not a value invented between the two largest.
/// Copies and sorts internally; for repeated queries use Cdf.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Empirical CDF over a sample; supports percentile queries and evaluation
/// of P(X <= x).  This is what bench_fig2 uses to print the paper's curves.
class Cdf {
 public:
  explicit Cdf(std::vector<double> xs);

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  /// Nearest-rank quantile for q in [0, 100] (same rule as the free
  /// percentile(): ceil(q/100 * N)-th order statistic).
  [[nodiscard]] double percentile(double q) const;
  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const;
  /// Evenly spaced (x, F(x)) series of n points spanning the sample range;
  /// convenient for printing a plottable curve.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      std::size_t n) const;
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return xs_;
  }

 private:
  std::vector<double> xs_;  // sorted ascending
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to the
/// edge bins.  Used by the simulator's delay distribution diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rnx::util
