#include "serve/bundle.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "nn/serialize.hpp"

namespace rnx::serve {

namespace {

constexpr char kMagic[4] = {'R', 'N', 'X', 'B'};
// Weights for the models this repo trains are a few hundred KiB; a body
// size beyond this is certainly corruption, so refuse the allocation.
constexpr std::uint64_t kMaxBodyBytes = 1ull << 30;

template <typename T>
void write_pod(std::ostream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void read_pod(std::istream& f, T& v, const char* what) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f)
    throw std::runtime_error(std::string("load_bundle: truncated file (") +
                             what + ")");
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_moments(std::ostream& f, const data::Moments& m) {
  write_pod(f, m.mean);
  write_pod(f, m.stddev);
}
data::Moments read_moments(std::istream& f, const char* what) {
  data::Moments m;
  read_pod(f, m.mean, what);
  read_pod(f, m.stddev, what);
  return m;
}

}  // namespace

void save_bundle(const std::string& path, const core::Model& model,
                 const data::Scaler& scaler, core::PredictionTarget target,
                 std::uint64_t min_delivered, nn::WeightEncoding encoding) {
  // fp64 saves must stay byte-identical to the pre-quantization v3
  // layout (no weight_encoding byte); only quantized saves emit v4.
  const bool quantized = encoding != nn::WeightEncoding::kFp64;
  const std::uint32_t version =
      quantized ? kBundleVersion : kFp64BundleVersion;
  std::ostringstream body(std::ios::binary);
  write_pod(body, static_cast<std::uint8_t>(model.kind()));
  write_pod(body, static_cast<std::uint8_t>(target));
  write_pod(body, min_delivered);
  const core::ModelConfig& mc = model.config();
  write_pod(body, static_cast<std::uint64_t>(mc.state_dim));
  write_pod(body, static_cast<std::uint64_t>(mc.readout_hidden));
  write_pod(body, static_cast<std::uint64_t>(mc.iterations));
  write_pod(body, static_cast<std::uint8_t>(mc.node_rule));
  write_pod(body, static_cast<std::uint8_t>(mc.node_mean_aggregation));
  write_pod(body, static_cast<std::uint8_t>(mc.fused_gru));
  write_pod(body, static_cast<std::uint8_t>(mc.scenario_features));
  write_pod(body, static_cast<std::uint8_t>(mc.scale_invariant_features));
  write_pod(body, static_cast<std::uint8_t>(mc.link_mean_aggregation));
  if (quantized) write_pod(body, static_cast<std::uint8_t>(encoding));
  write_pod(body, mc.init_seed);
  write_moments(body, scaler.traffic_moments());
  write_moments(body, scaler.capacity_moments());
  write_moments(body, scaler.queue_moments());
  write_moments(body, scaler.log_delay_moments());
  write_moments(body, scaler.log_jitter_moments());
  const nn::NamedParams params = model.named_params();
  if (quantized)
    nn::save_params_quantized(body, params, encoding);
  else
    nn::save_params(body, params);

  const std::string bytes = body.str();
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_bundle: cannot open " + path);
  f.write(kMagic, sizeof(kMagic));
  write_pod(f, version);
  write_pod(f, static_cast<std::uint64_t>(bytes.size()));
  write_pod(f, fnv1a64(bytes));
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("save_bundle: write failed on " + path);
}

ModelBundle load_bundle(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_bundle: cannot open " + path);
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::string_view(magic, 4) != std::string_view(kMagic, 4))
    throw std::runtime_error("load_bundle: bad magic in " + path +
                             " (not a .rnxb bundle)");
  std::uint32_t version = 0;
  read_pod(f, version, "version");
  if (version < kMinBundleVersion || version > kBundleVersion)
    throw std::runtime_error("load_bundle: unsupported bundle version " +
                             std::to_string(version));
  std::uint64_t body_size = 0, checksum = 0;
  read_pod(f, body_size, "body size");
  read_pod(f, checksum, "checksum");
  if (body_size == 0 || body_size > kMaxBodyBytes)
    throw std::runtime_error("load_bundle: corrupt header in " + path +
                             " (body size " + std::to_string(body_size) +
                             ")");
  std::string bytes(body_size, '\0');
  f.read(bytes.data(), static_cast<std::streamsize>(body_size));
  if (!f)
    throw std::runtime_error("load_bundle: truncated bundle " + path);
  if (fnv1a64(bytes) != checksum)
    throw std::runtime_error("load_bundle: checksum mismatch in " + path +
                             " (file corrupt)");

  std::istringstream body(bytes, std::ios::binary);
  std::uint8_t kind_byte = 0, target_byte = 0;
  read_pod(body, kind_byte, "model kind");
  read_pod(body, target_byte, "prediction target");
  if (kind_byte > 1)
    throw std::runtime_error("load_bundle: invalid model kind byte " +
                             std::to_string(kind_byte));
  const auto kind = static_cast<core::ModelKind>(kind_byte);
  if (target_byte > 1)
    throw std::runtime_error("load_bundle: invalid prediction target byte " +
                             std::to_string(target_byte));

  ModelBundle out;
  out.target = static_cast<core::PredictionTarget>(target_byte);
  read_pod(body, out.min_delivered, "min_delivered");

  core::ModelConfig mc;
  std::uint64_t state_dim = 0, readout_hidden = 0, iterations = 0;
  read_pod(body, state_dim, "state_dim");
  read_pod(body, readout_hidden, "readout_hidden");
  read_pod(body, iterations, "iterations");
  mc.state_dim = static_cast<std::size_t>(state_dim);
  mc.readout_hidden = static_cast<std::size_t>(readout_hidden);
  mc.iterations = static_cast<std::size_t>(iterations);
  std::uint8_t node_rule = 0, node_mean = 0, fused = 0;
  read_pod(body, node_rule, "node_rule");
  if (node_rule > 1)
    throw std::runtime_error("load_bundle: invalid node rule byte " +
                             std::to_string(node_rule));
  mc.node_rule = static_cast<core::NodeUpdateRule>(node_rule);
  read_pod(body, node_mean, "node_mean_aggregation");
  mc.node_mean_aggregation = node_mean != 0;
  read_pod(body, fused, "fused_gru");
  mc.fused_gru = fused != 0;
  if (version >= 2) {
    std::uint8_t scenario = 0;
    read_pod(body, scenario, "scenario_features");
    mc.scenario_features = scenario != 0;
  }
  if (version >= 3) {
    // v3 feature flags; older bundles imply both off, so v1/v2 files
    // keep loading (and serving) byte-for-byte as before.
    std::uint8_t scale_inv = 0, link_mean = 0;
    read_pod(body, scale_inv, "scale_invariant_features");
    mc.scale_invariant_features = scale_inv != 0;
    read_pod(body, link_mean, "link_mean_aggregation");
    mc.link_mean_aggregation = link_mean != 0;
  }
  std::uint8_t enc_byte = 0;  // v1-v3 bundles are always fp64
  if (version >= 4) {
    read_pod(body, enc_byte, "weight_encoding");
    if (enc_byte > static_cast<std::uint8_t>(nn::WeightEncoding::kInt8))
      throw std::runtime_error("load_bundle: invalid weight encoding byte " +
                               std::to_string(enc_byte));
  }
  out.encoding = static_cast<nn::WeightEncoding>(enc_byte);
  read_pod(body, mc.init_seed, "init_seed");

  const data::Moments traffic = read_moments(body, "traffic moments");
  const data::Moments capacity = read_moments(body, "capacity moments");
  const data::Moments queue = read_moments(body, "queue moments");
  const data::Moments log_delay = read_moments(body, "log delay moments");
  const data::Moments log_jitter = read_moments(body, "log jitter moments");
  out.scaler = data::Scaler::from_moments(traffic, capacity, queue,
                                          log_delay, log_jitter);

  out.model = core::make_model(kind, mc);
  nn::NamedParams params = out.model->named_params();
  if (out.encoding == nn::WeightEncoding::kFp64)
    nn::load_params(body, params);
  else
    nn::load_params_quantized(body, params);
  return out;
}

}  // namespace rnx::serve
