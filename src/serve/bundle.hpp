// Self-contained model bundles (.rnxb): everything inference needs in
// one integrity-checked file.
//
// save_params (.rnxw) persists weights only, so a deployed model used to
// re-fit its data::Scaler from whatever dataset --scaler-from pointed at
// — point it at anything but the original training set and every
// prediction silently drifts (wrong z-score moments).  A bundle closes
// that hole by persisting the full inference contract:
//
//   magic "RNXB", u32 version, u64 body size, u64 FNV-1a checksum, body:
//     u8  model kind (core::ModelKind: 0 = orig, 1 = ext)
//     u8  prediction target (core::PredictionTarget)
//     u64 min_delivered        (label-quality threshold used in training)
//     u64 state_dim, u64 readout_hidden, u64 iterations
//     u8  node_rule, u8 node_mean_aggregation, u8 fused_gru
//     u8  scenario_features    (v2+ only; v1 bundles imply 0)
//     u8  scale_invariant_features, u8 link_mean_aggregation
//                              (v3+ only; older bundles imply 0)
//     u8  weight_encoding      (v4+ only; nn::WeightEncoding, older
//                               bundles imply 0 = fp64)
//     u64 init_seed
//     5 x (f64 mean, f64 stddev)  Scaler moments: traffic, capacity,
//                                 queue, log_delay, log_jitter
//     embedded weight section: "RNXW" (nn::save_params verbatim) when
//     weight_encoding is fp64, else "RNXQ" (nn::save_params_quantized)
//
// The checksum covers the whole body, so truncation or bit rot fails
// loudly at load instead of surfacing as subtly wrong predictions.
// Versioning rule: any layout change bumps kBundleVersion; readers
// reject unknown versions rather than guessing, but keep loading every
// older version (v1 bundles predate the scenario engine and must keep
// serving bitwise-identically; see DESIGN.md §B, §S).  fp64 saves keep
// writing the v3 layout byte-for-byte — only quantized saves emit v4 —
// so existing tooling that pins bundle bytes never sees a diff.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/config.hpp"
#include "core/model.hpp"
#include "data/normalize.hpp"
#include "nn/serialize.hpp"

namespace rnx::serve {

inline constexpr std::uint32_t kBundleVersion = 4;
inline constexpr std::uint32_t kMinBundleVersion = 1;
/// Version written for full-precision saves: the pre-quantization v3
/// layout, preserved byte-identically (no weight_encoding byte).
inline constexpr std::uint32_t kFp64BundleVersion = 3;

/// A deserialized bundle: the reconstructed model (weights loaded) plus
/// the inference-time context it was trained with.
struct ModelBundle {
  std::unique_ptr<core::Model> model;
  data::Scaler scaler;
  core::PredictionTarget target = core::PredictionTarget::kDelay;
  std::uint64_t min_delivered = 10;
  /// How the embedded weights were stored on disk.  Weights are always
  /// dequantized to fp64 at load; this records provenance for logging.
  nn::WeightEncoding encoding = nn::WeightEncoding::kFp64;

  [[nodiscard]] core::ModelKind kind() const { return model->kind(); }
};

/// Write model weights + config + scaler moments + target as one .rnxb
/// file.  Throws std::runtime_error on I/O failure.  With kFp64 (the
/// default) the file is the byte-identical v3 layout; kFp16/kInt8 write
/// a v4 bundle with a per-tensor-calibrated quantized weight section.
void save_bundle(const std::string& path, const core::Model& model,
                 const data::Scaler& scaler, core::PredictionTarget target,
                 std::uint64_t min_delivered,
                 nn::WeightEncoding encoding = nn::WeightEncoding::kFp64);

/// Load a bundle, reconstructing the model via core::make_model.  Throws
/// std::runtime_error with a descriptive message on missing file, bad
/// magic, unsupported version, checksum mismatch, invalid model kind /
/// target byte, or truncation — never a huge allocation.
[[nodiscard]] ModelBundle load_bundle(const std::string& path);

}  // namespace rnx::serve
