// Serving layer: load a model bundle once, answer prediction requests.
//
// The engine owns the reconstructed model, the training-set scaler, a
// core::PlanCache shared across requests (repeated what-if queries over
// the same scenario pay build_plan once — and, inside a ModelRegistry,
// shared across *engines*), and an optional ThreadPool for batch
// fan-out.  Predictions come back in physical units — seconds for
// delay, seconds^2 for jitter — ready for an operator-facing API.
//
// Thread-safety (DESIGN.md §B, §B2): predict() may be called
// concurrently from any number of threads — forward() only reads the
// weights, the plan cache takes its own lock, and autograd's no-grad
// mode is thread-local.  predict_batch() routes through an internal
// serve::BatchScheduler in synchronous mode: concurrent batch calls
// coalesce into shared micro-batches and the calling threads
// cooperatively drain them, so no caller ever blocks idle behind a
// global mutex (the pre-scheduler engine serialized every batch call on
// one lock).  Plan-cache entries are keyed by sample identity
// (address): a caller that destroys or mutates request samples and then
// recycles their addresses must invalidate()/clear_plan_cache() first,
// same contract as core::PlanCache.
//
// The engine itself holds no mutex (the pre-PR4 global batch lock is
// gone): its shared mutable state lives in the annotated components it
// composes — core::PlanCache, serve::BatchScheduler, util::ThreadPool —
// whose lock discipline the static-analysis gate proves at compile time
// (DESIGN.md §L).
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/plan_cache.hpp"
#include "serve/bundle.hpp"
#include "util/thread_pool.hpp"

namespace rnx::serve {

class BatchScheduler;

class InferenceEngine {
 public:
  /// Load the bundle at `path`.  `threads` sizes the batch fan-out pool
  /// (1 = serial batches, 0 = all hardware threads).
  explicit InferenceEngine(const std::string& path, std::size_t threads = 1);
  /// Adopt an already-loaded bundle (must hold a model).
  explicit InferenceEngine(ModelBundle bundle, std::size_t threads = 1);
  /// Adopt a bundle and attach `cache` instead of an engine-private plan
  /// cache — the ModelRegistry path, where every engine shares one cache
  /// and the registry's pool (so `threads` defaults to poolless).
  InferenceEngine(ModelBundle bundle, std::shared_ptr<core::PlanCache> cache,
                  std::size_t threads = 1);

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;
  ~InferenceEngine();

  /// Per-path predictions for one scenario, in the sample's path order,
  /// in physical units (seconds or seconds^2 per the bundle's target).
  /// Safe to call concurrently.
  [[nodiscard]] std::vector<double> predict(const data::Sample& sample) const;

  /// Batched request: one prediction vector per sample, fanned out over
  /// the engine's pool.  Safe to call concurrently — calls coalesce
  /// through the internal scheduler instead of serializing; outputs are
  /// bitwise-identical to per-sample predict() either way.  Throws the
  /// first failing sample's error (in sample order).
  [[nodiscard]] std::vector<std::vector<double>> predict_batch(
      std::span<const data::Sample> samples) const;

  /// Scattered batch over sample pointers: the BatchScheduler's
  /// execution hook (batches gather samples from many queued requests).
  /// With `errors` non-null, each sample's forward error lands in its
  /// slot (the prediction slot stays empty) instead of failing the whole
  /// batch.  `pool` may belong to the caller (e.g. the registry); if it
  /// is busy the batch runs inline — never blocks.
  [[nodiscard]] std::vector<std::vector<double>> predict_ptrs(
      std::span<const data::Sample* const> samples, util::ThreadPool* pool,
      std::vector<std::exception_ptr>* errors = nullptr) const;

  /// Mean predicted value over a scenario's paths — the what-if loop's
  /// scalar objective (examples/what_if_queue_upgrade.cpp).
  [[nodiscard]] double predict_mean(const data::Sample& sample) const;

  // -- bundle context (for eval tooling; model/scaler are read-only) ----
  [[nodiscard]] const core::Model& model() const noexcept { return *model_; }
  [[nodiscard]] const data::Scaler& scaler() const noexcept {
    return scaler_;
  }
  [[nodiscard]] core::PredictionTarget target() const noexcept {
    return target_;
  }
  [[nodiscard]] std::uint64_t min_delivered() const noexcept {
    return min_delivered_;
  }
  [[nodiscard]] std::size_t threads() const noexcept;
  /// The batch fan-out pool (nullptr when the engine is serial).
  /// Exposed so eval tooling can drive Model::forward_batch on the
  /// engine's lanes; the pool serializes concurrent jobs internally, so
  /// borrowing is always safe.
  [[nodiscard]] util::ThreadPool* batch_pool() const noexcept {
    return pool_ ? &*pool_ : nullptr;
  }

  // -- plan-cache lifetime hooks (see header comment) -------------------
  void invalidate(const data::Sample& sample) const;
  void clear_plan_cache() const;
  /// Cap resident plan bytes (LRU eviction; 0 = unlimited).  With a
  /// registry-shared cache this budgets the shared cache.
  void set_plan_cache_budget(std::size_t bytes) const {
    plan_cache_->set_byte_budget(bytes);
  }
  [[nodiscard]] const core::PlanCache& plan_cache() const noexcept {
    return *plan_cache_;
  }

 private:
  [[nodiscard]] double denormalize(double target_value) const;

  std::unique_ptr<core::Model> model_;
  data::Scaler scaler_;
  core::PredictionTarget target_;
  std::uint64_t min_delivered_;
  std::shared_ptr<core::PlanCache> plan_cache_;  ///< private or registry-shared
  mutable std::optional<util::ThreadPool> pool_;  ///< threads > 1 only
  /// Synchronous-mode scheduler backing predict_batch (manual drain,
  /// unbounded depth, zero linger): concurrent batch calls coalesce and
  /// cooperatively drain here.  Built after pool_ (it fans out on it);
  /// declared after pool_ so it shuts down first.
  std::unique_ptr<BatchScheduler> batch_sched_;
};

}  // namespace rnx::serve
