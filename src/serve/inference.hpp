// Serving layer: load a model bundle once, answer prediction requests.
//
// The engine owns the reconstructed model, the training-set scaler, a
// core::PlanCache shared across requests (repeated what-if queries over
// the same scenario pay build_plan once), and an optional ThreadPool for
// batch fan-out.  Predictions come back in physical units — seconds for
// delay, seconds^2 for jitter — ready for an operator-facing API.
//
// Thread-safety (DESIGN.md §B): predict() may be called concurrently
// from any number of threads — forward() only reads the weights, the
// plan cache takes its own lock, and autograd's no-grad mode is
// thread-local.  predict_batch() fans one request out over the pool and
// serializes concurrent batch calls on an internal mutex (the pool runs
// one job at a time).  Plan-cache entries are keyed by sample identity
// (address): a caller that destroys or mutates request samples and then
// recycles their addresses must invalidate()/clear_plan_cache() first,
// same contract as core::PlanCache.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/plan_cache.hpp"
#include "serve/bundle.hpp"
#include "util/thread_pool.hpp"

namespace rnx::serve {

class InferenceEngine {
 public:
  /// Load the bundle at `path`.  `threads` sizes the batch fan-out pool
  /// (1 = serial batches, 0 = all hardware threads).
  explicit InferenceEngine(const std::string& path, std::size_t threads = 1);
  /// Adopt an already-loaded bundle (must hold a model).
  explicit InferenceEngine(ModelBundle bundle, std::size_t threads = 1);

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;
  ~InferenceEngine();

  /// Per-path predictions for one scenario, in the sample's path order,
  /// in physical units (seconds or seconds^2 per the bundle's target).
  /// Safe to call concurrently.
  [[nodiscard]] std::vector<double> predict(const data::Sample& sample) const;

  /// Batched request: one prediction vector per sample, fanned out over
  /// the engine's pool.  Concurrent batch calls are serialized.
  [[nodiscard]] std::vector<std::vector<double>> predict_batch(
      std::span<const data::Sample> samples) const;

  /// Mean predicted value over a scenario's paths — the what-if loop's
  /// scalar objective (examples/what_if_queue_upgrade.cpp).
  [[nodiscard]] double predict_mean(const data::Sample& sample) const;

  // -- bundle context (for eval tooling; model/scaler are read-only) ----
  [[nodiscard]] const core::Model& model() const noexcept { return *model_; }
  [[nodiscard]] const data::Scaler& scaler() const noexcept {
    return scaler_;
  }
  [[nodiscard]] core::PredictionTarget target() const noexcept {
    return target_;
  }
  [[nodiscard]] std::uint64_t min_delivered() const noexcept {
    return min_delivered_;
  }
  [[nodiscard]] std::size_t threads() const noexcept;
  /// The batch fan-out pool (nullptr when the engine is serial).
  /// Exposed so eval tooling can drive Model::forward_batch on the
  /// engine's lanes; borrow only while no predict_batch call is in
  /// flight — the pool runs one job at a time.
  [[nodiscard]] util::ThreadPool* batch_pool() const noexcept {
    return pool_ ? &*pool_ : nullptr;
  }

  // -- plan-cache lifetime hooks (see header comment) -------------------
  void invalidate(const data::Sample& sample) const;
  void clear_plan_cache() const;
  [[nodiscard]] const core::PlanCache& plan_cache() const noexcept {
    return plan_cache_;
  }

 private:
  [[nodiscard]] double denormalize(double target_value) const;

  std::unique_ptr<core::Model> model_;
  data::Scaler scaler_;
  core::PredictionTarget target_;
  std::uint64_t min_delivered_;
  mutable core::PlanCache plan_cache_;
  mutable std::optional<util::ThreadPool> pool_;  ///< threads > 1 only
  mutable std::mutex batch_mu_;  ///< one pool job at a time
};

}  // namespace rnx::serve
