// Named bundle registry: one serving process, many models.
//
// A production digital-twin deployment serves heterogeneous queries —
// delay and jitter targets, scenario-featured and plain bundles, v1 and
// v2 formats — from one process.  The registry owns one InferenceEngine
// per named bundle plus the two resources they share (DESIGN.md §B2):
//
//  * one core::PlanCache — message-passing plans depend only on the
//    sample's topology/routing and the use_nodes flag, not on weights,
//    so a scenario queried against several models pays build_plan once;
//  * one util::ThreadPool — a single process gets one set of fan-out
//    lanes, however many bundles it serves (per-engine pools would
//    oversubscribe the host).
//
// Lifecycle: register every bundle first, then serve.  add() is not
// synchronized against concurrent lookups; after setup, all access
// (find/at from any number of scheduler or caller threads) is read-only
// and safe.  Lookup by unknown name is a typed UnknownModelError, so a
// routing typo is distinguishable from every other failure.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"
#include "serve/errors.hpp"
#include "serve/inference.hpp"
#include "util/thread_pool.hpp"

namespace rnx::serve {

class ModelRegistry {
 public:
  /// `threads` sizes the shared fan-out pool (1 = no pool, 0 = all
  /// hardware threads) handed to the batch scheduler.
  explicit ModelRegistry(std::size_t threads = 1);
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Register `bundle` under `name`.  Throws std::invalid_argument on an
  /// empty or duplicate name.  Returns the wrapping engine (borrowed).
  InferenceEngine& add(std::string name, ModelBundle bundle);
  /// Load the bundle at `path` and register it under `name`.
  InferenceEngine& add(std::string name, const std::string& path);

  /// The engine serving `name`, or nullptr when unregistered.
  [[nodiscard]] const InferenceEngine* find(
      std::string_view name) const noexcept;
  /// As find(), but an unknown name throws UnknownModelError naming the
  /// registered bundles.
  [[nodiscard]] const InferenceEngine& at(std::string_view name) const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return engines_.size(); }

  /// The shared fan-out pool (nullptr when threads == 1).
  [[nodiscard]] util::ThreadPool* pool() const noexcept {
    return pool_ ? &*pool_ : nullptr;
  }
  [[nodiscard]] const core::PlanCache& plan_cache() const noexcept {
    return *cache_;
  }

  // -- shared plan-cache lifetime hooks (core::PlanCache contract) ------
  void invalidate(const data::Sample& sample) { cache_->invalidate(sample); }
  void clear_plan_cache() { cache_->clear(); }

 private:
  std::shared_ptr<core::PlanCache> cache_;
  mutable std::optional<util::ThreadPool> pool_;  ///< threads > 1 only
  std::vector<std::pair<std::string, std::unique_ptr<InferenceEngine>>>
      engines_;  ///< registration order; linear scan (registries are small)
};

}  // namespace rnx::serve
