// Named bundle registry: one serving process, many models.
//
// A production digital-twin deployment serves heterogeneous queries —
// delay and jitter targets, scenario-featured and plain bundles, v1 and
// v2 formats — from one process.  The registry owns one InferenceEngine
// per named bundle plus the two resources they share (DESIGN.md §B2):
//
//  * one core::PlanCache — message-passing plans depend only on the
//    sample's topology/routing and the use_nodes flag, not on weights,
//    so a scenario queried against several models pays build_plan once;
//  * one util::ThreadPool — a single process gets one set of fan-out
//    lanes, however many bundles it serves (per-engine pools would
//    oversubscribe the host).
//
// Lifecycle: registration and lookup are mutex-synchronized, so bundles
// can be added — and hot-swapped via swap_bundle() — while schedulers
// serve.  Lookup by unknown name is a typed UnknownModelError, so a
// routing typo is distinguishable from every other failure.
//
// Hot reload (DESIGN.md §R): swap_bundle() fully constructs the new
// engine BEFORE publishing it under the name, so no lookup can ever see
// a torn bundle.  Requests that resolved the old engine keep it alive
// through their shared_ptr (BatchScheduler's registry path co-owns the
// engine per request); the old engine is retired, and drain() blocks
// until every retired engine's last in-flight request has released it.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"
#include "serve/errors.hpp"
#include "serve/inference.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace rnx::serve {

class ModelRegistry {
 public:
  /// `threads` sizes the shared fan-out pool (1 = no pool, 0 = all
  /// hardware threads) handed to the batch scheduler.
  explicit ModelRegistry(std::size_t threads = 1);
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Register `bundle` under `name`.  Throws std::invalid_argument on an
  /// empty or duplicate name.  Returns the wrapping engine (borrowed).
  InferenceEngine& add(std::string name, ModelBundle bundle);
  /// Load the bundle at `path` and register it under `name`.
  InferenceEngine& add(std::string name, const std::string& path);

  /// Atomic hot reload: replace the engine serving `name` with one
  /// freshly built from `bundle`.  The new engine is fully constructed
  /// before it becomes visible; lookups before the swap resolve the old
  /// engine (kept alive by their shared_ptr), lookups after it resolve
  /// the new one — never a torn state.  The old engine moves to the
  /// retired list until its last holder releases it (see drain()).
  /// Throws std::invalid_argument when `name` is not registered.
  void swap_bundle(std::string_view name, ModelBundle bundle);
  /// Load the bundle at `path` and swap it in under `name`.
  void swap_bundle(std::string_view name, const std::string& path);

  /// Block until every retired engine (from swap_bundle) has been
  /// released by its last in-flight request, then discard them.  Call
  /// after BatchScheduler::drain() — or any time — to bound the memory
  /// of repeated hot reloads.
  void drain();
  /// Retired engines still held by at least one in-flight request.
  [[nodiscard]] std::size_t retired_alive() const;

  /// The engine serving `name`, or nullptr when unregistered.  The raw
  /// pointer is stable only until a swap_bundle for the name retires the
  /// engine AND its last co-owner releases it; serving paths that must
  /// survive hot reloads use find_shared().
  [[nodiscard]] const InferenceEngine* find(
      std::string_view name) const noexcept;
  /// The engine serving `name` with shared ownership (nullptr when
  /// unregistered): the holder pins the engine across a concurrent
  /// swap_bundle — what BatchScheduler's registry path stores per
  /// request.
  [[nodiscard]] std::shared_ptr<const InferenceEngine> find_shared(
      std::string_view name) const noexcept;
  /// As find(), but an unknown name throws UnknownModelError naming the
  /// registered bundles.
  [[nodiscard]] const InferenceEngine& at(std::string_view name) const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

  /// The shared fan-out pool (nullptr when threads == 1).
  [[nodiscard]] util::ThreadPool* pool() const noexcept {
    return pool_ ? &*pool_ : nullptr;
  }
  [[nodiscard]] const core::PlanCache& plan_cache() const noexcept {
    return *cache_;
  }

  // -- shared plan-cache lifetime hooks (core::PlanCache contract) ------
  void invalidate(const data::Sample& sample) { cache_->invalidate(sample); }
  void clear_plan_cache() { cache_->clear(); }
  /// Cap the shared cache's resident plan bytes (LRU; 0 = unlimited).
  void set_plan_cache_budget(std::size_t bytes) {
    cache_->set_byte_budget(bytes);
  }

 private:
  [[nodiscard]] std::shared_ptr<InferenceEngine> make_engine(
      ModelBundle bundle) const;

  std::shared_ptr<core::PlanCache> cache_;
  mutable std::optional<util::ThreadPool> pool_;  ///< threads > 1 only
  mutable util::Mutex mu_;
  /// Registration order; linear scan (registries are small).
  std::vector<std::pair<std::string, std::shared_ptr<InferenceEngine>>>
      engines_ RNX_GUARDED_BY(mu_);
  /// Engines displaced by swap_bundle, observed (not owned) until their
  /// last in-flight request lets go — drain()'s completion condition.
  std::vector<std::weak_ptr<InferenceEngine>> retired_ RNX_GUARDED_BY(mu_);
};

}  // namespace rnx::serve
