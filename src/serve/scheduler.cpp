#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nn/kernels.hpp"
#include "serve/inference.hpp"
#include "serve/registry.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace rnx::serve {

BatchScheduler::BatchScheduler(SchedulerConfig cfg, util::ThreadPool* pool)
    : cfg_(std::move(cfg)), pool_(pool) {
  if (cfg_.max_queue_depth == 0)
    throw std::invalid_argument("BatchScheduler: max_queue_depth must be > 0");
  if (cfg_.max_batch_samples == 0)
    throw std::invalid_argument(
        "BatchScheduler: max_batch_samples must be > 0");
  if (cfg_.max_linger.count() < 0)
    throw std::invalid_argument("BatchScheduler: max_linger must be >= 0");
  if (cfg_.now && !cfg_.manual_drain)
    throw std::invalid_argument(
        "BatchScheduler: a scripted clock requires manual_drain (the "
        "drainer thread sleeps on the real clock)");
  if (!cfg_.manual_drain) drainer_ = std::thread([this] { drain_loop(); });
}

BatchScheduler::~BatchScheduler() { shutdown(); }

BatchScheduler::ClockPoint BatchScheduler::clock_now() const {
  return cfg_.now ? cfg_.now() : std::chrono::steady_clock::now();
}

Submitted BatchScheduler::submit(const InferenceEngine& engine,
                                 std::span<const data::Sample> samples,
                                 SubmitOptions opts) {
  return submit_impl(&engine, nullptr, samples, opts);
}

Submitted BatchScheduler::submit_impl(
    const InferenceEngine* engine,
    std::shared_ptr<const InferenceEngine> keep_alive,
    std::span<const data::Sample> samples, SubmitOptions opts) {
  Submitted out;
  std::promise<PredictionSet> empty_done;
  bool notify = false;
  {
    const util::MutexLock lock(mu_);
    if (shutdown_) {
      // A downed scheduler accounts nothing: kShutdown submissions stay
      // outside the submitted == admitted + shed conservation law.
      out.error = ServeError::kShutdown;
      return out;
    }
    ++stats_.submitted;
    if (draining_) {
      // Graceful drain sheds new arrivals while completing admitted
      // work; unlike shutdown, these ARE counted (the server is up and
      // refusing, not gone).
      out.error = ServeError::kDraining;
      ++stats_.shed;
    } else if (opts.deadline.count() < 0) {
      // Already unmeetable: refuse at admission rather than admitting a
      // request whose only possible outcome is expiry.
      out.error = ServeError::kDeadlineExceeded;
      ++stats_.shed;
    } else if (samples.empty()) {
      // Nothing to batch: resolve immediately (outside the lock).
      ++stats_.admitted;
      ++stats_.completed;
      out.result = empty_done.get_future();
    } else if (pending_.size() >= cfg_.max_queue_depth) {
      out.error = ServeError::kOverloaded;
      ++stats_.shed;
    } else {
      ++stats_.admitted;
      Request req{engine,
                  samples,
                  std::promise<PredictionSet>(),
                  clock_now(),
                  ClockPoint{},
                  false,
                  std::make_shared<std::atomic<bool>>(false),
                  std::move(keep_alive)};
      if (opts.deadline.count() > 0) {
        req.has_deadline = true;
        req.deadline = req.enqueued + opts.deadline;
      }
      out.result = req.promise.get_future();
      out.cancel_flag = req.cancelled;
      pending_.push_back(std::move(req));
      stats_.queue_depth = pending_.size();
      stats_.peak_queue_depth =
          std::max(stats_.peak_queue_depth, stats_.queue_depth);
      notify = !cfg_.manual_drain;
    }
  }
  if (out.admitted() && samples.empty()) empty_done.set_value({});
  if (notify) cv_.notify_one();
  return out;
}

Submitted BatchScheduler::submit(const ModelRegistry& registry,
                                 std::string_view model,
                                 std::span<const data::Sample> samples,
                                 SubmitOptions opts) {
  std::shared_ptr<const InferenceEngine> engine = registry.find_shared(model);
  if (engine == nullptr) {
    const util::MutexLock lock(mu_);
    Submitted out;
    if (shutdown_) {
      // Same rule as the engine path: a downed scheduler accounts
      // nothing, whatever the refusal reason.
      out.error = ServeError::kShutdown;
      return out;
    }
    ++stats_.submitted;
    ++stats_.shed;
    out.error = ServeError::kUnknownModel;
    return out;
  }
  const InferenceEngine* raw = engine.get();
  return submit_impl(raw, std::move(engine), samples, opts);
}

bool BatchScheduler::front_ready_locked(ClockPoint now) const {
  if (pending_.empty()) return false;
  if (draining_) return true;  // no lingering while draining
  if (now - pending_.front().enqueued >= cfg_.max_linger) return true;
  const InferenceEngine* engine = pending_.front().engine;
  std::size_t samples = 0;
  for (const Request& r : pending_) {
    if (r.engine != engine) break;
    samples += r.samples.size();
    if (samples >= cfg_.max_batch_samples) return true;
  }
  return false;
}

BatchScheduler::Batch BatchScheduler::take_front_locked() {
  Batch out;
  if (pending_.empty()) return out;
  const InferenceEngine* engine = pending_.front().engine;
  std::size_t samples = 0;
  while (!pending_.empty() && pending_.front().engine == engine) {
    const std::size_t k = pending_.front().samples.size();
    if (!out.empty() && samples + k > cfg_.max_batch_samples) break;
    samples += k;
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  stats_.queue_depth = pending_.size();
  ++stats_.batches;
  stats_.batch_samples += samples;
  stats_.peak_batch_samples =
      std::max<std::uint64_t>(stats_.peak_batch_samples, samples);
  executing_ += out.size();  // released at the end of execute()
  return out;
}

std::vector<BatchScheduler::DeadRequest> BatchScheduler::collect_dead_locked(
    ClockPoint now) {
  std::vector<DeadRequest> dead;
  for (auto it = pending_.begin(); it != pending_.end();) {
    const bool cancel =
        it->cancelled && it->cancelled->load(std::memory_order_relaxed);
    const bool expired = !cancel && it->has_deadline && now >= it->deadline;
    if (!cancel && !expired) {
      ++it;
      continue;
    }
    dead.push_back({std::move(*it), cancel});
    it = pending_.erase(it);
  }
  if (!dead.empty()) {
    stats_.queue_depth = pending_.size();
    // Counters commit under the lock BEFORE the promises resolve (same
    // discipline as execute); executing_ bridges the gap for drain().
    for (const DeadRequest& d : dead)
      d.was_cancelled ? ++stats_.cancelled : ++stats_.expired;
    executing_ += dead.size();
  }
  return dead;
}

void BatchScheduler::resolve_dead(std::vector<DeadRequest>& dead) {
  if (dead.empty()) return;
  for (DeadRequest& d : dead) {
    if (d.was_cancelled) {
      d.req.promise.set_exception(std::make_exception_ptr(CancelledError(
          "BatchScheduler: request cancelled before execution")));
    } else {
      d.req.promise.set_exception(std::make_exception_ptr(
          DeadlineExceededError("BatchScheduler: deadline exceeded before "
                                "execution (request expired in queue)")));
    }
  }
  {
    const util::MutexLock lock(mu_);
    executing_ -= dead.size();
  }
  drained_cv_.notify_all();
}

void BatchScheduler::reap() {
  std::vector<DeadRequest> dead;
  {
    const util::MutexLock lock(mu_);
    dead = collect_dead_locked(clock_now());
  }
  resolve_dead(dead);
}

void BatchScheduler::execute(Batch batch) {
  if (batch.empty()) return;
  const InferenceEngine* engine = batch.front().engine;
  std::size_t total = 0;
  for (const Request& r : batch) total += r.samples.size();
  std::vector<const data::Sample*> ptrs;
  ptrs.reserve(total);
  for (const Request& r : batch)
    for (const data::Sample& s : r.samples) ptrs.push_back(&s);

  // Injected execution faults (serve.execute[.slow]): a stalled model —
  // param microseconds, default 1ms — and a whole-batch failure, both at
  // the point a real engine would stall or throw.
  if (util::fault_fires("serve.execute.slow")) {
    const std::uint64_t us =
        util::FaultInjector::instance().param("serve.execute.slow");
    std::this_thread::sleep_for(std::chrono::microseconds(us ? us : 1000));
  }
  PredictionSet values;
  std::vector<std::exception_ptr> errors;
  std::exception_ptr batch_error;
  try {
    if (util::fault_fires("serve.execute"))
      throw util::FaultInjectedError(
          "injected whole-batch execution failure (serve.execute)");
    values = engine->predict_ptrs(ptrs, pool_, &errors);
  } catch (...) {
    // Whole-batch failure (not a per-sample forward error): every
    // request in the batch fails with the same cause.
    batch_error = std::current_exception();
  }

  const ClockPoint done = clock_now();
  std::vector<std::exception_ptr> request_err(batch.size());
  std::uint64_t completed = 0, failed = 0, latency_sum = 0, latency_max = 0;
  std::size_t off = 0;
  for (std::size_t ri = 0; ri < batch.size(); ++ri) {
    const std::size_t k = batch[ri].samples.size();
    std::exception_ptr err = batch_error;
    for (std::size_t i = off; err == nullptr && i < off + k; ++i)
      if (errors[i]) err = errors[i];  // first bad sample, in sample order
    request_err[ri] = err;
    err == nullptr ? ++completed : ++failed;
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        done - batch[ri].enqueued);
    const auto us = static_cast<std::uint64_t>(
        std::max<std::chrono::microseconds::rep>(waited.count(), 0));
    latency_sum += us;
    latency_max = std::max(latency_max, us);
    off += k;
  }

  // Commit the counters BEFORE resolving any promise: a caller that has
  // observed its future resolve must find its request already counted
  // (the soak test reads stats right after every writer's get() returns).
  {
    const util::MutexLock lock(mu_);
    stats_.completed += completed;
    stats_.failed += failed;
    stats_.latency_us_sum += latency_sum;
    stats_.latency_us_max = std::max(stats_.latency_us_max, latency_max);
  }

  off = 0;
  for (std::size_t ri = 0; ri < batch.size(); ++ri) {
    Request& r = batch[ri];
    const std::size_t k = r.samples.size();
    if (request_err[ri] != nullptr) {
      r.promise.set_exception(request_err[ri]);
    } else {
      PredictionSet slice(std::make_move_iterator(values.begin() + off),
                          std::make_move_iterator(values.begin() + off + k));
      r.promise.set_value(std::move(slice));
    }
    off += k;
  }

  // Every future in the batch is now resolved: release the executing_
  // hold taken in take_front_locked so drain() can observe completion.
  {
    const util::MutexLock lock(mu_);
    executing_ -= batch.size();
  }
  drained_cv_.notify_all();
}

std::size_t BatchScheduler::pump() {
  std::size_t executed = 0;
  reap();
  for (;;) {
    Batch batch;
    {
      const util::MutexLock lock(mu_);
      if (!front_ready_locked(clock_now())) break;
      batch = take_front_locked();
    }
    execute(std::move(batch));
    ++executed;
  }
  return executed;
}

std::size_t BatchScheduler::flush() {
  std::size_t executed = 0;
  reap();
  for (;;) {
    Batch batch;
    {
      const util::MutexLock lock(mu_);
      batch = take_front_locked();
    }
    if (batch.empty()) break;
    execute(std::move(batch));
    ++executed;
  }
  return executed;
}

void BatchScheduler::help_until(const std::future<PredictionSet>& fut) {
  using namespace std::chrono_literals;
  while (fut.wait_for(0s) != std::future_status::ready) {
    reap();  // fut itself may be expired/cancelled — reap resolves it
    Batch batch;
    {
      const util::MutexLock lock(mu_);
      batch = take_front_locked();
    }
    if (batch.empty()) {
      // Someone else took the batch holding fut's request; they will
      // resolve it.
      fut.wait();
      return;
    }
    execute(std::move(batch));
  }
}

void BatchScheduler::drain() {
  {
    const util::MutexLock lock(mu_);
    if (shutdown_) return;
    draining_ = true;
  }
  cv_.notify_all();  // wake the drainer: lingering is over
  // Execute everything admitted.  With a drainer thread this races it
  // benignly (flush is documented safe alongside it); in manual mode
  // this IS the drain.  Expired/cancelled requests resolve typed.
  flush();
  const util::MutexLock lock(mu_);
  while (!shutdown_ && !(pending_.empty() && executing_ == 0))
    drained_cv_.wait(mu_);
}

void BatchScheduler::shutdown() {
  std::deque<Request> orphans;
  {
    const util::MutexLock lock(mu_);
    shutdown_ = true;
    orphans.swap(pending_);
    stats_.queue_depth = 0;
    stats_.cancelled += orphans.size();
  }
  cv_.notify_all();
  drained_cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  for (Request& r : orphans)
    r.promise.set_exception(std::make_exception_ptr(ShutdownError(
        "BatchScheduler: shut down with the request still pending")));
}

void BatchScheduler::drain_loop() {
  util::MutexLock lock(mu_);
  while (!shutdown_) {
    if (pending_.empty()) {
      while (!shutdown_ && pending_.empty()) cv_.wait(mu_);
      continue;
    }
    const ClockPoint now = std::chrono::steady_clock::now();
    std::vector<DeadRequest> dead = collect_dead_locked(now);
    if (!dead.empty()) {
      lock.unlock();
      resolve_dead(dead);
      lock.lock();
      continue;
    }
    if (!front_ready_locked(now)) {
      // Wake for whichever comes first: the front's linger cut or the
      // earliest pending deadline (an expired request must resolve on
      // time even when no new submission arrives to nudge the drainer).
      ClockPoint wake = pending_.front().enqueued + cfg_.max_linger;
      for (const Request& r : pending_)
        if (r.has_deadline && r.deadline < wake) wake = r.deadline;
      cv_.wait_until(mu_, wake);
      continue;
    }
    Batch batch = take_front_locked();
    lock.unlock();
    execute(std::move(batch));
    lock.lock();
  }
}

ServeStats BatchScheduler::stats() const {
  // plan_cache stays default here: the scheduler has no cache of its own.
  // Callers overlay the serving cache's counters (registry.plan_cache()
  // .stats()) when they want the full picture — see tools/rnx_serve.
  const util::MutexLock lock(mu_);
  ServeStats out = stats_;
  out.kernel_isa = nn::kernels::active().name;
  out.kernel_reason = nn::kernels::dispatch_reason();
  return out;
}

}  // namespace rnx::serve
