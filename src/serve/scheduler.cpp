#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "serve/inference.hpp"
#include "serve/registry.hpp"
#include "util/thread_pool.hpp"

namespace rnx::serve {

BatchScheduler::BatchScheduler(SchedulerConfig cfg, util::ThreadPool* pool)
    : cfg_(std::move(cfg)), pool_(pool) {
  if (cfg_.max_queue_depth == 0)
    throw std::invalid_argument("BatchScheduler: max_queue_depth must be > 0");
  if (cfg_.max_batch_samples == 0)
    throw std::invalid_argument(
        "BatchScheduler: max_batch_samples must be > 0");
  if (cfg_.max_linger.count() < 0)
    throw std::invalid_argument("BatchScheduler: max_linger must be >= 0");
  if (cfg_.now && !cfg_.manual_drain)
    throw std::invalid_argument(
        "BatchScheduler: a scripted clock requires manual_drain (the "
        "drainer thread sleeps on the real clock)");
  if (!cfg_.manual_drain) drainer_ = std::thread([this] { drain_loop(); });
}

BatchScheduler::~BatchScheduler() { shutdown(); }

BatchScheduler::ClockPoint BatchScheduler::clock_now() const {
  return cfg_.now ? cfg_.now() : std::chrono::steady_clock::now();
}

Submitted BatchScheduler::submit(const InferenceEngine& engine,
                                 std::span<const data::Sample> samples) {
  Submitted out;
  std::promise<PredictionSet> empty_done;
  bool notify = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // A downed scheduler accounts nothing: kShutdown submissions stay
      // outside the submitted == admitted + shed conservation law.
      out.error = ServeError::kShutdown;
      return out;
    }
    ++stats_.submitted;
    if (samples.empty()) {
      // Nothing to batch: resolve immediately (outside the lock).
      ++stats_.admitted;
      ++stats_.completed;
      out.result = empty_done.get_future();
    } else if (pending_.size() >= cfg_.max_queue_depth) {
      out.error = ServeError::kOverloaded;
      ++stats_.shed;
    } else {
      ++stats_.admitted;
      Request req{&engine, samples, std::promise<PredictionSet>(),
                  clock_now()};
      out.result = req.promise.get_future();
      pending_.push_back(std::move(req));
      stats_.queue_depth = pending_.size();
      stats_.peak_queue_depth =
          std::max(stats_.peak_queue_depth, stats_.queue_depth);
      notify = !cfg_.manual_drain;
    }
  }
  if (out.admitted() && samples.empty()) empty_done.set_value({});
  if (notify) cv_.notify_one();
  return out;
}

Submitted BatchScheduler::submit(const ModelRegistry& registry,
                                 std::string_view model,
                                 std::span<const data::Sample> samples) {
  const InferenceEngine* engine = registry.find(model);
  if (engine == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    Submitted out;
    if (shutdown_) {
      // Same rule as the engine path: a downed scheduler accounts
      // nothing, whatever the refusal reason.
      out.error = ServeError::kShutdown;
      return out;
    }
    ++stats_.submitted;
    ++stats_.shed;
    out.error = ServeError::kUnknownModel;
    return out;
  }
  return submit(*engine, samples);
}

bool BatchScheduler::front_ready_locked(ClockPoint now) const {
  if (pending_.empty()) return false;
  if (now - pending_.front().enqueued >= cfg_.max_linger) return true;
  const InferenceEngine* engine = pending_.front().engine;
  std::size_t samples = 0;
  for (const Request& r : pending_) {
    if (r.engine != engine) break;
    samples += r.samples.size();
    if (samples >= cfg_.max_batch_samples) return true;
  }
  return false;
}

BatchScheduler::Batch BatchScheduler::take_front_locked() {
  Batch out;
  if (pending_.empty()) return out;
  const InferenceEngine* engine = pending_.front().engine;
  std::size_t samples = 0;
  while (!pending_.empty() && pending_.front().engine == engine) {
    const std::size_t k = pending_.front().samples.size();
    if (!out.empty() && samples + k > cfg_.max_batch_samples) break;
    samples += k;
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  stats_.queue_depth = pending_.size();
  ++stats_.batches;
  stats_.batch_samples += samples;
  stats_.peak_batch_samples =
      std::max<std::uint64_t>(stats_.peak_batch_samples, samples);
  return out;
}

void BatchScheduler::execute(Batch batch) {
  if (batch.empty()) return;
  const InferenceEngine* engine = batch.front().engine;
  std::size_t total = 0;
  for (const Request& r : batch) total += r.samples.size();
  std::vector<const data::Sample*> ptrs;
  ptrs.reserve(total);
  for (const Request& r : batch)
    for (const data::Sample& s : r.samples) ptrs.push_back(&s);

  PredictionSet values;
  std::vector<std::exception_ptr> errors;
  std::exception_ptr batch_error;
  try {
    values = engine->predict_ptrs(ptrs, pool_, &errors);
  } catch (...) {
    // Whole-batch failure (not a per-sample forward error): every
    // request in the batch fails with the same cause.
    batch_error = std::current_exception();
  }

  const ClockPoint done = clock_now();
  std::vector<std::exception_ptr> request_err(batch.size());
  std::uint64_t completed = 0, failed = 0, latency_sum = 0, latency_max = 0;
  std::size_t off = 0;
  for (std::size_t ri = 0; ri < batch.size(); ++ri) {
    const std::size_t k = batch[ri].samples.size();
    std::exception_ptr err = batch_error;
    for (std::size_t i = off; err == nullptr && i < off + k; ++i)
      if (errors[i]) err = errors[i];  // first bad sample, in sample order
    request_err[ri] = err;
    err == nullptr ? ++completed : ++failed;
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        done - batch[ri].enqueued);
    const auto us = static_cast<std::uint64_t>(
        std::max<std::chrono::microseconds::rep>(waited.count(), 0));
    latency_sum += us;
    latency_max = std::max(latency_max, us);
    off += k;
  }

  // Commit the counters BEFORE resolving any promise: a caller that has
  // observed its future resolve must find its request already counted
  // (the soak test reads stats right after every writer's get() returns).
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.completed += completed;
    stats_.failed += failed;
    stats_.latency_us_sum += latency_sum;
    stats_.latency_us_max = std::max(stats_.latency_us_max, latency_max);
  }

  off = 0;
  for (std::size_t ri = 0; ri < batch.size(); ++ri) {
    Request& r = batch[ri];
    const std::size_t k = r.samples.size();
    if (request_err[ri] != nullptr) {
      r.promise.set_exception(request_err[ri]);
    } else {
      PredictionSet slice(std::make_move_iterator(values.begin() + off),
                          std::make_move_iterator(values.begin() + off + k));
      r.promise.set_value(std::move(slice));
    }
    off += k;
  }
}

std::size_t BatchScheduler::pump() {
  std::size_t executed = 0;
  for (;;) {
    Batch batch;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!front_ready_locked(clock_now())) break;
      batch = take_front_locked();
    }
    execute(std::move(batch));
    ++executed;
  }
  return executed;
}

std::size_t BatchScheduler::flush() {
  std::size_t executed = 0;
  for (;;) {
    Batch batch;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      batch = take_front_locked();
    }
    if (batch.empty()) break;
    execute(std::move(batch));
    ++executed;
  }
  return executed;
}

void BatchScheduler::help_until(const std::future<PredictionSet>& fut) {
  using namespace std::chrono_literals;
  while (fut.wait_for(0s) != std::future_status::ready) {
    Batch batch;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      batch = take_front_locked();
    }
    if (batch.empty()) {
      // Someone else took the batch holding fut's request; they will
      // resolve it.
      fut.wait();
      return;
    }
    execute(std::move(batch));
  }
}

void BatchScheduler::shutdown() {
  std::deque<Request> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    orphans.swap(pending_);
    stats_.queue_depth = 0;
    stats_.cancelled += orphans.size();
  }
  cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  for (Request& r : orphans)
    r.promise.set_exception(std::make_exception_ptr(ShutdownError(
        "BatchScheduler: shut down with the request still pending")));
}

void BatchScheduler::drain_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    if (pending_.empty()) {
      cv_.wait(lock,
               [&] { return shutdown_ || !pending_.empty(); });
      continue;
    }
    const ClockPoint now = std::chrono::steady_clock::now();
    if (!front_ready_locked(now)) {
      cv_.wait_until(lock, pending_.front().enqueued + cfg_.max_linger);
      continue;
    }
    Batch batch = take_front_locked();
    lock.unlock();
    execute(std::move(batch));
    lock.lock();
  }
}

ServeStats BatchScheduler::stats() const {
  // plan_cache stays default here: the scheduler has no cache of its own.
  // Callers overlay the serving cache's counters (registry.plan_cache()
  // .stats()) when they want the full picture — see tools/rnx_serve.
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace rnx::serve
