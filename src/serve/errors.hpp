// Typed serving-layer errors (DESIGN.md §B2).
//
// Admission failures are *values* (ServeError on the Submitted handle):
// a shed request never owned a future, so there is nothing to throw
// through.  Failures of an admitted request travel through its future as
// typed exceptions, so callers can tell overload/shutdown/routing policy
// apart from model-level errors (e.g. the scenario feature-gating
// std::runtime_error) without string matching.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rnx::serve {

enum class ServeError : std::uint8_t {
  kNone = 0,       ///< admitted; the future will resolve
  kOverloaded,     ///< queue at max depth: request shed at admission
  kUnknownModel,   ///< registry routing: no bundle under that name
  kShutdown,       ///< scheduler is (or went) down
};

[[nodiscard]] constexpr const char* to_string(ServeError e) noexcept {
  switch (e) {
    case ServeError::kNone: return "none";
    case ServeError::kOverloaded: return "overloaded";
    case ServeError::kUnknownModel: return "unknown-model";
    case ServeError::kShutdown: return "shutdown";
  }
  return "invalid";
}

// Note there is deliberately no OverloadedError exception: overload is
// an admission failure, which is always a value (kOverloaded) — a shed
// request never owns a future for an exception to travel through.

/// Registry lookup failed: no engine is registered under the name.
class UnknownModelError : public std::runtime_error {
 public:
  explicit UnknownModelError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The scheduler shut down with the request still pending.
class ShutdownError : public std::runtime_error {
 public:
  explicit ShutdownError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace rnx::serve
