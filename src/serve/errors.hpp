// Typed serving-layer errors (DESIGN.md §B2).
//
// Admission failures are *values* (ServeError on the Submitted handle):
// a shed request never owned a future, so there is nothing to throw
// through.  Failures of an admitted request travel through its future as
// typed exceptions, so callers can tell overload/shutdown/routing policy
// apart from model-level errors (e.g. the scenario feature-gating
// std::runtime_error) without string matching.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rnx::serve {

enum class ServeError : std::uint8_t {
  kNone = 0,       ///< admitted; the future will resolve
  kOverloaded,     ///< queue at max depth: request shed at admission
  kUnknownModel,   ///< registry routing: no bundle under that name
  kShutdown,       ///< scheduler is (or went) down
  kDraining,       ///< graceful drain in progress: new work refused
  kDeadlineExceeded,  ///< deadline already unmeetable at admission
};

[[nodiscard]] constexpr const char* to_string(ServeError e) noexcept {
  switch (e) {
    case ServeError::kNone: return "none";
    case ServeError::kOverloaded: return "overloaded";
    case ServeError::kUnknownModel: return "unknown-model";
    case ServeError::kShutdown: return "shutdown";
    case ServeError::kDraining: return "draining";
    case ServeError::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "invalid";
}

// Note there is deliberately no OverloadedError exception: overload is
// an admission failure, which is always a value (kOverloaded) — a shed
// request never owns a future for an exception to travel through.

/// Registry lookup failed: no engine is registered under the name.
class UnknownModelError : public std::runtime_error {
 public:
  explicit UnknownModelError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The scheduler shut down with the request still pending.
class ShutdownError : public std::runtime_error {
 public:
  explicit ShutdownError(const std::string& what)
      : std::runtime_error(what) {}
};

/// An admitted request's deadline passed before its batch executed; the
/// scheduler resolved the future without paying the forward pass
/// (counted `expired`).
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The caller cancelled an admitted request (Submitted::request_cancel)
/// before the scheduler started executing it (counted `cancelled`).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace rnx::serve
