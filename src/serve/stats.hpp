// Serving-layer observability: one consistent snapshot of the scheduler's
// counters (DESIGN.md §B2).
//
// Every counter is maintained under the scheduler's queue mutex, so a
// snapshot is a point-in-time view with exact conservation laws that
// tests pin directly:
//
//   submitted == admitted + shed
//   admitted  == completed + failed + cancelled + expired + in_flight()
//
// Latency is measured with the scheduler's injected clock from request
// admission to request completion, so under the deterministic test rig
// (scripted clock + manual drain) latency numbers are exact, not
// statistical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "core/plan_cache.hpp"

namespace rnx::serve {

struct ServeStats {
  // -- request accounting (units: requests) ----------------------------
  std::uint64_t submitted = 0;  ///< accepted submit() calls (empty included)
  std::uint64_t admitted = 0;   ///< entered the queue (or completed empty)
  std::uint64_t shed = 0;       ///< refused at admission (queue full)
  std::uint64_t completed = 0;  ///< future resolved with predictions
  std::uint64_t failed = 0;     ///< future resolved with a forward error
  std::uint64_t cancelled = 0;  ///< ShutdownError at shutdown, or a
                                ///< caller's request_cancel() honored
  std::uint64_t expired = 0;    ///< deadline passed before execution
                                ///< (DeadlineExceededError, no forward)

  // -- batching --------------------------------------------------------
  std::uint64_t batches = 0;        ///< executed micro-batches
  std::uint64_t batch_samples = 0;  ///< samples across all batches
  std::uint64_t peak_batch_samples = 0;

  // -- queue occupancy (units: requests) -------------------------------
  std::size_t queue_depth = 0;  ///< pending right now
  std::size_t peak_queue_depth = 0;

  // -- latency (admission -> completion, scheduler clock) --------------
  std::uint64_t latency_us_sum = 0;
  std::uint64_t latency_us_max = 0;

  // -- shared plan cache (core::PlanCache::stats of the serving cache) --
  core::PlanCache::Stats plan_cache;

  // -- kernel backend (nn::kernels dispatch; static strings) ------------
  const char* kernel_isa = "";     ///< active ISA tag, e.g. "avx2+fma"
  const char* kernel_reason = "";  ///< why it was chosen (dispatch_reason)

  /// Requests admitted but not yet resolved.
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return admitted - completed - failed - cancelled - expired;
  }
  /// Mean admission-to-completion latency over resolved requests.
  [[nodiscard]] double mean_latency_us() const noexcept {
    const std::uint64_t n = completed + failed;
    return n == 0 ? 0.0 : static_cast<double>(latency_us_sum) /
                              static_cast<double>(n);
  }
  /// Mean executed-batch size in samples.
  [[nodiscard]] double mean_batch_samples() const noexcept {
    return batches == 0 ? 0.0 : static_cast<double>(batch_samples) /
                                    static_cast<double>(batches);
  }
};

/// Operator-facing table (tools/rnx_serve).
void print_stats(std::ostream& os, const ServeStats& s);

}  // namespace rnx::serve
