#include "serve/stats.hpp"

#include <ostream>

namespace rnx::serve {

void print_stats(std::ostream& os, const ServeStats& s) {
  os << "serve stats:\n"
     << "  requests   submitted " << s.submitted << ", admitted "
     << s.admitted << ", shed " << s.shed << ", completed " << s.completed
     << ", failed " << s.failed << ", cancelled " << s.cancelled
     << ", expired " << s.expired << ", in-flight " << s.in_flight() << "\n"
     << "  batches    " << s.batches << " (" << s.batch_samples
     << " samples, mean " << s.mean_batch_samples() << ", peak "
     << s.peak_batch_samples << ")\n"
     << "  queue      depth " << s.queue_depth << ", peak "
     << s.peak_queue_depth << "\n"
     << "  latency    mean " << s.mean_latency_us() << " us, max "
     << s.latency_us_max << " us\n"
     << "  plan cache " << s.plan_cache.size << " entries, "
     << s.plan_cache.hits << " hits, " << s.plan_cache.misses
     << " misses, " << s.plan_cache.evictions << " evictions, "
     << s.plan_cache.bytes << " bytes (peak " << s.plan_cache.peak_bytes
     << ")\n";
  if (s.kernel_isa != nullptr && s.kernel_isa[0] != '\0')
    os << "  kernels    " << s.kernel_isa << " (" << s.kernel_reason << ")\n";
}

}  // namespace rnx::serve
