#include "serve/inference.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "nn/autograd.hpp"
#include "serve/scheduler.hpp"

namespace rnx::serve {

namespace {

/// predict_batch's internal scheduler: no thread, no shedding (the
/// synchronous API keeps its never-refuses contract), no linger (callers
/// are already waiting) — pure coalescing of concurrent calls.
SchedulerConfig sync_scheduler_config() {
  SchedulerConfig cfg;
  cfg.max_queue_depth = std::numeric_limits<std::size_t>::max();
  cfg.max_batch_samples = std::numeric_limits<std::size_t>::max();
  cfg.max_linger = std::chrono::microseconds{0};
  cfg.manual_drain = true;
  return cfg;
}

}  // namespace

InferenceEngine::InferenceEngine(const std::string& path, std::size_t threads)
    : InferenceEngine(load_bundle(path), threads) {}

InferenceEngine::InferenceEngine(ModelBundle bundle, std::size_t threads)
    : InferenceEngine(std::move(bundle), std::make_shared<core::PlanCache>(),
                      threads) {}

InferenceEngine::InferenceEngine(ModelBundle bundle,
                                 std::shared_ptr<core::PlanCache> cache,
                                 std::size_t threads)
    : model_(std::move(bundle.model)),
      scaler_(bundle.scaler),
      target_(bundle.target),
      min_delivered_(bundle.min_delivered),
      plan_cache_(std::move(cache)) {
  if (!model_)
    throw std::invalid_argument("InferenceEngine: bundle holds no model");
  if (!plan_cache_)
    throw std::invalid_argument("InferenceEngine: null plan cache");
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  if (threads > 1) pool_.emplace(threads);
  batch_sched_ = std::make_unique<BatchScheduler>(
      sync_scheduler_config(), pool_ ? &*pool_ : nullptr);
  model_->set_plan_cache(plan_cache_.get());
}

InferenceEngine::~InferenceEngine() { model_->set_plan_cache(nullptr); }

std::size_t InferenceEngine::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

double InferenceEngine::denormalize(double target_value) const {
  return target_ == core::PredictionTarget::kDelay
             ? scaler_.target_to_delay(target_value)
             : scaler_.target_to_jitter(target_value);
}

std::vector<double> InferenceEngine::predict(
    const data::Sample& sample) const {
  const nn::NoGradGuard guard;
  const nn::Tensor pred = model_->forward(sample, scaler_).value();
  std::vector<double> out(pred.rows());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = denormalize(pred(i, 0));
  return out;
}

std::vector<std::vector<double>> InferenceEngine::predict_batch(
    std::span<const data::Sample> samples) const {
  // Coalesce through the sync scheduler: concurrent predict_batch calls
  // land in one queue and every caller helps execute whatever batch is
  // frontmost (its own or a peer's), so nobody waits idle.  Depth is
  // unbounded and linger zero, so admission never sheds and the helper
  // loop never stalls on a timer.
  Submitted sub = batch_sched_->submit(*this, samples);
  batch_sched_->help_until(sub.result);
  return sub.result.get();
}

std::vector<std::vector<double>> InferenceEngine::predict_ptrs(
    std::span<const data::Sample* const> samples, util::ThreadPool* pool,
    std::vector<std::exception_ptr>* errors) const {
  const std::vector<nn::Tensor> preds =
      model_->forward_batch(samples, scaler_, pool, errors);
  std::vector<std::vector<double>> out(samples.size());
  for (std::size_t si = 0; si < samples.size(); ++si) {
    if (errors != nullptr && (*errors)[si] != nullptr) continue;
    out[si].resize(preds[si].rows());
    for (std::size_t i = 0; i < out[si].size(); ++i)
      out[si][i] = denormalize(preds[si](i, 0));
  }
  return out;
}

double InferenceEngine::predict_mean(const data::Sample& sample) const {
  const std::vector<double> preds = predict(sample);
  if (preds.empty())
    throw std::invalid_argument("predict_mean: sample has no paths");
  double sum = 0.0;
  for (const double p : preds) sum += p;
  return sum / static_cast<double>(preds.size());
}

void InferenceEngine::invalidate(const data::Sample& sample) const {
  plan_cache_->invalidate(sample);
}

void InferenceEngine::clear_plan_cache() const { plan_cache_->clear(); }

}  // namespace rnx::serve
