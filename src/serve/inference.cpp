#include "serve/inference.hpp"

#include <stdexcept>

#include "nn/autograd.hpp"

namespace rnx::serve {

InferenceEngine::InferenceEngine(const std::string& path, std::size_t threads)
    : InferenceEngine(load_bundle(path), threads) {}

InferenceEngine::InferenceEngine(ModelBundle bundle, std::size_t threads)
    : model_(std::move(bundle.model)),
      scaler_(bundle.scaler),
      target_(bundle.target),
      min_delivered_(bundle.min_delivered) {
  if (!model_)
    throw std::invalid_argument("InferenceEngine: bundle holds no model");
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  if (threads > 1) pool_.emplace(threads);
  model_->set_plan_cache(&plan_cache_);
}

InferenceEngine::~InferenceEngine() { model_->set_plan_cache(nullptr); }

std::size_t InferenceEngine::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

double InferenceEngine::denormalize(double target_value) const {
  return target_ == core::PredictionTarget::kDelay
             ? scaler_.target_to_delay(target_value)
             : scaler_.target_to_jitter(target_value);
}

std::vector<double> InferenceEngine::predict(
    const data::Sample& sample) const {
  const nn::NoGradGuard guard;
  const nn::Tensor pred = model_->forward(sample, scaler_).value();
  std::vector<double> out(pred.rows());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = denormalize(pred(i, 0));
  return out;
}

std::vector<std::vector<double>> InferenceEngine::predict_batch(
    std::span<const data::Sample> samples) const {
  std::vector<nn::Tensor> preds;
  {
    // forward_batch owns the pool for the duration of the request; the
    // pool runs one parallel_for at a time, so concurrent batch calls
    // queue here instead of interleaving.
    const std::scoped_lock lock(batch_mu_);
    preds = model_->forward_batch(samples, scaler_,
                                  pool_ ? &*pool_ : nullptr);
  }
  std::vector<std::vector<double>> out(samples.size());
  for (std::size_t si = 0; si < samples.size(); ++si) {
    out[si].resize(preds[si].rows());
    for (std::size_t i = 0; i < out[si].size(); ++i)
      out[si][i] = denormalize(preds[si](i, 0));
  }
  return out;
}

double InferenceEngine::predict_mean(const data::Sample& sample) const {
  const std::vector<double> preds = predict(sample);
  if (preds.empty())
    throw std::invalid_argument("predict_mean: sample has no paths");
  double sum = 0.0;
  for (const double p : preds) sum += p;
  return sum / static_cast<double>(preds.size());
}

void InferenceEngine::invalidate(const data::Sample& sample) const {
  plan_cache_.invalidate(sample);
}

void InferenceEngine::clear_plan_cache() const { plan_cache_.clear(); }

}  // namespace rnx::serve
