// Micro-batching request scheduler: the serving layer's concurrency core
// (DESIGN.md §B2).
//
// Callers enqueue predict requests (one or many samples against one
// InferenceEngine); a drainer coalesces adjacent same-engine requests
// into micro-batches, fans each batch over the shared util::ThreadPool
// via Model::forward_batch, and completes per-request futures.  This
// replaces InferenceEngine's old global batch mutex: concurrent callers
// now *pool their work* instead of waiting in line.
//
// Admission control: the pending queue is bounded (max_queue_depth
// requests).  A request that arrives at a full queue is shed immediately
// with ServeError::kOverloaded — submit() never blocks, so an overloaded
// server degrades by refusing work, not by growing latency without
// bound.
//
// Batch formation (exact, pinned by tests/serve_scheduler_test.cpp):
// requests wait in strict admission order; a batch is always formed from
// the queue *front* and extends over the maximal contiguous run of
// same-engine requests whose combined sample count stays within
// max_batch_samples (requests are never split; a single request larger
// than max_batch_samples forms its own oversized batch).  The front
// batch is executed when either (a) its engine's contiguous prefix
// reaches max_batch_samples — the full cut — or (b) the front request
// has waited at least max_linger — the linger cut.  Batches therefore
// *start* in admission order; concurrent executors may finish them out
// of order.
//
// Determinism: batching cannot change results.  Every sample's forward
// pass is an independent pure function of (weights, sample, scaler)
// written into its own output slot; no reduction ever crosses samples
// (§T), so any grouping of requests into batches — and any lane count —
// yields outputs bitwise-identical to serial InferenceEngine::predict.
// The test rig exercises exactly this: scripted clock, manual drain, and
// bitwise comparison against the serial path.
//
// Modes: with manual_drain=false a drainer thread waits out linger
// deadlines on the real clock.  With manual_drain=true no thread is
// spawned and time is read from the injected cfg.now — tests script the
// clock and call pump()/flush(), so linger expiry, full cuts and
// shedding are asserted exactly, with no sleeps and no flakiness.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "data/sample.hpp"
#include "serve/errors.hpp"
#include "serve/stats.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace rnx::util {
class ThreadPool;
}

namespace rnx::serve {

class InferenceEngine;
class ModelRegistry;

/// Per-request result: one prediction vector per submitted sample, in
/// the sample's path order, physical units (see InferenceEngine).
using PredictionSet = std::vector<std::vector<double>>;

struct SchedulerConfig {
  /// Pending requests admitted before shedding (units: requests).
  std::size_t max_queue_depth = 1024;
  /// Full-cut threshold: a batch executes once the front contiguous
  /// same-engine run reaches this many samples.
  std::size_t max_batch_samples = 32;
  /// Linger cut: the longest a front request waits for batch-mates.
  std::chrono::microseconds max_linger{200};
  /// No drainer thread; tests (and the synchronous predict_batch
  /// wrapper) drive batch formation via pump()/flush()/help_until().
  bool manual_drain = false;
  /// Scripted time source for the deterministic rig.  Only valid with
  /// manual_drain (the drainer thread sleeps on the real clock).
  /// Defaults to std::chrono::steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> now;
};

/// Per-request submission options.
struct SubmitOptions {
  /// Completion deadline, measured from admission on the scheduler's
  /// clock; zero means none.  A request whose deadline passes before its
  /// batch starts executing resolves with DeadlineExceededError (counted
  /// `expired`) WITHOUT paying the forward pass; a negative deadline is
  /// unmeetable and is shed at admission with kDeadlineExceeded.  Once a
  /// batch starts executing it always completes (expiry is checked at
  /// scheduling points, never mid-forward).
  std::chrono::microseconds deadline{0};
};

/// Admission handle: `error == ServeError::kNone` means the request was
/// admitted and `result` will resolve; otherwise the request was refused
/// and `result` is invalid.
struct Submitted {
  ServeError error = ServeError::kNone;
  std::future<PredictionSet> result;
  /// Cooperative cancellation flag; set for admitted non-empty requests.
  std::shared_ptr<std::atomic<bool>> cancel_flag;
  [[nodiscard]] bool admitted() const noexcept {
    return error == ServeError::kNone;
  }
  /// Ask the scheduler to drop this request.  Honored at the next
  /// scheduling point if the request is still queued (future resolves
  /// with CancelledError, counted `cancelled`); a request already
  /// executing completes normally.  Never blocks; safe to call twice.
  void request_cancel() const noexcept {
    if (cancel_flag) cancel_flag->store(true, std::memory_order_relaxed);
  }
};

class BatchScheduler {
 public:
  /// `pool` (borrowed, may be null) fans batch forwards out; it must
  /// outlive the scheduler.  Throws std::invalid_argument on a zero
  /// depth/batch bound or a scripted clock without manual_drain.
  explicit BatchScheduler(SchedulerConfig cfg,
                          util::ThreadPool* pool = nullptr);
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueue `samples` against `engine`.  Never blocks; a full queue
  /// sheds with kOverloaded, a downed scheduler with kShutdown, a
  /// draining one with kDraining.  The caller keeps `samples` alive and
  /// unmodified until the future resolves (the batch references them in
  /// place — plan-cache keying is by sample address).  An empty span
  /// completes immediately.
  [[nodiscard]] Submitted submit(const InferenceEngine& engine,
                                 std::span<const data::Sample> samples,
                                 SubmitOptions opts = {});

  /// Registry-routed submission: resolves `model` by name and sheds with
  /// kUnknownModel when the registry holds no such bundle.  The request
  /// keeps the resolved engine alive (shared ownership), so a concurrent
  /// ModelRegistry::swap_bundle never tears an in-flight batch: requests
  /// admitted before the swap finish on the old engine, requests after
  /// it run on the new one, and batches never mix the two (batching is
  /// by engine identity).
  [[nodiscard]] Submitted submit(const ModelRegistry& registry,
                                 std::string_view model,
                                 std::span<const data::Sample> samples,
                                 SubmitOptions opts = {});

  /// Execute every batch that is *ready* (full cut or expired linger)
  /// right now; returns the number of batches executed.  The manual
  /// rig's drain primitive.
  std::size_t pump();

  /// Execute everything pending regardless of linger; returns batches
  /// executed.  Safe alongside a live drainer thread.
  std::size_t flush();

  /// Cooperative draining for synchronous callers: execute pending
  /// batches (ignoring linger) until `fut` is ready, then return.  If
  /// another thread took the batch containing `fut`'s request, blocks
  /// until that thread completes it.  InferenceEngine::predict_batch
  /// rides on this so concurrent batch calls make progress on each
  /// other's work instead of serializing.
  void help_until(const std::future<PredictionSet>& fut);

  /// Graceful drain: stop admitting (new submissions shed with
  /// kDraining), execute every already-admitted request — expired or
  /// cancelled ones resolve with their typed error, the rest complete
  /// normally — and return once every admitted future has been resolved
  /// (zero lost futures).  Works in both drainer-thread and manual
  /// modes; idempotent.  The scheduler stays in the draining state
  /// afterwards — the graceful half of shutdown(), which remains the
  /// terminal call.
  void drain();

  /// Stop accepting work, join the drainer, and fail every pending
  /// request with ShutdownError (counted as cancelled).  Idempotent;
  /// the destructor calls it.  In-flight batches complete normally.
  void shutdown();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] util::ThreadPool* pool() const noexcept { return pool_; }

 private:
  using ClockPoint = std::chrono::steady_clock::time_point;
  struct Request {
    const InferenceEngine* engine;
    std::span<const data::Sample> samples;
    std::promise<PredictionSet> promise;
    ClockPoint enqueued;
    ClockPoint deadline{};
    bool has_deadline = false;
    std::shared_ptr<std::atomic<bool>> cancelled;
    /// Registry-routed requests co-own their engine so a hot swap can
    /// never free it under an in-flight batch (null on the engine path,
    /// where the caller owns the engine).
    std::shared_ptr<const InferenceEngine> keep_alive;
  };
  using Batch = std::vector<Request>;
  /// A request swept out of the queue before execution, with why.
  struct DeadRequest {
    Request req;
    bool was_cancelled = false;  ///< else: deadline expired
  };

  [[nodiscard]] Submitted submit_impl(
      const InferenceEngine* engine,
      std::shared_ptr<const InferenceEngine> keep_alive,
      std::span<const data::Sample> samples, SubmitOptions opts);
  [[nodiscard]] ClockPoint clock_now() const;
  /// True when the front batch may execute at `now` (full or linger cut;
  /// while draining, any pending request is ready).
  [[nodiscard]] bool front_ready_locked(ClockPoint now) const
      RNX_REQUIRES(mu_);
  /// Pop the front batch (maximal same-engine run within the sample
  /// bound); empty when nothing is pending.
  [[nodiscard]] Batch take_front_locked() RNX_REQUIRES(mu_);
  /// Sweep cancelled/expired requests out of the queue (counters
  /// committed under the lock; callers resolve them via resolve_dead).
  [[nodiscard]] std::vector<DeadRequest> collect_dead_locked(ClockPoint now)
      RNX_REQUIRES(mu_);
  /// Resolve swept requests with their typed error, outside the lock.
  void resolve_dead(std::vector<DeadRequest>& dead);
  /// collect + resolve in one step; every scheduling entry point calls
  /// this first so expiry/cancellation is observed before batching.
  void reap();
  /// Run one batch and resolve its promises; updates counters.
  void execute(Batch batch);
  void drain_loop();

  const SchedulerConfig cfg_;
  util::ThreadPool* const pool_;

  mutable util::Mutex mu_;
  util::CondVar cv_;          ///< wakes the drainer thread
  util::CondVar drained_cv_;  ///< drain() completion signal
  std::deque<Request> pending_ RNX_GUARDED_BY(mu_);
  bool shutdown_ RNX_GUARDED_BY(mu_) = false;
  bool draining_ RNX_GUARDED_BY(mu_) = false;
  /// Requests taken from the queue whose futures are not yet resolved —
  /// bridges the gap between the counter commit and the promise
  /// resolution so drain() cannot return with a future still pending.
  std::size_t executing_ RNX_GUARDED_BY(mu_) = 0;
  /// Counters (plan_cache filled per snapshot).
  ServeStats stats_ RNX_GUARDED_BY(mu_);
  std::thread drainer_;
};

}  // namespace rnx::serve
