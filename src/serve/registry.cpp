#include "serve/registry.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace rnx::serve {

ModelRegistry::ModelRegistry(std::size_t threads)
    : cache_(std::make_shared<core::PlanCache>()) {
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  if (threads > 1) pool_.emplace(threads);
}

std::shared_ptr<InferenceEngine> ModelRegistry::make_engine(
    ModelBundle bundle) const {
  // Engines share the registry cache and use the registry pool via the
  // scheduler, so they are built poolless (threads = 1).
  return std::make_shared<InferenceEngine>(std::move(bundle), cache_);
}

InferenceEngine& ModelRegistry::add(std::string name, ModelBundle bundle) {
  if (name.empty())
    throw std::invalid_argument("ModelRegistry: bundle name must not be empty");
  // Construct OUTSIDE the lock: loading weights is slow and a failed
  // build must leave the registry untouched.
  std::shared_ptr<InferenceEngine> engine = make_engine(std::move(bundle));
  InferenceEngine& ref = *engine;
  const util::MutexLock lock(mu_);
  for (const auto& [n, e] : engines_)
    if (n == name)
      throw std::invalid_argument("ModelRegistry: duplicate bundle name '" +
                                  name + "'");
  engines_.emplace_back(std::move(name), std::move(engine));
  return ref;
}

InferenceEngine& ModelRegistry::add(std::string name,
                                    const std::string& path) {
  return add(std::move(name), load_bundle(path));
}

void ModelRegistry::swap_bundle(std::string_view name, ModelBundle bundle) {
  // Build the replacement COMPLETELY before taking the lock: the swap
  // below is a pointer exchange, so no lookup window ever observes a
  // half-constructed engine, and a bad bundle leaves serving untouched.
  std::shared_ptr<InferenceEngine> fresh = make_engine(std::move(bundle));
  std::shared_ptr<InferenceEngine> old;
  {
    const util::MutexLock lock(mu_);
    for (auto& [n, engine] : engines_) {
      if (n != name) continue;
      old = std::exchange(engine, std::move(fresh));
      retired_.push_back(old);
      // `old` drops its local reference OUTSIDE the lock (declared in
      // the enclosing scope): if this was the last holder, the engine's
      // destructor does not run under mu_.
      return;
    }
  }
  throw std::invalid_argument("ModelRegistry: swap_bundle of unregistered "
                              "model '" + std::string(name) + "'");
}

void ModelRegistry::swap_bundle(std::string_view name,
                                const std::string& path) {
  swap_bundle(name, load_bundle(path));
}

std::size_t ModelRegistry::retired_alive() const {
  const util::MutexLock lock(mu_);
  std::size_t alive = 0;
  for (const auto& w : retired_)
    if (!w.expired()) ++alive;
  return alive;
}

void ModelRegistry::drain() {
  using namespace std::chrono_literals;
  for (;;) {
    {
      const util::MutexLock lock(mu_);
      std::erase_if(retired_,
                    [](const std::weak_ptr<InferenceEngine>& w) {
                      return w.expired();
                    });
      if (retired_.empty()) return;
    }
    // Holders are in-flight requests draining through the scheduler;
    // poll rather than wiring a condition through every release path.
    std::this_thread::sleep_for(200us);
  }
}

const InferenceEngine* ModelRegistry::find(
    std::string_view name) const noexcept {
  const util::MutexLock lock(mu_);
  for (const auto& [n, engine] : engines_)
    if (n == name) return engine.get();
  return nullptr;
}

std::shared_ptr<const InferenceEngine> ModelRegistry::find_shared(
    std::string_view name) const noexcept {
  const util::MutexLock lock(mu_);
  for (const auto& [n, engine] : engines_)
    if (n == name) return engine;
  return nullptr;
}

const InferenceEngine& ModelRegistry::at(std::string_view name) const {
  if (const InferenceEngine* engine = find(name)) return *engine;
  std::string known;
  {
    const util::MutexLock lock(mu_);
    for (const auto& [n, engine] : engines_)
      known += (known.empty() ? "" : ", ") + n;
  }
  throw UnknownModelError("ModelRegistry: unknown model '" +
                          std::string(name) + "' (registered: " +
                          (known.empty() ? "<none>" : known) + ")");
}

std::vector<std::string> ModelRegistry::names() const {
  const util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& [n, engine] : engines_) out.push_back(n);
  return out;
}

std::size_t ModelRegistry::size() const {
  const util::MutexLock lock(mu_);
  return engines_.size();
}

}  // namespace rnx::serve
