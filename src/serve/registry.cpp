#include "serve/registry.hpp"

#include <stdexcept>

namespace rnx::serve {

ModelRegistry::ModelRegistry(std::size_t threads)
    : cache_(std::make_shared<core::PlanCache>()) {
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  if (threads > 1) pool_.emplace(threads);
}

InferenceEngine& ModelRegistry::add(std::string name, ModelBundle bundle) {
  if (name.empty())
    throw std::invalid_argument("ModelRegistry: bundle name must not be empty");
  if (find(name) != nullptr)
    throw std::invalid_argument("ModelRegistry: duplicate bundle name '" +
                                name + "'");
  // Engines share the registry cache and use the registry pool via the
  // scheduler, so they are built poolless (threads = 1).
  auto engine = std::make_unique<InferenceEngine>(std::move(bundle), cache_);
  InferenceEngine& ref = *engine;
  engines_.emplace_back(std::move(name), std::move(engine));
  return ref;
}

InferenceEngine& ModelRegistry::add(std::string name,
                                    const std::string& path) {
  return add(std::move(name), load_bundle(path));
}

const InferenceEngine* ModelRegistry::find(
    std::string_view name) const noexcept {
  for (const auto& [n, engine] : engines_)
    if (n == name) return engine.get();
  return nullptr;
}

const InferenceEngine& ModelRegistry::at(std::string_view name) const {
  if (const InferenceEngine* engine = find(name)) return *engine;
  std::string known;
  for (const auto& [n, engine] : engines_)
    known += (known.empty() ? "" : ", ") + n;
  throw UnknownModelError("ModelRegistry: unknown model '" +
                          std::string(name) + "' (registered: " +
                          (known.empty() ? "<none>" : known) + ")");
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& [n, engine] : engines_) out.push_back(n);
  return out;
}

}  // namespace rnx::serve
