// Feature and label scaling.
//
// The GNN consumes z-scored features (traffic, capacity, queue size) and
// regresses the z-scored *log* of the delay; relative error — what Fig. 2
// plots — is computed after inverting the transform.  Scaler statistics
// are fitted on the training set only and reused verbatim for evaluation
// sets (including the unseen topology), exactly as a deployed model would.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/sample.hpp"

namespace rnx::data {

class SampleSource;

/// Mean/stddev pair for one feature channel.
struct Moments {
  double mean = 0.0;
  double stddev = 1.0;

  [[nodiscard]] double normalize(double x) const noexcept {
    return (x - mean) / stddev;
  }
  [[nodiscard]] double denormalize(double z) const noexcept {
    return z * stddev + mean;
  }
};

class Scaler {
 public:
  /// Fit all channels on a training set.  Paths with delivered <
  /// min_delivered are excluded from label statistics (their means are
  /// too noisy to trust).  Throws if the set yields no usable labels.
  static Scaler fit(std::span<const Sample> train,
                    std::uint64_t min_delivered = 10);

  /// Streaming fit: one pass over a SampleSource (DESIGN.md §D), so
  /// statistics for sharded on-disk sets never materialize the data.
  /// Accumulation order equals the in-memory overload's, so moments are
  /// bitwise-identical for the same samples.
  static Scaler fit(SampleSource& train, std::uint64_t min_delivered = 10);

  /// Rebuild a scaler from previously fitted statistics — how a model
  /// bundle restores the exact training-set moments at deployment time
  /// instead of re-fitting on whatever dataset happens to be at hand
  /// (re-fitting on a different set silently shifts every prediction).
  /// Throws std::invalid_argument on non-finite or non-positive stddev.
  static Scaler from_moments(const Moments& traffic, const Moments& capacity,
                             const Moments& queue, const Moments& log_delay,
                             const Moments& log_jitter);

  [[nodiscard]] double traffic(double bps) const {
    return traffic_.normalize(bps);
  }
  [[nodiscard]] double capacity(double bps) const {
    return capacity_.normalize(bps);
  }
  [[nodiscard]] double queue(std::uint32_t pkts) const {
    return queue_.normalize(static_cast<double>(pkts));
  }
  /// Label transform: z-scored log(delay).
  [[nodiscard]] double delay_to_target(double delay_s) const;
  [[nodiscard]] double target_to_delay(double target) const;
  /// Jitter (delay variance) label transform: z-scored log(jitter).
  /// RouteNet supports jitter as an alternative regression target
  /// (paper abstract); fit() collects its statistics alongside delay.
  [[nodiscard]] double jitter_to_target(double jitter_s2) const;
  [[nodiscard]] double target_to_jitter(double target) const;

  [[nodiscard]] const Moments& traffic_moments() const noexcept {
    return traffic_;
  }
  [[nodiscard]] const Moments& capacity_moments() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const Moments& queue_moments() const noexcept {
    return queue_;
  }
  [[nodiscard]] const Moments& log_delay_moments() const noexcept {
    return log_delay_;
  }
  [[nodiscard]] const Moments& log_jitter_moments() const noexcept {
    return log_jitter_;
  }

 private:
  Moments traffic_, capacity_, queue_, log_delay_, log_jitter_;
};

// -- scale-invariant features (DESIGN.md §G) -------------------------------
//
// Dimensionless per-entity inputs for the train-small/serve-huge mode
// (ModelConfig::scale_invariant_features): ratios of sample-local
// quantities, no fitted statistics involved, so they stay in the same
// range on a 300-node graph as on the 14-node training topologies.

/// Per-link utilization: sum of the traffic of every path crossing the
/// link, divided by the link capacity.  One entry per link.
[[nodiscard]] std::vector<double> link_utilization(const Sample& s);

/// Per-path load: offered traffic over the bottleneck (minimum) capacity
/// along the path.  One entry per path; 0 for empty paths.
[[nodiscard]] std::vector<double> path_bottleneck_load(const Sample& s);

/// Per-node queue occupancy fraction: queue_pkts over the standard queue
/// size (topo::kStandardQueuePackets), i.e. buffer capacity in units of
/// the default provisioning.  One entry per node.
[[nodiscard]] std::vector<double> node_queue_fraction(const Sample& s);

}  // namespace rnx::data
