#include "data/source.hpp"

#include <utility>

#include "util/fault.hpp"

namespace rnx::data {

StreamingShardSource::StreamingShardSource(std::string manifest_path,
                                           std::size_t prefetch)
    : reader_(std::move(manifest_path)),
      prefetch_(prefetch == 0 ? 1 : prefetch) {}

StreamingShardSource::~StreamingShardSource() { stop(); }

std::size_t StreamingShardSource::peak_live_samples() const noexcept {
  const std::int64_t p = gauge_->peak.load();
  return p > 0 ? static_cast<std::size_t>(p) : 0;
}

void StreamingShardSource::stop() {
  if (queue_) queue_->close();  // producer's abandon signal
  if (producer_.joinable()) producer_.join();
  queue_.reset();
}

void StreamingShardSource::start() {
  queue_ = std::make_unique<
      util::BoundedQueue<std::shared_ptr<const Sample>>>(prefetch_);
  error_ = nullptr;
  producer_ = std::thread([this] { produce(); });
}

void StreamingShardSource::reset() {
  stop();
  start();
}

void StreamingShardSource::produce() {
  try {
    for (std::size_t i = 0; i < reader_.num_shards(); ++i) {
      // Injected producer crash (source.producer): throws on THIS
      // thread; the catch below parks it for the consumer — the same
      // ordering a real mid-stream shard failure takes.
      util::FaultInjector::instance().maybe_throw("source.producer");
      Dataset shard = reader_.load_shard(i);
      std::vector<Sample> samples = shard.release_samples();
      // The whole shard is resident from load until each sample's last
      // holder (queue or consumer) drops it; wrapping just transfers
      // ownership, so only the deleter decrements.
      const auto n = static_cast<std::int64_t>(samples.size());
      gauge_->add(n);
      std::int64_t handed = 0;
      bool abandoned = false;
      for (auto& s : samples) {
        auto gauge = gauge_;
        std::shared_ptr<const Sample> sp(
            new Sample(std::move(s)), [gauge](const Sample* p) {
              delete p;
              gauge->add(-1);
            });
        ++handed;
        if (!queue_->push(std::move(sp))) {  // consumer gone
          abandoned = true;
          break;
        }
      }
      // Samples never wrapped die with this vector — uncount them.
      if (handed < n) gauge_->add(-(n - handed));
      if (abandoned) return;
    }
  } catch (...) {
    // Park the error; close() below orders it before the consumer's
    // end-of-stream observation (both synchronize on the queue mutex).
    error_ = std::current_exception();
  }
  queue_->close();
}

std::shared_ptr<const Sample> StreamingShardSource::next() {
  if (!queue_)
    throw std::logic_error(
        "StreamingShardSource::next: reset() was never called");
  if (auto sp = queue_->pop()) return std::move(*sp);
  if (producer_.joinable()) producer_.join();
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  return nullptr;
}

}  // namespace rnx::data
