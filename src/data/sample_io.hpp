// Shared binary codec for data::Sample and small file-I/O helpers.
//
// The monolithic dataset file (dataset.cpp) and the sharded store
// (shards.cpp) serialize samples through exactly one implementation, so
// a shard file IS a valid .rnxd dataset and a per-sample FNV-1a digest
// is comparable across monolithic, sharded, serial and parallel
// outputs — the equivalence the datagen determinism tests and the CI
// digest diff pin.
//
// Versioning follows the dataset format rules (dataset.hpp): v2 appends
// the scenario block; v1 files still load.  Any layout change bumps
// kDatasetVersion here and nowhere else.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "data/sample.hpp"

namespace rnx::data::io {

inline constexpr char kDatasetMagic[4] = {'R', 'N', 'X', 'D'};
// v2 appends the scenario block (policy / traffic process / classes /
// on-off shape / DRR quantum) per sample and a priority class per path;
// v1 files (pre-scenario-engine) still load with the default scenario
// and scenario_recorded = false.
inline constexpr std::uint32_t kDatasetVersion = 2;
inline constexpr std::uint32_t kDatasetMinVersion = 1;

/// Bytes of the fixed .rnxd prelude: magic, u32 version, u64 count.
inline constexpr std::uint64_t kDatasetHeaderBytes = 16;

/// Conservative lower bound on one serialized sample (v1 floor: name
/// length + num_nodes + three empty-vector headers + max_utilization +
/// path count).  Used to reject corrupt headers whose sample count could
/// not possibly fit in the file — the bound that keeps a truncated or
/// bit-rotten header from triggering a multi-GB reserve() up front.
inline constexpr std::uint64_t kMinSampleBytes = 40;

/// FNV-1a 64-bit over raw bytes — the checksum every rnx on-disk format
/// uses (bundles, shard manifests, per-sample digests).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
/// Chained form: fold `bytes` into running state `h` (start from
/// kFnvOffsetBasis), so multi-buffer content checksums without
/// concatenating into one allocation.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t h) noexcept;
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Serialize one sample in the current (v2) layout.
void write_sample(std::ostream& f, const Sample& s);

/// Deserialize one sample of a `version`-layout file.  Throws
/// std::runtime_error (prefixed with `what`) on truncation or
/// implausible lengths; does NOT run Sample::validate() — callers do,
/// so error messages can carry file context.
[[nodiscard]] Sample read_sample(std::istream& f, std::uint32_t version,
                                 const std::string& what);

/// FNV-1a digest of the sample's current-version serialized bytes: the
/// identity the parallel-vs-serial and sharded-vs-monolithic
/// equivalence checks compare.
[[nodiscard]] std::uint64_t sample_digest(const Sample& s);

/// Write the .rnxd prelude (magic, current version, sample count).
void write_dataset_header(std::ostream& f, std::uint64_t count);

/// Read + validate the prelude; returns {version, count}.  `file_bytes`
/// is the total stream size: a count that cannot fit in the remaining
/// bytes (kMinSampleBytes each) is rejected here, before any
/// allocation.
struct DatasetHeader {
  std::uint32_t version = 0;
  std::uint64_t count = 0;
};
[[nodiscard]] DatasetHeader read_dataset_header(std::istream& f,
                                                std::uint64_t file_bytes,
                                                const std::string& what);

/// Serialize a whole dataset (header + samples) to a stream.
void write_dataset_stream(std::ostream& f,
                          const std::vector<Sample>& samples);

/// Deserialize a whole dataset; every sample is validated.  `what`
/// prefixes error messages (typically the file path).
[[nodiscard]] std::vector<Sample> read_dataset_stream(
    std::istream& f, std::uint64_t file_bytes, const std::string& what);

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// flushed, then renamed over the target.  A crash or full disk
/// mid-write leaves the previous file (if any) untouched; the temp file
/// is removed on failure.  Throws std::runtime_error.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// As atomic_write_file, but the caller streams the content into the
/// temp file's ostream — O(1) extra memory for large payloads (how
/// Dataset::save avoids a full serialized copy alongside the samples).
void atomic_write_stream(const std::string& path,
                         const std::function<void(std::ostream&)>& write);

/// Remove leftover "*.tmp" files of interrupted atomic writes from `dir`
/// (non-recursive).  Only names whose stem carries a known rnx extension
/// (.rnxd/.rnxm/.rnxb/.rnxw/.rnxc) are touched — a crash between open
/// and rename is the ONLY writer of such names, so deleting them is
/// always safe.  Returns the number removed; a missing/unreadable dir
/// removes nothing.
std::size_t remove_stale_temps(const std::string& dir);

}  // namespace rnx::data::io
