#include "data/sample.hpp"

#include <stdexcept>

namespace rnx::data {

topo::Topology Sample::to_topology() const {
  topo::Graph g(num_nodes);
  for (const auto& l : links) g.add_link(l.src, l.dst);
  topo::Topology t(topo_name, std::move(g));
  for (topo::LinkId l = 0; l < links.size(); ++l)
    t.set_link_capacity(l, link_capacity_bps.at(l));
  for (topo::NodeId n = 0; n < num_nodes; ++n)
    t.set_queue_size(n, queue_pkts.at(n));
  return t;
}

void Sample::validate() const {
  if (num_nodes == 0) throw std::runtime_error("Sample: zero nodes");
  if (link_capacity_bps.size() != links.size())
    throw std::runtime_error("Sample: capacity count != link count");
  if (queue_pkts.size() != num_nodes)
    throw std::runtime_error("Sample: queue count != node count");
  for (const auto& l : links)
    if (l.src >= num_nodes || l.dst >= num_nodes)
      throw std::runtime_error("Sample: link endpoint out of range");
  for (const auto& c : link_capacity_bps)
    if (c <= 0.0) throw std::runtime_error("Sample: non-positive capacity");
  for (const auto& q : queue_pkts)
    if (q == 0) throw std::runtime_error("Sample: zero queue");
  try {
    scenario.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("Sample: bad scenario: ") + e.what());
  }
  for (const auto& p : paths) {
    if (p.nodes.size() < 2 || p.links.size() + 1 != p.nodes.size())
      throw std::runtime_error("Sample: malformed path");
    if (p.nodes.front() != p.src || p.nodes.back() != p.dst)
      throw std::runtime_error("Sample: path endpoints disagree");
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      const auto l = p.links[i];
      if (l >= links.size()) throw std::runtime_error("Sample: bad link id");
      if (links[l].src != p.nodes[i] || links[l].dst != p.nodes[i + 1])
        throw std::runtime_error("Sample: path/link mismatch");
    }
    if (p.traffic_bps < 0.0 || p.loss_rate < 0.0 || p.loss_rate > 1.0)
      throw std::runtime_error("Sample: bad path attributes");
    if (p.priority_class >= scenario.priority_classes)
      throw std::runtime_error("Sample: path class out of scenario range");
  }
}

}  // namespace rnx::data
