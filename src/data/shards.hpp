// Sharded on-disk dataset store (DESIGN.md §D).
//
// A store is one .rnxm manifest plus N .rnxd shard files living next to
// it.  Each shard is a complete, standalone dataset file (same codec,
// same version — Dataset::load opens one directly), so the store
// degrades gracefully and tooling composes.  The manifest records the
// provenance (generator seed + GeneratorConfig digest) and, per shard,
// the sample count and an FNV-1a checksum of the shard file's bytes:
// truncation, bit rot and missing files all fail loudly with TYPED
// errors instead of surfacing as subtly wrong training data.
//
// Manifest layout ("RNXM", same framing as model bundles):
//   magic "RNXM", u32 version, u64 body size, u64 FNV-1a body checksum,
//   body:
//     u64 seed, u64 config digest, u64 total samples, u64 shard count,
//     per shard: u32 name_len + bytes (file name, relative to the
//                manifest's directory), u64 samples, u64 checksum
//
// Versioning rule (same as bundles): any layout change bumps
// kManifestVersion; readers reject unknown versions, but keep loading
// every older one.  Writes are streaming — ShardWriter buffers at most
// one shard, so datagen peak memory is O(shard), not O(dataset) — and
// atomic (temp file + rename) for both shards and the manifest.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace rnx::data {

inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::uint32_t kMinManifestVersion = 1;

/// Base of every sharded-store failure, so callers can catch the whole
/// family or discriminate on the concrete type.
struct ShardError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// The manifest itself is missing, corrupt, or an unsupported version.
struct ManifestError : ShardError {
  using ShardError::ShardError;
};
/// A shard file named by the manifest does not exist.
struct MissingShardError : ShardError {
  using ShardError::ShardError;
};
/// A shard file's bytes do not match the manifest checksum, or its
/// sample count disagrees with the manifest.
struct ShardChecksumError : ShardError {
  using ShardError::ShardError;
};

struct ShardInfo {
  std::string file;            ///< relative to the manifest's directory
  std::uint64_t samples = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a of the shard file's bytes
};

struct ShardManifest {
  std::uint32_t version = kManifestVersion;
  std::uint64_t seed = 0;
  std::uint64_t config_digest = 0;  ///< data::config_digest(GeneratorConfig)
  std::uint64_t total_samples = 0;
  std::vector<ShardInfo> shards;
};

/// True when `path` exists and starts with the manifest magic — the
/// cheap sniff the CLI tools use to route .rnxm vs .rnxd inputs.
[[nodiscard]] bool is_manifest_file(const std::string& path);

/// Streaming shard writer: add() samples in order as they commit, and
/// shards flush to disk every `samples_per_shard` — peak memory is one
/// shard, regardless of dataset size.  Shard files are written next to
/// the manifest as `<stem>.shard-<i>.rnxd`.  finish() flushes the
/// trailing partial shard and atomically writes the manifest; a writer
/// destroyed without finish() leaves no manifest (the store does not
/// exist until its manifest does).
class ShardWriter {
 public:
  ShardWriter(std::string manifest_path, std::size_t samples_per_shard,
              std::uint64_t seed, std::uint64_t config_digest);

  void add(const Sample& s);
  /// Flush + write the manifest; returns what was written.  add() and a
  /// second finish() are errors afterwards.
  ShardManifest finish();

  [[nodiscard]] std::uint64_t samples_written() const noexcept {
    return manifest_.total_samples + in_shard_;
  }

 private:
  void flush_shard();

  std::string manifest_path_;
  std::string dir_;   ///< manifest directory ("" for CWD)
  std::string stem_;  ///< manifest file name without extension
  std::size_t samples_per_shard_;
  ShardManifest manifest_;
  std::ostringstream body_;  ///< serialized samples of the open shard
  std::uint64_t in_shard_ = 0;
  bool finished_ = false;
};

/// Reader over a sharded store: parses + integrity-checks the manifest
/// up front, loads shards on demand.  Random access is at shard
/// granularity — the streaming SampleSource (data/source.hpp) pulls
/// shard-by-shard so whole-dataset residency never happens.
class ShardedReader {
 public:
  /// Throws ManifestError on a missing/corrupt/unsupported manifest.
  explicit ShardedReader(std::string manifest_path);

  [[nodiscard]] const ShardManifest& manifest() const noexcept {
    return manifest_;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return manifest_.shards.size();
  }
  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return manifest_.total_samples;
  }
  [[nodiscard]] std::string shard_path(std::size_t i) const;

  /// Load shard `i`, verifying the file checksum against the manifest
  /// before parsing and the sample count after.  Throws
  /// MissingShardError / ShardChecksumError / std::runtime_error (parse
  /// errors surface as the dataset codec's own diagnostics).
  [[nodiscard]] Dataset load_shard(std::size_t i) const;

  /// Concatenate every shard in order — the monolithic-equivalence
  /// convenience for tests and small stores.
  [[nodiscard]] Dataset load_all() const;

 private:
  std::string manifest_path_;
  std::string dir_;
  ShardManifest manifest_;
};

}  // namespace rnx::data
