// Simulator-driven dataset generation (DESIGN.md S4).
//
// Mirrors the paper's data protocol: for each sample, draw a fresh
// scenario on a fixed base topology —
//   * per-edge capacity from a discrete speed set,
//   * per-node queue size (standard or 1 packet, the paper's §3 knob),
//   * a randomized shortest-path routing (random link weights),
//   * a traffic matrix from a randomly chosen model, rescaled so the
//     busiest link sits at a target utilization drawn from [util_lo, util_hi],
// then run the packet simulator and record per-path delay/jitter/loss.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/sample.hpp"
#include "sim/scenario.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace rnx::data {

enum class TrafficModel : std::uint8_t { kUniform, kGravity, kHotspot, kMix };

struct GeneratorConfig {
  double p_tiny_queue = 0.5;  ///< P(node gets a 1-packet queue)
  std::vector<double> capacity_choices = {10e6, 20e6, 40e6};
  double util_lo = 0.4;   ///< target max-link utilization range
  double util_hi = 0.95;
  TrafficModel traffic = TrafficModel::kMix;
  bool randomize_routing = true;   ///< false = plain hop-count routing
  bool randomize_queues = true;    ///< false = all nodes standard size
  bool randomize_capacities = true;
  double mean_packet_bits = 8000.0;
  /// Measurement window is sized so roughly this many packets are
  /// generated network-wide (plus 10% warm-up).
  std::uint64_t target_packets = 60'000;
  /// Scheduling policy / traffic process / class count every sample is
  /// simulated under (DESIGN.md §S).  The default reproduces the seed
  /// protocol (FIFO + Poisson, one class) with unchanged RNG draws, so
  /// pre-scenario datasets regenerate bitwise-identically.
  sim::ScenarioConfig scenario;
  /// Mixed-scenario mode: draw (policy, traffic process) uniformly per
  /// sample instead of using scenario.policy/.traffic for every sample —
  /// one dataset spanning all nine scenario combinations.
  bool mixed_scenarios = false;

  /// Throws std::invalid_argument on out-of-range parameters
  /// (p_tiny_queue outside [0,1], non-positive mean_packet_bits, zero
  /// target_packets, inverted utilization range, bad scenario).
  void validate() const;
};

/// Generate one sample on (a scenario drawn from) the base topology.
/// Deterministic in (base, cfg, rng state).  Throws
/// std::invalid_argument if the drawn traffic matrix carries zero total
/// demand (a zero-rate matrix would size an infinite measurement
/// window).
[[nodiscard]] Sample generate_sample(const topo::Topology& base,
                                     const GeneratorConfig& cfg,
                                     util::RngStream& rng);

/// Per-sample topology provider for dataset generation.  Called with
/// the sample's derived RNG stream BEFORE generate_sample consumes it;
/// a fixed-topology sampler must not draw from the stream (that keeps
/// fixed-topology datasets bitwise-identical to the seed protocol),
/// while the mixed sampler draws the topology kind and size from it.
using TopologySampler = std::function<topo::Topology(util::RngStream&)>;

/// Sampler that returns `base` for every sample without touching the
/// RNG stream — the classic single-topology protocol.
[[nodiscard]] TopologySampler fixed_topology(topo::Topology base);

/// The cross-topology generalization mix (rnx_datagen --topo mix): each
/// sample draws uniformly from {geant2, nsfnet, random_connected,
/// barabasi_albert}, the latter two with randomized size — the
/// topology-diverse corpus the generalization papers train on.
[[nodiscard]] TopologySampler mixed_topology();

/// Streaming generation core: generate `count` samples over `threads`
/// lanes (0 = all hardware threads) and deliver each to
/// `sink(index, sample)` in STRICT SAMPLE ORDER.  Sample i uses an
/// independent RNG stream derived from (seed, i), so the output is
/// bitwise-identical for ANY thread count (same doctrine as the
/// data-parallel trainer, DESIGN.md §T/§D): lanes simulate out of
/// order, a bounded reorder window commits in order, and peak buffered
/// samples stay O(threads).  `progress(done, total)` fires after each
/// committed sample, monotonically.
void generate_dataset_stream(
    const TopologySampler& topo_of, std::size_t count,
    const GeneratorConfig& cfg, std::uint64_t seed, std::size_t threads,
    const std::function<void(std::size_t, Sample)>& sink,
    const std::function<void(std::size_t, std::size_t)>& progress = nullptr);

/// Generate `count` samples; sample i uses an independent RNG stream
/// derived from (seed, i), so datasets are reproducible and extendable
/// (the first k of a count=n run equal a count=k run).
/// `progress`, if given, is called after each sample with (done, total).
[[nodiscard]] std::vector<Sample> generate_dataset(
    const topo::Topology& base, std::size_t count, const GeneratorConfig& cfg,
    std::uint64_t seed,
    const std::function<void(std::size_t, std::size_t)>& progress = nullptr);

/// As above, fanned out over `threads` simulation lanes (0 = all
/// hardware threads).  Bitwise-identical to the serial overload for any
/// thread count.
[[nodiscard]] std::vector<Sample> generate_dataset(
    const topo::Topology& base, std::size_t count, const GeneratorConfig& cfg,
    std::uint64_t seed, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& progress = nullptr);

/// FNV-1a digest over every generation-relevant field of `cfg` — the
/// shard manifest records it so a cache/manifest can be matched against
/// the protocol that produced it.
[[nodiscard]] std::uint64_t config_digest(const GeneratorConfig& cfg);

}  // namespace rnx::data
