// Dataset container with deterministic shuffling/splitting and binary /
// CSV persistence.  Bench binaries cache generated datasets on disk so a
// re-run skips the simulation phase (see load_or_generate).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/sample.hpp"
#include "util/rng.hpp"

namespace rnx::util {
class CsvWriter;
}

namespace rnx::data {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Sample> samples);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const {
    return samples_.at(i);
  }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  void add(Sample s) { samples_.push_back(std::move(s)); }
  /// Move the samples out, leaving the dataset empty — how the sharded
  /// reader concatenates shards without copying.
  [[nodiscard]] std::vector<Sample> release_samples() noexcept {
    return std::move(samples_);
  }

  /// Deterministic Fisher-Yates shuffle.
  void shuffle(util::RngStream& rng);
  /// Split off the first `count` samples into one set, rest into another.
  [[nodiscard]] std::pair<Dataset, Dataset> split(std::size_t count) const;

  /// Total number of path records across samples.
  [[nodiscard]] std::size_t total_paths() const noexcept;

  // -- persistence -----------------------------------------------------
  /// Versioned binary format ("RNXD"); validates every sample on load.
  /// save() is atomic (temp file + rename): a crash or full disk
  /// mid-write never corrupts a previously good file at `path`.
  void save(const std::string& path) const;
  [[nodiscard]] static Dataset load(const std::string& path);
  /// One CSV row per path (sample id, pair, traffic, labels) — for
  /// eyeballing and external plotting.
  void export_csv(const std::string& path) const;

 private:
  std::vector<Sample> samples_;
};

/// Load `path` if it exists and holds exactly `expected` samples;
/// otherwise invoke `generate`, save the result to `path`, and return it.
/// Logs why a cache is regenerated (size mismatch vs. load error).
[[nodiscard]] Dataset load_or_generate(
    const std::string& path, std::size_t expected,
    const std::function<Dataset()>& generate);

/// The per-path CSV schema shared by Dataset::export_csv and the
/// sharded datagen path (tools/rnx_datagen streams rows per shard).
[[nodiscard]] std::vector<std::string> dataset_csv_header();
/// One CSV row per path of `s`, tagged with the dataset-wide
/// `sample_index`.
void append_csv_rows(util::CsvWriter& csv, const Sample& s,
                     std::size_t sample_index);

}  // namespace rnx::data
