// Dataset container with deterministic shuffling/splitting and binary /
// CSV persistence.  Bench binaries cache generated datasets on disk so a
// re-run skips the simulation phase (see load_or_generate).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/sample.hpp"
#include "util/rng.hpp"

namespace rnx::data {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Sample> samples);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const {
    return samples_.at(i);
  }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  void add(Sample s) { samples_.push_back(std::move(s)); }

  /// Deterministic Fisher-Yates shuffle.
  void shuffle(util::RngStream& rng);
  /// Split off the first `count` samples into one set, rest into another.
  [[nodiscard]] std::pair<Dataset, Dataset> split(std::size_t count) const;

  /// Total number of path records across samples.
  [[nodiscard]] std::size_t total_paths() const noexcept;

  // -- persistence -----------------------------------------------------
  /// Versioned binary format ("RNXD"); validates every sample on load.
  void save(const std::string& path) const;
  [[nodiscard]] static Dataset load(const std::string& path);
  /// One CSV row per path (sample id, pair, traffic, labels) — for
  /// eyeballing and external plotting.
  void export_csv(const std::string& path) const;

 private:
  std::vector<Sample> samples_;
};

/// Load `path` if it exists and holds exactly `expected` samples;
/// otherwise invoke `generate`, save the result to `path`, and return it.
[[nodiscard]] Dataset load_or_generate(
    const std::string& path, std::size_t expected,
    const std::function<Dataset()>& generate);

}  // namespace rnx::data
