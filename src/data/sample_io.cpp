#include "data/sample_io.hpp"

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/scenario.hpp"
#include "util/fault.hpp"

namespace rnx::data::io {

namespace {

template <typename T>
void put(std::ostream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void get(std::istream& f, T& v, const std::string& what) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error(what + ": truncated file");
}
void put_string(std::ostream& f, const std::string& s) {
  put(f, static_cast<std::uint32_t>(s.size()));
  f.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::string get_string(std::istream& f, const std::string& what) {
  std::uint32_t len = 0;
  get(f, len, what);
  if (len > (1u << 20))
    throw std::runtime_error(what + ": implausible string length");
  std::string s(len, '\0');
  f.read(s.data(), len);
  if (!f) throw std::runtime_error(what + ": truncated string");
  return s;
}
template <typename T>
void put_vec(std::ostream& f, const std::vector<T>& v) {
  put(f, static_cast<std::uint64_t>(v.size()));
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
}
template <typename T>
void get_vec(std::istream& f, std::vector<T>& v, const std::string& what) {
  std::uint64_t n = 0;
  get(f, n, what);
  if (n > (1ull << 28))
    throw std::runtime_error(what + ": implausible vector length");
  v.resize(n);
  f.read(reinterpret_cast<char*>(v.data()),
         static_cast<std::streamsize>(n * sizeof(T)));
  if (!f) throw std::runtime_error(what + ": truncated vector");
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t h) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  return fnv1a64(bytes, kFnvOffsetBasis);
}

void write_sample(std::ostream& f, const Sample& s) {
  put_string(f, s.topo_name);
  put(f, s.num_nodes);
  put_vec(f, s.links);
  put_vec(f, s.link_capacity_bps);
  put_vec(f, s.queue_pkts);
  put(f, s.max_utilization);
  put(f, static_cast<std::uint8_t>(s.scenario_recorded ? 1 : 0));
  put(f, static_cast<std::uint8_t>(s.scenario.policy));
  put(f, static_cast<std::uint8_t>(s.scenario.traffic));
  put(f, s.scenario.priority_classes);
  put(f, s.scenario.onoff_burst_pkts);
  put(f, s.scenario.onoff_duty);
  put(f, s.scenario.drr_quantum_bits);
  put(f, static_cast<std::uint64_t>(s.paths.size()));
  for (const auto& p : s.paths) {
    put(f, p.src);
    put(f, p.dst);
    put_vec(f, p.nodes);
    put_vec(f, p.links);
    put(f, p.traffic_bps);
    put(f, p.priority_class);
    put(f, p.mean_delay_s);
    put(f, p.jitter_s2);
    put(f, p.loss_rate);
    put(f, p.delivered);
  }
}

Sample read_sample(std::istream& f, std::uint32_t version,
                   const std::string& what) {
  Sample s;
  s.topo_name = get_string(f, what);
  get(f, s.num_nodes, what);
  get_vec(f, s.links, what);
  get_vec(f, s.link_capacity_bps, what);
  get_vec(f, s.queue_pkts, what);
  get(f, s.max_utilization, what);
  if (version >= 2) {
    std::uint8_t recorded = 0, policy = 0, traffic = 0;
    get(f, recorded, what);
    get(f, policy, what);
    get(f, traffic, what);
    if (policy >= sim::kNumSchedulerPolicies)
      throw std::runtime_error(what + ": invalid scheduler policy " +
                               std::to_string(policy));
    if (traffic >= sim::kNumTrafficProcesses)
      throw std::runtime_error(what + ": invalid traffic process " +
                               std::to_string(traffic));
    s.scenario_recorded = recorded != 0;
    s.scenario.policy = static_cast<sim::SchedulerPolicy>(policy);
    s.scenario.traffic = static_cast<sim::TrafficProcess>(traffic);
    get(f, s.scenario.priority_classes, what);
    get(f, s.scenario.onoff_burst_pkts, what);
    get(f, s.scenario.onoff_duty, what);
    get(f, s.scenario.drr_quantum_bits, what);
  }
  std::uint64_t np = 0;
  get(f, np, what);
  if (np > (1ull << 28))
    throw std::runtime_error(what + ": implausible path count");
  s.paths.resize(np);
  for (auto& p : s.paths) {
    get(f, p.src, what);
    get(f, p.dst, what);
    get_vec(f, p.nodes, what);
    get_vec(f, p.links, what);
    get(f, p.traffic_bps, what);
    if (version >= 2) get(f, p.priority_class, what);
    get(f, p.mean_delay_s, what);
    get(f, p.jitter_s2, what);
    get(f, p.loss_rate, what);
    get(f, p.delivered, what);
  }
  return s;
}

std::uint64_t sample_digest(const Sample& s) {
  std::ostringstream bytes(std::ios::binary);
  write_sample(bytes, s);
  return fnv1a64(bytes.str());
}

void write_dataset_header(std::ostream& f, std::uint64_t count) {
  f.write(kDatasetMagic, sizeof(kDatasetMagic));
  put(f, kDatasetVersion);
  put(f, count);
}

DatasetHeader read_dataset_header(std::istream& f, std::uint64_t file_bytes,
                                  const std::string& what) {
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::string_view(magic, 4) != std::string_view(kDatasetMagic, 4))
    throw std::runtime_error(what + ": bad magic");
  DatasetHeader h;
  get(f, h.version, what);
  if (h.version < kDatasetMinVersion || h.version > kDatasetVersion)
    throw std::runtime_error(what + ": unsupported version " +
                             std::to_string(h.version));
  get(f, h.count, what);
  // A corrupt/truncated header must not drive a huge reserve(): every
  // sample needs at least kMinSampleBytes, so the claimed count is
  // bounded by the bytes actually present after the prelude.
  const std::uint64_t payload =
      file_bytes > kDatasetHeaderBytes ? file_bytes - kDatasetHeaderBytes : 0;
  if (h.count > payload / kMinSampleBytes)
    throw std::runtime_error(
        what + ": implausible sample count " + std::to_string(h.count) +
        " for a " + std::to_string(file_bytes) + "-byte file");
  return h;
}

void write_dataset_stream(std::ostream& f,
                          const std::vector<Sample>& samples) {
  write_dataset_header(f, static_cast<std::uint64_t>(samples.size()));
  for (const auto& s : samples) write_sample(f, s);
}

std::vector<Sample> read_dataset_stream(std::istream& f,
                                        std::uint64_t file_bytes,
                                        const std::string& what) {
  const DatasetHeader h = read_dataset_header(f, file_bytes, what);
  std::vector<Sample> samples;
  samples.reserve(h.count);
  for (std::uint64_t i = 0; i < h.count; ++i) {
    Sample s = read_sample(f, h.version, what);
    s.validate();
    samples.push_back(std::move(s));
  }
  return samples;
}

void atomic_write_stream(const std::string& path,
                         const std::function<void(std::ostream&)>& write) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f)
      throw std::runtime_error("atomic_write_file: cannot open " + tmp);
    try {
      write(f);
    } catch (...) {
      f.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw;
    }
    f.flush();
    // Injected write failure (io.atomic.write): poison the stream so
    // the REAL short-write detection below fires — chaos tests exercise
    // the same cleanup branch a full disk does.
    if (util::fault_fires("io.atomic.write")) f.setstate(std::ios::badbit);
    if (!f) {
      f.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("atomic_write_file: write failed on " + tmp);
    }
  }
  std::error_code ec;
  if (util::fault_fires("io.atomic.rename"))
    ec = std::make_error_code(std::errc::io_error);  // injected rename failure
  else
    std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    std::filesystem::remove(tmp, ec2);
    throw std::runtime_error("atomic_write_file: cannot rename " + tmp +
                             " -> " + path + " (" + ec.message() + ")");
  }
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
  atomic_write_stream(path, [bytes](std::ostream& f) {
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  });
}

std::size_t remove_stale_temps(const std::string& dir) {
  namespace fs = std::filesystem;
  static constexpr std::string_view kRnxExtensions[] = {
      ".rnxd", ".rnxm", ".rnxb", ".rnxw", ".rnxc"};
  std::error_code ec;
  fs::directory_iterator it(dir.empty() ? "." : dir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const fs::directory_entry& e : it) {
    if (!e.is_regular_file(ec)) continue;
    const fs::path& p = e.path();
    if (p.extension() != ".tmp") continue;
    const std::string inner = p.stem().extension().string();
    bool known = false;
    for (const std::string_view ext : kRnxExtensions)
      if (inner == ext) known = true;
    if (!known) continue;
    std::error_code rec;
    if (fs::remove(p, rec)) ++removed;
  }
  return removed;
}

}  // namespace rnx::data::io
