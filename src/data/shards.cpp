#include "data/shards.hpp"

#include <filesystem>
#include <fstream>
#include <string_view>
#include <utility>

#include "data/sample_io.hpp"
#include "util/fault.hpp"

namespace rnx::data {

namespace {

constexpr char kManifestMagic[4] = {'R', 'N', 'X', 'M'};
// A manifest is a few dozen bytes per shard; anything near this bound
// is certainly corruption, so refuse the allocation.
constexpr std::uint64_t kMaxManifestBodyBytes = 1ull << 26;

template <typename T>
void put(std::ostream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void get(std::istream& f, T& v, const std::string& what) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw ManifestError(what + ": truncated manifest");
}

std::filesystem::path shard_file_path(const std::string& dir,
                                      const std::string& file) {
  return dir.empty() ? std::filesystem::path(file)
                     : std::filesystem::path(dir) / file;
}

std::string shard_file_name(const std::string& stem, std::size_t index) {
  return stem + ".shard-" + std::to_string(index) + ".rnxd";
}

}  // namespace

bool is_manifest_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4] = {};
  f.read(magic, sizeof(magic));
  return f &&
         std::string_view(magic, 4) == std::string_view(kManifestMagic, 4);
}

// ---- ShardWriter ----------------------------------------------------------

ShardWriter::ShardWriter(std::string manifest_path,
                         std::size_t samples_per_shard, std::uint64_t seed,
                         std::uint64_t config_digest)
    : manifest_path_(std::move(manifest_path)),
      samples_per_shard_(samples_per_shard == 0 ? 1 : samples_per_shard),
      body_(std::ios::binary) {
  const std::filesystem::path p(manifest_path_);
  dir_ = p.parent_path().string();
  stem_ = p.stem().string();
  if (stem_.empty())
    throw std::invalid_argument("ShardWriter: empty manifest file name: " +
                                manifest_path_);
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
  manifest_.seed = seed;
  manifest_.config_digest = config_digest;
}

void ShardWriter::add(const Sample& s) {
  if (finished_)
    throw std::logic_error("ShardWriter::add: writer already finished");
  io::write_sample(body_, s);
  if (++in_shard_ >= samples_per_shard_) flush_shard();
}

void ShardWriter::flush_shard() {
  if (in_shard_ == 0) return;
  // A shard file is a complete .rnxd dataset: header + the buffered
  // samples.  Checksum exactly the bytes that hit disk — chained FNV
  // over header then body, no concatenated copy of the shard.
  std::ostringstream header(std::ios::binary);
  io::write_dataset_header(header, in_shard_);
  const std::string head = header.str();
  const std::string_view body = body_.view();

  ShardInfo info;
  info.file = shard_file_name(stem_, manifest_.shards.size());
  info.samples = in_shard_;
  info.checksum = io::fnv1a64(body, io::fnv1a64(head));
  io::atomic_write_stream(shard_file_path(dir_, info.file).string(),
                          [&](std::ostream& f) {
                            f.write(head.data(),
                                    static_cast<std::streamsize>(head.size()));
                            f.write(body.data(),
                                    static_cast<std::streamsize>(body.size()));
                          });

  manifest_.total_samples += in_shard_;
  manifest_.shards.push_back(std::move(info));
  body_.str(std::string());
  body_.clear();
  in_shard_ = 0;
}

ShardManifest ShardWriter::finish() {
  if (finished_)
    throw std::logic_error("ShardWriter::finish: already finished");
  flush_shard();
  finished_ = true;

  std::ostringstream b(std::ios::binary);
  put(b, manifest_.seed);
  put(b, manifest_.config_digest);
  put(b, manifest_.total_samples);
  put(b, static_cast<std::uint64_t>(manifest_.shards.size()));
  for (const auto& s : manifest_.shards) {
    put(b, static_cast<std::uint32_t>(s.file.size()));
    b.write(s.file.data(), static_cast<std::streamsize>(s.file.size()));
    put(b, s.samples);
    put(b, s.checksum);
  }
  const std::string body = b.str();

  std::ostringstream f(std::ios::binary);
  f.write(kManifestMagic, sizeof(kManifestMagic));
  put(f, kManifestVersion);
  put(f, static_cast<std::uint64_t>(body.size()));
  put(f, io::fnv1a64(body));
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  io::atomic_write_file(manifest_path_, f.str());
  return manifest_;
}

// ---- ShardedReader --------------------------------------------------------

ShardedReader::ShardedReader(std::string manifest_path)
    : manifest_path_(std::move(manifest_path)) {
  dir_ = std::filesystem::path(manifest_path_).parent_path().string();
  const std::string what = "ShardedReader(" + manifest_path_ + ")";
  std::ifstream f(manifest_path_, std::ios::binary);
  if (!f) throw ManifestError(what + ": cannot open manifest");
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f ||
      std::string_view(magic, 4) != std::string_view(kManifestMagic, 4))
    throw ManifestError(what + ": bad magic (not a .rnxm manifest)");
  get(f, manifest_.version, what);
  if (manifest_.version < kMinManifestVersion ||
      manifest_.version > kManifestVersion)
    throw ManifestError(what + ": unsupported manifest version " +
                        std::to_string(manifest_.version));
  std::uint64_t body_size = 0, checksum = 0;
  get(f, body_size, what);
  get(f, checksum, what);
  if (body_size == 0 || body_size > kMaxManifestBodyBytes)
    throw ManifestError(what + ": corrupt header (body size " +
                        std::to_string(body_size) + ")");
  std::string body(body_size, '\0');
  f.read(body.data(), static_cast<std::streamsize>(body_size));
  if (!f) throw ManifestError(what + ": truncated manifest");
  // Injected bit rot (io.manifest.bitflip): corrupt one deterministic
  // bit BEFORE the checksum verify, so the normal detection path fires.
  if (util::fault_fires("io.manifest.bitflip")) {
    const std::uint64_t k =
        util::FaultInjector::instance().fired("io.manifest.bitflip");
    body[(k * 131) % body.size()] ^= static_cast<char>(1u << (k % 8));
  }
  if (io::fnv1a64(body) != checksum)
    throw ManifestError(what + ": manifest checksum mismatch (corrupt)");

  std::istringstream bs(body, std::ios::binary);
  get(bs, manifest_.seed, what);
  get(bs, manifest_.config_digest, what);
  get(bs, manifest_.total_samples, what);
  std::uint64_t num_shards = 0;
  get(bs, num_shards, what);
  if (num_shards > (1ull << 20))
    throw ManifestError(what + ": implausible shard count " +
                        std::to_string(num_shards));
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < num_shards; ++i) {
    ShardInfo info;
    std::uint32_t len = 0;
    get(bs, len, what);
    if (len == 0 || len > (1u << 12))
      throw ManifestError(what + ": implausible shard file name length");
    info.file.resize(len);
    bs.read(info.file.data(), len);
    if (!bs) throw ManifestError(what + ": truncated manifest");
    get(bs, info.samples, what);
    get(bs, info.checksum, what);
    sum += info.samples;
    manifest_.shards.push_back(std::move(info));
  }
  if (sum != manifest_.total_samples)
    throw ManifestError(what + ": shard sample counts sum to " +
                        std::to_string(sum) + ", manifest claims " +
                        std::to_string(manifest_.total_samples));
}

std::string ShardedReader::shard_path(std::size_t i) const {
  return shard_file_path(dir_, manifest_.shards.at(i).file).string();
}

Dataset ShardedReader::load_shard(std::size_t i) const {
  const ShardInfo& info = manifest_.shards.at(i);
  const std::string path = shard_path(i);
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw MissingShardError("ShardedReader: missing shard file " + path +
                            " (named by " + manifest_path_ + ")");
  // One buffer for the whole shard: pre-sized read, checksum in place,
  // then MOVE into the parse stream — transient memory stays O(shard),
  // the store's residency contract.
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec)
    throw MissingShardError("ShardedReader: cannot stat shard " + path +
                            " (" + ec.message() + ")");
  std::string bytes(size, '\0');
  f.read(bytes.data(), static_cast<std::streamsize>(size));
  if (!f || f.gcount() != static_cast<std::streamsize>(size))
    throw ShardChecksumError("ShardedReader: short read on shard " + path);
  // Injected faults fire BEFORE the checksum verify: a short read and a
  // flipped bit must both surface through the real integrity check.
  if (!bytes.empty() && util::fault_fires("io.shard.truncate"))
    bytes.resize(bytes.size() / 2);
  if (!bytes.empty() && util::fault_fires("io.shard.bitflip")) {
    const std::uint64_t k =
        util::FaultInjector::instance().fired("io.shard.bitflip");
    bytes[(k * 769) % bytes.size()] ^= static_cast<char>(1u << (k % 8));
  }
  if (io::fnv1a64(bytes) != info.checksum)
    throw ShardChecksumError("ShardedReader: checksum mismatch for shard " +
                             path + " (file corrupt or replaced)");
  const std::uint64_t total = bytes.size();
  std::istringstream in(std::move(bytes), std::ios::binary);
  Dataset d(io::read_dataset_stream(in, total,
                                    "ShardedReader(" + path + ")"));
  if (d.size() != info.samples)
    throw ShardChecksumError(
        "ShardedReader: shard " + path + " holds " +
        std::to_string(d.size()) + " samples, manifest claims " +
        std::to_string(info.samples));
  return d;
}

Dataset ShardedReader::load_all() const {
  std::vector<Sample> all;
  all.reserve(manifest_.total_samples);
  for (std::size_t i = 0; i < num_shards(); ++i) {
    Dataset d = load_shard(i);
    for (auto& s : d.release_samples()) all.push_back(std::move(s));
  }
  return Dataset(std::move(all));
}

}  // namespace rnx::data
