#include "data/normalize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "data/source.hpp"
#include "topo/topology.hpp"
#include "util/stats.hpp"

namespace rnx::data {

namespace {
Moments from_welford(const util::Welford& w) {
  Moments m;
  m.mean = w.mean();
  // Guard against degenerate channels (e.g. all queues identical when
  // randomize_queues is off): fall back to unit scale.
  m.stddev = w.stddev() > 1e-12 ? w.stddev() : 1.0;
  return m;
}

// One accumulator for both fit overloads: per-sample order fixed here,
// so in-memory and streaming fits agree bit for bit.
struct FitAccumulator {
  util::Welford traffic, capacity, queue, log_delay, log_jitter;
  std::uint64_t min_delivered;

  explicit FitAccumulator(std::uint64_t min_delivered_)
      : min_delivered(min_delivered_) {}

  void add(const Sample& s) {
    for (const double c : s.link_capacity_bps) capacity.add(c);
    for (const auto q : s.queue_pkts) queue.add(static_cast<double>(q));
    for (const auto& p : s.paths) {
      traffic.add(p.traffic_bps);
      if (p.delivered >= min_delivered && p.mean_delay_s > 0.0)
        log_delay.add(std::log(p.mean_delay_s));
      if (p.delivered >= min_delivered && p.jitter_s2 > 0.0)
        log_jitter.add(std::log(p.jitter_s2));
    }
  }

  [[nodiscard]] Scaler finish() const {
    if (log_delay.count() == 0)
      throw std::invalid_argument("Scaler::fit: no usable delay labels");
    // Jitter labels can legitimately be absent (e.g. deterministic
    // packet sizes at trivial load); leave unit moments in that case.
    const Moments lj =
        log_jitter.count() > 0 ? from_welford(log_jitter) : Moments{};
    return Scaler::from_moments(from_welford(traffic),
                                from_welford(capacity), from_welford(queue),
                                from_welford(log_delay), lj);
  }
};
}  // namespace

Scaler Scaler::fit(std::span<const Sample> train, std::uint64_t min_delivered) {
  FitAccumulator acc(min_delivered);
  for (const auto& s : train) acc.add(s);
  return acc.finish();
}

Scaler Scaler::fit(SampleSource& train, std::uint64_t min_delivered) {
  FitAccumulator acc(min_delivered);
  train.reset();
  while (const auto sp = train.next()) acc.add(*sp);
  return acc.finish();
}

Scaler Scaler::from_moments(const Moments& traffic, const Moments& capacity,
                            const Moments& queue, const Moments& log_delay,
                            const Moments& log_jitter) {
  const auto check = [](const Moments& m, const char* channel) {
    if (!std::isfinite(m.mean) || !std::isfinite(m.stddev) ||
        m.stddev <= 0.0)
      throw std::invalid_argument(
          std::string("Scaler::from_moments: invalid moments for ") +
          channel);
  };
  check(traffic, "traffic");
  check(capacity, "capacity");
  check(queue, "queue");
  check(log_delay, "log_delay");
  check(log_jitter, "log_jitter");
  Scaler sc;
  sc.traffic_ = traffic;
  sc.capacity_ = capacity;
  sc.queue_ = queue;
  sc.log_delay_ = log_delay;
  sc.log_jitter_ = log_jitter;
  return sc;
}

double Scaler::delay_to_target(double delay_s) const {
  if (delay_s <= 0.0)
    throw std::invalid_argument("Scaler: non-positive delay");
  return log_delay_.normalize(std::log(delay_s));
}

double Scaler::target_to_delay(double target) const {
  return std::exp(log_delay_.denormalize(target));
}

double Scaler::jitter_to_target(double jitter_s2) const {
  if (jitter_s2 <= 0.0)
    throw std::invalid_argument("Scaler: non-positive jitter");
  return log_jitter_.normalize(std::log(jitter_s2));
}

double Scaler::target_to_jitter(double target) const {
  return std::exp(log_jitter_.denormalize(target));
}

std::vector<double> link_utilization(const Sample& s) {
  std::vector<double> load(s.num_links(), 0.0);
  for (const auto& p : s.paths)
    for (const auto l : p.links) load[l] += p.traffic_bps;
  for (std::size_t l = 0; l < load.size(); ++l) {
    const double cap = s.link_capacity_bps[l];
    load[l] = cap > 0.0 ? load[l] / cap : 0.0;
  }
  return load;
}

std::vector<double> path_bottleneck_load(const Sample& s) {
  std::vector<double> out(s.paths.size(), 0.0);
  for (std::size_t pi = 0; pi < s.paths.size(); ++pi) {
    const auto& p = s.paths[pi];
    if (p.links.empty()) continue;
    double bottleneck = s.link_capacity_bps[p.links.front()];
    for (const auto l : p.links)
      bottleneck = std::min(bottleneck, s.link_capacity_bps[l]);
    out[pi] = bottleneck > 0.0 ? p.traffic_bps / bottleneck : 0.0;
  }
  return out;
}

std::vector<double> node_queue_fraction(const Sample& s) {
  std::vector<double> out(s.num_nodes, 0.0);
  for (std::size_t n = 0; n < s.num_nodes; ++n)
    out[n] = static_cast<double>(s.queue_pkts[n]) /
             static_cast<double>(topo::kStandardQueuePackets);
  return out;
}

}  // namespace rnx::data
