#include "data/dataset.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "data/sample_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace rnx::data {

Dataset::Dataset(std::vector<Sample> samples) : samples_(std::move(samples)) {}

void Dataset::shuffle(util::RngStream& rng) {
  for (std::size_t i = samples_.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(samples_[i - 1], samples_[j]);
  }
}

std::pair<Dataset, Dataset> Dataset::split(std::size_t count) const {
  if (count > samples_.size())
    throw std::invalid_argument("Dataset::split: count > size");
  Dataset a, b;
  a.samples_.assign(samples_.begin(),
                    samples_.begin() + static_cast<std::ptrdiff_t>(count));
  b.samples_.assign(samples_.begin() + static_cast<std::ptrdiff_t>(count),
                    samples_.end());
  return {std::move(a), std::move(b)};
}

std::size_t Dataset::total_paths() const noexcept {
  std::size_t n = 0;
  for (const auto& s : samples_) n += s.paths.size();
  return n;
}

void Dataset::save(const std::string& path) const {
  // Stream into a temp file, then rename: a crash or full disk
  // mid-write must never destroy a previously good dataset at `path`,
  // and no second in-memory copy of the serialized bytes is made.
  io::atomic_write_stream(
      path, [this](std::ostream& f) { io::write_dataset_stream(f, samples_); });
}

Dataset Dataset::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Dataset::load: cannot open " + path);
  std::error_code ec;
  const std::uintmax_t file_bytes = std::filesystem::file_size(path, ec);
  if (ec)
    throw std::runtime_error("Dataset::load: cannot stat " + path + " (" +
                             ec.message() + ")");
  return Dataset(io::read_dataset_stream(f, file_bytes,
                                         "Dataset::load(" + path + ")"));
}

void Dataset::export_csv(const std::string& path) const {
  util::CsvWriter csv(path, dataset_csv_header());
  for (std::size_t i = 0; i < samples_.size(); ++i)
    append_csv_rows(csv, samples_[i], i);
}

std::vector<std::string> dataset_csv_header() {
  return {"sample",       "topo",      "src",           "dst",
          "hops",         "traffic_bps", "policy",      "traffic_model",
          "class",        "max_util",  "mean_delay_s",  "jitter_s2",
          "loss_rate",    "delivered"};
}

void append_csv_rows(util::CsvWriter& csv, const Sample& s,
                     std::size_t sample_index) {
  for (const auto& p : s.paths) {
    csv.add_row({std::to_string(sample_index), s.topo_name,
                 std::to_string(p.src), std::to_string(p.dst),
                 std::to_string(p.links.size()),
                 util::Table::cell(p.traffic_bps, 1),
                 std::string(sim::to_string(s.scenario.policy)),
                 std::string(sim::to_string(s.scenario.traffic)),
                 std::to_string(p.priority_class),
                 util::Table::cell(s.max_utilization, 3),
                 util::Table::cell(p.mean_delay_s, 9),
                 util::Table::cell(p.jitter_s2, 12),
                 util::Table::cell(p.loss_rate, 6),
                 std::to_string(p.delivered)});
  }
}

Dataset load_or_generate(const std::string& path, std::size_t expected,
                         const std::function<Dataset()>& generate) {
  if (std::filesystem::exists(path)) {
    // Never swallow WHY a cache is rejected: a size mismatch (stale
    // cache from a different config) reads very differently from a
    // corrupt/truncated file, and silent regeneration hides both.
    try {
      Dataset d = Dataset::load(path);
      if (d.size() == expected) {
        util::log_info("dataset cache hit: ", path, " (", d.size(),
                       " samples)");
        return d;
      }
      util::log_warn("dataset cache size mismatch for ", path, ": have ",
                     d.size(), " samples, want ", expected,
                     "; regenerating");
    } catch (const std::exception& e) {
      util::log_warn("dataset cache unreadable (", e.what(),
                     "); regenerating");
    }
  }
  Dataset d = generate();
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  d.save(path);
  util::log_info("dataset written: ", path, " (", d.size(), " samples)");
  return d;
}

}  // namespace rnx::data
