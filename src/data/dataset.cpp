#include "data/dataset.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/log.hpp"
#include "util/table.hpp"

namespace rnx::data {

Dataset::Dataset(std::vector<Sample> samples) : samples_(std::move(samples)) {}

void Dataset::shuffle(util::RngStream& rng) {
  for (std::size_t i = samples_.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(samples_[i - 1], samples_[j]);
  }
}

std::pair<Dataset, Dataset> Dataset::split(std::size_t count) const {
  if (count > samples_.size())
    throw std::invalid_argument("Dataset::split: count > size");
  Dataset a, b;
  a.samples_.assign(samples_.begin(),
                    samples_.begin() + static_cast<std::ptrdiff_t>(count));
  b.samples_.assign(samples_.begin() + static_cast<std::ptrdiff_t>(count),
                    samples_.end());
  return {std::move(a), std::move(b)};
}

std::size_t Dataset::total_paths() const noexcept {
  std::size_t n = 0;
  for (const auto& s : samples_) n += s.paths.size();
  return n;
}

namespace {
constexpr char kMagic[4] = {'R', 'N', 'X', 'D'};
// v2 appends the scenario block (policy / traffic process / classes /
// on-off shape / DRR quantum) per sample and a priority class per path;
// v1 files (pre-scenario-engine) still load with the default scenario
// and scenario_recorded = false.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;

template <typename T>
void put(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void get(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("Dataset::load: truncated file");
}
void put_string(std::ofstream& f, const std::string& s) {
  put(f, static_cast<std::uint32_t>(s.size()));
  f.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::string get_string(std::ifstream& f) {
  std::uint32_t len = 0;
  get(f, len);
  if (len > (1u << 20))
    throw std::runtime_error("Dataset::load: implausible string length");
  std::string s(len, '\0');
  f.read(s.data(), len);
  if (!f) throw std::runtime_error("Dataset::load: truncated string");
  return s;
}
template <typename T>
void put_vec(std::ofstream& f, const std::vector<T>& v) {
  put(f, static_cast<std::uint64_t>(v.size()));
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
}
template <typename T>
void get_vec(std::ifstream& f, std::vector<T>& v) {
  std::uint64_t n = 0;
  get(f, n);
  if (n > (1ull << 28))
    throw std::runtime_error("Dataset::load: implausible vector length");
  v.resize(n);
  f.read(reinterpret_cast<char*>(v.data()),
         static_cast<std::streamsize>(n * sizeof(T)));
  if (!f) throw std::runtime_error("Dataset::load: truncated vector");
}
}  // namespace

void Dataset::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Dataset::save: cannot open " + path);
  f.write(kMagic, sizeof(kMagic));
  put(f, kVersion);
  put(f, static_cast<std::uint64_t>(samples_.size()));
  for (const auto& s : samples_) {
    put_string(f, s.topo_name);
    put(f, s.num_nodes);
    put_vec(f, s.links);
    put_vec(f, s.link_capacity_bps);
    put_vec(f, s.queue_pkts);
    put(f, s.max_utilization);
    put(f, static_cast<std::uint8_t>(s.scenario_recorded ? 1 : 0));
    put(f, static_cast<std::uint8_t>(s.scenario.policy));
    put(f, static_cast<std::uint8_t>(s.scenario.traffic));
    put(f, s.scenario.priority_classes);
    put(f, s.scenario.onoff_burst_pkts);
    put(f, s.scenario.onoff_duty);
    put(f, s.scenario.drr_quantum_bits);
    put(f, static_cast<std::uint64_t>(s.paths.size()));
    for (const auto& p : s.paths) {
      put(f, p.src);
      put(f, p.dst);
      put_vec(f, p.nodes);
      put_vec(f, p.links);
      put(f, p.traffic_bps);
      put(f, p.priority_class);
      put(f, p.mean_delay_s);
      put(f, p.jitter_s2);
      put(f, p.loss_rate);
      put(f, p.delivered);
    }
  }
  if (!f) throw std::runtime_error("Dataset::save: write failed");
}

Dataset Dataset::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Dataset::load: cannot open " + path);
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::string_view(magic, 4) != std::string_view(kMagic, 4))
    throw std::runtime_error("Dataset::load: bad magic");
  std::uint32_t version = 0;
  get(f, version);
  if (version < kMinVersion || version > kVersion)
    throw std::runtime_error("Dataset::load: unsupported version " +
                             std::to_string(version));
  std::uint64_t count = 0;
  get(f, count);
  std::vector<Sample> samples;
  samples.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Sample s;
    s.topo_name = get_string(f);
    get(f, s.num_nodes);
    get_vec(f, s.links);
    get_vec(f, s.link_capacity_bps);
    get_vec(f, s.queue_pkts);
    get(f, s.max_utilization);
    if (version >= 2) {
      std::uint8_t recorded = 0, policy = 0, traffic = 0;
      get(f, recorded);
      get(f, policy);
      get(f, traffic);
      if (policy >= sim::kNumSchedulerPolicies)
        throw std::runtime_error("Dataset::load: invalid scheduler policy " +
                                 std::to_string(policy));
      if (traffic >= sim::kNumTrafficProcesses)
        throw std::runtime_error("Dataset::load: invalid traffic process " +
                                 std::to_string(traffic));
      s.scenario_recorded = recorded != 0;
      s.scenario.policy = static_cast<sim::SchedulerPolicy>(policy);
      s.scenario.traffic = static_cast<sim::TrafficProcess>(traffic);
      get(f, s.scenario.priority_classes);
      get(f, s.scenario.onoff_burst_pkts);
      get(f, s.scenario.onoff_duty);
      get(f, s.scenario.drr_quantum_bits);
    }
    std::uint64_t np = 0;
    get(f, np);
    s.paths.resize(np);
    for (auto& p : s.paths) {
      get(f, p.src);
      get(f, p.dst);
      get_vec(f, p.nodes);
      get_vec(f, p.links);
      get(f, p.traffic_bps);
      if (version >= 2) get(f, p.priority_class);
      get(f, p.mean_delay_s);
      get(f, p.jitter_s2);
      get(f, p.loss_rate);
      get(f, p.delivered);
    }
    s.validate();
    samples.push_back(std::move(s));
  }
  return Dataset(std::move(samples));
}

void Dataset::export_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"sample", "topo", "src", "dst", "hops",
                             "traffic_bps", "policy", "traffic_model",
                             "class", "max_util", "mean_delay_s",
                             "jitter_s2", "loss_rate", "delivered"});
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const auto& s = samples_[i];
    for (const auto& p : s.paths) {
      csv.add_row({std::to_string(i), s.topo_name, std::to_string(p.src),
                   std::to_string(p.dst), std::to_string(p.links.size()),
                   util::Table::cell(p.traffic_bps, 1),
                   std::string(sim::to_string(s.scenario.policy)),
                   std::string(sim::to_string(s.scenario.traffic)),
                   std::to_string(p.priority_class),
                   util::Table::cell(s.max_utilization, 3),
                   util::Table::cell(p.mean_delay_s, 9),
                   util::Table::cell(p.jitter_s2, 12),
                   util::Table::cell(p.loss_rate, 6),
                   std::to_string(p.delivered)});
    }
  }
}

Dataset load_or_generate(const std::string& path, std::size_t expected,
                         const std::function<Dataset()>& generate) {
  if (std::filesystem::exists(path)) {
    try {
      Dataset d = Dataset::load(path);
      if (d.size() == expected) {
        util::log_info("dataset cache hit: ", path, " (", d.size(),
                       " samples)");
        return d;
      }
      util::log_warn("dataset cache size mismatch for ", path,
                     ", regenerating");
    } catch (const std::exception& e) {
      util::log_warn("dataset cache unreadable (", e.what(),
                     "), regenerating");
    }
  }
  Dataset d = generate();
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  d.save(path);
  util::log_info("dataset written: ", path, " (", d.size(), " samples)");
  return d;
}

}  // namespace rnx::data
