// Dataset sample schema.
//
// One Sample is one simulated network scenario — the unit the paper's
// datasets are made of: a topology instance (structure + per-link capacity
// + per-node queue size), a routing scheme, a traffic matrix, and the
// simulator-produced per-path labels (mean delay, jitter, loss).
//
// Samples are self-contained (they embed the directed link list), so a
// dataset file can be loaded without the topology zoo — including samples
// over randomly generated graphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/graph.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace rnx::data {

/// One routed source-destination pair: its path, offered traffic, and the
/// ground-truth labels measured by the simulator.
struct PathRecord {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  std::vector<topo::NodeId> nodes;  ///< node sequence src..dst
  std::vector<topo::LinkId> links;  ///< directed link sequence
  double traffic_bps = 0.0;         ///< offered rate (model input)
  // labels
  double mean_delay_s = 0.0;
  double jitter_s2 = 0.0;
  double loss_rate = 0.0;
  std::uint64_t delivered = 0;  ///< label quality: packets behind the mean
};

struct Sample {
  std::string topo_name;
  std::uint32_t num_nodes = 0;
  std::vector<topo::Link> links;             ///< directed link list
  std::vector<double> link_capacity_bps;     ///< per link
  std::vector<std::uint32_t> queue_pkts;     ///< per node (the paper's knob)
  std::vector<PathRecord> paths;             ///< src-major pair order
  double max_utilization = 0.0;              ///< provenance: load regime

  [[nodiscard]] std::size_t num_links() const noexcept { return links.size(); }

  /// Rebuild a Topology object (graph + attributes) from the sample.
  [[nodiscard]] topo::Topology to_topology() const;

  /// Structural validation (index ranges, path contiguity); throws
  /// std::runtime_error on corruption.  Used after deserialization.
  void validate() const;
};

}  // namespace rnx::data
