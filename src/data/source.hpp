// Pull-based sample streams (DESIGN.md §D).
//
// SampleSource is the unit training/eval consume: a resettable,
// fixed-size pass over samples.  The in-memory Dataset adapts trivially
// (DatasetSource); StreamingShardSource pulls a sharded on-disk store
// (data/shards.hpp) through a background prefetch thread and a
// util::BoundedQueue, so the consumer's peak residency is bounded by
// one shard plus the prefetch depth — datasets larger than RAM train
// fine.
//
// Ownership: next() hands out shared_ptr<const Sample>.  The streaming
// source allocates each sample once and forgets it (the consumer's
// reference is the only one); DatasetSource aliases the dataset's
// storage with a non-owning pointer, so no copies happen on the
// in-memory path.  stable_addresses() tells consumers whether those
// pointers outlive the pass AND stay bound to the same content — the
// gate for address-keyed plan caching (core::PlanCache): caching
// transient streaming addresses would serve stale plans once an
// allocator reuses a freed sample's address.
//
// Thread-safety (DESIGN.md §L): this type holds no mutex of its own —
// producer/consumer ordering lives entirely in the annotated
// util::BoundedQueue (whose lock discipline the static-analysis gate
// proves), the residency gauge is atomics, and `error_` is written by
// the producer strictly before queue_->close() and read by the
// consumer strictly after the closed queue drains, so the queue's
// internal mutex orders the handoff (see produce()/next()).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "data/dataset.hpp"
#include "data/shards.hpp"
#include "util/bounded_queue.hpp"

namespace rnx::data {

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Samples per pass (known up front for every source — the manifest
  /// records the total).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Begin a new pass.  Must be called before the first next() of every
  /// pass, including the first.
  virtual void reset() = 0;

  /// The next sample of the pass, nullptr once exhausted.  Rethrows a
  /// background I/O error (corrupt shard, missing file) at the point of
  /// consumption.
  [[nodiscard]] virtual std::shared_ptr<const Sample> next() = 0;

  /// True when returned pointers stay valid and content-stable for the
  /// source's whole lifetime (in-memory datasets).  False for streaming
  /// sources whose sample objects die after the consumer drops them —
  /// consumers must not key address-based caches on those.
  [[nodiscard]] virtual bool stable_addresses() const noexcept {
    return false;
  }
};

/// In-memory adapter: one pass = the dataset in index order, zero-copy.
class DatasetSource final : public SampleSource {
 public:
  /// `ds` must outlive the source.
  explicit DatasetSource(const Dataset& ds) : ds_(&ds) {}

  [[nodiscard]] std::size_t size() const override { return ds_->size(); }
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::shared_ptr<const Sample> next() override {
    if (pos_ >= ds_->size()) return nullptr;
    // Non-owning alias into the dataset's storage (empty control block).
    return std::shared_ptr<const Sample>(std::shared_ptr<void>(),
                                         &(*ds_)[pos_++]);
  }
  [[nodiscard]] bool stable_addresses() const noexcept override {
    return true;
  }

 private:
  const Dataset* ds_;
  std::size_t pos_ = 0;
};

/// Streaming pull over a sharded store: a background producer loads
/// shards in order and feeds samples through a bounded queue of depth
/// `prefetch`.  Peak resident samples <= one shard + prefetch + what
/// the consumer currently holds (instrumented: peak_live_samples()).
class StreamingShardSource final : public SampleSource {
 public:
  explicit StreamingShardSource(std::string manifest_path,
                                std::size_t prefetch = 64);
  ~StreamingShardSource() override;
  StreamingShardSource(const StreamingShardSource&) = delete;
  StreamingShardSource& operator=(const StreamingShardSource&) = delete;

  [[nodiscard]] std::size_t size() const override {
    return static_cast<std::size_t>(reader_.total_samples());
  }
  void reset() override;
  [[nodiscard]] std::shared_ptr<const Sample> next() override;

  [[nodiscard]] const ShardedReader& reader() const noexcept {
    return reader_;
  }
  /// High-water mark of simultaneously resident samples produced by
  /// this source (loaded-but-unconsumed + consumer-held).  The
  /// residency-bound test pins this against shard size + prefetch.
  [[nodiscard]] std::size_t peak_live_samples() const noexcept;

 private:
  // Survives the source so late-dropped samples can still decrement.
  struct Gauge {
    std::atomic<std::int64_t> live{0};
    std::atomic<std::int64_t> peak{0};
    void add(std::int64_t n) {
      const std::int64_t now = live.fetch_add(n) + n;
      std::int64_t prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
    }
  };

  void start();
  void stop();
  void produce();

  ShardedReader reader_;
  std::size_t prefetch_;
  std::shared_ptr<Gauge> gauge_ = std::make_shared<Gauge>();
  std::unique_ptr<util::BoundedQueue<std::shared_ptr<const Sample>>> queue_;
  std::thread producer_;
  std::exception_ptr error_;  ///< producer -> consumer, ordered by close()
};

}  // namespace rnx::data
