#include "data/generator.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "data/sample_io.hpp"
#include "sim/simulator.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace rnx::data {

namespace {

topo::TrafficMatrix draw_traffic(std::size_t n, TrafficModel model,
                                 util::RngStream& rng) {
  // Absolute magnitudes are irrelevant here: the matrix is rescaled to a
  // target utilization afterwards.  Only the *shape* matters.
  switch (model) {
    case TrafficModel::kUniform:
      return topo::uniform_traffic(n, 0.1, 1.0, rng);
    case TrafficModel::kGravity:
      return topo::gravity_traffic(n, 1.0, rng);
    case TrafficModel::kHotspot:
      return topo::hotspot_traffic(n, 0.1, 1.0, std::max<std::size_t>(1, n / 4),
                                   8.0, rng);
    case TrafficModel::kMix: {
      const auto pick = rng.uniform_int(0, 2);
      return draw_traffic(n,
                          pick == 0   ? TrafficModel::kUniform
                          : pick == 1 ? TrafficModel::kGravity
                                      : TrafficModel::kHotspot,
                          rng);
    }
  }
  throw std::logic_error("draw_traffic: unknown model");
}

}  // namespace

void GeneratorConfig::validate() const {
  if (!(p_tiny_queue >= 0.0) || p_tiny_queue > 1.0)
    throw std::invalid_argument(
        "GeneratorConfig: p_tiny_queue must be in [0, 1], got " +
        std::to_string(p_tiny_queue));
  if (!(mean_packet_bits > 0.0))
    throw std::invalid_argument(
        "GeneratorConfig: mean_packet_bits must be > 0, got " +
        std::to_string(mean_packet_bits));
  if (target_packets == 0)
    throw std::invalid_argument(
        "GeneratorConfig: target_packets must be > 0 (a zero-packet window "
        "yields an empty, degenerate dataset)");
  if (!(util_lo > 0.0) || util_hi < util_lo)
    throw std::invalid_argument(
        "GeneratorConfig: need 0 < util_lo <= util_hi, got [" +
        std::to_string(util_lo) + ", " + std::to_string(util_hi) + "]");
  scenario.validate();
}

Sample generate_sample(const topo::Topology& base, const GeneratorConfig& cfg,
                       util::RngStream& rng) {
  cfg.validate();
  topo::Topology topo = base;  // scenario copy with randomized attributes
  if (cfg.randomize_capacities && !cfg.capacity_choices.empty())
    topo::randomize_capacities(topo, cfg.capacity_choices, rng);
  if (cfg.randomize_queues)
    topo::randomize_queue_sizes(topo, cfg.p_tiny_queue, rng);

  const topo::RoutingScheme routing =
      cfg.randomize_routing
          ? topo::shortest_path_routing(
                topo, topo::random_link_weights(topo, rng))
          : topo::hop_count_routing(topo);

  topo::TrafficMatrix tm = draw_traffic(topo.num_nodes(), cfg.traffic, rng);
  // A zero-demand matrix (e.g. a single-node topology has no pairs)
  // would divide the window computation below to +inf — an unbounded
  // simulation.  Fail loudly before any scaling or simulation work.
  if (!(tm.total() > 0.0))
    throw std::invalid_argument(
        "generate_sample: traffic matrix total is zero on topology '" +
        topo.name() +
        "' (no demand to simulate; cannot size a finite measurement "
        "window)");
  const double target_util = rng.uniform(cfg.util_lo, cfg.util_hi);
  topo::scale_to_max_utilization(tm, topo, routing, target_util);

  // Resolve the sample's scenario.  Mixed mode draws the (policy,
  // traffic) pair here — after every default draw, so non-mixed datasets
  // keep the seed protocol's exact RNG sequence.
  sim::ScenarioConfig scenario = cfg.scenario;
  if (cfg.mixed_scenarios) {
    scenario.policy = static_cast<sim::SchedulerPolicy>(
        rng.uniform_int(0, sim::kNumSchedulerPolicies - 1));
    scenario.traffic = static_cast<sim::TrafficProcess>(
        rng.uniform_int(0, sim::kNumTrafficProcesses - 1));
  }

  // Per-flow scheduling classes from a derived stream (derivation does
  // not advance `rng`, so single-class datasets are unaffected).
  std::vector<std::uint8_t> flow_class(
      topo.num_nodes() * topo.num_nodes(), 0);
  if (scenario.priority_classes > 1) {
    util::RngStream crng = rng.derive("class");
    for (const auto& [ps, pd] : routing.pairs())
      flow_class[static_cast<std::size_t>(ps) * topo.num_nodes() + pd] =
          static_cast<std::uint8_t>(crng.uniform_int(
              0, static_cast<std::int64_t>(scenario.priority_classes) - 1));
  }

  // Size the measurement window for ~target_packets generated packets.
  const double total_pps = tm.total() / cfg.mean_packet_bits;
  sim::SimConfig sc;
  sc.mean_packet_bits = cfg.mean_packet_bits;
  sc.window_s = static_cast<double>(cfg.target_packets) / total_pps;
  sc.warmup_s = 0.1 * sc.window_s;
  sc.seed = rng();  // one draw: the simulator derives its own streams
  sc.scenario = scenario;
  const std::size_t n = topo.num_nodes();
  // By value: the config outlives this scope inside the Simulator.
  sc.flow_class = [classes = flow_class, n](topo::NodeId fs,
                                            topo::NodeId fd) {
    return static_cast<std::uint32_t>(
        classes[static_cast<std::size_t>(fs) * n + fd]);
  };

  sim::Simulator simulator(topo, routing, tm, sc);
  const sim::SimResult res = simulator.run();

  Sample s;
  s.topo_name = topo.name();
  s.num_nodes = static_cast<std::uint32_t>(topo.num_nodes());
  s.links = topo.graph().links();
  s.link_capacity_bps.reserve(topo.num_links());
  for (topo::LinkId l = 0; l < topo.num_links(); ++l)
    s.link_capacity_bps.push_back(topo.link_capacity(l));
  s.queue_pkts = topo.queue_sizes();
  s.max_utilization = target_util;
  s.scenario = scenario;
  s.scenario_recorded = true;

  s.paths.reserve(res.paths.size());
  for (const auto& ps : res.paths) {
    const topo::Path& rp = routing.path(ps.src, ps.dst);
    PathRecord rec;
    rec.src = ps.src;
    rec.dst = ps.dst;
    rec.nodes = rp.nodes;
    rec.links = rp.links;
    rec.traffic_bps = tm.get(ps.src, ps.dst);
    rec.priority_class =
        flow_class[static_cast<std::size_t>(ps.src) * n + ps.dst];
    rec.mean_delay_s = ps.mean_delay_s;
    rec.jitter_s2 = ps.jitter_s2;
    rec.loss_rate = ps.loss_rate();
    rec.delivered = ps.delivered;
    s.paths.push_back(std::move(rec));
  }
  return s;
}

TopologySampler fixed_topology(topo::Topology base) {
  // Must not draw from the sample stream: generate_sample then consumes
  // the exact RNG sequence of the seed protocol, keeping fixed-topology
  // datasets bitwise-identical across serial, parallel and pre-sampler
  // code paths.
  return [base = std::move(base)](util::RngStream&) { return base; };
}

TopologySampler mixed_topology() {
  return [](util::RngStream& rng) -> topo::Topology {
    const auto kind = rng.uniform_int(0, 3);
    switch (kind) {
      case 0:
        return topo::geant2();
      case 1:
        return topo::nsfnet();
      case 2: {
        const auto n = static_cast<std::size_t>(rng.uniform_int(8, 24));
        const auto extra = static_cast<std::size_t>(
            rng.uniform_int(2, static_cast<std::int64_t>(n)));
        // Structure from a derived stream so topology size draws never
        // shift the scenario draws that follow in generate_sample.
        util::RngStream trng = rng.derive("topo");
        return topo::random_connected(n, n - 1 + extra, trng);
      }
      default: {
        const auto n = static_cast<std::size_t>(rng.uniform_int(8, 24));
        util::RngStream trng = rng.derive("topo");
        return topo::barabasi_albert(n, 2, trng);
      }
    }
  };
}

void generate_dataset_stream(
    const TopologySampler& topo_of, std::size_t count,
    const GeneratorConfig& cfg, std::uint64_t seed, std::size_t threads,
    const std::function<void(std::size_t, Sample)>& sink,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  cfg.validate();
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  const util::RngStream root(seed);
  const auto make_sample = [&](std::size_t i) {
    util::RngStream rng = root.derive("sample", i);
    const topo::Topology t = topo_of(rng);
    return generate_sample(t, cfg, rng);
  };

  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      sink(i, make_sample(i));
      if (progress) progress(i + 1, count);
    }
    return;
  }

  // Ordered commit (DESIGN.md §D): lanes claim indices in increasing
  // order (the pool's atomic counter) and simulate concurrently; a
  // finished sample parks in a bounded reorder ring and the in-order
  // prefix is drained to the sink under the commit mutex.  A lane whose
  // index is more than `window` ahead of the commit cursor waits, so
  // peak buffered samples are O(threads) — and the lane holding the
  // cursor index is always inside the window, so the drain can never
  // stall (no deadlock).
  util::ThreadPool pool(threads);
  const std::size_t lanes = pool.size();
  const std::size_t window = std::max<std::size_t>(2 * lanes, 4);
  std::vector<std::optional<Sample>> ring(window);
  // Locals cannot carry RNX_GUARDED_BY (the analysis annotates members),
  // so the ring/committed/failed discipline is enforced by review + TSan.
  util::Mutex mu;  // rnx-lint: allow(guarded-by) — local, see comment above
  util::CondVar cv;
  std::size_t committed = 0;
  bool failed = false;

  pool.parallel_for(count, [&](std::size_t i) {
    {
      // Cheap abort: once any lane failed, later indices skip their
      // simulation instead of burning CPU on a doomed run.
      const util::MutexLock lock(mu);
      if (failed) return;
    }
    Sample s;
    try {
      s = make_sample(i);
    } catch (...) {
      // Unblock every lane waiting on the commit cursor: this index
      // will never commit, so the run is aborted (parallel_for rethrows
      // the first error once all indices are dispatched).
      const util::MutexLock lock(mu);
      failed = true;
      cv.notify_all();
      throw;
    }
    const util::MutexLock lock(mu);
    while (!failed && i >= committed + window) cv.wait(mu);
    if (failed) return;
    ring[i % window] = std::move(s);
    while (committed < count && ring[committed % window].has_value()) {
      Sample out = std::move(*ring[committed % window]);
      ring[committed % window].reset();
      const std::size_t idx = committed++;
      try {
        // The sink runs under the commit mutex: calls are strictly
        // ordered and never concurrent, which is what lets it write
        // shard files or digest streams with no locking of its own.
        sink(idx, std::move(out));
      } catch (...) {
        failed = true;
        cv.notify_all();
        throw;
      }
      if (progress) progress(committed, count);
    }
    cv.notify_all();
  });
}

std::vector<Sample> generate_dataset(
    const topo::Topology& base, std::size_t count, const GeneratorConfig& cfg,
    std::uint64_t seed,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  return generate_dataset(base, count, cfg, seed, /*threads=*/1, progress);
}

std::vector<Sample> generate_dataset(
    const topo::Topology& base, std::size_t count, const GeneratorConfig& cfg,
    std::uint64_t seed, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  std::vector<Sample> out(count);
  generate_dataset_stream(
      fixed_topology(base), count, cfg, seed, threads,
      [&](std::size_t i, Sample s) { out[i] = std::move(s); }, progress);
  return out;
}

std::uint64_t config_digest(const GeneratorConfig& cfg) {
  std::ostringstream bytes(std::ios::binary);
  const auto put = [&bytes](const auto& v) {
    bytes.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(cfg.p_tiny_queue);
  for (const double c : cfg.capacity_choices) put(c);
  put(cfg.util_lo);
  put(cfg.util_hi);
  put(static_cast<std::uint8_t>(cfg.traffic));
  put(static_cast<std::uint8_t>(cfg.randomize_routing));
  put(static_cast<std::uint8_t>(cfg.randomize_queues));
  put(static_cast<std::uint8_t>(cfg.randomize_capacities));
  put(cfg.mean_packet_bits);
  put(cfg.target_packets);
  put(static_cast<std::uint8_t>(cfg.scenario.policy));
  put(static_cast<std::uint8_t>(cfg.scenario.traffic));
  put(cfg.scenario.priority_classes);
  put(cfg.scenario.onoff_burst_pkts);
  put(cfg.scenario.onoff_duty);
  put(cfg.scenario.drr_quantum_bits);
  put(static_cast<std::uint8_t>(cfg.mixed_scenarios));
  return io::fnv1a64(bytes.str());
}

}  // namespace rnx::data

