// Original RouteNet (Rusek et al., SOSR 2019): path-link message passing.
//
// Per iteration:
//   1. path update — RNN_P consumes each path's *link state sequence*
//      (position-vectorized; see core/plan.hpp); the RNN output at link
//      l's position is the path's message to l;
//   2. link update — RNN_L over the element-wise sum of incoming path
//      messages, with the link state as hidden state.
// After T iterations a feed-forward readout maps each path state to the
// delay estimate.  Queue sizes are *not* observable by this model — that
// is precisely the gap the extended architecture closes, and what the
// Fig. 2 comparison measures.
#pragma once

#include "core/model.hpp"
#include "nn/gru.hpp"
#include "nn/layers.hpp"

namespace rnx::core {

class RouteNet final : public Model {
 public:
  explicit RouteNet(ModelConfig cfg);

  [[nodiscard]] nn::Var forward(const data::Sample& sample,
                                const data::Scaler& scaler) const override;
  [[nodiscard]] ForwardTrace forward_traced(
      const data::Sample& sample, const data::Scaler& scaler) const override;
  [[nodiscard]] std::string name() const override { return "routenet"; }
  [[nodiscard]] ModelKind kind() const noexcept override {
    return ModelKind::kOriginal;
  }
  [[nodiscard]] nn::NamedParams named_params() const override;
  [[nodiscard]] const ModelConfig& config() const override { return cfg_; }
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

 private:
  ModelConfig cfg_;
  nn::GRUCell rnn_path_;
  nn::GRUCell rnn_link_;
  nn::Mlp readout_;
};

}  // namespace rnx::core
