#include "core/routenet.hpp"

#include <exception>
#include <stdexcept>
#include <string>

#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "nn/ops.hpp"
#include "util/thread_pool.hpp"

namespace rnx::core {

// ---- shared Model machinery (declared in model.hpp) --------------------

void Model::save_weights(const std::string& path) const {
  const nn::NamedParams params = named_params();
  nn::save_params(path, params);
}

void Model::load_weights(const std::string& path) {
  nn::NamedParams params = named_params();
  nn::load_params(path, params);
}

void Model::copy_params_from(const Model& src) {
  const nn::NamedParams from = src.named_params();
  nn::NamedParams to = named_params();
  if (from.size() != to.size())
    throw std::invalid_argument("copy_params_from: parameter count mismatch");
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (from[i].first != to[i].first ||
        !from[i].second.value().same_shape(to[i].second.value()))
      throw std::invalid_argument("copy_params_from: parameter mismatch at " +
                                  from[i].first);
    to[i].second.mutable_value() = from[i].second.value();
  }
}

const MpPlan& Model::plan_for(const data::Sample& sample, bool use_nodes,
                              std::shared_ptr<const MpPlan>& local) const {
  if (plan_cache_ != nullptr) {
    local = plan_cache_->get(sample, use_nodes);
  } else {
    local = std::make_shared<const MpPlan>(build_plan(sample, use_nodes));
  }
  return *local;
}

std::vector<nn::Tensor> Model::forward_batch(
    std::span<const data::Sample> samples, const data::Scaler& scaler,
    util::ThreadPool* pool, const std::vector<char>* skip) const {
  std::vector<const data::Sample*> ptrs(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) ptrs[i] = &samples[i];
  return forward_batch(std::span<const data::Sample* const>(ptrs), scaler,
                       pool, nullptr, skip);
}

std::vector<nn::Tensor> Model::forward_batch(
    std::span<const data::Sample* const> samples, const data::Scaler& scaler,
    util::ThreadPool* pool, std::vector<std::exception_ptr>* errors,
    const std::vector<char>* skip) const {
  if (skip != nullptr && skip->size() != samples.size())
    throw std::invalid_argument("forward_batch: skip mask size mismatch");
  std::vector<nn::Tensor> out(samples.size());
  if (errors != nullptr) {
    errors->clear();
    errors->resize(samples.size());
  }
  const auto eval_one = [&](std::size_t i) {
    if (skip != nullptr && (*skip)[i]) return;
    const nn::NoGradGuard guard;  // thread-local: set per lane
    if (errors == nullptr) {
      out[i] = forward(*samples[i], scaler).value();
      return;
    }
    try {
      out[i] = forward(*samples[i], scaler).value();
    } catch (...) {
      (*errors)[i] = std::current_exception();
    }
  };
  const bool pooled = pool != nullptr && pool->size() > 1 &&
                      samples.size() > 1 &&
                      pool->try_parallel_for(samples.size(), eval_one);
  if (!pooled)
    for (std::size_t i = 0; i < samples.size(); ++i) eval_one(i);
  return out;
}

namespace {

// The bundle feature-gating contract (DESIGN.md §S): a model trained
// with scenario features must not silently read zeros off a
// pre-scenario-engine dataset.
void require_scenario(const data::Sample& s, std::size_t state_dim) {
  if (state_dim < kScenarioFeatureMinDim)
    throw std::runtime_error(
        "scenario features need state_dim >= " +
        std::to_string(kScenarioFeatureMinDim) + ", got " +
        std::to_string(state_dim));
  if (!s.scenario_recorded)
    throw std::runtime_error(
        "model expects scenario features, but this sample records no "
        "scenario (dataset predates the scenario engine — regenerate it "
        "with rnx_datagen, or use a model without scenario features)");
}

}  // namespace

nn::Var initial_path_states(const data::Sample& s, const data::Scaler& sc,
                            const ModelConfig& cfg) {
  nn::Tensor t(s.paths.size(), cfg.state_dim);
  if (cfg.scale_invariant_features) {
    const std::vector<double> load = data::path_bottleneck_load(s);
    for (std::size_t i = 0; i < s.paths.size(); ++i) t(i, 0) = load[i];
  } else {
    for (std::size_t i = 0; i < s.paths.size(); ++i)
      t(i, 0) = sc.traffic(s.paths[i].traffic_bps);
  }
  if (cfg.scenario_features) {
    require_scenario(s, cfg.state_dim);
    const double class_span =
        s.scenario.priority_classes > 1
            ? static_cast<double>(s.scenario.priority_classes - 1)
            : 1.0;
    const std::size_t traffic_col =
        2 + static_cast<std::size_t>(s.scenario.traffic);
    for (std::size_t i = 0; i < s.paths.size(); ++i) {
      t(i, 1) = static_cast<double>(s.paths[i].priority_class) / class_span;
      t(i, traffic_col) = 1.0;
    }
  }
  return nn::constant(std::move(t));
}

nn::Var initial_link_states(const data::Sample& s, const data::Scaler& sc,
                            const ModelConfig& cfg) {
  nn::Tensor t(s.num_links(), cfg.state_dim);
  if (cfg.scale_invariant_features) {
    const std::vector<double> util = data::link_utilization(s);
    for (std::size_t l = 0; l < s.num_links(); ++l) t(l, 0) = util[l];
  } else {
    for (std::size_t l = 0; l < s.num_links(); ++l)
      t(l, 0) = sc.capacity(s.link_capacity_bps[l]);
  }
  if (cfg.scenario_features) {
    require_scenario(s, cfg.state_dim);
    const std::size_t policy_col =
        1 + static_cast<std::size_t>(s.scenario.policy);
    for (std::size_t l = 0; l < s.num_links(); ++l) t(l, policy_col) = 1.0;
  }
  return nn::constant(std::move(t));
}

nn::Var initial_node_states(const data::Sample& s, const data::Scaler& sc,
                            const ModelConfig& cfg) {
  nn::Tensor t(s.num_nodes, cfg.state_dim);
  if (cfg.scale_invariant_features) {
    const std::vector<double> frac = data::node_queue_fraction(s);
    for (std::size_t n = 0; n < s.num_nodes; ++n) t(n, 0) = frac[n];
  } else {
    for (std::size_t n = 0; n < s.num_nodes; ++n)
      t(n, 0) = sc.queue(s.queue_pkts[n]);
  }
  return nn::constant(std::move(t));
}

// Per-link 1/count multiplier for link_mean_aggregation: count = the
// number of (path, position) messages summed into each link, i.e. the
// link's occurrences across all paths.
nn::Var link_inv_count_var(const MpPlan& plan, std::size_t state_dim) {
  std::vector<double> counts(plan.num_links, 0.0);
  for (std::size_t p = 0; p < plan.num_positions(); ++p) {
    const PlanPosition pos = plan.position(p);
    if (pos.is_node) continue;
    for (const auto l : pos.elem_ids) counts[l] += 1.0;
  }
  nn::Tensor inv(plan.num_links, state_dim);
  for (std::size_t l = 0; l < plan.num_links; ++l) {
    const double v = counts[l] > 0.0 ? 1.0 / counts[l] : 0.0;
    for (std::size_t c = 0; c < state_dim; ++c) inv(l, c) = v;
  }
  return nn::constant(std::move(inv));
}

// ---- original RouteNet ---------------------------------------------------

RouteNet::RouteNet(ModelConfig cfg)
    : cfg_(cfg),
      rnn_path_([&] {
        util::RngStream rng(cfg.init_seed);
        return nn::GRUCell(cfg.state_dim, cfg.state_dim, rng, "rnn_p");
      }()),
      rnn_link_([&] {
        util::RngStream rng(cfg.init_seed + 1);
        return nn::GRUCell(cfg.state_dim, cfg.state_dim, rng, "rnn_l");
      }()),
      readout_([&] {
        util::RngStream rng(cfg.init_seed + 2);
        return nn::Mlp({cfg.state_dim, cfg.readout_hidden, 1},
                       nn::Activation::kRelu, rng, "readout");
      }()) {
  if (cfg_.scenario_features && cfg_.state_dim < kScenarioFeatureMinDim)
    throw std::invalid_argument(
        "RouteNet: scenario features need state_dim >= " +
        std::to_string(kScenarioFeatureMinDim));
  rnn_path_.set_fused(cfg_.fused_gru);
  rnn_link_.set_fused(cfg_.fused_gru);
}

ForwardTrace RouteNet::forward_traced(const data::Sample& sample,
                                      const data::Scaler& scaler) const {
  std::shared_ptr<const MpPlan> plan_holder;
  const MpPlan& plan = plan_for(sample, /*use_nodes=*/false, plan_holder);
  nn::Var h_path = initial_path_states(sample, scaler, cfg_);
  nn::Var h_link = initial_link_states(sample, scaler, cfg_);

  // Optional mean normalization of the link aggregation — the symmetric
  // twin of node_mean_aggregation (see ModelConfig); off leaves the
  // forward bitwise-unchanged.
  nn::Var link_inv_count;
  if (cfg_.link_mean_aggregation)
    link_inv_count = link_inv_count_var(plan, cfg_.state_dim);

  for (std::size_t iter = 0; iter < cfg_.iterations; ++iter) {
    nn::Var hidden = h_path;
    nn::Var link_msg;  // accumulated per-position messages, (L x H)
    for (std::size_t p = 0; p < plan.num_positions(); ++p) {
      const PlanPosition pos = plan.position(p);
      const nn::Var x = nn::gather_rows(h_link, pos.elem_ids);
      const nn::Var h = nn::gather_rows(hidden, pos.path_rows);
      const nn::Var h2 = rnn_path_.step(x, h);
      hidden = nn::scatter_rows(hidden, pos.path_rows, h2);
      const nn::Var msg = nn::segment_sum(h2, pos.elem_ids, plan.num_links);
      link_msg = link_msg.defined() ? nn::add(link_msg, msg) : msg;
    }
    h_path = hidden;
    if (link_msg.defined()) {
      if (link_inv_count.defined())
        link_msg = nn::mul(link_msg, link_inv_count);
      h_link = rnn_link_.step(link_msg, h_link);
    }
  }

  ForwardTrace tr;
  tr.path_states = h_path;
  tr.link_states = h_link;
  tr.predictions = readout_.forward(h_path);
  return tr;
}

nn::Var RouteNet::forward(const data::Sample& sample,
                          const data::Scaler& scaler) const {
  return forward_traced(sample, scaler).predictions;
}

std::unique_ptr<Model> RouteNet::clone() const {
  auto copy = std::make_unique<RouteNet>(cfg_);
  copy->copy_params_from(*this);
  return copy;
}

nn::NamedParams RouteNet::named_params() const {
  nn::NamedParams out;
  for (auto& p : rnn_path_.named_params()) out.push_back(std::move(p));
  for (auto& p : rnn_link_.named_params()) out.push_back(std::move(p));
  for (auto& p : readout_.named_params()) out.push_back(std::move(p));
  return out;
}

}  // namespace rnx::core
