#include "core/routenet.hpp"

#include "core/plan.hpp"
#include "nn/ops.hpp"

namespace rnx::core {

// ---- shared Model machinery (declared in model.hpp) --------------------

void Model::save_weights(const std::string& path) const {
  const nn::NamedParams params = named_params();
  nn::save_params(path, params);
}

void Model::load_weights(const std::string& path) {
  nn::NamedParams params = named_params();
  nn::load_params(path, params);
}

nn::Var initial_path_states(const data::Sample& s, const data::Scaler& sc,
                            std::size_t state_dim) {
  nn::Tensor t(s.paths.size(), state_dim);
  for (std::size_t i = 0; i < s.paths.size(); ++i)
    t(i, 0) = sc.traffic(s.paths[i].traffic_bps);
  return nn::constant(std::move(t));
}

nn::Var initial_link_states(const data::Sample& s, const data::Scaler& sc,
                            std::size_t state_dim) {
  nn::Tensor t(s.num_links(), state_dim);
  for (std::size_t l = 0; l < s.num_links(); ++l)
    t(l, 0) = sc.capacity(s.link_capacity_bps[l]);
  return nn::constant(std::move(t));
}

nn::Var initial_node_states(const data::Sample& s, const data::Scaler& sc,
                            std::size_t state_dim) {
  nn::Tensor t(s.num_nodes, state_dim);
  for (std::size_t n = 0; n < s.num_nodes; ++n)
    t(n, 0) = sc.queue(s.queue_pkts[n]);
  return nn::constant(std::move(t));
}

// ---- original RouteNet ---------------------------------------------------

RouteNet::RouteNet(ModelConfig cfg)
    : cfg_(cfg),
      rnn_path_([&] {
        util::RngStream rng(cfg.init_seed);
        return nn::GRUCell(cfg.state_dim, cfg.state_dim, rng, "rnn_p");
      }()),
      rnn_link_([&] {
        util::RngStream rng(cfg.init_seed + 1);
        return nn::GRUCell(cfg.state_dim, cfg.state_dim, rng, "rnn_l");
      }()),
      readout_([&] {
        util::RngStream rng(cfg.init_seed + 2);
        return nn::Mlp({cfg.state_dim, cfg.readout_hidden, 1},
                       nn::Activation::kRelu, rng, "readout");
      }()) {}

ForwardTrace RouteNet::forward_traced(const data::Sample& sample,
                                      const data::Scaler& scaler) const {
  const MpPlan plan = build_plan(sample, /*use_nodes=*/false);
  nn::Var h_path = initial_path_states(sample, scaler, cfg_.state_dim);
  nn::Var h_link = initial_link_states(sample, scaler, cfg_.state_dim);

  for (std::size_t iter = 0; iter < cfg_.iterations; ++iter) {
    nn::Var hidden = h_path;
    nn::Var link_msg;  // accumulated per-position messages, (L x H)
    for (const SeqPosition& pos : plan.positions) {
      const nn::Var x = nn::gather_rows(h_link, pos.elem_ids);
      const nn::Var h = nn::gather_rows(hidden, pos.path_rows);
      const nn::Var h2 = rnn_path_.step(x, h);
      hidden = nn::scatter_rows(hidden, pos.path_rows, h2);
      const nn::Var msg = nn::segment_sum(h2, pos.elem_ids, plan.num_links);
      link_msg = link_msg.defined() ? nn::add(link_msg, msg) : msg;
    }
    h_path = hidden;
    if (link_msg.defined()) h_link = rnn_link_.step(link_msg, h_link);
  }

  ForwardTrace tr;
  tr.path_states = h_path;
  tr.link_states = h_link;
  tr.predictions = readout_.forward(h_path);
  return tr;
}

nn::Var RouteNet::forward(const data::Sample& sample,
                          const data::Scaler& scaler) const {
  return forward_traced(sample, scaler).predictions;
}

nn::NamedParams RouteNet::named_params() const {
  nn::NamedParams out;
  for (auto& p : rnn_path_.named_params()) out.push_back(std::move(p));
  for (auto& p : rnn_link_.named_params()) out.push_back(std::move(p));
  for (auto& p : readout_.named_params()) out.push_back(std::move(p));
  return out;
}

}  // namespace rnx::core
