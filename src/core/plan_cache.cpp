#include "core/plan_cache.hpp"

namespace rnx::core {

std::shared_ptr<const MpPlan> PlanCache::get(const data::Sample& sample,
                                             bool use_nodes) {
  const Key key{&sample, use_nodes};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Build outside the lock: plans for large samples are expensive and
  // build_plan is deterministic, so a duplicate concurrent build is
  // wasted work at worst, never an inconsistency.
  auto plan = std::make_shared<const MpPlan>(build_plan(sample, use_nodes));
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.try_emplace(key, plan);
  return inserted ? plan : it->second;
}

void PlanCache::invalidate(const data::Sample& sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.erase(Key{&sample, false});
  map_.erase(Key{&sample, true});
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::uint64_t PlanCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{map_.size(), hits_, misses_};
}

}  // namespace rnx::core
