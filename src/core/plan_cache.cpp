#include "core/plan_cache.hpp"

#include <algorithm>

namespace rnx::core {

std::shared_ptr<const MpPlan> PlanCache::get(const data::Sample& sample,
                                             bool use_nodes) {
  const Key key{&sample, use_nodes};
  {
    const util::MutexLock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
      return it->second.plan;
    }
    ++misses_;
  }
  // Build outside the lock: plans for large samples are expensive and
  // build_plan is deterministic, so a duplicate concurrent build is
  // wasted work at worst, never an inconsistency.
  auto plan = std::make_shared<const MpPlan>(build_plan(sample, use_nodes));
  const std::size_t cost = plan->bytes();
  const util::MutexLock lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // First writer won the race; serve its copy and touch it.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.plan;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{plan, cost, lru_.begin()});
  bytes_ += cost;
  peak_bytes_ = std::max(peak_bytes_, bytes_);
  // The newly inserted entry may itself be evicted when it alone exceeds
  // the budget — the caller's shared_ptr keeps the plan alive regardless.
  enforce_budget_locked();
  return plan;
}

void PlanCache::drop_locked(
    std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  map_.erase(it);
}

void PlanCache::enforce_budget_locked() {
  if (byte_budget_ == 0) return;
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const auto victim = map_.find(lru_.back());
    drop_locked(victim);
    ++evictions_;
  }
}

void PlanCache::invalidate(const data::Sample& sample) {
  const util::MutexLock lock(mu_);
  for (const bool use_nodes : {false, true})
    if (const auto it = map_.find(Key{&sample, use_nodes}); it != map_.end())
      drop_locked(it);
}

void PlanCache::clear() {
  const util::MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

void PlanCache::set_byte_budget(std::size_t budget) {
  const util::MutexLock lock(mu_);
  byte_budget_ = budget;
  enforce_budget_locked();
}

std::size_t PlanCache::size() const {
  const util::MutexLock lock(mu_);
  return map_.size();
}

std::uint64_t PlanCache::hits() const {
  const util::MutexLock lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  const util::MutexLock lock(mu_);
  return misses_;
}

PlanCache::Stats PlanCache::stats() const {
  const util::MutexLock lock(mu_);
  Stats s;
  s.size = map_.size();
  s.lookups = hits_ + misses_;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.peak_bytes = peak_bytes_;
  return s;
}

}  // namespace rnx::core
