// Memoized message-passing plans.
//
// build_plan() is pure in the sample's topology/routing, yet the seed
// trainer rebuilt it on every forward() — once per epoch per sample.  The
// cache keys plans by sample *identity* (object address) and the
// use_nodes flag, so a full training run builds each plan exactly once.
//
// Identity keying makes the cache O(1) with zero hashing of sample
// contents, but ties an entry's validity to the sample object's lifetime:
// callers must invalidate() (or clear()) before a keyed sample is
// destroyed or mutated.  The intended scope is one Trainer::fit() /
// evaluation pass over a Dataset that outlives the cache — exactly how
// core::Trainer uses it.
//
// Thread-safe: lookups and inserts take an internal mutex; on a miss the
// plan is built outside the lock, so concurrent misses may build the same
// plan twice but only one copy is kept (first writer wins; the plans are
// identical because build_plan is deterministic).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/plan.hpp"

namespace rnx::core {

class PlanCache {
 public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for (sample, use_nodes), building and caching it on a miss.
  /// The returned pointer stays valid independently of later invalidation
  /// (shared ownership).
  [[nodiscard]] std::shared_ptr<const MpPlan> get(const data::Sample& sample,
                                                  bool use_nodes);

  /// Drop both variants (use_nodes true/false) cached for this sample.
  void invalidate(const data::Sample& sample);
  /// Drop everything.
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  /// Consistent point-in-time view of all three counters under one lock
  /// (three separate getters can interleave with concurrent inserts).
  /// The serving stats snapshot reports this (serve/stats.hpp).
  struct Stats {
    std::size_t size = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Key {
    const data::Sample* sample;
    bool use_nodes;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<const void*>{}(k.sample) ^
             (k.use_nodes ? 0x9e3779b97f4a7c15ULL : 0);
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const MpPlan>, KeyHash> map_;
  std::uint64_t hits_ = 0;    // under mu_
  std::uint64_t misses_ = 0;  // under mu_
};

}  // namespace rnx::core
