// Memoized message-passing plans, with an optional byte budget.
//
// build_plan() is pure in the sample's topology/routing, yet the seed
// trainer rebuilt it on every forward() — once per epoch per sample.  The
// cache keys plans by sample *identity* (object address) and the
// use_nodes flag, so a full training run builds each plan exactly once.
//
// Identity keying makes the cache O(1) with zero hashing of sample
// contents, but ties an entry's validity to the sample object's lifetime:
// callers must invalidate() (or clear()) before a keyed sample is
// destroyed or mutated.  The intended scope is one Trainer::fit() /
// evaluation pass over a Dataset that outlives the cache — exactly how
// core::Trainer uses it.
//
// Byte budget (DESIGN.md §G): set_byte_budget(B) caps the sum of
// MpPlan::bytes() over resident entries; inserts that push the total over
// B evict least-recently-used entries until it fits.  Eviction only drops
// the cache's reference — pointers already handed out stay valid (shared
// ownership), so even a plan larger than the whole budget serves its
// caller and is simply not retained.  Budget 0 (the default) means
// unlimited: training workloads keep today's keep-everything behavior.
//
// Thread-safe: lookups and inserts take an internal mutex; on a miss the
// plan is built outside the lock, so concurrent misses may build the same
// plan twice but only one copy is kept (first writer wins; the plans are
// identical because build_plan is deterministic).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/plan.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace rnx::core {

class PlanCache {
 public:
  /// byte_budget caps resident plan bytes (0 = unlimited).
  explicit PlanCache(std::size_t byte_budget = 0)
      : byte_budget_(byte_budget) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for (sample, use_nodes), building and caching it on a miss.
  /// The returned pointer stays valid independently of later invalidation
  /// or eviction (shared ownership).
  [[nodiscard]] std::shared_ptr<const MpPlan> get(const data::Sample& sample,
                                                  bool use_nodes);

  /// Drop both variants (use_nodes true/false) cached for this sample.
  void invalidate(const data::Sample& sample);
  /// Drop everything (counters and peak_bytes survive; bytes drops to 0).
  void clear();
  /// Change the byte budget (0 = unlimited); evicts immediately if the
  /// resident set no longer fits.
  void set_byte_budget(std::size_t budget);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  /// Consistent point-in-time view of all counters under one lock
  /// (separate getters can interleave with concurrent inserts).  The
  /// serving stats snapshot reports this (serve/stats.hpp).  Invariants
  /// the tests pin: hits + misses == lookups; bytes <= peak_bytes;
  /// bytes <= budget whenever a budget is set.
  struct Stats {
    std::size_t size = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;       ///< resident plan bytes right now
    std::size_t peak_bytes = 0;  ///< high-water mark of bytes
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Key {
    const data::Sample* sample;
    bool use_nodes;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<const void*>{}(k.sample) ^
             (k.use_nodes ? 0x9e3779b97f4a7c15ULL : 0);
    }
  };
  struct Entry {
    std::shared_ptr<const MpPlan> plan;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru;  ///< position in lru_ (front = hottest)
  };

  /// Drop one entry (map + LRU list + byte accounting).
  void drop_locked(std::unordered_map<Key, Entry, KeyHash>::iterator it)
      RNX_REQUIRES(mu_);
  /// Evict LRU entries until bytes_ fits the budget.
  void enforce_budget_locked() RNX_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_ RNX_GUARDED_BY(mu_);
  /// Front = most recently used.
  std::list<Key> lru_ RNX_GUARDED_BY(mu_);
  std::size_t byte_budget_ RNX_GUARDED_BY(mu_) = 0;  // 0 = unlimited
  std::size_t bytes_ RNX_GUARDED_BY(mu_) = 0;
  std::size_t peak_bytes_ RNX_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ RNX_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ RNX_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ RNX_GUARDED_BY(mu_) = 0;
};

}  // namespace rnx::core
