// Extended RouteNet — the paper's contribution (§2).
//
// Adds a third entity, the *node* (forwarding device), to RouteNet's
// path-link message passing:
//   1. path update — RNN_P consumes the interleaved sequence
//      node1-link1-node2-link2-... of node and link states along the
//      path (the original used links only);
//   2. link update — unchanged: RNN_L over the summed positional
//      messages from paths crossing the link;
//   3. node update — RNN_N over the element-wise sum of the states of
//      all paths traversing the node (ModelConfig::node_rule selects the
//      paper's rule or the positional-message ablation);
//   4. readout on the final path states.
// Node features (here: queue size) enter through the initial node states,
// which is what lets this model resolve the per-device queue regimes the
// original architecture cannot see.
#pragma once

#include "core/model.hpp"
#include "nn/gru.hpp"
#include "nn/layers.hpp"

namespace rnx::core {

class ExtendedRouteNet final : public Model {
 public:
  explicit ExtendedRouteNet(ModelConfig cfg);

  [[nodiscard]] nn::Var forward(const data::Sample& sample,
                                const data::Scaler& scaler) const override;
  [[nodiscard]] ForwardTrace forward_traced(
      const data::Sample& sample, const data::Scaler& scaler) const override;
  [[nodiscard]] std::string name() const override { return "routenet-ext"; }
  [[nodiscard]] ModelKind kind() const noexcept override {
    return ModelKind::kExtended;
  }
  [[nodiscard]] nn::NamedParams named_params() const override;
  [[nodiscard]] const ModelConfig& config() const override { return cfg_; }
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

 private:
  ModelConfig cfg_;
  nn::GRUCell rnn_path_;
  nn::GRUCell rnn_link_;
  nn::GRUCell rnn_node_;
  nn::Mlp readout_;
};

}  // namespace rnx::core
