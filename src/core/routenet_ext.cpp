#include "core/routenet_ext.hpp"

#include <stdexcept>
#include <string>

#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "nn/ops.hpp"

namespace rnx::core {

ExtendedRouteNet::ExtendedRouteNet(ModelConfig cfg)
    : cfg_(cfg),
      rnn_path_([&] {
        util::RngStream rng(cfg.init_seed);
        return nn::GRUCell(cfg.state_dim, cfg.state_dim, rng, "rnn_p");
      }()),
      rnn_link_([&] {
        util::RngStream rng(cfg.init_seed + 1);
        return nn::GRUCell(cfg.state_dim, cfg.state_dim, rng, "rnn_l");
      }()),
      rnn_node_([&] {
        util::RngStream rng(cfg.init_seed + 3);
        return nn::GRUCell(cfg.state_dim, cfg.state_dim, rng, "rnn_n");
      }()),
      readout_([&] {
        util::RngStream rng(cfg.init_seed + 2);
        return nn::Mlp({cfg.state_dim, cfg.readout_hidden, 1},
                       nn::Activation::kRelu, rng, "readout");
      }()) {
  if (cfg_.scenario_features && cfg_.state_dim < kScenarioFeatureMinDim)
    throw std::invalid_argument(
        "ExtendedRouteNet: scenario features need state_dim >= " +
        std::to_string(kScenarioFeatureMinDim));
  rnn_path_.set_fused(cfg_.fused_gru);
  rnn_link_.set_fused(cfg_.fused_gru);
  rnn_node_.set_fused(cfg_.fused_gru);
}

ForwardTrace ExtendedRouteNet::forward_traced(
    const data::Sample& sample, const data::Scaler& scaler) const {
  std::shared_ptr<const MpPlan> plan_holder;
  const MpPlan& plan = plan_for(sample, /*use_nodes=*/true, plan_holder);
  nn::Var h_path = initial_path_states(sample, scaler, cfg_);
  nn::Var h_link = initial_link_states(sample, scaler, cfg_);
  nn::Var h_node = initial_node_states(sample, scaler, cfg_);

  // Optional mean normalization of the node aggregation (see ModelConfig):
  // per-node 1/count, as a constant (N x H) multiplier.
  nn::Var node_inv_count;
  if (cfg_.node_mean_aggregation) {
    std::vector<double> counts(plan.num_nodes, 0.0);
    for (const auto n : plan.inc_node_ids) counts[n] += 1.0;
    nn::Tensor inv(plan.num_nodes, cfg_.state_dim);
    for (std::size_t n = 0; n < plan.num_nodes; ++n) {
      const double v = counts[n] > 0.0 ? 1.0 / counts[n] : 0.0;
      for (std::size_t c = 0; c < cfg_.state_dim; ++c) inv(n, c) = v;
    }
    node_inv_count = nn::constant(std::move(inv));
  }
  // And the symmetric link-side normalizer (see ModelConfig).
  nn::Var link_inv_count;
  if (cfg_.link_mean_aggregation)
    link_inv_count = link_inv_count_var(plan, cfg_.state_dim);

  for (std::size_t iter = 0; iter < cfg_.iterations; ++iter) {
    nn::Var hidden = h_path;
    nn::Var link_msg;  // (L x H) summed positional messages to links
    nn::Var node_msg;  // (N x H) only for the positional-message ablation
    for (std::size_t p = 0; p < plan.num_positions(); ++p) {
      // The interleaved sequence: even positions read node states, odd
      // positions read link states (paper Fig. 1).
      const PlanPosition pos = plan.position(p);
      const nn::Var x = pos.is_node ? nn::gather_rows(h_node, pos.elem_ids)
                                    : nn::gather_rows(h_link, pos.elem_ids);
      const nn::Var h = nn::gather_rows(hidden, pos.path_rows);
      const nn::Var h2 = rnn_path_.step(x, h);
      hidden = nn::scatter_rows(hidden, pos.path_rows, h2);
      if (!pos.is_node) {
        const nn::Var msg = nn::segment_sum(h2, pos.elem_ids, plan.num_links);
        link_msg = link_msg.defined() ? nn::add(link_msg, msg) : msg;
      } else if (cfg_.node_rule == NodeUpdateRule::kPositionalMessages) {
        const nn::Var msg = nn::segment_sum(h2, pos.elem_ids, plan.num_nodes);
        node_msg = node_msg.defined() ? nn::add(node_msg, msg) : msg;
      }
    }
    h_path = hidden;
    if (link_msg.defined()) {
      if (link_inv_count.defined())
        link_msg = nn::mul(link_msg, link_inv_count);
      h_link = rnn_link_.step(link_msg, h_link);
    }

    if (cfg_.node_rule == NodeUpdateRule::kSumPathStates) {
      // The paper's rule: element-wise sum of the (freshly updated)
      // states of all paths traversing each node, fed to RNN_N.
      const nn::Var gathered = nn::gather_rows(h_path, plan.inc_path_rows);
      node_msg = nn::segment_sum(gathered, plan.inc_node_ids, plan.num_nodes);
    }
    if (node_msg.defined()) {
      if (node_inv_count.defined())
        node_msg = nn::mul(node_msg, node_inv_count);
      h_node = rnn_node_.step(node_msg, h_node);
    }
  }

  ForwardTrace tr;
  tr.path_states = h_path;
  tr.link_states = h_link;
  tr.node_states = h_node;
  tr.predictions = readout_.forward(h_path);
  return tr;
}

nn::Var ExtendedRouteNet::forward(const data::Sample& sample,
                                  const data::Scaler& scaler) const {
  return forward_traced(sample, scaler).predictions;
}

std::unique_ptr<Model> ExtendedRouteNet::clone() const {
  auto copy = std::make_unique<ExtendedRouteNet>(cfg_);
  copy->copy_params_from(*this);
  return copy;
}

nn::NamedParams ExtendedRouteNet::named_params() const {
  nn::NamedParams out;
  for (auto& p : rnn_path_.named_params()) out.push_back(std::move(p));
  for (auto& p : rnn_link_.named_params()) out.push_back(std::move(p));
  for (auto& p : rnn_node_.named_params()) out.push_back(std::move(p));
  for (auto& p : readout_.named_params()) out.push_back(std::move(p));
  return out;
}

}  // namespace rnx::core
