// Training loop: Adam over per-sample MSE on z-scored log delay, with
// gradient accumulation across a small batch of samples, global-norm
// clipping and multiplicative learning-rate decay — the recipe used by
// the RouteNet reference implementation, scaled to CPU.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "nn/optimizer.hpp"

namespace rnx::core {

struct TrainConfig {
  std::size_t epochs = 25;
  std::size_t batch_samples = 8;   ///< samples per optimizer step
  double lr = 1e-3;
  double lr_decay = 0.98;          ///< multiplicative, per epoch
  double clip_norm = 10.0;         ///< global gradient-norm ceiling
  std::uint64_t min_delivered = 10;  ///< label-quality threshold
  PredictionTarget target = PredictionTarget::kDelay;
  std::uint64_t seed = 7;          ///< shuffling stream
  std::size_t patience = 0;        ///< early stop after this many epochs
                                   ///< without val improvement (0 = off)
  bool verbose = true;
};

struct EpochRecord {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double val_loss = 0.0;  ///< NaN when no validation set was given
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(Model& model, TrainConfig cfg);

  /// Train on `train`; optionally track loss on `val` each epoch.
  /// Returns the per-epoch history.
  std::vector<EpochRecord> fit(const data::Dataset& train,
                               const data::Scaler& scaler,
                               const data::Dataset* val = nullptr);

  /// Mean per-sample loss without building the tape (inference mode).
  [[nodiscard]] double evaluate_loss(const data::Dataset& ds,
                                     const data::Scaler& scaler) const;

  /// Loss for one sample: MSE between the prediction and the z-scored
  /// log label (delay or jitter, per `target`) over the label-valid
  /// paths.  Undefined Var when the sample has no valid labels (caller
  /// must skip).
  [[nodiscard]] static nn::Var sample_loss(
      const Model& model, const data::Sample& sample,
      const data::Scaler& scaler, std::uint64_t min_delivered,
      PredictionTarget target = PredictionTarget::kDelay);

 private:
  Model& model_;
  TrainConfig cfg_;
  nn::Adam opt_;
};

}  // namespace rnx::core
