// Training engine: Adam over per-sample MSE on z-scored log delay, with
// gradient accumulation across a small batch of samples, global-norm
// clipping and multiplicative learning-rate decay — the recipe used by
// the RouteNet reference implementation, scaled to CPU.
//
// The engine is data-parallel over the accumulation batch (DESIGN.md §T):
// each lane owns a full model replica (weights synced after every
// optimizer step), computes forward+backward for its samples, and parks
// the per-sample gradients in per-sample slots.  At the batch boundary
// the slots are merged into the primary model's gradients in sample
// order, scaled by the number of samples that actually contributed (so a
// trailing partial batch gets the same effective learning rate as a full
// one), clipped, and stepped.  Because every per-sample gradient is
// computed from identical weights and the merge order is fixed, the
// trained weights are bitwise-identical for ANY thread count, including
// the serial path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/plan_cache.hpp"
#include "data/dataset.hpp"
#include "nn/optimizer.hpp"
#include "util/thread_pool.hpp"

namespace rnx::data {
class SampleSource;
}

namespace rnx::core {

struct TrainConfig {
  std::size_t epochs = 25;
  std::size_t batch_samples = 8;   ///< samples per optimizer step
  double lr = 1e-3;
  double lr_decay = 0.98;          ///< multiplicative, per epoch
  double clip_norm = 10.0;         ///< global gradient-norm ceiling
  std::uint64_t min_delivered = 10;  ///< label-quality threshold
  PredictionTarget target = PredictionTarget::kDelay;
  std::uint64_t seed = 7;          ///< shuffling stream
  std::size_t patience = 0;        ///< early stop after this many epochs
                                   ///< without val improvement (0 = off)
  std::size_t threads = 1;         ///< data-parallel lanes (0 or 1 = serial)
  bool use_plan_cache = true;      ///< memoize build_plan across epochs
  bool verbose = true;

  // -- crash-safe checkpointing (DESIGN.md §R) ------------------------
  /// Directory for the .rnxc checkpoint; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Optimizer steps between checkpoints (0 = end-of-epoch only).
  std::size_t checkpoint_every = 1;
  /// Resume from checkpoint_dir's checkpoint if one exists.  The
  /// checkpointed config digest and scaler must match this run's
  /// (CheckpointError otherwise); the resumed trajectory is then
  /// bitwise-identical to the uninterrupted one.
  bool resume = false;
  /// Polled after every optimizer step; returning true finalizes one
  /// last checkpoint (if enabled) and exits fit cleanly with
  /// Trainer::interrupted() set — how SIGINT/SIGTERM stop training
  /// without losing the batch in flight.
  std::function<bool()> stop_requested;
};

struct EpochRecord {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double val_loss = 0.0;  ///< NaN when no validation set was given
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(Model& model, TrainConfig cfg);

  /// Train on `train`; optionally track loss on `val` each epoch.
  /// Returns the per-epoch history.
  std::vector<EpochRecord> fit(const data::Dataset& train,
                               const data::Scaler& scaler,
                               const data::Dataset* val = nullptr);

  /// Streaming fit (DESIGN.md §D): consume `train` pass-by-pass from a
  /// SampleSource — e.g. a sharded on-disk store larger than RAM — with
  /// peak sample residency bounded by the batch size plus the source's
  /// prefetch window.  Sample ORDER is the source's (the source owns
  /// shuffling); given the same sample sequence, updates are
  /// bitwise-identical to the in-memory path for any thread count.
  /// Address-keyed plan caching engages only when the source guarantees
  /// stable sample addresses; for transient streaming samples the model
  /// runs cache-detached (caching a recycled address would serve a
  /// stale plan).
  std::vector<EpochRecord> fit_stream(data::SampleSource& train,
                                      const data::Scaler& scaler,
                                      data::SampleSource* val = nullptr);

  /// Mean per-sample loss without building the tape (inference mode);
  /// parallel over the trainer's lanes.
  [[nodiscard]] double evaluate_loss(const data::Dataset& ds,
                                     const data::Scaler& scaler) const;

  /// Streaming evaluation over one pass of `src`, windowed so residency
  /// stays bounded; losses are summed in sample order, so the result is
  /// bitwise-equal to the in-memory overload on the same samples.
  [[nodiscard]] double evaluate_loss(data::SampleSource& src,
                                     const data::Scaler& scaler) const;

  /// Loss for one sample: MSE between the prediction and the z-scored
  /// log label (delay or jitter, per `target`) over the label-valid
  /// paths.  Undefined Var when the sample has no valid labels (caller
  /// must skip).
  [[nodiscard]] static nn::Var sample_loss(
      const Model& model, const data::Sample& sample,
      const data::Scaler& scaler, std::uint64_t min_delivered,
      PredictionTarget target = PredictionTarget::kDelay);

  /// True when the last fit/fit_stream returned because stop_requested
  /// fired (vs. running to completion) — the tools map this to the
  /// conventional 128+signum exit code.
  [[nodiscard]] bool interrupted() const noexcept { return interrupted_; }

 private:
  Model& model_;
  TrainConfig cfg_;
  nn::Adam opt_;
  mutable std::optional<util::ThreadPool> pool_;  ///< lanes > 1 only
  bool interrupted_ = false;
};

}  // namespace rnx::core
