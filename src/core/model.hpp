// Common interface of the two RouteNet variants.
//
// A model maps one dataset sample (topology + routing + traffic [+ queue
// sizes]) to one prediction per path: the z-scored log mean delay (see
// data::Scaler).  Both variants are deterministic functions of their
// weights; all stochasticity lives in initialization and training.
#pragma once

#include <string>

#include "core/config.hpp"
#include "data/normalize.hpp"
#include "data/sample.hpp"
#include "nn/serialize.hpp"

namespace rnx::core {

/// Intermediate and final products of one forward pass, exposed for
/// diagnostics (bench_fig1 audits the message-passing structure).
struct ForwardTrace {
  nn::Var path_states;  ///< (P x H) after the last iteration
  nn::Var link_states;  ///< (L x H)
  nn::Var node_states;  ///< (N x H); undefined Var for the original model
  nn::Var predictions;  ///< (P x 1) normalized log-delay
};

class Model {
 public:
  virtual ~Model() = default;

  /// Predictions (P x 1 Var) for every path of the sample, in the
  /// sample's path order.  Differentiable; wrap in nn::NoGradGuard for
  /// inference.
  [[nodiscard]] virtual nn::Var forward(const data::Sample& sample,
                                        const data::Scaler& scaler) const = 0;
  /// As forward(), also exposing final entity states.
  [[nodiscard]] virtual ForwardTrace forward_traced(
      const data::Sample& sample, const data::Scaler& scaler) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual nn::NamedParams named_params() const = 0;
  [[nodiscard]] virtual const ModelConfig& config() const = 0;

  /// Weight persistence via nn::serialize (strict name/shape matching).
  void save_weights(const std::string& path) const;
  void load_weights(const std::string& path);
};

// -- shared state builders (implemented in plan.cpp's TU neighbour) ------

/// (P x H) initial path states: column 0 carries the z-scored offered
/// traffic, the rest zero-padding — RouteNet's feature encoding.
[[nodiscard]] nn::Var initial_path_states(const data::Sample& s,
                                          const data::Scaler& sc,
                                          std::size_t state_dim);
/// (L x H): column 0 carries the z-scored link capacity.
[[nodiscard]] nn::Var initial_link_states(const data::Sample& s,
                                          const data::Scaler& sc,
                                          std::size_t state_dim);
/// (N x H): column 0 carries the z-scored queue size — the node feature
/// this paper introduces.
[[nodiscard]] nn::Var initial_node_states(const data::Sample& s,
                                          const data::Scaler& sc,
                                          std::size_t state_dim);

}  // namespace rnx::core
