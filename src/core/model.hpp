// Common interface of the two RouteNet variants.
//
// A model maps one dataset sample (topology + routing + traffic [+ queue
// sizes]) to one prediction per path: the z-scored log mean delay (see
// data::Scaler).  Both variants are deterministic functions of their
// weights; all stochasticity lives in initialization and training.
#pragma once

#include <exception>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "data/normalize.hpp"
#include "data/sample.hpp"
#include "nn/serialize.hpp"

namespace rnx::util {
class ThreadPool;
}

namespace rnx::core {

class MpPlan;
class PlanCache;

/// Intermediate and final products of one forward pass, exposed for
/// diagnostics (bench_fig1 audits the message-passing structure).
struct ForwardTrace {
  nn::Var path_states;  ///< (P x H) after the last iteration
  nn::Var link_states;  ///< (L x H)
  nn::Var node_states;  ///< (N x H); undefined Var for the original model
  nn::Var predictions;  ///< (P x 1) normalized log-delay
};

class Model {
 public:
  virtual ~Model() = default;

  /// Predictions (P x 1 Var) for every path of the sample, in the
  /// sample's path order.  Differentiable; wrap in nn::NoGradGuard for
  /// inference.
  [[nodiscard]] virtual nn::Var forward(const data::Sample& sample,
                                        const data::Scaler& scaler) const = 0;
  /// As forward(), also exposing final entity states.
  [[nodiscard]] virtual ForwardTrace forward_traced(
      const data::Sample& sample, const data::Scaler& scaler) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Stable architecture tag ("orig"/"ext" on disk and CLI); what a
  /// model bundle persists so load can reconstruct the right class.
  [[nodiscard]] virtual ModelKind kind() const noexcept = 0;
  [[nodiscard]] virtual nn::NamedParams named_params() const = 0;
  [[nodiscard]] virtual const ModelConfig& config() const = 0;

  /// Deep copy: same architecture and current weight values, independent
  /// tape nodes.  The data-parallel trainer clones one replica per lane
  /// so concurrent backward sweeps never share tape state (DESIGN.md §T).
  [[nodiscard]] virtual std::unique_ptr<Model> clone() const = 0;

  /// Attach a message-passing plan memo (nullptr detaches).  The cache is
  /// not owned; it must outlive every forward() issued while attached.
  void set_plan_cache(PlanCache* cache) noexcept { plan_cache_ = cache; }
  [[nodiscard]] PlanCache* plan_cache() const noexcept { return plan_cache_; }

  /// Batched inference: predictions (value tensors, one P x 1 per sample)
  /// for a span of samples, in order.  Runs under NoGradGuard; with a
  /// pool, samples are evaluated concurrently (forward() only reads the
  /// weights, so lanes can share this model).  A non-null `skip` mask
  /// (one entry per sample) leaves the marked slots as empty tensors
  /// without paying their forward pass — eval uses it for samples with
  /// no label-valid paths.
  [[nodiscard]] std::vector<nn::Tensor> forward_batch(
      std::span<const data::Sample> samples, const data::Scaler& scaler,
      util::ThreadPool* pool = nullptr,
      const std::vector<char>* skip = nullptr) const;

  /// Scattered-batch inference: as forward_batch, but over sample
  /// *pointers* so the batch can gather samples that are not contiguous
  /// in memory — the serving scheduler coalesces samples from many
  /// queued requests, and plan-cache keying by sample address requires
  /// passing the original objects, never copies.  A non-null `errors`
  /// vector (resized to samples.size()) captures each sample's forward
  /// exception in its own slot instead of failing the whole batch, so a
  /// multi-request batch isolates one request's bad sample from the
  /// others; the corresponding output tensor stays empty.  With `errors`
  /// null, the first exception propagates as in forward_batch.  The pool
  /// is acquired with try_parallel_for: if another job owns it, this
  /// batch runs inline on the calling thread rather than blocking.
  [[nodiscard]] std::vector<nn::Tensor> forward_batch(
      std::span<const data::Sample* const> samples,
      const data::Scaler& scaler, util::ThreadPool* pool = nullptr,
      std::vector<std::exception_ptr>* errors = nullptr,
      const std::vector<char>* skip = nullptr) const;

  /// Weight persistence via nn::serialize (strict name/shape matching).
  void save_weights(const std::string& path) const;
  void load_weights(const std::string& path);

  /// Copy every parameter value of `src` into this model (shapes/names
  /// must match — same architecture).  Used for replica weight sync.
  void copy_params_from(const Model& src);

 protected:
  /// The plan for (sample, use_nodes): served from the attached cache
  /// when present, else built into `local` (which owns it either way).
  [[nodiscard]] const MpPlan& plan_for(const data::Sample& sample,
                                       bool use_nodes,
                                       std::shared_ptr<const MpPlan>& local) const;

 private:
  PlanCache* plan_cache_ = nullptr;
};

/// RAII guard restoring a model's attached plan cache on scope exit —
/// every code path that attaches a run-scoped cache (Trainer::fit) or
/// detaches for transient streamed samples (fit_stream,
/// eval::predict_source; DESIGN.md §D) must not leave the model
/// pointing at a dead stack frame's cache when an exception unwinds.
class PlanCacheScope {
 public:
  explicit PlanCacheScope(Model& model) noexcept
      : model_(model), prev_(model.plan_cache()) {}
  ~PlanCacheScope() { model_.set_plan_cache(prev_); }
  PlanCacheScope(const PlanCacheScope&) = delete;
  PlanCacheScope& operator=(const PlanCacheScope&) = delete;

 private:
  Model& model_;
  PlanCache* prev_;
};

/// Construct-from-config factory: the freshly initialized model of the
/// given kind (weights from cfg.init_seed, ready for load_weights).
/// Deserialization and the CLI tools route through this so every
/// consumer agrees on the kind -> class mapping.
[[nodiscard]] std::unique_ptr<Model> make_model(ModelKind kind,
                                                const ModelConfig& cfg);

// -- shared state builders (implemented in plan.cpp's TU neighbour) ------

/// (P x H) initial path states: column 0 carries the z-scored offered
/// traffic — or, with cfg.scale_invariant_features, the dimensionless
/// traffic-over-bottleneck-capacity ratio (DESIGN.md §G) — the rest
/// zero-padding.  With cfg.scenario_features (DESIGN.md §S), column 1
/// carries the path's scheduling class scaled to [0, 1] and columns 2..4
/// a one-hot of the scenario's traffic process; requires
/// kScenarioFeatureMinDim state width and a sample that records its
/// scenario (throws std::runtime_error otherwise — the bundle
/// feature-gating contract).
[[nodiscard]] nn::Var initial_path_states(const data::Sample& s,
                                          const data::Scaler& sc,
                                          const ModelConfig& cfg);
/// (L x H): column 0 carries the z-scored link capacity — or the
/// per-link utilization under cfg.scale_invariant_features; with
/// cfg.scenario_features, columns 1..3 a one-hot of the port's
/// scheduling policy (same gating contract as initial_path_states).
[[nodiscard]] nn::Var initial_link_states(const data::Sample& s,
                                          const data::Scaler& sc,
                                          const ModelConfig& cfg);
/// (N x H): column 0 carries the z-scored queue size — the node feature
/// this paper introduces — or the queue occupancy fraction under
/// cfg.scale_invariant_features.
[[nodiscard]] nn::Var initial_node_states(const data::Sample& s,
                                          const data::Scaler& sc,
                                          const ModelConfig& cfg);
/// (L x H) constant multiplier of per-link 1/message-count — the
/// link_mean_aggregation normalizer shared by both forwards.
[[nodiscard]] nn::Var link_inv_count_var(const MpPlan& plan,
                                         std::size_t state_dim);

}  // namespace rnx::core
