// Crash-safe training checkpoints: the .rnxc format (DESIGN.md §R).
//
// One file captures EVERYTHING the training loop's trajectory depends
// on: model parameters, Adam moments + step count, the fitted Scaler
// moments, the shuffle RNG state as of the current epoch's start, the
// epoch/batch/stream cursors, the in-epoch loss accumulators and the
// early-stopping state.  Restoring it and re-running therefore produces
// weights BITWISE-IDENTICAL to the uninterrupted run — pinned by the
// kill-at-every-batch-boundary sweep in tests/checkpoint_test.cpp.
//
// Framing matches every other rnx on-disk format: magic "RNXC", u32
// version, u64 body size, u64 FNV-1a-64 body checksum, body.  Writes go
// through data::io::atomic_write_stream, so a crash mid-checkpoint
// leaves the previous checkpoint intact — at any instant the checkpoint
// directory holds one valid .rnxc (or none, before the first boundary).
//
// Versioning rule (same as .rnxd/.rnxb): any layout change bumps
// kCheckpointVersion; readers reject versions outside
// [kMinCheckpointVersion, kCheckpointVersion] with a typed error.  A
// checkpoint additionally embeds a config digest (model + train config +
// dataset size); resuming under ANY changed hyperparameter is refused
// with a descriptive CheckpointError instead of silently diverging.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/normalize.hpp"
#include "nn/tensor.hpp"

namespace rnx::core {

inline constexpr char kCheckpointMagic[4] = {'R', 'N', 'X', 'C'};
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::uint32_t kMinCheckpointVersion = 1;

/// Anything wrong with a checkpoint file or a resume attempt: missing /
/// corrupt / truncated file, version or checksum mismatch, config or
/// scaler drift between the checkpointed run and the resuming one.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

struct TrainCheckpoint {
  bool streaming = false;  ///< written by fit_stream (cursor semantics)
  std::uint64_t config_digest = 0;

  // -- trajectory cursors ----------------------------------------------
  std::uint64_t epoch = 0;           ///< epoch in progress (0-based)
  std::uint64_t batch_in_epoch = 0;  ///< optimizer steps done this epoch
  std::uint64_t samples_done = 0;    ///< stream position (fit_stream)
  double lr = 0.0;                   ///< optimizer lr currently in effect
  std::array<std::uint64_t, 4> shuffle_state{};  ///< at epoch START (fit)

  // -- in-epoch accumulators + early stopping --------------------------
  double loss_sum = 0.0;
  std::uint64_t loss_count = 0;
  double best_val = 0.0;
  std::uint64_t since_best = 0;

  // -- optimizer + model + scaler --------------------------------------
  std::uint64_t adam_t = 0;
  /// traffic, capacity, queue, log_delay, log_jitter — Scaler order.
  std::array<data::Moments, 5> scaler_moments{};
  struct ParamState {
    std::string name;
    nn::Tensor value;  ///< weights
    nn::Tensor m;      ///< Adam first moment
    nn::Tensor v;      ///< Adam second moment
  };
  std::vector<ParamState> params;  ///< Model::named_params() order
};

/// The single checkpoint file a directory holds.
[[nodiscard]] std::string checkpoint_file(const std::string& dir);

/// Atomically write `c` to `path` (previous checkpoint survives a crash
/// mid-write).  Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const TrainCheckpoint& c);

/// Load + verify a checkpoint.  Throws CheckpointError on a missing
/// file, bad magic/version, truncation, checksum mismatch or implausible
/// field values — never crashes, never allocates unbounded memory.
[[nodiscard]] TrainCheckpoint load_checkpoint(const std::string& path);

}  // namespace rnx::core
