// Message-passing plan: the per-sample index structure that lets the
// path-update RNN run position-vectorized.
//
// RouteNet's path update is an RNN over each path's element sequence.
// Rather than looping path by path, we advance *all* paths one sequence
// position per step: gather the active paths' hidden rows and the
// position's element states, apply one GRU step, scatter the hidden rows
// back.  The plan precomputes, for every position, which paths are active
// and which element (link — or node, in the extended architecture) each
// one consumes, plus the aggregation index sets for the link and node
// updates.  tests/core_plan_test.cpp pins this against a per-path
// reference.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "data/sample.hpp"
#include "nn/ops.hpp"

namespace rnx::core {

/// One sequence position of the batched path RNN.
struct SeqPosition {
  bool is_node = false;                ///< element kind at this position
  std::vector<nn::Index> path_rows;    ///< active path-state rows
  std::vector<nn::Index> elem_ids;     ///< link or node id, per active path
};

struct MpPlan {
  std::size_t num_paths = 0;
  std::size_t num_links = 0;
  std::size_t num_nodes = 0;
  /// Element sequence per position.  Original RouteNet: position t holds
  /// the t-th link of every path still active.  Extended: positions
  /// alternate node, link, node, link, ... starting at the source node
  /// (the paper's interleaving), covering every node whose output queue
  /// the path uses.
  std::vector<SeqPosition> positions;
  /// (path, node) incidences for the paper's node-update rule: the path
  /// state of inc_path_rows[i] is summed into node inc_node_ids[i].
  std::vector<nn::Index> inc_path_rows;
  std::vector<nn::Index> inc_node_ids;
};

/// Build the plan for one sample.  use_nodes selects the extended
/// interleaved sequence (and fills the node incidence sets).
[[nodiscard]] MpPlan build_plan(const data::Sample& sample, bool use_nodes);

/// Rows of sample.paths whose labels are trustworthy (delivered >=
/// min_delivered and a positive label for the requested target); the
/// trainer and evaluator restrict the loss/metrics to these.
[[nodiscard]] std::vector<nn::Index> valid_label_rows(
    const data::Sample& sample, std::uint64_t min_delivered,
    PredictionTarget target = PredictionTarget::kDelay);

}  // namespace rnx::core
