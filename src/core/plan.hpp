// Message-passing plan: the per-sample index structure that lets the
// path-update RNN run position-vectorized.
//
// RouteNet's path update is an RNN over each path's element sequence.
// Rather than looping path by path, we advance *all* paths one sequence
// position per step: gather the active paths' hidden rows and the
// position's element states, apply one GRU step, scatter the hidden rows
// back.  The plan precomputes, for every position, which paths are active
// and which element (link — or node, in the extended architecture) each
// one consumes, plus the aggregation index sets for the link and node
// updates.
//
// Layout (DESIGN.md §G): the per-position index sets live in one compact
// arena — two flat nn::Index buffers (active path rows, element ids)
// sliced by a shared offset table — instead of one pair of
// std::vector allocations per position.  Total footprint is
// O(sum of path lengths), never O(paths x positions), and bytes() is the
// exact resident size the plan cache budgets against.  positions are
// consumed as spans (PlanPosition); tests/core_plan_test.cpp pins the
// arena bitwise against build_plan_reference's per-position vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "data/sample.hpp"
#include "nn/ops.hpp"

namespace rnx::core {

/// Read-only view of one sequence position of the batched path RNN —
/// spans into the owning MpPlan's arena, valid as long as the plan lives.
struct PlanPosition {
  bool is_node = false;                  ///< element kind at this position
  std::span<const nn::Index> path_rows;  ///< active path-state rows
  std::span<const nn::Index> elem_ids;   ///< link or node id, per active path
};

class MpPlan {
 public:
  std::size_t num_paths = 0;
  std::size_t num_links = 0;
  std::size_t num_nodes = 0;
  /// (path, node) incidences for the paper's node-update rule: the path
  /// state of inc_path_rows[i] is summed into node inc_node_ids[i].
  /// Already flat — O(sum of path lengths) like the arena.
  std::vector<nn::Index> inc_path_rows;
  std::vector<nn::Index> inc_node_ids;

  /// Element sequence length.  Original RouteNet: position t holds the
  /// t-th link of every path still active.  Extended (interleaved): node,
  /// link, node, link, ... starting at the source node (the paper's
  /// interleaving), covering every node whose output queue the path uses.
  [[nodiscard]] std::size_t num_positions() const noexcept {
    return offsets_.size() - 1;
  }
  [[nodiscard]] PlanPosition position(std::size_t pos) const noexcept {
    const std::size_t lo = offsets_[pos], hi = offsets_[pos + 1];
    return PlanPosition{
        interleaved_ && pos % 2 == 0,
        std::span<const nn::Index>(rows_.data() + lo, hi - lo),
        std::span<const nn::Index>(elems_.data() + lo, hi - lo)};
  }
  /// True for the extended interleaved sequence (even positions read
  /// node states, odd positions link states).
  [[nodiscard]] bool interleaved() const noexcept { return interleaved_; }
  /// Total (path, position) participations across the arena.
  [[nodiscard]] std::size_t total_entries() const noexcept {
    return rows_.size();
  }
  /// Exact resident bytes of every index buffer — what core::PlanCache
  /// charges an entry against its byte budget.  Grows O(sum of path
  /// lengths); tests/core_plan_test.cpp pins the growth law.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return (rows_.size() + elems_.size() + inc_path_rows.size() +
            inc_node_ids.size()) *
               sizeof(nn::Index) +
           offsets_.size() * sizeof(std::uint32_t);
  }

  // -- builder interface (build_plan only) ------------------------------
  void arena_reserve(std::size_t positions, std::size_t entries) {
    offsets_.reserve(positions + 1);
    rows_.reserve(entries);
    elems_.reserve(entries);
  }
  void set_interleaved(bool v) noexcept { interleaved_ = v; }
  void push_entry(nn::Index row, nn::Index elem) {
    rows_.push_back(row);
    elems_.push_back(elem);
  }
  void close_position() {
    offsets_.push_back(static_cast<std::uint32_t>(rows_.size()));
  }
  /// Drop empty trailing positions (the interleaved sequence's parity
  /// padding) so the RNN loop does no zero-row work.
  void drop_empty_tail() {
    while (num_positions() > 0 &&
           offsets_[offsets_.size() - 2] == offsets_.back())
      offsets_.pop_back();
  }

 private:
  bool interleaved_ = false;
  std::vector<nn::Index> rows_;           ///< arena: active path rows
  std::vector<nn::Index> elems_;          ///< arena: element ids
  std::vector<std::uint32_t> offsets_{0};  ///< position p = [off[p], off[p+1])
};

/// Build the plan for one sample.  use_nodes selects the extended
/// interleaved sequence (and fills the node incidence sets).
[[nodiscard]] MpPlan build_plan(const data::Sample& sample, bool use_nodes);

// -- reference layout (tests only) ----------------------------------------

/// The pre-arena plan layout: one pair of materialized index vectors per
/// position.  Kept solely as the bitwise reference the arena builder is
/// pinned against (tests/core_plan_test.cpp); O(paths x positions) heap
/// blocks, so never used on the serving path.
struct RefSeqPosition {
  bool is_node = false;
  std::vector<nn::Index> path_rows;
  std::vector<nn::Index> elem_ids;
};

struct RefPlan {
  std::size_t num_paths = 0;
  std::size_t num_links = 0;
  std::size_t num_nodes = 0;
  std::vector<RefSeqPosition> positions;
  std::vector<nn::Index> inc_path_rows;
  std::vector<nn::Index> inc_node_ids;
};

/// The original per-position builder, byte-for-byte the seed algorithm.
[[nodiscard]] RefPlan build_plan_reference(const data::Sample& sample,
                                           bool use_nodes);

/// Rows of sample.paths whose labels are trustworthy (delivered >=
/// min_delivered and a positive label for the requested target); the
/// trainer and evaluator restrict the loss/metrics to these.
[[nodiscard]] std::vector<nn::Index> valid_label_rows(
    const data::Sample& sample, std::uint64_t min_delivered,
    PredictionTarget target = PredictionTarget::kDelay);

}  // namespace rnx::core
