#include "core/model.hpp"

#include <stdexcept>

#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"

namespace rnx::core {

std::unique_ptr<Model> make_model(ModelKind kind, const ModelConfig& cfg) {
  switch (kind) {
    case ModelKind::kOriginal:
      return std::make_unique<RouteNet>(cfg);
    case ModelKind::kExtended:
      return std::make_unique<ExtendedRouteNet>(cfg);
  }
  throw std::invalid_argument("make_model: invalid model kind");
}

}  // namespace rnx::core
