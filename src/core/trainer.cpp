#include "core/trainer.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <span>

#include "core/plan.hpp"
#include "data/source.hpp"
#include "nn/ops.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace rnx::core {

namespace {
std::vector<nn::Var> trainable(const Model& model) {
  std::vector<nn::Var> out;
  for (auto& [name, var] : model.named_params()) out.push_back(var);
  return out;
}

// Lane replicas + the per-batch optimizer step, shared verbatim by the
// in-memory and streaming fit paths: both feed it the same kind of
// sample-pointer batches, so for identical sample sequences the two
// paths produce bit-identical weights (the streaming-equivalence test's
// contract).  See the header comment for the determinism argument: per-
// sample gradients land in per-sample slots and merge in sample order,
// so results do not depend on which lane computed what.
class BatchEngine {
 public:
  BatchEngine(Model& model, const TrainConfig& cfg, nn::Adam& opt,
              util::ThreadPool* pool, PlanCache* cache)
      : model_(model),
        cfg_(cfg),
        opt_(opt),
        pool_(pool),
        lanes_(pool ? pool->size() : 1),
        slots_(std::max<std::size_t>(cfg.batch_samples, 1)) {
    // Lane replicas: lane 0 drives the primary model; lanes 1.. get
    // deep copies whose weights are re-synced after every step.
    lane_models_.push_back(&model_);
    for (std::size_t l = 1; l < lanes_; ++l) {
      replicas_.push_back(model_.clone());
      if (cache != nullptr) replicas_.back()->set_plan_cache(cache);
      lane_models_.push_back(replicas_.back().get());
    }
    for (Model* m : lane_models_) lane_params_.push_back(trainable(*m));
  }

  void begin_epoch() {
    loss_sum_ = 0.0;
    loss_count_ = 0;
    opt_.zero_grad();
  }

  void process_batch(std::span<const data::Sample* const> batch,
                     const data::Scaler& scaler) {
    const std::size_t fill = batch.size();
    if (fill == 0) return;

    // Lane task: forward+backward each owned sample, then park the
    // gradients in the sample's slot and clear the lane's accumulators.
    // Every lane reads identical weights, so a slot's contents do not
    // depend on which lane filled it.
    const auto lane_task = [&](std::size_t lane) {
      const Model& m = *lane_models_[lane];
      std::vector<nn::Var>& params = lane_params_[lane];
      for (std::size_t i = lane; i < fill; i += lanes_) {
        SampleSlot& slot = slots_[i];
        slot.valid = false;
        slot.grads.clear();
        const nn::Var loss =
            Trainer::sample_loss(m, *batch[i], scaler, cfg_.min_delivered,
                                 cfg_.target);
        if (!loss.defined()) continue;
        loss.backward();
        slot.valid = true;
        slot.loss = loss.value().item();
        slot.grads.reserve(params.size());
        for (nn::Var& p : params) {
          slot.grads.push_back(p.grad());
          p.zero_grad();
        }
      }
    };
    if (lanes_ > 1 && fill > 1) {
      pool_->parallel_for(lanes_, lane_task);
    } else {
      lane_task(0);
    }

    // Merge in sample order (deterministic for any lane count), scale
    // by the actual batch fill — a trailing partial batch must not see
    // a silently shrunken step (the seed scaled by batch_samples).
    std::size_t valid_count = 0;
    for (std::size_t i = 0; i < fill; ++i)
      if (slots_[i].valid) ++valid_count;
    if (valid_count == 0) return;
    std::vector<nn::Var>& primary = lane_params_[0];
    for (std::size_t i = 0; i < fill; ++i) {
      if (!slots_[i].valid) continue;
      loss_sum_ += slots_[i].loss;
      ++loss_count_;
      for (std::size_t k = 0; k < primary.size(); ++k)
        primary[k].grad_ref().add_inplace(slots_[i].grads[k]);
    }
    const double inv = 1.0 / static_cast<double>(valid_count);
    for (nn::Var& p : primary) p.grad_ref().scale_inplace(inv);
    opt_.clip_global_norm(cfg_.clip_norm);
    opt_.step();
    opt_.zero_grad();
    for (auto& replica : replicas_) replica->copy_params_from(model_);
  }

  [[nodiscard]] double epoch_mean_loss() const {
    return loss_count_ ? loss_sum_ / static_cast<double>(loss_count_) : 0.0;
  }

 private:
  // Per-sample gradient slots for one batch (reused across batches).
  struct SampleSlot {
    bool valid = false;
    double loss = 0.0;
    std::vector<nn::Tensor> grads;  ///< one per parameter
  };

  Model& model_;
  const TrainConfig& cfg_;
  nn::Adam& opt_;
  util::ThreadPool* pool_;
  std::size_t lanes_;
  std::vector<std::unique_ptr<Model>> replicas_;
  std::vector<Model*> lane_models_;
  std::vector<std::vector<nn::Var>> lane_params_;
  std::vector<SampleSlot> slots_;
  double loss_sum_ = 0.0;
  std::size_t loss_count_ = 0;
};

}  // namespace

Trainer::Trainer(Model& model, TrainConfig cfg)
    : model_(model), cfg_(cfg), opt_(trainable(model), cfg.lr) {
  if (cfg_.threads > 1) pool_.emplace(cfg_.threads);
}

nn::Var Trainer::sample_loss(const Model& model, const data::Sample& sample,
                             const data::Scaler& scaler,
                             std::uint64_t min_delivered,
                             PredictionTarget target) {
  const std::vector<nn::Index> valid =
      valid_label_rows(sample, min_delivered, target);
  if (valid.empty()) return {};
  nn::Tensor labels(valid.size(), 1);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    const auto& p = sample.paths[valid[i]];
    labels(i, 0) = target == PredictionTarget::kDelay
                       ? scaler.delay_to_target(p.mean_delay_s)
                       : scaler.jitter_to_target(p.jitter_s2);
  }
  const nn::Var pred = model.forward(sample, scaler);
  return nn::mse_loss(nn::gather_rows(pred, valid), labels);
}

std::vector<EpochRecord> Trainer::fit(const data::Dataset& train,
                                      const data::Scaler& scaler,
                                      const data::Dataset* val) {
  util::RngStream shuffle_rng(cfg_.seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t batch = std::max<std::size_t>(cfg_.batch_samples, 1);

  // Plan memo: one build per (sample, variant) for the whole run.  Keyed
  // by sample address — `train`/`val` outlive this call, which is the
  // cache's validity requirement.
  PlanCache plan_cache;
  const PlanCacheScope cache_scope(model_);
  if (cfg_.use_plan_cache) model_.set_plan_cache(&plan_cache);

  BatchEngine engine(model_, cfg_, opt_, pool_ ? &*pool_ : nullptr,
                     cfg_.use_plan_cache ? &plan_cache : nullptr);

  std::vector<EpochRecord> history;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;
  std::vector<const data::Sample*> batch_ptrs;
  batch_ptrs.reserve(batch);

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    util::Stopwatch watch;
    // Deterministic Fisher-Yates reshuffle each epoch.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(shuffle_rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);

    engine.begin_epoch();
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t fill = std::min(batch, order.size() - start);
      batch_ptrs.clear();
      for (std::size_t i = 0; i < fill; ++i)
        batch_ptrs.push_back(&train[order[start + i]]);
      engine.process_batch(batch_ptrs, scaler);
    }
    opt_.set_lr(opt_.lr() * cfg_.lr_decay);

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = engine.epoch_mean_loss();
    rec.val_loss = val ? evaluate_loss(*val, scaler)
                       : std::numeric_limits<double>::quiet_NaN();
    rec.seconds = watch.seconds();
    history.push_back(rec);
    if (cfg_.verbose)
      util::log_info(model_.name(), " epoch ", epoch, ": train_loss=",
                     rec.train_loss, val ? " val_loss=" : "",
                     val ? std::to_string(rec.val_loss) : std::string(),
                     " (", rec.seconds, "s)");

    if (val && cfg_.patience > 0) {
      if (rec.val_loss < best_val - 1e-9) {
        best_val = rec.val_loss;
        since_best = 0;
      } else if (++since_best >= cfg_.patience) {
        if (cfg_.verbose)
          util::log_info(model_.name(), ": early stop at epoch ", epoch);
        break;
      }
    }
  }
  return history;
}

std::vector<EpochRecord> Trainer::fit_stream(data::SampleSource& train,
                                             const data::Scaler& scaler,
                                             data::SampleSource* val) {
  const std::size_t batch = std::max<std::size_t>(cfg_.batch_samples, 1);

  // Address-keyed plan caching is only sound when the source's sample
  // objects are stable for the whole run; a streaming source recycles
  // addresses, so the model runs cache-DETACHED there (correctness over
  // speed — a stale plan at a reused address would be silently wrong).
  const bool cacheable = cfg_.use_plan_cache && train.stable_addresses();
  PlanCache plan_cache;
  const PlanCacheScope cache_scope(model_);
  model_.set_plan_cache(cacheable ? &plan_cache : nullptr);

  BatchEngine engine(model_, cfg_, opt_, pool_ ? &*pool_ : nullptr,
                     cacheable ? &plan_cache : nullptr);

  std::vector<EpochRecord> history;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;
  // Keep-alive handles for the in-flight batch: residency is bounded by
  // the batch size plus whatever the source prefetches.
  std::vector<std::shared_ptr<const data::Sample>> hold;
  std::vector<const data::Sample*> batch_ptrs;
  hold.reserve(batch);
  batch_ptrs.reserve(batch);

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    util::Stopwatch watch;
    train.reset();
    engine.begin_epoch();
    while (auto sp = train.next()) {
      batch_ptrs.push_back(sp.get());
      hold.push_back(std::move(sp));
      if (batch_ptrs.size() == batch) {
        engine.process_batch(batch_ptrs, scaler);
        batch_ptrs.clear();
        hold.clear();
      }
    }
    engine.process_batch(batch_ptrs, scaler);
    batch_ptrs.clear();
    hold.clear();
    opt_.set_lr(opt_.lr() * cfg_.lr_decay);

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = engine.epoch_mean_loss();
    rec.val_loss = val ? evaluate_loss(*val, scaler)
                       : std::numeric_limits<double>::quiet_NaN();
    rec.seconds = watch.seconds();
    history.push_back(rec);
    if (cfg_.verbose)
      util::log_info(model_.name(), " epoch ", epoch, ": train_loss=",
                     rec.train_loss, val ? " val_loss=" : "",
                     val ? std::to_string(rec.val_loss) : std::string(),
                     " (", rec.seconds, "s, streaming)");

    if (val && cfg_.patience > 0) {
      if (rec.val_loss < best_val - 1e-9) {
        best_val = rec.val_loss;
        since_best = 0;
      } else if (++since_best >= cfg_.patience) {
        if (cfg_.verbose)
          util::log_info(model_.name(), ": early stop at epoch ", epoch);
        break;
      }
    }
  }
  return history;
}

double Trainer::evaluate_loss(const data::Dataset& ds,
                              const data::Scaler& scaler) const {
  // Inference is read-only on the weights, so the lanes can share the
  // primary model.  Per-sample losses land in slots and are summed in
  // sample order — same result for any lane count.
  std::vector<double> losses(ds.size(), 0.0);
  std::vector<char> defined(ds.size(), 0);
  const auto eval_one = [&](std::size_t i) {
    const nn::NoGradGuard guard;
    const nn::Var loss =
        sample_loss(model_, ds[i], scaler, cfg_.min_delivered, cfg_.target);
    if (!loss.defined()) return;
    losses[i] = loss.value().item();
    defined[i] = 1;
  };
  if (pool_ && ds.size() > 1) {
    pool_->parallel_for(ds.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < ds.size(); ++i) eval_one(i);
  }
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (!defined[i]) continue;
    sum += losses[i];
    ++count;
  }
  return count ? sum / static_cast<double>(count)
               : std::numeric_limits<double>::quiet_NaN();
}

double Trainer::evaluate_loss(data::SampleSource& src,
                              const data::Scaler& scaler) const {
  // Streaming sources hand out transient samples: run cache-detached so
  // no address-keyed plan entry can outlive its sample (see fit_stream).
  const PlanCacheScope cache_scope(model_);
  if (!src.stable_addresses()) model_.set_plan_cache(nullptr);

  src.reset();
  const std::size_t lanes = pool_ ? pool_->size() : 1;
  const std::size_t window = std::max<std::size_t>(4 * lanes, 8);
  std::vector<std::shared_ptr<const data::Sample>> hold;
  hold.reserve(window);
  std::vector<double> losses(window, 0.0);
  std::vector<char> defined(window, 0);
  double sum = 0.0;
  std::size_t count = 0;

  const auto flush = [&] {
    const std::size_t n = hold.size();
    if (n == 0) return;
    std::fill(defined.begin(), defined.begin() + static_cast<std::ptrdiff_t>(n), 0);
    const auto eval_one = [&](std::size_t i) {
      const nn::NoGradGuard guard;
      const nn::Var loss = sample_loss(model_, *hold[i], scaler,
                                       cfg_.min_delivered, cfg_.target);
      if (!loss.defined()) return;
      losses[i] = loss.value().item();
      defined[i] = 1;
    };
    if (pool_ && n > 1) {
      pool_->parallel_for(n, eval_one);
    } else {
      for (std::size_t i = 0; i < n; ++i) eval_one(i);
    }
    // Sample-order sum: windowing changes residency, never the result.
    for (std::size_t i = 0; i < n; ++i) {
      if (!defined[i]) continue;
      sum += losses[i];
      ++count;
    }
    hold.clear();
  };

  while (auto sp = src.next()) {
    hold.push_back(std::move(sp));
    if (hold.size() == window) flush();
  }
  flush();
  return count ? sum / static_cast<double>(count)
               : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace rnx::core
