#include "core/trainer.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "core/plan.hpp"
#include "nn/ops.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace rnx::core {

namespace {
std::vector<nn::Var> trainable(const Model& model) {
  std::vector<nn::Var> out;
  for (auto& [name, var] : model.named_params()) out.push_back(var);
  return out;
}
}  // namespace

Trainer::Trainer(Model& model, TrainConfig cfg)
    : model_(model), cfg_(cfg), opt_(trainable(model), cfg.lr) {}

nn::Var Trainer::sample_loss(const Model& model, const data::Sample& sample,
                             const data::Scaler& scaler,
                             std::uint64_t min_delivered,
                             PredictionTarget target) {
  const std::vector<nn::Index> valid =
      valid_label_rows(sample, min_delivered, target);
  if (valid.empty()) return {};
  nn::Tensor labels(valid.size(), 1);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    const auto& p = sample.paths[valid[i]];
    labels(i, 0) = target == PredictionTarget::kDelay
                       ? scaler.delay_to_target(p.mean_delay_s)
                       : scaler.jitter_to_target(p.jitter_s2);
  }
  const nn::Var pred = model.forward(sample, scaler);
  return nn::mse_loss(nn::gather_rows(pred, valid), labels);
}

std::vector<EpochRecord> Trainer::fit(const data::Dataset& train,
                                      const data::Scaler& scaler,
                                      const data::Dataset* val) {
  util::RngStream shuffle_rng(cfg_.seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochRecord> history;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    util::Stopwatch watch;
    // Deterministic Fisher-Yates reshuffle each epoch.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(shuffle_rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);

    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    std::size_t in_batch = 0;
    opt_.zero_grad();
    for (const std::size_t si : order) {
      nn::Var loss =
          sample_loss(model_, train[si], scaler, cfg_.min_delivered, cfg_.target);
      if (!loss.defined()) continue;
      loss_sum += loss.value().item();
      ++loss_count;
      // Average gradients over the accumulation batch.
      nn::scale(loss, 1.0 / static_cast<double>(cfg_.batch_samples))
          .backward();
      if (++in_batch == cfg_.batch_samples) {
        opt_.clip_global_norm(cfg_.clip_norm);
        opt_.step();
        opt_.zero_grad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {  // trailing partial batch
      opt_.clip_global_norm(cfg_.clip_norm);
      opt_.step();
      opt_.zero_grad();
    }
    opt_.set_lr(opt_.lr() * cfg_.lr_decay);

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss =
        loss_count ? loss_sum / static_cast<double>(loss_count) : 0.0;
    rec.val_loss = val ? evaluate_loss(*val, scaler)
                       : std::numeric_limits<double>::quiet_NaN();
    rec.seconds = watch.seconds();
    history.push_back(rec);
    if (cfg_.verbose)
      util::log_info(model_.name(), " epoch ", epoch, ": train_loss=",
                     rec.train_loss, val ? " val_loss=" : "",
                     val ? std::to_string(rec.val_loss) : std::string(),
                     " (", rec.seconds, "s)");

    if (val && cfg_.patience > 0) {
      if (rec.val_loss < best_val - 1e-9) {
        best_val = rec.val_loss;
        since_best = 0;
      } else if (++since_best >= cfg_.patience) {
        if (cfg_.verbose)
          util::log_info(model_.name(), ": early stop at epoch ", epoch);
        break;
      }
    }
  }
  return history;
}

double Trainer::evaluate_loss(const data::Dataset& ds,
                              const data::Scaler& scaler) const {
  const nn::NoGradGuard guard;
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& s : ds.samples()) {
    const nn::Var loss = sample_loss(model_, s, scaler, cfg_.min_delivered, cfg_.target);
    if (!loss.defined()) continue;
    sum += loss.value().item();
    ++count;
  }
  return count ? sum / static_cast<double>(count)
               : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace rnx::core
