#include "core/trainer.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "core/plan.hpp"
#include "nn/ops.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace rnx::core {

namespace {
std::vector<nn::Var> trainable(const Model& model) {
  std::vector<nn::Var> out;
  for (auto& [name, var] : model.named_params()) out.push_back(var);
  return out;
}
}  // namespace

Trainer::Trainer(Model& model, TrainConfig cfg)
    : model_(model), cfg_(cfg), opt_(trainable(model), cfg.lr) {
  if (cfg_.threads > 1) pool_.emplace(cfg_.threads);
}

nn::Var Trainer::sample_loss(const Model& model, const data::Sample& sample,
                             const data::Scaler& scaler,
                             std::uint64_t min_delivered,
                             PredictionTarget target) {
  const std::vector<nn::Index> valid =
      valid_label_rows(sample, min_delivered, target);
  if (valid.empty()) return {};
  nn::Tensor labels(valid.size(), 1);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    const auto& p = sample.paths[valid[i]];
    labels(i, 0) = target == PredictionTarget::kDelay
                       ? scaler.delay_to_target(p.mean_delay_s)
                       : scaler.jitter_to_target(p.jitter_s2);
  }
  const nn::Var pred = model.forward(sample, scaler);
  return nn::mse_loss(nn::gather_rows(pred, valid), labels);
}

std::vector<EpochRecord> Trainer::fit(const data::Dataset& train,
                                      const data::Scaler& scaler,
                                      const data::Dataset* val) {
  util::RngStream shuffle_rng(cfg_.seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  const std::size_t lanes = pool_ ? pool_->size() : 1;
  const std::size_t batch = std::max<std::size_t>(cfg_.batch_samples, 1);

  // Plan memo: one build per (sample, variant) for the whole run.  Keyed
  // by sample address — `train`/`val` outlive this call, which is the
  // cache's validity requirement.
  PlanCache plan_cache;
  // Restore the previous cache on every exit path — a lane exception
  // propagating out of fit must not leave the model pointing at this
  // stack frame's cache.
  struct CacheScope {
    Model& model;
    PlanCache* prev;
    ~CacheScope() { model.set_plan_cache(prev); }
  } cache_scope{model_, model_.plan_cache()};
  if (cfg_.use_plan_cache) model_.set_plan_cache(&plan_cache);

  // Lane replicas: lane 0 drives the primary model; lanes 1.. get deep
  // copies whose weights are re-synced after every optimizer step.
  std::vector<std::unique_ptr<Model>> replicas;
  std::vector<Model*> lane_models{&model_};
  for (std::size_t l = 1; l < lanes; ++l) {
    replicas.push_back(model_.clone());
    if (cfg_.use_plan_cache) replicas.back()->set_plan_cache(&plan_cache);
    lane_models.push_back(replicas.back().get());
  }
  std::vector<std::vector<nn::Var>> lane_params;
  for (Model* m : lane_models) lane_params.push_back(trainable(*m));

  // Per-sample gradient slots for one batch (reused across batches).
  struct SampleSlot {
    bool valid = false;
    double loss = 0.0;
    std::vector<nn::Tensor> grads;  ///< one per parameter, lane order
  };
  std::vector<SampleSlot> slots(batch);

  std::vector<EpochRecord> history;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    util::Stopwatch watch;
    // Deterministic Fisher-Yates reshuffle each epoch.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(shuffle_rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);

    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    opt_.zero_grad();
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t fill = std::min(batch, order.size() - start);

      // Lane task: forward+backward each owned sample, then park the
      // gradients in the sample's slot and clear the lane's accumulators.
      // Every lane reads identical weights, so a slot's contents do not
      // depend on which lane filled it.
      const auto lane_task = [&](std::size_t lane) {
        const Model& m = *lane_models[lane];
        std::vector<nn::Var>& params = lane_params[lane];
        for (std::size_t i = lane; i < fill; i += lanes) {
          SampleSlot& slot = slots[i];
          slot.valid = false;
          slot.grads.clear();
          const nn::Var loss =
              sample_loss(m, train[order[start + i]], scaler,
                          cfg_.min_delivered, cfg_.target);
          if (!loss.defined()) continue;
          loss.backward();
          slot.valid = true;
          slot.loss = loss.value().item();
          slot.grads.reserve(params.size());
          for (nn::Var& p : params) {
            slot.grads.push_back(p.grad());
            p.zero_grad();
          }
        }
      };
      if (lanes > 1 && fill > 1) {
        pool_->parallel_for(lanes, lane_task);
      } else {
        lane_task(0);
      }

      // Merge in sample order (deterministic for any lane count), scale
      // by the actual batch fill — a trailing partial batch must not see
      // a silently shrunken step (the seed scaled by batch_samples).
      std::size_t valid_count = 0;
      for (std::size_t i = 0; i < fill; ++i)
        if (slots[i].valid) ++valid_count;
      if (valid_count == 0) continue;
      std::vector<nn::Var>& primary = lane_params[0];
      for (std::size_t i = 0; i < fill; ++i) {
        if (!slots[i].valid) continue;
        loss_sum += slots[i].loss;
        ++loss_count;
        for (std::size_t k = 0; k < primary.size(); ++k)
          primary[k].grad_ref().add_inplace(slots[i].grads[k]);
      }
      const double inv = 1.0 / static_cast<double>(valid_count);
      for (nn::Var& p : primary) p.grad_ref().scale_inplace(inv);
      opt_.clip_global_norm(cfg_.clip_norm);
      opt_.step();
      opt_.zero_grad();
      for (auto& replica : replicas) replica->copy_params_from(model_);
    }
    opt_.set_lr(opt_.lr() * cfg_.lr_decay);

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss =
        loss_count ? loss_sum / static_cast<double>(loss_count) : 0.0;
    rec.val_loss = val ? evaluate_loss(*val, scaler)
                       : std::numeric_limits<double>::quiet_NaN();
    rec.seconds = watch.seconds();
    history.push_back(rec);
    if (cfg_.verbose)
      util::log_info(model_.name(), " epoch ", epoch, ": train_loss=",
                     rec.train_loss, val ? " val_loss=" : "",
                     val ? std::to_string(rec.val_loss) : std::string(),
                     " (", rec.seconds, "s)");

    if (val && cfg_.patience > 0) {
      if (rec.val_loss < best_val - 1e-9) {
        best_val = rec.val_loss;
        since_best = 0;
      } else if (++since_best >= cfg_.patience) {
        if (cfg_.verbose)
          util::log_info(model_.name(), ": early stop at epoch ", epoch);
        break;
      }
    }
  }
  return history;
}

double Trainer::evaluate_loss(const data::Dataset& ds,
                              const data::Scaler& scaler) const {
  // Inference is read-only on the weights, so the lanes can share the
  // primary model.  Per-sample losses land in slots and are summed in
  // sample order — same result for any lane count.
  std::vector<double> losses(ds.size(), 0.0);
  std::vector<char> defined(ds.size(), 0);
  const auto eval_one = [&](std::size_t i) {
    const nn::NoGradGuard guard;
    const nn::Var loss =
        sample_loss(model_, ds[i], scaler, cfg_.min_delivered, cfg_.target);
    if (!loss.defined()) return;
    losses[i] = loss.value().item();
    defined[i] = 1;
  };
  if (pool_ && ds.size() > 1) {
    pool_->parallel_for(ds.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < ds.size(); ++i) eval_one(i);
  }
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (!defined[i]) continue;
    sum += losses[i];
    ++count;
  }
  return count ? sum / static_cast<double>(count)
               : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace rnx::core
