#include "core/trainer.hpp"

#include <array>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <numeric>
#include <span>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/plan.hpp"
#include "data/sample_io.hpp"
#include "data/source.hpp"
#include "nn/ops.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace rnx::core {

namespace {
std::vector<nn::Var> trainable(const Model& model) {
  std::vector<nn::Var> out;
  for (auto& [name, var] : model.named_params()) out.push_back(var);
  return out;
}

// Lane replicas + the per-batch optimizer step, shared verbatim by the
// in-memory and streaming fit paths: both feed it the same kind of
// sample-pointer batches, so for identical sample sequences the two
// paths produce bit-identical weights (the streaming-equivalence test's
// contract).  See the header comment for the determinism argument: per-
// sample gradients land in per-sample slots and merge in sample order,
// so results do not depend on which lane computed what.
class BatchEngine {
 public:
  BatchEngine(Model& model, const TrainConfig& cfg, nn::Adam& opt,
              util::ThreadPool* pool, PlanCache* cache)
      : model_(model),
        cfg_(cfg),
        opt_(opt),
        pool_(pool),
        lanes_(pool ? pool->size() : 1),
        slots_(std::max<std::size_t>(cfg.batch_samples, 1)) {
    // Lane replicas: lane 0 drives the primary model; lanes 1.. get
    // deep copies whose weights are re-synced after every step.
    lane_models_.push_back(&model_);
    for (std::size_t l = 1; l < lanes_; ++l) {
      replicas_.push_back(model_.clone());
      if (cache != nullptr) replicas_.back()->set_plan_cache(cache);
      lane_models_.push_back(replicas_.back().get());
    }
    for (Model* m : lane_models_) lane_params_.push_back(trainable(*m));
  }

  void begin_epoch() {
    loss_sum_ = 0.0;
    loss_count_ = 0;
    opt_.zero_grad();
  }

  void process_batch(std::span<const data::Sample* const> batch,
                     const data::Scaler& scaler) {
    const std::size_t fill = batch.size();
    if (fill == 0) return;

    // Lane task: forward+backward each owned sample, then park the
    // gradients in the sample's slot and clear the lane's accumulators.
    // Every lane reads identical weights, so a slot's contents do not
    // depend on which lane filled it.
    const auto lane_task = [&](std::size_t lane) {
      const Model& m = *lane_models_[lane];
      std::vector<nn::Var>& params = lane_params_[lane];
      for (std::size_t i = lane; i < fill; i += lanes_) {
        SampleSlot& slot = slots_[i];
        slot.valid = false;
        slot.grads.clear();
        const nn::Var loss =
            Trainer::sample_loss(m, *batch[i], scaler, cfg_.min_delivered,
                                 cfg_.target);
        if (!loss.defined()) continue;
        loss.backward();
        slot.valid = true;
        slot.loss = loss.value().item();
        slot.grads.reserve(params.size());
        for (nn::Var& p : params) {
          slot.grads.push_back(p.grad());
          p.zero_grad();
        }
      }
    };
    if (lanes_ > 1 && fill > 1) {
      pool_->parallel_for(lanes_, lane_task);
    } else {
      lane_task(0);
    }

    // Merge in sample order (deterministic for any lane count), scale
    // by the actual batch fill — a trailing partial batch must not see
    // a silently shrunken step (the seed scaled by batch_samples).
    std::size_t valid_count = 0;
    for (std::size_t i = 0; i < fill; ++i)
      if (slots_[i].valid) ++valid_count;
    if (valid_count == 0) return;
    std::vector<nn::Var>& primary = lane_params_[0];
    for (std::size_t i = 0; i < fill; ++i) {
      if (!slots_[i].valid) continue;
      loss_sum_ += slots_[i].loss;
      ++loss_count_;
      for (std::size_t k = 0; k < primary.size(); ++k)
        primary[k].grad_ref().add_inplace(slots_[i].grads[k]);
    }
    const double inv = 1.0 / static_cast<double>(valid_count);
    for (nn::Var& p : primary) p.grad_ref().scale_inplace(inv);
    opt_.clip_global_norm(cfg_.clip_norm);
    opt_.step();
    opt_.zero_grad();
    for (auto& replica : replicas_) replica->copy_params_from(model_);
  }

  [[nodiscard]] double epoch_mean_loss() const {
    return loss_count_ ? loss_sum_ / static_cast<double>(loss_count_) : 0.0;
  }

  // In-epoch loss accumulators, exposed so a mid-epoch checkpoint can
  // carry them and a resume can put them back (begin_epoch zeroes them).
  [[nodiscard]] double epoch_loss_sum() const { return loss_sum_; }
  [[nodiscard]] std::uint64_t epoch_loss_count() const { return loss_count_; }
  void restore_epoch_loss(double sum, std::uint64_t count) {
    loss_sum_ = sum;
    loss_count_ = static_cast<std::size_t>(count);
  }

 private:
  // Per-sample gradient slots for one batch (reused across batches).
  struct SampleSlot {
    bool valid = false;
    double loss = 0.0;
    std::vector<nn::Tensor> grads;  ///< one per parameter
  };

  Model& model_;
  const TrainConfig& cfg_;
  nn::Adam& opt_;
  util::ThreadPool* pool_;
  std::size_t lanes_;
  std::vector<std::unique_ptr<Model>> replicas_;
  std::vector<Model*> lane_models_;
  std::vector<std::vector<nn::Var>> lane_params_;
  std::vector<SampleSlot> slots_;
  double loss_sum_ = 0.0;
  std::size_t loss_count_ = 0;
};

// ---- crash-safe checkpointing (DESIGN.md §R) ------------------------------

// Everything the training trajectory depends on, folded into one digest.
// Resuming under ANY changed hyperparameter or dataset size is refused.
// Deliberately EXCLUDED: epochs (extending a finished run is legitimate)
// and threads (the lane count never changes the weights — DESIGN.md §T).
std::uint64_t train_digest(const Model& model, const TrainConfig& cfg,
                           bool streaming, std::uint64_t train_size) {
  std::ostringstream b(std::ios::binary);
  const auto put = [&b](const auto& v) {
    b.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const ModelConfig& mc = model.config();
  put(static_cast<std::uint8_t>(model.kind()));
  put(static_cast<std::uint64_t>(mc.state_dim));
  put(static_cast<std::uint64_t>(mc.readout_hidden));
  put(static_cast<std::uint64_t>(mc.iterations));
  put(static_cast<std::uint8_t>(mc.node_rule));
  put(static_cast<std::uint8_t>(mc.node_mean_aggregation));
  put(static_cast<std::uint8_t>(mc.fused_gru));
  put(static_cast<std::uint8_t>(mc.scenario_features));
  put(mc.init_seed);
  put(static_cast<std::uint64_t>(cfg.batch_samples));
  put(cfg.lr);
  put(cfg.lr_decay);
  put(cfg.clip_norm);
  put(cfg.min_delivered);
  put(static_cast<std::uint8_t>(cfg.target));
  put(cfg.seed);
  put(static_cast<std::uint64_t>(cfg.patience));
  put(static_cast<std::uint8_t>(streaming));
  put(train_size);
  return data::io::fnv1a64(b.view());
}

// The scaler feeds every forward pass; a checkpointed run resumed under
// different moments would silently train a different function.  Bitwise
// equality, not tolerance — both runs fit the scaler from the same data.
void verify_scaler(const TrainCheckpoint& ck, const data::Scaler& scaler) {
  const std::array<data::Moments, 5> now = {
      scaler.traffic_moments(), scaler.capacity_moments(),
      scaler.queue_moments(), scaler.log_delay_moments(),
      scaler.log_jitter_moments()};
  static constexpr const char* kChannels[5] = {
      "traffic", "capacity", "queue", "log_delay", "log_jitter"};
  for (std::size_t i = 0; i < now.size(); ++i)
    if (now[i].mean != ck.scaler_moments[i].mean ||
        now[i].stddev != ck.scaler_moments[i].stddev)
      throw CheckpointError(
          std::string("resume refused: scaler ") + kChannels[i] +
          " moments differ from the checkpointed run (did the training "
          "set change?)");
}

// Snapshot the model + optimizer + scaler into `ck` (params in
// named_params() order, which is also the optimizer's params() order —
// trainable() builds one from the other).
void capture_train_state(const Model& model, const nn::Adam& opt,
                         const data::Scaler& scaler, TrainCheckpoint& ck) {
  ck.lr = opt.lr();
  ck.adam_t = opt.steps_taken();
  ck.scaler_moments = {scaler.traffic_moments(), scaler.capacity_moments(),
                       scaler.queue_moments(), scaler.log_delay_moments(),
                       scaler.log_jitter_moments()};
  const nn::NamedParams named = model.named_params();
  const std::vector<nn::Tensor>& m = opt.first_moments();
  const std::vector<nn::Tensor>& v = opt.second_moments();
  ck.params.reserve(named.size());
  for (std::size_t i = 0; i < named.size(); ++i) {
    TrainCheckpoint::ParamState p;
    p.name = named[i].first;
    p.value = named[i].second.value();
    p.m = m[i];
    p.v = v[i];
    ck.params.push_back(std::move(p));
  }
}

// Put a checkpoint's weights + optimizer state back, with strict
// positional name/shape matching (a digest match already guarantees the
// same architecture; this catches file-level corruption that survived
// the checksum odds).
void restore_train_state(Model& model, nn::Adam& opt,
                         const TrainCheckpoint& ck) {
  nn::NamedParams named = model.named_params();
  if (named.size() != ck.params.size())
    throw CheckpointError("resume refused: checkpoint holds " +
                          std::to_string(ck.params.size()) +
                          " parameters, model has " +
                          std::to_string(named.size()));
  std::vector<nn::Tensor> m, v;
  m.reserve(named.size());
  v.reserve(named.size());
  for (std::size_t i = 0; i < named.size(); ++i) {
    const TrainCheckpoint::ParamState& p = ck.params[i];
    if (p.name != named[i].first)
      throw CheckpointError("resume refused: parameter " +
                            std::to_string(i) + " is '" + p.name +
                            "' in the checkpoint, '" + named[i].first +
                            "' in the model");
    nn::Tensor& dst = named[i].second.mutable_value();
    if (p.value.rows() != dst.rows() || p.value.cols() != dst.cols())
      throw CheckpointError("resume refused: shape mismatch for '" +
                            p.name + "'");
    dst = p.value;
    m.push_back(p.m);
    v.push_back(p.v);
  }
  opt.restore_state(ck.adam_t, std::move(m), std::move(v));
  opt.set_lr(ck.lr);
}

}  // namespace

Trainer::Trainer(Model& model, TrainConfig cfg)
    : model_(model), cfg_(cfg), opt_(trainable(model), cfg.lr) {
  if (cfg_.threads > 1) pool_.emplace(cfg_.threads);
}

nn::Var Trainer::sample_loss(const Model& model, const data::Sample& sample,
                             const data::Scaler& scaler,
                             std::uint64_t min_delivered,
                             PredictionTarget target) {
  const std::vector<nn::Index> valid =
      valid_label_rows(sample, min_delivered, target);
  if (valid.empty()) return {};
  nn::Tensor labels(valid.size(), 1);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    const auto& p = sample.paths[valid[i]];
    labels(i, 0) = target == PredictionTarget::kDelay
                       ? scaler.delay_to_target(p.mean_delay_s)
                       : scaler.jitter_to_target(p.jitter_s2);
  }
  const nn::Var pred = model.forward(sample, scaler);
  return nn::mse_loss(nn::gather_rows(pred, valid), labels);
}

std::vector<EpochRecord> Trainer::fit(const data::Dataset& train,
                                      const data::Scaler& scaler,
                                      const data::Dataset* val) {
  util::RngStream shuffle_rng(cfg_.seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t batch = std::max<std::size_t>(cfg_.batch_samples, 1);

  // Plan memo: one build per (sample, variant) for the whole run.  Keyed
  // by sample address — `train`/`val` outlive this call, which is the
  // cache's validity requirement.
  PlanCache plan_cache;
  const PlanCacheScope cache_scope(model_);
  if (cfg_.use_plan_cache) model_.set_plan_cache(&plan_cache);

  std::vector<EpochRecord> history;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;
  std::vector<const data::Sample*> batch_ptrs;
  batch_ptrs.reserve(batch);

  interrupted_ = false;
  const bool ckpt_on = !cfg_.checkpoint_dir.empty();
  const std::string ckpt_path =
      ckpt_on ? checkpoint_file(cfg_.checkpoint_dir) : std::string();
  const std::uint64_t digest =
      train_digest(model_, cfg_, /*streaming=*/false, train.size());

  std::size_t start_epoch = 0;
  std::uint64_t resume_batches = 0;
  double resume_loss_sum = 0.0;
  std::uint64_t resume_loss_count = 0;
  if (ckpt_on && cfg_.resume && std::filesystem::exists(ckpt_path)) {
    const TrainCheckpoint ck = load_checkpoint(ckpt_path);
    if (ck.streaming)
      throw CheckpointError("resume refused: " + ckpt_path +
                            " was written by fit_stream, not fit");
    if (ck.config_digest != digest)
      throw CheckpointError(
          "resume refused: " + ckpt_path +
          " was written under a different model/train config or dataset "
          "size — delete the checkpoint to start over");
    verify_scaler(ck, scaler);
    restore_train_state(model_, opt_, ck);
    // The checkpoint carries the shuffle stream as of the epoch's START;
    // re-running Fisher-Yates from it reproduces the exact epoch order.
    shuffle_rng = util::RngStream::from_state(ck.shuffle_state);
    start_epoch = static_cast<std::size_t>(ck.epoch);
    // The permutation CHAINS across epochs: epoch e shuffles the array
    // epoch e-1 produced, so the stream state alone is not enough —
    // rebuild the array by replaying the earlier epochs' shuffles from
    // the run seed (cheap: O(epochs * n); the digest check above pinned
    // the seed, so the replay is the original run's prefix verbatim).
    util::RngStream replay(cfg_.seed);
    for (std::size_t e = 0; e < start_epoch && e < cfg_.epochs; ++e)
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1],
                  order[static_cast<std::size_t>(replay.uniform_int(
                      0, static_cast<std::int64_t>(i) - 1))]);
    resume_batches = ck.batch_in_epoch;
    resume_loss_sum = ck.loss_sum;
    resume_loss_count = ck.loss_count;
    best_val = ck.best_val;
    since_best = static_cast<std::size_t>(ck.since_best);
    if (cfg_.verbose)
      util::log_info(model_.name(), ": resumed from ", ckpt_path,
                     " at epoch ", start_epoch, ", batch ", resume_batches);
  }

  // Construct the engine AFTER any resume restore: lane replicas deep-copy
  // the model's weights at construction, so building it earlier would run
  // the first resumed batch with stale (initial) weights on lanes 1+.
  BatchEngine engine(model_, cfg_, opt_, pool_ ? &*pool_ : nullptr,
                     cfg_.use_plan_cache ? &plan_cache : nullptr);

  const auto snapshot = [&](std::uint64_t epoch, std::uint64_t batch_done,
                            const std::array<std::uint64_t, 4>& rng_state,
                            double loss_sum, std::uint64_t loss_count) {
    TrainCheckpoint ck;
    ck.streaming = false;
    ck.config_digest = digest;
    ck.epoch = epoch;
    ck.batch_in_epoch = batch_done;
    ck.shuffle_state = rng_state;
    ck.loss_sum = loss_sum;
    ck.loss_count = loss_count;
    ck.best_val = best_val;
    ck.since_best = since_best;
    capture_train_state(model_, opt_, scaler, ck);
    save_checkpoint(ckpt_path, ck);
  };

  for (std::size_t epoch = start_epoch; epoch < cfg_.epochs; ++epoch) {
    util::Stopwatch watch;
    // Shuffle stream state at the epoch's start: what a mid-epoch
    // checkpoint stores so resume can replay this epoch's exact order.
    const std::array<std::uint64_t, 4> epoch_rng = shuffle_rng.state();
    // Deterministic Fisher-Yates reshuffle each epoch.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(shuffle_rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);

    engine.begin_epoch();
    std::uint64_t batches_done = 0;
    if (epoch == start_epoch && resume_batches > 0) {
      // Already-trained batches of the interrupted epoch: skip them and
      // put back the loss accumulators they contributed.
      batches_done = resume_batches;
      engine.restore_epoch_loss(resume_loss_sum, resume_loss_count);
    }
    for (std::size_t start = static_cast<std::size_t>(batches_done) * batch;
         start < order.size(); start += batch) {
      const std::size_t fill = std::min(batch, order.size() - start);
      batch_ptrs.clear();
      for (std::size_t i = 0; i < fill; ++i)
        batch_ptrs.push_back(&train[order[start + i]]);
      engine.process_batch(batch_ptrs, scaler);
      ++batches_done;
      const bool stop = cfg_.stop_requested && cfg_.stop_requested();
      if (ckpt_on && (stop || (cfg_.checkpoint_every != 0 &&
                               batches_done % cfg_.checkpoint_every == 0)))
        snapshot(epoch, batches_done, epoch_rng, engine.epoch_loss_sum(),
                 engine.epoch_loss_count());
      if (stop) {
        interrupted_ = true;
        if (cfg_.verbose)
          util::log_info(model_.name(), ": stop requested at epoch ", epoch,
                         ", batch ", batches_done,
                         ckpt_on ? " (checkpoint written)" : "");
        return history;
      }
    }
    opt_.set_lr(opt_.lr() * cfg_.lr_decay);

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = engine.epoch_mean_loss();
    rec.val_loss = val ? evaluate_loss(*val, scaler)
                       : std::numeric_limits<double>::quiet_NaN();
    rec.seconds = watch.seconds();
    history.push_back(rec);
    if (cfg_.verbose)
      util::log_info(model_.name(), " epoch ", epoch, ": train_loss=",
                     rec.train_loss, val ? " val_loss=" : "",
                     val ? std::to_string(rec.val_loss) : std::string(),
                     " (", rec.seconds, "s)");

    bool early_stop = false;
    if (val && cfg_.patience > 0) {
      if (rec.val_loss < best_val - 1e-9) {
        best_val = rec.val_loss;
        since_best = 0;
      } else if (++since_best >= cfg_.patience) {
        if (cfg_.verbose)
          util::log_info(model_.name(), ": early stop at epoch ", epoch);
        early_stop = true;
      }
    }
    // End-of-epoch checkpoint: cursor at the NEXT epoch's start (post-
    // decay lr, next epoch's shuffle state, zeroed accumulators).  Early
    // stop and natural completion both park the cursor at cfg_.epochs,
    // so resuming a finished run retrains nothing.
    if (ckpt_on)
      snapshot(early_stop ? cfg_.epochs : epoch + 1, 0, shuffle_rng.state(),
               0.0, 0);
    if (early_stop) break;
  }
  return history;
}

std::vector<EpochRecord> Trainer::fit_stream(data::SampleSource& train,
                                             const data::Scaler& scaler,
                                             data::SampleSource* val) {
  const std::size_t batch = std::max<std::size_t>(cfg_.batch_samples, 1);

  // Address-keyed plan caching is only sound when the source's sample
  // objects are stable for the whole run; a streaming source recycles
  // addresses, so the model runs cache-DETACHED there (correctness over
  // speed — a stale plan at a reused address would be silently wrong).
  const bool cacheable = cfg_.use_plan_cache && train.stable_addresses();
  PlanCache plan_cache;
  const PlanCacheScope cache_scope(model_);
  model_.set_plan_cache(cacheable ? &plan_cache : nullptr);

  std::vector<EpochRecord> history;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;
  // Keep-alive handles for the in-flight batch: residency is bounded by
  // the batch size plus whatever the source prefetches.
  std::vector<std::shared_ptr<const data::Sample>> hold;
  std::vector<const data::Sample*> batch_ptrs;
  hold.reserve(batch);
  batch_ptrs.reserve(batch);

  interrupted_ = false;
  const bool ckpt_on = !cfg_.checkpoint_dir.empty();
  const std::string ckpt_path =
      ckpt_on ? checkpoint_file(cfg_.checkpoint_dir) : std::string();
  // A source has no size before its first pass; the stream identity is
  // carried by the source itself (the sharded store's own digest guards
  // dataset/config drift at that layer).
  const std::uint64_t digest =
      train_digest(model_, cfg_, /*streaming=*/true, 0);

  std::size_t start_epoch = 0;
  std::uint64_t resume_samples = 0;
  double resume_loss_sum = 0.0;
  std::uint64_t resume_loss_count = 0;
  if (ckpt_on && cfg_.resume && std::filesystem::exists(ckpt_path)) {
    const TrainCheckpoint ck = load_checkpoint(ckpt_path);
    if (!ck.streaming)
      throw CheckpointError("resume refused: " + ckpt_path +
                            " was written by fit, not fit_stream");
    if (ck.config_digest != digest)
      throw CheckpointError(
          "resume refused: " + ckpt_path +
          " was written under a different model/train config — delete the "
          "checkpoint to start over");
    verify_scaler(ck, scaler);
    restore_train_state(model_, opt_, ck);
    start_epoch = static_cast<std::size_t>(ck.epoch);
    resume_samples = ck.samples_done;
    resume_loss_sum = ck.loss_sum;
    resume_loss_count = ck.loss_count;
    best_val = ck.best_val;
    since_best = static_cast<std::size_t>(ck.since_best);
    if (cfg_.verbose)
      util::log_info(model_.name(), ": resumed from ", ckpt_path,
                     " at epoch ", start_epoch, ", sample ", resume_samples);
  }

  // After the resume restore, for the same reason as in fit(): lane
  // replicas snapshot the weights when the engine is built.
  BatchEngine engine(model_, cfg_, opt_, pool_ ? &*pool_ : nullptr,
                     cacheable ? &plan_cache : nullptr);

  const auto snapshot = [&](std::uint64_t epoch, std::uint64_t samples_done,
                            std::uint64_t batch_done, double loss_sum,
                            std::uint64_t loss_count) {
    TrainCheckpoint ck;
    ck.streaming = true;
    ck.config_digest = digest;
    ck.epoch = epoch;
    ck.batch_in_epoch = batch_done;
    ck.samples_done = samples_done;
    ck.loss_sum = loss_sum;
    ck.loss_count = loss_count;
    ck.best_val = best_val;
    ck.since_best = since_best;
    capture_train_state(model_, opt_, scaler, ck);
    save_checkpoint(ckpt_path, ck);
  };

  for (std::size_t epoch = start_epoch; epoch < cfg_.epochs; ++epoch) {
    util::Stopwatch watch;
    train.reset();
    engine.begin_epoch();
    std::uint64_t samples_done = 0;
    std::uint64_t batches_done = 0;
    if (epoch == start_epoch && resume_samples > 0) {
      // The source replays the same deterministic order every pass, so
      // the cursor is just a count: pull and discard the prefix the
      // interrupted run already trained on.
      while (samples_done < resume_samples) {
        auto sp = train.next();
        if (!sp)
          throw CheckpointError(
              "resume refused: stream ended after " +
              std::to_string(samples_done) + " samples, checkpoint cursor "
              "is at " + std::to_string(resume_samples) +
              " (did the training store change?)");
        ++samples_done;
      }
      batches_done = samples_done / batch;  // cursor sits on a boundary
      engine.restore_epoch_loss(resume_loss_sum, resume_loss_count);
    }
    while (auto sp = train.next()) {
      batch_ptrs.push_back(sp.get());
      hold.push_back(std::move(sp));
      ++samples_done;
      if (batch_ptrs.size() == batch) {
        engine.process_batch(batch_ptrs, scaler);
        batch_ptrs.clear();
        hold.clear();
        ++batches_done;
        const bool stop = cfg_.stop_requested && cfg_.stop_requested();
        if (ckpt_on && (stop || (cfg_.checkpoint_every != 0 &&
                                 batches_done % cfg_.checkpoint_every == 0)))
          snapshot(epoch, samples_done, batches_done,
                   engine.epoch_loss_sum(), engine.epoch_loss_count());
        if (stop) {
          interrupted_ = true;
          if (cfg_.verbose)
            util::log_info(model_.name(), ": stop requested at epoch ",
                           epoch, ", sample ", samples_done,
                           ckpt_on ? " (checkpoint written)" : "");
          return history;
        }
      }
    }
    engine.process_batch(batch_ptrs, scaler);
    batch_ptrs.clear();
    hold.clear();
    opt_.set_lr(opt_.lr() * cfg_.lr_decay);

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = engine.epoch_mean_loss();
    rec.val_loss = val ? evaluate_loss(*val, scaler)
                       : std::numeric_limits<double>::quiet_NaN();
    rec.seconds = watch.seconds();
    history.push_back(rec);
    if (cfg_.verbose)
      util::log_info(model_.name(), " epoch ", epoch, ": train_loss=",
                     rec.train_loss, val ? " val_loss=" : "",
                     val ? std::to_string(rec.val_loss) : std::string(),
                     " (", rec.seconds, "s, streaming)");

    bool early_stop = false;
    if (val && cfg_.patience > 0) {
      if (rec.val_loss < best_val - 1e-9) {
        best_val = rec.val_loss;
        since_best = 0;
      } else if (++since_best >= cfg_.patience) {
        if (cfg_.verbose)
          util::log_info(model_.name(), ": early stop at epoch ", epoch);
        early_stop = true;
      }
    }
    if (ckpt_on)
      snapshot(early_stop ? cfg_.epochs : epoch + 1, 0, 0, 0.0, 0);
    if (early_stop) break;
  }
  return history;
}

double Trainer::evaluate_loss(const data::Dataset& ds,
                              const data::Scaler& scaler) const {
  // Inference is read-only on the weights, so the lanes can share the
  // primary model.  Per-sample losses land in slots and are summed in
  // sample order — same result for any lane count.
  std::vector<double> losses(ds.size(), 0.0);
  std::vector<char> defined(ds.size(), 0);
  const auto eval_one = [&](std::size_t i) {
    const nn::NoGradGuard guard;
    const nn::Var loss =
        sample_loss(model_, ds[i], scaler, cfg_.min_delivered, cfg_.target);
    if (!loss.defined()) return;
    losses[i] = loss.value().item();
    defined[i] = 1;
  };
  if (pool_ && ds.size() > 1) {
    pool_->parallel_for(ds.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < ds.size(); ++i) eval_one(i);
  }
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (!defined[i]) continue;
    sum += losses[i];
    ++count;
  }
  return count ? sum / static_cast<double>(count)
               : std::numeric_limits<double>::quiet_NaN();
}

double Trainer::evaluate_loss(data::SampleSource& src,
                              const data::Scaler& scaler) const {
  // Streaming sources hand out transient samples: run cache-detached so
  // no address-keyed plan entry can outlive its sample (see fit_stream).
  const PlanCacheScope cache_scope(model_);
  if (!src.stable_addresses()) model_.set_plan_cache(nullptr);

  src.reset();
  const std::size_t lanes = pool_ ? pool_->size() : 1;
  const std::size_t window = std::max<std::size_t>(4 * lanes, 8);
  std::vector<std::shared_ptr<const data::Sample>> hold;
  hold.reserve(window);
  std::vector<double> losses(window, 0.0);
  std::vector<char> defined(window, 0);
  double sum = 0.0;
  std::size_t count = 0;

  const auto flush = [&] {
    const std::size_t n = hold.size();
    if (n == 0) return;
    std::fill(defined.begin(), defined.begin() + static_cast<std::ptrdiff_t>(n), 0);
    const auto eval_one = [&](std::size_t i) {
      const nn::NoGradGuard guard;
      const nn::Var loss = sample_loss(model_, *hold[i], scaler,
                                       cfg_.min_delivered, cfg_.target);
      if (!loss.defined()) return;
      losses[i] = loss.value().item();
      defined[i] = 1;
    };
    if (pool_ && n > 1) {
      pool_->parallel_for(n, eval_one);
    } else {
      for (std::size_t i = 0; i < n; ++i) eval_one(i);
    }
    // Sample-order sum: windowing changes residency, never the result.
    for (std::size_t i = 0; i < n; ++i) {
      if (!defined[i]) continue;
      sum += losses[i];
      ++count;
    }
    hold.clear();
  };

  while (auto sp = src.next()) {
    hold.push_back(std::move(sp));
    if (hold.size() == window) flush();
  }
  flush();
  return count ? sum / static_cast<double>(count)
               : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace rnx::core
