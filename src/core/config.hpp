// Hyperparameters shared by both RouteNet variants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace rnx::core {

/// Which per-path metric the readout regresses.  RouteNet supports both
/// (paper abstract: "delay or jitter"); the Fig. 2 evaluation uses delay.
enum class PredictionTarget : std::uint8_t { kDelay, kJitter };

/// The two architectures; the stable on-disk / CLI vocabulary is
/// "orig" / "ext" (model bundles persist this as one byte).
enum class ModelKind : std::uint8_t { kOriginal = 0, kExtended = 1 };

[[nodiscard]] constexpr std::string_view to_string(ModelKind k) noexcept {
  return k == ModelKind::kOriginal ? "orig" : "ext";
}
[[nodiscard]] constexpr std::string_view to_string(
    PredictionTarget t) noexcept {
  return t == PredictionTarget::kDelay ? "delay" : "jitter";
}
[[nodiscard]] inline std::optional<ModelKind> model_kind_from_string(
    std::string_view s) noexcept {
  if (s == "orig") return ModelKind::kOriginal;
  if (s == "ext") return ModelKind::kExtended;
  return std::nullopt;
}
[[nodiscard]] inline std::optional<PredictionTarget> target_from_string(
    std::string_view s) noexcept {
  if (s == "delay") return PredictionTarget::kDelay;
  if (s == "jitter") return PredictionTarget::kJitter;
  return std::nullopt;
}

/// How the node states are updated in the extended architecture.
enum class NodeUpdateRule : std::uint8_t {
  /// The paper's rule (§2): element-wise sum of the (updated) states of
  /// all paths that traverse the node, fed to RNN_N.
  kSumPathStates,
  /// Ablation variant (DESIGN.md A3): aggregate the path RNN's positional
  /// outputs at node positions, symmetric to how links receive messages.
  kPositionalMessages,
};

struct ModelConfig {
  std::size_t state_dim = 16;       ///< path/link/node state width
  std::size_t readout_hidden = 32;  ///< readout MLP hidden width
  std::size_t iterations = 4;       ///< message-passing rounds (T)
  NodeUpdateRule node_rule = NodeUpdateRule::kSumPathStates;
  /// Normalize the node aggregation by the number of contributing paths
  /// (mean instead of the paper's plain sum).  Sum magnitudes scale with
  /// topology size (552 paths on GEANT2 vs 182 on NSFNET), which hurts
  /// transfer to unseen topologies; the mean is scale-free.  Ablated by
  /// bench_ablation_node_update.
  bool node_mean_aggregation = true;
  /// Use the fused single-tape-node GRU kernel (nn/gru.hpp).  Off routes
  /// every RNN step through the op-by-op composition — the serial
  /// baseline of bench_parallel_speedup and the gradcheck reference.
  bool fused_gru = true;
  /// Feed the scenario-engine features (DESIGN.md §S): per-link
  /// scheduling-policy one-hot, per-path scheduling class and
  /// traffic-process one-hot.  Requires state_dim >=
  /// kScenarioFeatureMinDim and samples that record a scenario; models
  /// trained with this on refuse pre-scenario (v1) datasets with a
  /// descriptive error instead of silently reading zeros.
  bool scenario_features = false;
  /// Feed scale-invariant inputs instead of raw z-scored rates
  /// (DESIGN.md §G): column 0 becomes per-link utilization (summed path
  /// traffic / capacity), per-path traffic over the bottleneck capacity,
  /// and per-node queue occupancy fraction — all dimensionless, so a
  /// model trained on small topologies transfers to much larger ones
  /// ("Scaling Graph-based Deep Learning models to larger networks",
  /// PAPERS.md).  Persisted in the bundle (v3); v1/v2 bundles imply off.
  bool scale_invariant_features = false;
  /// Normalize the link aggregation by the number of contributing
  /// (path, position) messages — the symmetric twin of
  /// node_mean_aggregation for the link update's segment_sum.  Default
  /// off: the forward is bitwise-unchanged unless enabled.
  bool link_mean_aggregation = false;
  std::uint64_t init_seed = 42;     ///< weight initialization stream
};

/// Smallest state width that fits the scenario feature block: column 0
/// carries the base feature, columns 1..4 the scenario channels.
inline constexpr std::size_t kScenarioFeatureMinDim = 5;

}  // namespace rnx::core
