// Hyperparameters shared by both RouteNet variants.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rnx::core {

/// Which per-path metric the readout regresses.  RouteNet supports both
/// (paper abstract: "delay or jitter"); the Fig. 2 evaluation uses delay.
enum class PredictionTarget : std::uint8_t { kDelay, kJitter };

/// How the node states are updated in the extended architecture.
enum class NodeUpdateRule : std::uint8_t {
  /// The paper's rule (§2): element-wise sum of the (updated) states of
  /// all paths that traverse the node, fed to RNN_N.
  kSumPathStates,
  /// Ablation variant (DESIGN.md A3): aggregate the path RNN's positional
  /// outputs at node positions, symmetric to how links receive messages.
  kPositionalMessages,
};

struct ModelConfig {
  std::size_t state_dim = 16;       ///< path/link/node state width
  std::size_t readout_hidden = 32;  ///< readout MLP hidden width
  std::size_t iterations = 4;       ///< message-passing rounds (T)
  NodeUpdateRule node_rule = NodeUpdateRule::kSumPathStates;
  /// Normalize the node aggregation by the number of contributing paths
  /// (mean instead of the paper's plain sum).  Sum magnitudes scale with
  /// topology size (552 paths on GEANT2 vs 182 on NSFNET), which hurts
  /// transfer to unseen topologies; the mean is scale-free.  Ablated by
  /// bench_ablation_node_update.
  bool node_mean_aggregation = true;
  /// Use the fused single-tape-node GRU kernel (nn/gru.hpp).  Off routes
  /// every RNN step through the op-by-op composition — the serial
  /// baseline of bench_parallel_speedup and the gradcheck reference.
  bool fused_gru = true;
  std::uint64_t init_seed = 42;     ///< weight initialization stream
};

}  // namespace rnx::core
