#include "core/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/sample_io.hpp"

namespace rnx::core {

namespace {

// Bounds that keep a corrupt checkpoint from driving huge allocations:
// far above any real model, far below anything that could hurt.
constexpr std::uint64_t kMaxBodyBytes = 1ull << 32;
constexpr std::uint64_t kMaxParams = 1u << 16;
constexpr std::uint64_t kMaxNameLen = 1u << 12;
constexpr std::uint64_t kMaxTensorElems = 1ull << 28;

template <typename T>
void put(std::ostream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void get(std::istream& f, T& v, const std::string& what) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw CheckpointError(what + ": truncated checkpoint");
}

void put_tensor(std::ostream& f, const nn::Tensor& t) {
  put(f, static_cast<std::uint64_t>(t.rows()));
  put(f, static_cast<std::uint64_t>(t.cols()));
  const auto d = t.flat();
  f.write(reinterpret_cast<const char*>(d.data()),
          static_cast<std::streamsize>(d.size() * sizeof(double)));
}

nn::Tensor get_tensor(std::istream& f, const std::string& what) {
  std::uint64_t rows = 0, cols = 0;
  get(f, rows, what);
  get(f, cols, what);
  if (rows == 0 || cols == 0 || rows * cols > kMaxTensorElems)
    throw CheckpointError(what + ": implausible tensor shape " +
                          std::to_string(rows) + "x" + std::to_string(cols));
  nn::Tensor t(rows, cols);
  const auto d = t.flat();
  f.read(reinterpret_cast<char*>(d.data()),
         static_cast<std::streamsize>(d.size() * sizeof(double)));
  if (!f) throw CheckpointError(what + ": truncated tensor");
  return t;
}

void put_moments(std::ostream& f, const data::Moments& m) {
  put(f, m.mean);
  put(f, m.stddev);
}

data::Moments get_moments(std::istream& f, const std::string& what) {
  data::Moments m;
  get(f, m.mean, what);
  get(f, m.stddev, what);
  return m;
}

}  // namespace

std::string checkpoint_file(const std::string& dir) {
  return (std::filesystem::path(dir) / "train.rnxc").string();
}

void save_checkpoint(const std::string& path, const TrainCheckpoint& c) {
  std::ostringstream b(std::ios::binary);
  put(b, static_cast<std::uint8_t>(c.streaming ? 1 : 0));
  put(b, c.config_digest);
  put(b, c.epoch);
  put(b, c.batch_in_epoch);
  put(b, c.samples_done);
  put(b, c.lr);
  for (const std::uint64_t s : c.shuffle_state) put(b, s);
  put(b, c.loss_sum);
  put(b, c.loss_count);
  put(b, c.best_val);
  put(b, c.since_best);
  put(b, c.adam_t);
  for (const data::Moments& m : c.scaler_moments) put_moments(b, m);
  put(b, static_cast<std::uint64_t>(c.params.size()));
  for (const TrainCheckpoint::ParamState& p : c.params) {
    put(b, static_cast<std::uint32_t>(p.name.size()));
    b.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    put_tensor(b, p.value);
    put_tensor(b, p.m);
    put_tensor(b, p.v);
  }
  const std::string body = b.str();

  data::io::atomic_write_stream(path, [&](std::ostream& f) {
    f.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    put(f, kCheckpointVersion);
    put(f, static_cast<std::uint64_t>(body.size()));
    put(f, data::io::fnv1a64(body));
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
  });
}

TrainCheckpoint load_checkpoint(const std::string& path) {
  const std::string what = "load_checkpoint(" + path + ")";
  std::ifstream f(path, std::ios::binary);
  if (!f) throw CheckpointError(what + ": cannot open checkpoint");
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::string_view(magic, 4) !=
                std::string_view(kCheckpointMagic, 4))
    throw CheckpointError(what + ": bad magic (not a .rnxc checkpoint)");
  std::uint32_t version = 0;
  get(f, version, what);
  if (version < kMinCheckpointVersion || version > kCheckpointVersion)
    throw CheckpointError(what + ": unsupported checkpoint version " +
                          std::to_string(version));
  std::uint64_t body_size = 0, checksum = 0;
  get(f, body_size, what);
  get(f, checksum, what);
  if (body_size == 0 || body_size > kMaxBodyBytes)
    throw CheckpointError(what + ": corrupt header (body size " +
                          std::to_string(body_size) + ")");
  std::string body(body_size, '\0');
  f.read(body.data(), static_cast<std::streamsize>(body_size));
  if (!f || f.gcount() != static_cast<std::streamsize>(body_size))
    throw CheckpointError(what + ": truncated checkpoint");
  if (data::io::fnv1a64(body) != checksum)
    throw CheckpointError(what + ": checksum mismatch (corrupt)");

  std::istringstream bs(body, std::ios::binary);
  TrainCheckpoint c;
  std::uint8_t streaming = 0;
  get(bs, streaming, what);
  if (streaming > 1)
    throw CheckpointError(what + ": invalid mode byte " +
                          std::to_string(streaming));
  c.streaming = streaming != 0;
  get(bs, c.config_digest, what);
  get(bs, c.epoch, what);
  get(bs, c.batch_in_epoch, what);
  get(bs, c.samples_done, what);
  get(bs, c.lr, what);
  for (std::uint64_t& s : c.shuffle_state) get(bs, s, what);
  get(bs, c.loss_sum, what);
  get(bs, c.loss_count, what);
  get(bs, c.best_val, what);
  get(bs, c.since_best, what);
  get(bs, c.adam_t, what);
  for (data::Moments& m : c.scaler_moments) m = get_moments(bs, what);
  std::uint64_t count = 0;
  get(bs, count, what);
  if (count > kMaxParams)
    throw CheckpointError(what + ": implausible parameter count " +
                          std::to_string(count));
  c.params.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TrainCheckpoint::ParamState p;
    std::uint32_t len = 0;
    get(bs, len, what);
    if (len == 0 || len > kMaxNameLen)
      throw CheckpointError(what + ": implausible parameter name length " +
                            std::to_string(len));
    p.name.resize(len);
    bs.read(p.name.data(), len);
    if (!bs) throw CheckpointError(what + ": truncated parameter name");
    p.value = get_tensor(bs, what);
    p.m = get_tensor(bs, what);
    p.v = get_tensor(bs, what);
    if (p.m.rows() != p.value.rows() || p.m.cols() != p.value.cols() ||
        p.v.rows() != p.value.rows() || p.v.cols() != p.value.cols())
      throw CheckpointError(what + ": moment shape mismatch for parameter '" +
                            p.name + "'");
    c.params.push_back(std::move(p));
  }
  return c;
}

}  // namespace rnx::core
