#include "core/plan.hpp"

#include <algorithm>

namespace rnx::core {

MpPlan build_plan(const data::Sample& sample, bool use_nodes) {
  MpPlan plan;
  plan.num_paths = sample.paths.size();
  plan.num_links = sample.num_links();
  plan.num_nodes = sample.num_nodes;
  plan.set_interleaved(use_nodes);

  std::size_t max_hops = 0;
  std::size_t total_hops = 0;
  for (const auto& p : sample.paths) {
    max_hops = std::max(max_hops, p.links.size());
    total_hops += p.links.size();
  }

  // Each path contributes one arena entry per traversed element: hops
  // link entries, plus hops node entries when interleaved.
  const std::size_t seq_len = use_nodes ? 2 * max_hops : max_hops;
  plan.arena_reserve(seq_len, use_nodes ? 2 * total_hops : total_hops);
  for (std::size_t pos = 0; pos < seq_len; ++pos) {
    const std::size_t hop = use_nodes ? pos / 2 : pos;
    const bool is_node = use_nodes && (pos % 2 == 0);
    for (std::size_t pi = 0; pi < sample.paths.size(); ++pi) {
      const auto& path = sample.paths[pi];
      if (hop >= path.links.size()) continue;  // path already finished
      plan.push_entry(static_cast<nn::Index>(pi),
                      is_node ? static_cast<nn::Index>(path.nodes[hop])
                              : static_cast<nn::Index>(path.links[hop]));
    }
    plan.close_position();
  }
  // Trailing positions can be empty when use_nodes toggles parity; drop
  // any empty tail so the RNN loop does no zero-row work.
  plan.drop_empty_tail();

  if (use_nodes) {
    // A path "traverses" the nodes whose output queues it occupies:
    // nodes[0..hops-1] (the destination only receives).
    plan.inc_path_rows.reserve(total_hops);
    plan.inc_node_ids.reserve(total_hops);
    for (std::size_t pi = 0; pi < sample.paths.size(); ++pi) {
      const auto& path = sample.paths[pi];
      for (std::size_t h = 0; h < path.links.size(); ++h) {
        plan.inc_path_rows.push_back(static_cast<nn::Index>(pi));
        plan.inc_node_ids.push_back(static_cast<nn::Index>(path.nodes[h]));
      }
    }
  }
  return plan;
}

RefPlan build_plan_reference(const data::Sample& sample, bool use_nodes) {
  RefPlan plan;
  plan.num_paths = sample.paths.size();
  plan.num_links = sample.num_links();
  plan.num_nodes = sample.num_nodes;

  std::size_t max_hops = 0;
  for (const auto& p : sample.paths)
    max_hops = std::max(max_hops, p.links.size());

  const std::size_t seq_len = use_nodes ? 2 * max_hops : max_hops;
  plan.positions.resize(seq_len);
  for (std::size_t pos = 0; pos < seq_len; ++pos) {
    RefSeqPosition& sp = plan.positions[pos];
    const std::size_t hop = use_nodes ? pos / 2 : pos;
    sp.is_node = use_nodes && (pos % 2 == 0);
    for (std::size_t pi = 0; pi < sample.paths.size(); ++pi) {
      const auto& path = sample.paths[pi];
      if (hop >= path.links.size()) continue;
      sp.path_rows.push_back(static_cast<nn::Index>(pi));
      sp.elem_ids.push_back(sp.is_node
                                ? static_cast<nn::Index>(path.nodes[hop])
                                : static_cast<nn::Index>(path.links[hop]));
    }
  }
  while (!plan.positions.empty() && plan.positions.back().path_rows.empty())
    plan.positions.pop_back();

  if (use_nodes) {
    for (std::size_t pi = 0; pi < sample.paths.size(); ++pi) {
      const auto& path = sample.paths[pi];
      for (std::size_t h = 0; h < path.links.size(); ++h) {
        plan.inc_path_rows.push_back(static_cast<nn::Index>(pi));
        plan.inc_node_ids.push_back(static_cast<nn::Index>(path.nodes[h]));
      }
    }
  }
  return plan;
}

std::vector<nn::Index> valid_label_rows(const data::Sample& sample,
                                        std::uint64_t min_delivered,
                                        PredictionTarget target) {
  std::vector<nn::Index> rows;
  for (std::size_t pi = 0; pi < sample.paths.size(); ++pi) {
    const auto& p = sample.paths[pi];
    const double label = target == PredictionTarget::kDelay
                             ? p.mean_delay_s
                             : p.jitter_s2;
    if (p.delivered >= min_delivered && label > 0.0)
      rows.push_back(static_cast<nn::Index>(pi));
  }
  return rows;
}

}  // namespace rnx::core
