// First-order optimizers over a fixed parameter set.
//
// Optimizers hold Var handles (shared tape nodes), so stepping mutates the
// same tensors the model reads on the next forward pass.
#pragma once

#include <memory>
#include <vector>

#include "nn/autograd.hpp"

namespace rnx::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update from the accumulated gradients.
  virtual void step() = 0;
  /// Clear all parameter gradients (call after step()).
  void zero_grad();
  /// L2 norm of the concatenated gradient vector.
  [[nodiscard]] double grad_global_norm() const;
  /// Scale all gradients down so the global norm is <= max_norm.
  void clip_global_norm(double max_norm);
  [[nodiscard]] const std::vector<Var>& params() const noexcept {
    return params_;
  }

 protected:
  std::vector<Var> params_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Var> params, double lr, double momentum = 0.0);
  void step() override;

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer used to
/// train RouteNet.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Var> params, double lr = 1e-3, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }
  [[nodiscard]] std::uint64_t steps_taken() const noexcept { return t_; }

  /// Moment estimates, aligned with params() — exposed so the trainer's
  /// crash-safe checkpoint can persist the full optimizer state.
  [[nodiscard]] const std::vector<Tensor>& first_moments() const noexcept {
    return m_;
  }
  [[nodiscard]] const std::vector<Tensor>& second_moments() const noexcept {
    return v_;
  }
  /// Restore a checkpointed state.  `m`/`v` must match params() in count
  /// and shapes (std::invalid_argument otherwise); resumed training then
  /// continues bitwise-identically to the uninterrupted run.
  void restore_state(std::uint64_t t, std::vector<Tensor> m,
                     std::vector<Tensor> v);

 private:
  double lr_, beta1_, beta2_, eps_;
  std::uint64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace rnx::nn
