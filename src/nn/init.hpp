// Weight initialization schemes.
#pragma once

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace rnx::nn {

/// Glorot/Xavier uniform: U(-L, L) with L = sqrt(6 / (fan_in + fan_out)).
/// Default for GRU and dense weights (tanh/sigmoid gates).
[[nodiscard]] Tensor glorot_uniform(std::size_t rows, std::size_t cols,
                                    util::RngStream& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)); for ReLU layers.
[[nodiscard]] Tensor he_normal(std::size_t rows, std::size_t cols,
                               util::RngStream& rng);

/// Uniform in [lo, hi).
[[nodiscard]] Tensor uniform_init(std::size_t rows, std::size_t cols,
                                  double lo, double hi,
                                  util::RngStream& rng);

}  // namespace rnx::nn
