#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace rnx::nn {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const auto& p : params_)
    if (!p.defined() || !p.requires_grad())
      throw std::invalid_argument("Optimizer: non-trainable parameter");
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

double Optimizer::grad_global_norm() const {
  double s = 0.0;
  for (const auto& p : params_) s += p.grad().squared_norm();
  return std::sqrt(s);
}

void Optimizer::clip_global_norm(double max_norm) {
  if (max_norm <= 0.0)
    throw std::invalid_argument("clip_global_norm: max_norm <= 0");
  const double norm = grad_global_norm();
  if (norm <= max_norm || norm == 0.0) return;
  const double f = max_norm / norm;
  for (auto& p : params_) p.grad_ref().scale_inplace(f);
}

Sgd::Sgd(std::vector<Var> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr <= 0");
  if (momentum < 0.0 || momentum >= 1.0)
    throw std::invalid_argument("Sgd: momentum out of [0,1)");
  if (momentum_ > 0.0) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_)
      velocity_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (momentum_ > 0.0) {
      velocity_[i].scale_inplace(momentum_);
      velocity_[i].axpy_inplace(1.0, p.grad());
      p.mutable_value().axpy_inplace(-lr_, velocity_[i]);
    } else {
      p.mutable_value().axpy_inplace(-lr_, p.grad());
    }
  }
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0 || eps <= 0.0 || beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 ||
      beta2 >= 1.0)
    throw std::invalid_argument("Adam: bad hyperparameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::restore_state(std::uint64_t t, std::vector<Tensor> m,
                         std::vector<Tensor> v) {
  if (m.size() != params_.size() || v.size() != params_.size())
    throw std::invalid_argument("Adam::restore_state: moment count " +
                                std::to_string(m.size()) + "/" +
                                std::to_string(v.size()) + " != parameter count " +
                                std::to_string(params_.size()));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i].value();
    if (m[i].rows() != p.rows() || m[i].cols() != p.cols() ||
        v[i].rows() != p.rows() || v[i].cols() != p.cols())
      throw std::invalid_argument(
          "Adam::restore_state: moment shape mismatch at parameter " +
          std::to_string(i));
  }
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto g = p.grad().flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    auto w = p.mutable_value().flat();
    for (std::size_t j = 0; j < g.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mh = m[j] / bc1;
      const double vh = v[j] / bc2;
      w[j] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
  }
}

}  // namespace rnx::nn
