// Dense layer and multi-layer perceptron (the readout network).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.hpp"
#include "util/rng.hpp"

namespace rnx::nn {

enum class Activation : std::uint8_t { kNone, kRelu, kSigmoid, kTanh, kSoftplus };

/// y = act(x W + b); W is (in x out).
class Dense {
 public:
  Dense(std::size_t input_dim, std::size_t output_dim, Activation act,
        util::RngStream& rng, std::string name = "dense");

  [[nodiscard]] Var forward(const Var& x) const;
  [[nodiscard]] std::size_t input_dim() const noexcept { return in_; }
  [[nodiscard]] std::size_t output_dim() const noexcept { return out_; }
  [[nodiscard]] std::vector<std::pair<std::string, Var>> named_params() const;

 private:
  std::size_t in_;
  std::size_t out_;
  Activation act_;
  std::string name_;
  Var w_, b_;
};

/// Feed-forward stack: hidden layers use `hidden_act`, the final layer is
/// linear — the shape RouteNet's readout function uses.
class Mlp {
 public:
  /// dims = {in, h1, ..., out}; needs at least {in, out}.
  Mlp(const std::vector<std::size_t>& dims, Activation hidden_act,
      util::RngStream& rng, std::string name = "mlp");

  [[nodiscard]] Var forward(const Var& x) const;
  [[nodiscard]] std::vector<std::pair<std::string, Var>> named_params() const;

 private:
  std::vector<Dense> layers_;
};

/// Apply an activation as a free function (used by Dense and tests).
[[nodiscard]] Var apply_activation(const Var& x, Activation act);

}  // namespace rnx::nn
