#include "nn/init.hpp"

#include <cmath>

namespace rnx::nn {

Tensor glorot_uniform(std::size_t rows, std::size_t cols,
                      util::RngStream& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  return uniform_init(rows, cols, -limit, limit, rng);
}

Tensor he_normal(std::size_t rows, std::size_t cols, util::RngStream& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(rows));
  Tensor t(rows, cols);
  for (auto& x : t.flat()) x = rng.normal(0.0, stddev);
  return t;
}

Tensor uniform_init(std::size_t rows, std::size_t cols, double lo, double hi,
                    util::RngStream& rng) {
  Tensor t(rows, cols);
  for (auto& x : t.flat()) x = rng.uniform(lo, hi);
  return t;
}

}  // namespace rnx::nn
