// Free-list tensor pool for backprop scratch space.
//
// One GRU step used to allocate ~15 tape tensors; the fused kernel cuts
// that to a handful of gate buffers whose shapes repeat every step.  The
// pool recycles those buffers through a small thread-local free list so
// the hot training loop stops hitting the allocator (DESIGN.md S3).
//
// Thread-local by construction: each trainer lane has its own list, so
// acquire/release need no synchronization and recycled buffers never
// migrate between threads.
#pragma once

#include <cstddef>

#include "nn/tensor.hpp"

namespace rnx::nn {

class TensorPool {
 public:
  /// A rows x cols tensor, zero-filled, backed by a recycled buffer when
  /// one is available on this thread's free list.
  [[nodiscard]] static Tensor acquire(std::size_t rows, std::size_t cols);

  /// As acquire(), but with unspecified contents — for buffers every
  /// element of which the caller overwrites before reading (gate panels,
  /// concatenation scratch).  Skips the zero-fill pass on reuse.
  [[nodiscard]] static Tensor acquire_uninit(std::size_t rows,
                                             std::size_t cols);

  /// Return a tensor's buffer to this thread's free list.  The tensor is
  /// left empty; releasing an empty tensor is a no-op.
  static void release(Tensor&& t);

  /// Buffers currently parked on this thread's free list (tests).
  [[nodiscard]] static std::size_t pooled_count() noexcept;

  /// Drop this thread's free list (tests / memory pressure).
  static void drain() noexcept;
};

}  // namespace rnx::nn
