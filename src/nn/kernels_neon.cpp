// NEON (aarch64) backend.  Unlike the AVX2 backend this one is fully
// bitwise-identical to the scalar reference: all vector arithmetic uses
// separate vmulq_f64 + vaddq_f64 (never FMLA), per-cell accumulation
// order matches the scalar loops exactly (including the matmul_nt_acc
// even/odd two-lane split, which maps 1:1 onto a float64x2 accumulator),
// and the transcendentals call libm per element.  aarch64 has no
// runtime-optional NEON — presence is a compile-time fact.
#include "nn/kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

namespace rnx::nn::kernels {
namespace neon {
namespace {

constexpr std::size_t kBlockI = 32;
constexpr std::size_t kBlockK = 128;

// Same blocked ikj structure and av == 0.0 skip as the scalar backend;
// the inner j loop runs two columns per step with mul+add.
void matmul_acc(double* c, const double* a, const double* b, std::size_t n,
                std::size_t k, std::size_t m) {
  for (std::size_t i0 = 0; i0 < n; i0 += kBlockI) {
    const std::size_t i1 = std::min(i0 + kBlockI, n);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        double* crow = c + i * m;
        const double* arow = a + i * k;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b + p * m;
          const float64x2_t va = vdupq_n_f64(av);
          std::size_t j = 0;
          for (; j + 2 <= m; j += 2)
            vst1q_f64(crow + j,
                      vaddq_f64(vld1q_f64(crow + j),
                                vmulq_f64(va, vld1q_f64(brow + j))));
          for (; j < m; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void matmul_tn_acc(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t k, std::size_t m) {
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * n;
    const double* brow = b + p * m;
    for (std::size_t i = 0; i < n; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c + i * m;
      const float64x2_t va = vdupq_n_f64(av);
      std::size_t j = 0;
      for (; j + 2 <= m; j += 2)
        vst1q_f64(crow + j, vaddq_f64(vld1q_f64(crow + j),
                                      vmulq_f64(va, vld1q_f64(brow + j))));
      for (; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_nt_acc(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t k, std::size_t m) {
  const std::size_t k2 = k - k % 2;
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b + j * k;
      // Lane 0 = scalar s0 (even p), lane 1 = scalar s1 (odd p).
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t p = 0; p < k2; p += 2)
        acc = vaddq_f64(acc, vmulq_f64(vld1q_f64(arow + p),
                                       vld1q_f64(brow + p)));
      double s0 = vgetq_lane_f64(acc, 0);
      const double s1 = vgetq_lane_f64(acc, 1);
      if (k2 < k) s0 += arow[k2] * brow[k2];
      crow[j] += s0 + s1;
    }
  }
}

void vadd(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) y[i] = a[i] + b[i];
}

void vsub(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) y[i] = a[i] - b[i];
}

void vmul(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) y[i] = a[i] * b[i];
}

void vmacc(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i),
                        vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i))));
  for (; i < n; ++i) y[i] += a[i] * b[i];
}

void vaxpy(double* y, double alpha, const double* x, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void vaffine(double* y, const double* a, double alpha, double beta,
             std::size_t n) {
  const float64x2_t valpha = vdupq_n_f64(alpha);
  const float64x2_t vbeta = vdupq_n_f64(beta);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i,
              vaddq_f64(vmulq_f64(valpha, vld1q_f64(a + i)), vbeta));
  for (; i < n; ++i) y[i] = alpha * a[i] + beta;
}

void vrelu(double* y, const double* a, std::size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(a + i);
    const uint64x2_t gt = vcgtq_f64(v, zero);
    vst1q_f64(y + i, vreinterpretq_f64_u64(vandq_u64(
                         vreinterpretq_u64_f64(v), gt)));
  }
  for (; i < n; ++i) y[i] = a[i] > 0.0 ? a[i] : 0.0;
}

// Transcendentals stay on libm so this backend is bitwise-stable; the
// vector win on aarch64 comes from the linear kernels and matmuls.
void vsigmoid(double* y, const double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = 1.0 / (1.0 + std::exp(-a[i]));
}

void vtanh(double* y, const double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = std::tanh(a[i]);
}

void gru_gates(double* z, double* r, double* rh, const double* a_zr,
               const double* h, std::size_t rows, std::size_t hid) {
  for (std::size_t row = 0; row < rows; ++row) {
    const double* azr = a_zr + row * 2 * hid;
    vsigmoid(z + row * hid, azr, hid);
    vsigmoid(r + row * hid, azr + hid, hid);
    vmul(rh + row * hid, r + row * hid, h + row * hid, hid);
  }
}

void gru_blend(double* nout, double* y, const double* an, const double* z,
               const double* h, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    nout[i] = std::tanh(an[i]);
    y[i] = (1.0 - z[i]) * nout[i] + z[i] * h[i];
  }
}

}  // namespace
}  // namespace neon

const Backend* detail::neon_backend() noexcept {
  static const Backend backend = {
      Isa::kNeon,
      "neon",
      &neon::matmul_acc,
      &neon::matmul_tn_acc,
      &neon::matmul_nt_acc,
      &neon::vadd,
      &neon::vsub,
      &neon::vmul,
      &neon::vmacc,
      &neon::vaxpy,
      &neon::vaffine,
      &neon::vrelu,
      &neon::vsigmoid,
      &neon::vtanh,
      &neon::gru_gates,
      &neon::gru_blend,
  };
  return &backend;
}

}  // namespace rnx::nn::kernels

#else  // non-aarch64: stub only.

namespace rnx::nn::kernels {
const Backend* detail::neon_backend() noexcept { return nullptr; }
}  // namespace rnx::nn::kernels

#endif
