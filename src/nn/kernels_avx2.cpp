// AVX2+FMA backend.  Compiled with -mavx2 -mfma -ffp-contract=off (see
// CMakeLists.txt): vector FMA is used only where this file spells it out
// with _mm256_fmadd_pd, so the plain scalar tail loops below stay
// bitwise-identical to the scalar reference backend.
//
// Parity contract vs the scalar backend (pinned in nn_kernels_test.cpp):
//   * linear elementwise kernels (vadd..vaffine, vrelu, the gru blend's
//     mul+add) — bitwise identical: same per-element IEEE ops, no FMA;
//   * matmul family — same per-cell ascending-p accumulation order, but
//     mul+add contracted to FMA, no av == 0.0 skip, and matmul_nt_acc
//     sums in 4+4 lanes instead of 2, so results agree to a small
//     relative bound instead of bitwise;
//   * vsigmoid/vtanh — Cephes-style polynomial exp instead of libm;
//     agree to a few ulp over the finite range and saturate to the same
//     0/±1 limits.
#include "nn/kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

namespace rnx::nn::kernels {
namespace avx2 {
namespace {

// ---------------------------------------------------------------------------
// matmul_acc: c (n x m) += a (n x k) * b (k x m).
//
// j-tiled register accumulation: a tile of C cells lives in ymm registers
// while p sweeps the reduction ascending, so each C cell sees the exact
// scalar accumulation order (initial value first, then p ascending) with
// mul+add contracted to FMA.  Two A rows share each B load; 8 independent
// FMA chains hide the FMA latency at 2 issues/cycle.
// ---------------------------------------------------------------------------

// bpanel points at the first 16-wide B row of the tile's column panel;
// consecutive reduction rows are bstride apart (m when reading B in
// place, 16 when reading a packed panel — same values either way).
inline void mm_tile_2x16(double* c0, double* c1, const double* a0,
                         const double* a1, const double* bpanel,
                         std::size_t k, std::size_t bstride) {
  __m256d r00 = _mm256_loadu_pd(c0), r01 = _mm256_loadu_pd(c0 + 4);
  __m256d r02 = _mm256_loadu_pd(c0 + 8), r03 = _mm256_loadu_pd(c0 + 12);
  __m256d r10 = _mm256_loadu_pd(c1), r11 = _mm256_loadu_pd(c1 + 4);
  __m256d r12 = _mm256_loadu_pd(c1 + 8), r13 = _mm256_loadu_pd(c1 + 12);
  for (std::size_t p = 0; p < k; ++p) {
    const double* brow = bpanel + p * bstride;
    const __m256d b0 = _mm256_loadu_pd(brow);
    const __m256d b1 = _mm256_loadu_pd(brow + 4);
    const __m256d b2 = _mm256_loadu_pd(brow + 8);
    const __m256d b3 = _mm256_loadu_pd(brow + 12);
    const __m256d va0 = _mm256_broadcast_sd(a0 + p);
    r00 = _mm256_fmadd_pd(va0, b0, r00);
    r01 = _mm256_fmadd_pd(va0, b1, r01);
    r02 = _mm256_fmadd_pd(va0, b2, r02);
    r03 = _mm256_fmadd_pd(va0, b3, r03);
    const __m256d va1 = _mm256_broadcast_sd(a1 + p);
    r10 = _mm256_fmadd_pd(va1, b0, r10);
    r11 = _mm256_fmadd_pd(va1, b1, r11);
    r12 = _mm256_fmadd_pd(va1, b2, r12);
    r13 = _mm256_fmadd_pd(va1, b3, r13);
  }
  _mm256_storeu_pd(c0, r00);
  _mm256_storeu_pd(c0 + 4, r01);
  _mm256_storeu_pd(c0 + 8, r02);
  _mm256_storeu_pd(c0 + 12, r03);
  _mm256_storeu_pd(c1, r10);
  _mm256_storeu_pd(c1 + 4, r11);
  _mm256_storeu_pd(c1 + 8, r12);
  _mm256_storeu_pd(c1 + 12, r13);
}

inline void mm_tile_1x16(double* c0, const double* a0, const double* bpanel,
                         std::size_t k, std::size_t bstride) {
  __m256d r0 = _mm256_loadu_pd(c0), r1 = _mm256_loadu_pd(c0 + 4);
  __m256d r2 = _mm256_loadu_pd(c0 + 8), r3 = _mm256_loadu_pd(c0 + 12);
  for (std::size_t p = 0; p < k; ++p) {
    const double* brow = bpanel + p * bstride;
    const __m256d va = _mm256_broadcast_sd(a0 + p);
    r0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow), r0);
    r1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 4), r1);
    r2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 8), r2);
    r3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 12), r3);
  }
  _mm256_storeu_pd(c0, r0);
  _mm256_storeu_pd(c0 + 4, r1);
  _mm256_storeu_pd(c0 + 8, r2);
  _mm256_storeu_pd(c0 + 12, r3);
}

/// B panels bigger than this (bytes) get copied into a contiguous
/// thread-local pack before the tile sweep: a 16-doubles-wide strided
/// walk over a panel that exceeds half of L1 misses constantly, while
/// the packed copy streams sequentially.  The copy is value-preserving,
/// so packed and in-place paths are bitwise identical.
constexpr std::size_t kPackBytes = 16 * 1024;

inline const double* pack_bpanel(const double* b, std::size_t k,
                                 std::size_t m, std::size_t j) {
  static thread_local std::vector<double> pack;
  pack.resize(k * 16);
  for (std::size_t p = 0; p < k; ++p)
    std::memcpy(pack.data() + p * 16, b + p * m + j, 16 * sizeof(double));
  return pack.data();
}

// Column tail for one row: 4-wide vectors, then scalar FMA.
inline void mm_row_tail(double* crow, const double* arow, const double* b,
                        std::size_t k, std::size_t m, std::size_t j0) {
  std::size_t j = j0;
  for (; j + 4 <= m; j += 4) {
    __m256d r = _mm256_loadu_pd(crow + j);
    for (std::size_t p = 0; p < k; ++p)
      r = _mm256_fmadd_pd(_mm256_broadcast_sd(arow + p),
                          _mm256_loadu_pd(b + p * m + j), r);
    _mm256_storeu_pd(crow + j, r);
  }
  for (; j < m; ++j) {
    double s = crow[j];
    for (std::size_t p = 0; p < k; ++p) s = std::fma(arow[p], b[p * m + j], s);
    crow[j] = s;
  }
}

void matmul_acc(double* c, const double* a, const double* b, std::size_t n,
                std::size_t k, std::size_t m) {
  // j-panel outer: the (k x 16) B panel a tile sweeps stays hot across
  // every row pair instead of being re-streamed per pair.  Tile order
  // does not touch per-cell accumulation order (each C cell is still
  // initial value, then p ascending).
  const std::size_t j16 = m - m % 16;
  const bool pack = k * m * sizeof(double) > kPackBytes && n >= 8;
  for (std::size_t j = 0; j < j16; j += 16) {
    const double* bpanel = pack ? pack_bpanel(b, k, m, j) : b + j;
    const std::size_t bstride = pack ? 16 : m;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
      mm_tile_2x16(c + i * m + j, c + (i + 1) * m + j, a + i * k,
                   a + (i + 1) * k, bpanel, k, bstride);
    if (i < n) mm_tile_1x16(c + i * m + j, a + i * k, bpanel, k, bstride);
  }
  if (j16 < m)
    for (std::size_t i = 0; i < n; ++i)
      mm_row_tail(c + i * m, a + i * k, b, k, m, j16);
}

// ---------------------------------------------------------------------------
// matmul_tn_acc: c (n x m) += a^T (a: k x n) * b (k x m).
//
// Same register-tile scheme; the A operand is walked down a column
// (a[p*n + i]), and two adjacent columns i, i+1 are adjacent in memory,
// so the two broadcasts of each p iteration touch one cache line.
// ---------------------------------------------------------------------------

inline void tn_tile_2x16(double* c0, double* c1, const double* a,
                         const double* bpanel, std::size_t k, std::size_t n,
                         std::size_t bstride, std::size_t i) {
  __m256d r00 = _mm256_loadu_pd(c0), r01 = _mm256_loadu_pd(c0 + 4);
  __m256d r02 = _mm256_loadu_pd(c0 + 8), r03 = _mm256_loadu_pd(c0 + 12);
  __m256d r10 = _mm256_loadu_pd(c1), r11 = _mm256_loadu_pd(c1 + 4);
  __m256d r12 = _mm256_loadu_pd(c1 + 8), r13 = _mm256_loadu_pd(c1 + 12);
  for (std::size_t p = 0; p < k; ++p) {
    const double* brow = bpanel + p * bstride;
    const __m256d b0 = _mm256_loadu_pd(brow);
    const __m256d b1 = _mm256_loadu_pd(brow + 4);
    const __m256d b2 = _mm256_loadu_pd(brow + 8);
    const __m256d b3 = _mm256_loadu_pd(brow + 12);
    const double* acol = a + p * n + i;
    const __m256d va0 = _mm256_broadcast_sd(acol);
    r00 = _mm256_fmadd_pd(va0, b0, r00);
    r01 = _mm256_fmadd_pd(va0, b1, r01);
    r02 = _mm256_fmadd_pd(va0, b2, r02);
    r03 = _mm256_fmadd_pd(va0, b3, r03);
    const __m256d va1 = _mm256_broadcast_sd(acol + 1);
    r10 = _mm256_fmadd_pd(va1, b0, r10);
    r11 = _mm256_fmadd_pd(va1, b1, r11);
    r12 = _mm256_fmadd_pd(va1, b2, r12);
    r13 = _mm256_fmadd_pd(va1, b3, r13);
  }
  _mm256_storeu_pd(c0, r00);
  _mm256_storeu_pd(c0 + 4, r01);
  _mm256_storeu_pd(c0 + 8, r02);
  _mm256_storeu_pd(c0 + 12, r03);
  _mm256_storeu_pd(c1, r10);
  _mm256_storeu_pd(c1 + 4, r11);
  _mm256_storeu_pd(c1 + 8, r12);
  _mm256_storeu_pd(c1 + 12, r13);
}

inline void tn_tile_1x16(double* c0, const double* a, const double* bpanel,
                         std::size_t k, std::size_t n, std::size_t bstride,
                         std::size_t i) {
  __m256d r0 = _mm256_loadu_pd(c0), r1 = _mm256_loadu_pd(c0 + 4);
  __m256d r2 = _mm256_loadu_pd(c0 + 8), r3 = _mm256_loadu_pd(c0 + 12);
  for (std::size_t p = 0; p < k; ++p) {
    const double* brow = bpanel + p * bstride;
    const __m256d va = _mm256_broadcast_sd(a + p * n + i);
    r0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow), r0);
    r1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 4), r1);
    r2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 8), r2);
    r3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 12), r3);
  }
  _mm256_storeu_pd(c0, r0);
  _mm256_storeu_pd(c0 + 4, r1);
  _mm256_storeu_pd(c0 + 8, r2);
  _mm256_storeu_pd(c0 + 12, r3);
}

inline void tn_row_tail(double* crow, const double* a, const double* b,
                        std::size_t k, std::size_t n, std::size_t m,
                        std::size_t i, std::size_t j0) {
  std::size_t j = j0;
  for (; j + 4 <= m; j += 4) {
    __m256d r = _mm256_loadu_pd(crow + j);
    for (std::size_t p = 0; p < k; ++p)
      r = _mm256_fmadd_pd(_mm256_broadcast_sd(a + p * n + i),
                          _mm256_loadu_pd(b + p * m + j), r);
    _mm256_storeu_pd(crow + j, r);
  }
  for (; j < m; ++j) {
    double s = crow[j];
    for (std::size_t p = 0; p < k; ++p)
      s = std::fma(a[p * n + i], b[p * m + j], s);
    crow[j] = s;
  }
}

void matmul_tn_acc(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t k, std::size_t m) {
  // j-panel outer with the same B-panel packing as matmul_acc.
  const std::size_t j16 = m - m % 16;
  const bool pack = k * m * sizeof(double) > kPackBytes && n >= 8;
  for (std::size_t j = 0; j < j16; j += 16) {
    const double* bpanel = pack ? pack_bpanel(b, k, m, j) : b + j;
    const std::size_t bstride = pack ? 16 : m;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
      tn_tile_2x16(c + i * m + j, c + (i + 1) * m + j, a, bpanel, k, n,
                   bstride, i);
    if (i < n) tn_tile_1x16(c + i * m + j, a, bpanel, k, n, bstride, i);
  }
  if (j16 < m)
    for (std::size_t i = 0; i < n; ++i)
      tn_row_tail(c + i * m, a, b, k, n, m, i, j16);
}

// ---------------------------------------------------------------------------
// matmul_nt_acc: c (n x m) += a (n x k) * b^T (b: m x k).
//
// Row-times-row dot products.  Four B rows at a time against one A row:
// each of the 4 accumulators reduces its own row in 4 lanes (ascending p
// within a lane), then a transpose-reduce folds them into one 4-wide
// update of C.  Lane count differs from the scalar backend's 2, so this
// kernel is relative-bound, not bitwise.
// ---------------------------------------------------------------------------

inline __m256d hsum4(__m256d acc0, __m256d acc1, __m256d acc2, __m256d acc3) {
  // [a01, b01, a23, b23] / [c01, d01, c23, d23] -> per-row totals [a,b,c,d]
  const __m256d t0 = _mm256_hadd_pd(acc0, acc1);
  const __m256d t1 = _mm256_hadd_pd(acc2, acc3);
  const __m256d lo = _mm256_permute2f128_pd(t0, t1, 0x20);
  const __m256d hi = _mm256_permute2f128_pd(t0, t1, 0x31);
  return _mm256_add_pd(lo, hi);
}

void matmul_nt_acc(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t k, std::size_t m) {
  const std::size_t k4 = k - k % 4;
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
      for (std::size_t p = 0; p < k4; p += 4) {
        const __m256d va = _mm256_loadu_pd(arow + p);
        acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b0 + p), acc0);
        acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b1 + p), acc1);
        acc2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b2 + p), acc2);
        acc3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b3 + p), acc3);
      }
      __m256d sums = hsum4(acc0, acc1, acc2, acc3);
      if (k4 < k) {
        // Reduction tail: finish each dot scalar, lane-extracted.
        alignas(32) double s[4];
        _mm256_store_pd(s, sums);
        for (std::size_t p = k4; p < k; ++p) {
          const double av = arow[p];
          s[0] = std::fma(av, b0[p], s[0]);
          s[1] = std::fma(av, b1[p], s[1]);
          s[2] = std::fma(av, b2[p], s[2]);
          s[3] = std::fma(av, b3[p], s[3]);
        }
        sums = _mm256_load_pd(s);
      }
      _mm256_storeu_pd(crow + j,
                       _mm256_add_pd(_mm256_loadu_pd(crow + j), sums));
    }
    for (; j < m; ++j) {
      const double* brow = b + j * k;
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s = std::fma(arow[p], brow[p], s);
      crow[j] += s;
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise linear kernels: 4-wide mul/add only (no FMA), so every
// element goes through exactly the scalar backend's IEEE ops — bitwise
// identical, just four at a time.
// ---------------------------------------------------------------------------

void vadd(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) y[i] = a[i] + b[i];
}

void vsub(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) y[i] = a[i] - b[i];
}

void vmul(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) y[i] = a[i] * b[i];
}

void vmacc(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a[i] * b[i];
}

void vaxpy(double* y, double alpha, const double* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void vaffine(double* y, const double* a, double alpha, double beta,
             std::size_t n) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  const __m256d vbeta = _mm256_set1_pd(beta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i,
        _mm256_add_pd(_mm256_mul_pd(valpha, _mm256_loadu_pd(a + i)), vbeta));
  for (; i < n; ++i) y[i] = alpha * a[i] + beta;
}

void vrelu(double* y, const double* a, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    // a > 0 ? a : 0 — blend keeps the scalar branch semantics (so -0.0
    // maps to +0.0 exactly like the reference).
    _mm256_storeu_pd(y + i,
                     _mm256_and_pd(v, _mm256_cmp_pd(v, zero, _CMP_GT_OQ)));
  }
  for (; i < n; ++i) y[i] = a[i] > 0.0 ? a[i] : 0.0;
}

// ---------------------------------------------------------------------------
// Vector exp, Cephes style (expm1-free range reduction + rational
// polynomial), accurate to ~1-2 ulp over the finite range.  sigmoid/tanh
// build on it.  This is where the GRU's elementwise time goes — libm exp
// is the single hottest scalar op in the fused step.
// ---------------------------------------------------------------------------

constexpr double kMaxLog = 709.782712893383996843;   // log(DBL_MAX)
constexpr double kMinLog = -708.396418532264078749;  // log(DBL_MIN), normal

inline __m256d vexp_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d in = x;
  x = _mm256_min_pd(_mm256_set1_pd(kMaxLog), x);
  x = _mm256_max_pd(_mm256_set1_pd(kMinLog), x);

  // n = round(x * log2(e)); r = x - n*ln2 in two pieces for accuracy.
  const __m256d vlog2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, vlog2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d c1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d c2 = _mm256_set1_pd(1.42860682030941723212e-6);
  x = _mm256_fnmadd_pd(n, c1, x);
  x = _mm256_fnmadd_pd(n, c2, x);

  // exp(r) = 1 + 2r·P(r²) / (Q(r²) − r·P(r²)), |r| <= ln2/2.
  const __m256d xx = _mm256_mul_pd(x, x);
  __m256d px = _mm256_set1_pd(1.26177193074810590878e-4);
  px = _mm256_fmadd_pd(px, xx, _mm256_set1_pd(3.02994407707441961300e-2));
  px = _mm256_fmadd_pd(px, xx, _mm256_set1_pd(9.99999999999999999910e-1));
  px = _mm256_mul_pd(px, x);
  __m256d qx = _mm256_set1_pd(3.00198505138664455042e-6);
  qx = _mm256_fmadd_pd(qx, xx, _mm256_set1_pd(2.52448340349684104192e-3));
  qx = _mm256_fmadd_pd(qx, xx, _mm256_set1_pd(2.27265548208155028766e-1));
  qx = _mm256_fmadd_pd(qx, xx, _mm256_set1_pd(2.0));
  const __m256d e =
      _mm256_div_pd(px, _mm256_sub_pd(qx, px));
  __m256d result = _mm256_fmadd_pd(_mm256_set1_pd(2.0), e, one);

  // Scale by 2^n via direct exponent-field construction (|n| <= 1024, so
  // the int32 path is exact).
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  result = _mm256_mul_pd(result, _mm256_castsi256_pd(pow2));

  // Saturate outside the clamped range like libm: +inf above, +0 below.
  result = _mm256_blendv_pd(
      result, _mm256_set1_pd(HUGE_VAL),
      _mm256_cmp_pd(in, _mm256_set1_pd(kMaxLog), _CMP_GT_OQ));
  result = _mm256_blendv_pd(
      result, _mm256_setzero_pd(),
      _mm256_cmp_pd(in, _mm256_set1_pd(-745.2), _CMP_LT_OQ));
  return result;
}

inline __m256d vsigmoid_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e = vexp_pd(_mm256_sub_pd(_mm256_setzero_pd(), x));
  return _mm256_div_pd(one, _mm256_add_pd(one, e));
}

void vsigmoid(double* y, const double* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, vsigmoid_pd(_mm256_loadu_pd(a + i)));
  if (i < n) {
    // Ragged tail goes through the same vector pipeline (padded), so a
    // value's result never depends on where the row boundary fell.
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t t = i; t < n; ++t) buf[t - i] = a[t];
    alignas(32) double out[4];
    _mm256_store_pd(out, vsigmoid_pd(_mm256_load_pd(buf)));
    for (std::size_t t = i; t < n; ++t) y[t] = out[t - i];
  }
}

// tanh, Cephes style: polynomial on |x| < 0.625, exp-based beyond.
inline __m256d vtanh_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, sign_mask);
  const __m256d ax = _mm256_andnot_pd(sign_mask, x);

  // Large branch: 1 - 2/(exp(2|x|) + 1).  exp overflow -> 2/inf = 0 -> 1,
  // so saturation falls out naturally.
  const __m256d e = vexp_pd(_mm256_add_pd(ax, ax));
  const __m256d big = _mm256_sub_pd(
      one, _mm256_div_pd(_mm256_set1_pd(2.0), _mm256_add_pd(e, one)));

  // Small branch: x + x·z·P(z)/Q(z), z = x² — no cancellation near 0.
  const __m256d z = _mm256_mul_pd(x, x);
  __m256d p = _mm256_set1_pd(-9.64399179425052238628e-1);
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(-9.92877231001918586564e1));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(-1.61468768441708447952e3));
  __m256d q = _mm256_add_pd(z, _mm256_set1_pd(1.12811678491632931402e2));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(2.23548839060100448583e3));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(4.84406305325125486048e3));
  const __m256d small = _mm256_add_pd(
      x, _mm256_mul_pd(_mm256_mul_pd(x, z), _mm256_div_pd(p, q)));

  const __m256d use_small =
      _mm256_cmp_pd(ax, _mm256_set1_pd(0.625), _CMP_LT_OQ);
  return _mm256_blendv_pd(_mm256_or_pd(big, sign), small, use_small);
}

void vtanh(double* y, const double* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, vtanh_pd(_mm256_loadu_pd(a + i)));
  if (i < n) {
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t t = i; t < n; ++t) buf[t - i] = a[t];
    alignas(32) double out[4];
    _mm256_store_pd(out, vtanh_pd(_mm256_load_pd(buf)));
    for (std::size_t t = i; t < n; ++t) y[t] = out[t - i];
  }
}

// ---------------------------------------------------------------------------
// Fused GRU passes.
// ---------------------------------------------------------------------------

void gru_gates(double* z, double* r, double* rh, const double* a_zr,
               const double* h, std::size_t rows, std::size_t hid) {
  for (std::size_t row = 0; row < rows; ++row) {
    const double* azr = a_zr + row * 2 * hid;
    const double* hrow = h + row * hid;
    double* zrow = z + row * hid;
    double* rrow = r + row * hid;
    vsigmoid(zrow, azr, hid);
    vsigmoid(rrow, azr + hid, hid);
    vmul(rh + row * hid, rrow, hrow, hid);
  }
}

void gru_blend(double* nout, double* y, const double* an, const double* z,
               const double* h, std::size_t n) {
  // Blend uses mul+add (not FMA): identical IEEE ops to the scalar
  // reference, so given the same nout the blend is bitwise-stable.
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nf = vtanh_pd(_mm256_loadu_pd(an + i));
    _mm256_storeu_pd(nout + i, nf);
    const __m256d zf = _mm256_loadu_pd(z + i);
    const __m256d hv = _mm256_loadu_pd(h + i);
    const __m256d blended = _mm256_add_pd(
        _mm256_mul_pd(_mm256_sub_pd(one, zf), nf), _mm256_mul_pd(zf, hv));
    _mm256_storeu_pd(y + i, blended);
  }
  for (; i < n; ++i) {
    vtanh(nout + i, an + i, 1);
    y[i] = (1.0 - z[i]) * nout[i] + z[i] * h[i];
  }
}

}  // namespace
}  // namespace avx2

const Backend* detail::avx2_backend() noexcept {
  static const Backend backend = {
      Isa::kAvx2Fma,
      "avx2+fma",
      &avx2::matmul_acc,
      &avx2::matmul_tn_acc,
      &avx2::matmul_nt_acc,
      &avx2::vadd,
      &avx2::vsub,
      &avx2::vmul,
      &avx2::vmacc,
      &avx2::vaxpy,
      &avx2::vaffine,
      &avx2::vrelu,
      &avx2::vsigmoid,
      &avx2::vtanh,
      &avx2::gru_gates,
      &avx2::gru_blend,
  };
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported ? &backend : nullptr;
}

}  // namespace rnx::nn::kernels

#else  // non-x86: this translation unit contributes only the stub.

namespace rnx::nn::kernels {
const Backend* detail::avx2_backend() noexcept { return nullptr; }
}  // namespace rnx::nn::kernels

#endif
