#include "nn/layers.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "nn/ops.hpp"

namespace rnx::nn {

Var apply_activation(const Var& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return relu(x);
    case Activation::kSigmoid: return sigmoid(x);
    case Activation::kTanh: return tanh_op(x);
    case Activation::kSoftplus: return softplus(x);
  }
  throw std::logic_error("apply_activation: unknown activation");
}

Dense::Dense(std::size_t input_dim, std::size_t output_dim, Activation act,
             util::RngStream& rng, std::string name)
    : in_(input_dim), out_(output_dim), act_(act), name_(std::move(name)) {
  if (in_ == 0 || out_ == 0) throw std::invalid_argument("Dense: zero dim");
  w_ = Var(act == Activation::kRelu ? he_normal(in_, out_, rng)
                                    : glorot_uniform(in_, out_, rng),
           /*requires_grad=*/true);
  b_ = Var(Tensor::zeros(1, out_), /*requires_grad=*/true);
}

Var Dense::forward(const Var& x) const {
  if (x.cols() != in_) throw std::invalid_argument("Dense: input dim mismatch");
  return apply_activation(add_bias(matmul(x, w_), b_), act_);
}

std::vector<std::pair<std::string, Var>> Dense::named_params() const {
  return {{name_ + ".w", w_}, {name_ + ".b", b_}};
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden_act,
         util::RngStream& rng, std::string name) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need >= 2 dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1],
                         last ? Activation::kNone : hidden_act, rng,
                         name + ".l" + std::to_string(i));
  }
}

Var Mlp::forward(const Var& x) const {
  Var h = x;
  for (const auto& layer : layers_) h = layer.forward(h);
  return h;
}

std::vector<std::pair<std::string, Var>> Mlp::named_params() const {
  std::vector<std::pair<std::string, Var>> out;
  for (const auto& layer : layers_)
    for (auto& p : layer.named_params()) out.push_back(std::move(p));
  return out;
}

}  // namespace rnx::nn
