#include "nn/tensor.hpp"

#include <stdexcept>

#include "nn/kernels.hpp"

namespace rnx::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Tensor::Tensor(std::size_t rows, std::size_t cols, AlignedVec data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols)
    throw std::invalid_argument("Tensor: data size != rows*cols");
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols);
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, double value) {
  Tensor t(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(double value) {
  Tensor t(1, 1);
  t(0, 0) = value;
  return t;
}

double& Tensor::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Tensor::at");
  return data_[r * cols_ + c];
}

double Tensor::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Tensor::at");
  return data_[r * cols_ + c];
}

double Tensor::item() const {
  if (rows_ != 1 || cols_ != 1)
    throw std::logic_error("Tensor::item: not a 1x1 scalar");
  return data_[0];
}

void Tensor::fill(double v) noexcept {
  for (auto& x : data_) x = v;
}

void Tensor::add_inplace(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument("add_inplace: shape mismatch");
  kernels::active().vadd(data_.data(), data_.data(), o.data_.data(),
                         data_.size());
}

void Tensor::axpy_inplace(double a, const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument("axpy_inplace: shape mismatch");
  kernels::active().vaxpy(data_.data(), a, o.data_.data(), data_.size());
}

void Tensor::scale_inplace(double a) noexcept {
  for (auto& x : data_) x *= a;
}

double Tensor::squared_norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

namespace {
void check_mm(std::size_t ak, std::size_t bk, const char* what) {
  if (ak != bk) throw std::invalid_argument(std::string(what) + ": inner dim mismatch");
}
}  // namespace

// Shape-checked wrappers over the runtime-dispatched kernel backends
// (nn/kernels.hpp).  The scalar backend holds the original blocked loops,
// so RNX_SIMD=scalar reproduces the pre-backend results bitwise.

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.rows(), "matmul");
  Tensor c(a.rows(), b.cols());
  matmul_acc(c, a, b);
  return c;
}

void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.rows(), "matmul_acc");
  if (c.rows() != a.rows() || c.cols() != b.cols())
    throw std::invalid_argument("matmul_acc: output shape mismatch");
  kernels::active().matmul_acc(c.flat().data(), a.flat().data(),
                               b.flat().data(), a.rows(), a.cols(), b.cols());
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_mm(a.rows(), b.rows(), "matmul_tn");
  Tensor c(a.cols(), b.cols());
  matmul_tn_acc(c, a, b);
  return c;
}

void matmul_tn_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  check_mm(a.rows(), b.rows(), "matmul_tn_acc");
  if (c.rows() != a.cols() || c.cols() != b.cols())
    throw std::invalid_argument("matmul_tn_acc: output shape mismatch");
  kernels::active().matmul_tn_acc(c.flat().data(), a.flat().data(),
                                  b.flat().data(), a.cols(), a.rows(),
                                  b.cols());
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.cols(), "matmul_nt");
  Tensor c(a.rows(), b.rows());
  matmul_nt_acc(c, a, b);
  return c;
}

void matmul_nt_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.cols(), "matmul_nt_acc");
  if (c.rows() != a.rows() || c.cols() != b.rows())
    throw std::invalid_argument("matmul_nt_acc: output shape mismatch");
  kernels::active().matmul_nt_acc(c.flat().data(), a.flat().data(),
                                  b.flat().data(), a.rows(), a.cols(),
                                  b.rows());
}

}  // namespace rnx::nn
