#include "nn/tensor.hpp"

#include <stdexcept>

namespace rnx::nn {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols)
    throw std::invalid_argument("Tensor: data size != rows*cols");
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols);
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, double value) {
  Tensor t(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(double value) {
  Tensor t(1, 1);
  t(0, 0) = value;
  return t;
}

double& Tensor::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Tensor::at");
  return data_[r * cols_ + c];
}

double Tensor::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Tensor::at");
  return data_[r * cols_ + c];
}

double Tensor::item() const {
  if (rows_ != 1 || cols_ != 1)
    throw std::logic_error("Tensor::item: not a 1x1 scalar");
  return data_[0];
}

void Tensor::fill(double v) noexcept {
  for (auto& x : data_) x = v;
}

void Tensor::add_inplace(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument("add_inplace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
}

void Tensor::axpy_inplace(double a, const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument("axpy_inplace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * o.data_[i];
}

void Tensor::scale_inplace(double a) noexcept {
  for (auto& x : data_) x *= a;
}

double Tensor::squared_norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

namespace {
void check_mm(std::size_t ak, std::size_t bk, const char* what) {
  if (ak != bk) throw std::invalid_argument(std::string(what) + ": inner dim mismatch");
}
}  // namespace

// ikj-ordered kernels, cache-blocked over the reduction dimension so a
// panel of B stays in L1/L2 while a block of A's rows streams over it.
// Per (i, j) cell the additions still happen in ascending p order, so the
// blocked kernels are bitwise-identical to the naive ikj loop.  The
// matrices here are small (<= ~1000 x 64); this is within ~2x of a tuned
// BLAS at these sizes and keeps the substrate dependency-free.
namespace {
constexpr std::size_t kBlockI = 32;   // rows of A per panel pass
constexpr std::size_t kBlockK = 128;  // reduction slice: B panel rows
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.rows(), "matmul");
  Tensor c(a.rows(), b.cols());
  matmul_acc(c, a, b);
  return c;
}

void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.rows(), "matmul_acc");
  if (c.rows() != a.rows() || c.cols() != b.cols())
    throw std::invalid_argument("matmul_acc: output shape mismatch");
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (std::size_t i0 = 0; i0 < n; i0 += kBlockI) {
    const std::size_t i1 = std::min(i0 + kBlockI, n);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        double* crow = c.row(i).data();
        const double* arow = a.row(i).data();
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b.row(p).data();
          for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_mm(a.rows(), b.rows(), "matmul_tn");
  Tensor c(a.cols(), b.cols());
  matmul_tn_acc(c, a, b);
  return c;
}

void matmul_tn_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  check_mm(a.rows(), b.rows(), "matmul_tn_acc");
  if (c.rows() != a.cols() || c.cols() != b.cols())
    throw std::invalid_argument("matmul_tn_acc: output shape mismatch");
  const std::size_t k = a.rows(), n = a.cols(), m = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a.row(p).data();
    const double* brow = b.row(p).data();
    for (std::size_t i = 0; i < n; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.row(i).data();
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.cols(), "matmul_nt");
  Tensor c(a.rows(), b.rows());
  matmul_nt_acc(c, a, b);
  return c;
}

void matmul_nt_acc(Tensor& c, const Tensor& a, const Tensor& b) {
  check_mm(a.cols(), b.cols(), "matmul_nt_acc");
  if (c.rows() != a.rows() || c.cols() != b.rows())
    throw std::invalid_argument("matmul_nt_acc: output shape mismatch");
  const std::size_t n = a.rows(), k = a.cols(), m = b.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a.row(i).data();
    double* crow = c.row(i).data();
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b.row(j).data();
      // Two-lane dot: breaks the serial FMA dependency chain.  (Changes
      // the summation order vs a single accumulator, deterministically.)
      double s0 = 0.0, s1 = 0.0;
      std::size_t p = 0;
      for (; p + 1 < k; p += 2) {
        s0 += arow[p] * brow[p];
        s1 += arow[p + 1] * brow[p + 1];
      }
      if (p < k) s0 += arow[p] * brow[p];
      crow[j] += s0 + s1;
    }
  }
}

}  // namespace rnx::nn
