#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace rnx::nn {

GradCheckReport grad_check(const std::function<Var()>& loss_fn,
                           std::vector<Var>& params, double eps) {
  // Analytic pass.
  for (auto& p : params) p.zero_grad();
  Var loss = loss_fn();
  loss.backward();
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (auto& p : params) analytic.push_back(p.grad());

  GradCheckReport rep;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& w = params[pi].mutable_value();
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double orig = w.flat()[i];
      w.flat()[i] = orig + eps;
      const double lp = loss_fn().value().item();
      w.flat()[i] = orig - eps;
      const double lm = loss_fn().value().item();
      w.flat()[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double exact = analytic[pi].flat()[i];
      const double abs_err = std::abs(numeric - exact);
      const double rel_err =
          abs_err / std::max({1.0, std::abs(numeric), std::abs(exact)});
      rep.max_abs_err = std::max(rep.max_abs_err, abs_err);
      rep.max_rel_err = std::max(rep.max_rel_err, rel_err);
      ++rep.entries;
    }
  }
  return rep;
}

}  // namespace rnx::nn
