// Gated recurrent unit cell.
//
// RouteNet uses recurrent units for all three state-update functions
// (RNN_P over path sequences, RNN_L for link updates, RNN_N for node
// updates — the latter introduced by this paper); GRUs are the choice in
// the reference implementation.  Gate convention follows PyTorch:
//   z = sigmoid(x Wxz + h Whz + bz)          (update gate)
//   r = sigmoid(x Wxr + h Whr + br)          (reset gate)
//   n = tanh  (x Wxn + (r .* h) Whn + bn)    (candidate)
//   h' = (1 - z) .* n + z .* h
//
// step() runs a fused kernel: the gate pre-activations are accumulated
// with batched matmuls into pooled scratch tensors, the gate
// nonlinearities and the state blend happen in one elementwise pass, and
// the whole step records a single tape node with a hand-written backward
// (~15 tape nodes in the op-by-op formulation).  step_composed() keeps
// the original composition; tests/gru_fused_test.cpp pins the two
// against each other and against central differences.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.hpp"
#include "util/rng.hpp"

namespace rnx::nn {

class GRUCell {
 public:
  /// Weights Glorot-initialized from rng; biases zero.
  GRUCell(std::size_t input_dim, std::size_t hidden_dim,
          util::RngStream& rng, std::string name = "gru");

  /// One step: x is (R x input_dim), h is (R x hidden_dim); returns the
  /// new hidden state (R x hidden_dim).  Differentiable through both.
  /// Dispatches to the fused kernel unless set_fused(false).
  [[nodiscard]] Var step(const Var& x, const Var& h) const;

  /// The op-by-op composition of the same function (reference path for
  /// gradcheck parity and the speedup ablation).
  [[nodiscard]] Var step_composed(const Var& x, const Var& h) const;

  /// Toggle the fused fast path (default on).
  void set_fused(bool fused) noexcept { fused_ = fused; }
  [[nodiscard]] bool fused() const noexcept { return fused_; }

  [[nodiscard]] std::size_t input_dim() const noexcept { return in_; }
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return hid_; }
  /// Trainable parameters as (name, Var) pairs; Vars share the cell's
  /// tape nodes, so optimizer updates are visible to the cell.
  [[nodiscard]] std::vector<std::pair<std::string, Var>> named_params() const;

 private:
  [[nodiscard]] Var step_fused(const Var& x, const Var& h) const;

  std::size_t in_;
  std::size_t hid_;
  std::string name_;
  bool fused_ = true;
  Var wxz_, whz_, bz_;
  Var wxr_, whr_, br_;
  Var wxn_, whn_, bn_;
};

}  // namespace rnx::nn
