#include "nn/pool.hpp"

#include <utility>
#include <vector>

namespace rnx::nn {

namespace {
// A tiny LIFO of raw buffers.  Capacity is bounded so a one-off huge
// matrix does not pin memory forever; typical training shapes (<= ~1000
// x 64 doubles) recycle perfectly within the cap.  Sized to absorb the
// burst of buffers a tape teardown releases (every op output returns
// here via Node::~Node) so the next step's forward draws from the pool.
constexpr std::size_t kMaxPooled = 64;

std::vector<AlignedVec>& free_list() noexcept {
  thread_local std::vector<AlignedVec> list;
  return list;
}
}  // namespace

Tensor TensorPool::acquire(std::size_t rows, std::size_t cols) {
  auto& list = free_list();
  const std::size_t n = rows * cols;
  if (n == 0 || list.empty()) return Tensor(rows, cols);
  AlignedVec buf = std::move(list.back());
  list.pop_back();
  buf.assign(n, 0.0);  // resize + zero, keeping capacity
  return Tensor(rows, cols, std::move(buf));
}

Tensor TensorPool::acquire_uninit(std::size_t rows, std::size_t cols) {
  auto& list = free_list();
  const std::size_t n = rows * cols;
  if (n == 0 || list.empty()) return Tensor(rows, cols);
  AlignedVec buf = std::move(list.back());
  list.pop_back();
  buf.resize(n);  // no fill: caller overwrites every element
  return Tensor(rows, cols, std::move(buf));
}

void TensorPool::release(Tensor&& t) {
  if (t.empty()) return;
  auto& list = free_list();
  if (list.size() >= kMaxPooled) return;  // let it deallocate
  list.push_back(std::move(t).take_buffer());
}

std::size_t TensorPool::pooled_count() noexcept { return free_list().size(); }

void TensorPool::drain() noexcept { free_list().clear(); }

}  // namespace rnx::nn
