#include "nn/autograd.hpp"

#include <stdexcept>

#include "nn/pool.hpp"

namespace rnx::nn {

namespace {
// Thread-local so concurrent workers (trainer lanes, forward_batch) can
// toggle inference mode independently.
thread_local bool g_no_grad = false;
}

namespace detail {
Node::~Node() {
  TensorPool::release(std::move(value));
  TensorPool::release(std::move(grad));
}

Tensor& Node::grad_ref() {
  if (grad.empty()) grad = TensorPool::acquire(value.rows(), value.cols());
  return grad;
}
}  // namespace detail

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<detail::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Var Var::make(Tensor value, std::vector<Var> parents,
              std::function<void(const Tensor& self_grad)> backward) {
  Var v;
  v.node_ = std::make_shared<detail::Node>();
  v.node_->value = std::move(value);
  if (g_no_grad) return v;  // inference: no tape edges
  bool needs = false;
  for (const auto& p : parents)
    if (p.defined() && p.node()->requires_grad) needs = true;
  if (!needs) return v;  // constant subgraph: prune the tape
  v.node_->requires_grad = true;
  v.node_->parents.reserve(parents.size());
  for (auto& p : parents) v.node_->parents.push_back(p.node());
  v.node_->backward = std::move(backward);
  return v;
}

const Tensor& Var::value() const {
  if (!node_) throw std::logic_error("Var::value: undefined Var");
  return node_->value;
}

Tensor& Var::mutable_value() {
  if (!node_) throw std::logic_error("Var::mutable_value: undefined Var");
  return node_->value;
}

bool Var::requires_grad() const {
  return node_ != nullptr && node_->requires_grad;
}

const Tensor& Var::grad() const {
  if (!node_) throw std::logic_error("Var::grad: undefined Var");
  return node_->grad_ref();
}

Tensor& Var::grad_ref() {
  if (!node_) throw std::logic_error("Var::grad_ref: undefined Var");
  return node_->grad_ref();
}

void Var::zero_grad() {
  if (node_ && !node_->grad.empty()) node_->grad.fill(0.0);
}

void Var::backward() const {
  if (!node_) throw std::logic_error("Var::backward: undefined Var");
  if (node_->value.rows() != 1 || node_->value.cols() != 1)
    throw std::logic_error("Var::backward: loss must be 1x1");

  // Iterative post-order DFS to produce a topological order.  The visit
  // epoch is thread-local: concurrent backward() sweeps are allowed as
  // long as their tapes share no nodes (each trainer lane runs over its
  // own model replica; see DESIGN.md §T).
  thread_local int epoch = 0;
  ++epoch;
  std::vector<detail::Node*> order;
  std::vector<std::pair<detail::Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  node_->visit_mark = epoch;
  while (!stack.empty()) {
    auto& [n, next_child] = stack.back();
    if (next_child < n->parents.size()) {
      detail::Node* child = n->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && child->visit_mark != epoch) {
        child->visit_mark = epoch;
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }

  node_->grad_ref().fill(0.0);
  node_->grad_ref()(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* n = *it;
    if (n->backward) n->backward(n->grad_ref());
  }
}

NoGradGuard::NoGradGuard() noexcept : prev_(g_no_grad) { g_no_grad = true; }
NoGradGuard::~NoGradGuard() { g_no_grad = prev_; }

bool grad_disabled() noexcept { return g_no_grad; }

}  // namespace rnx::nn
