// Dense row-major 2-D tensor of doubles.
//
// This is the numeric workhorse of the from-scratch deep-learning substrate
// (DESIGN.md S3).  Everything RouteNet needs is expressible on 2-D tensors:
// entity-state matrices are (num_entities x state_dim), minibatch features
// are (rows x features).  Double precision keeps the numerical gradient
// checks in the test suite tight (1e-6 relative) at negligible cost for the
// matrix sizes involved (<= ~1000 x 64).
//
// Storage is 64-byte aligned (kTensorAlign): the SIMD kernel backends
// (nn/kernels.hpp) are handed base pointers that never straddle a cache
// line, which is the alignment contract documented in DESIGN.md §K.  The
// dense kernels declared at the bottom dispatch through the runtime-
// selected backend; ops.cpp builds the autograd tape on top of them.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <new>
#include <span>
#include <vector>

namespace rnx::nn {

/// Tensor buffer alignment in bytes (one x86 cache line / 8 doubles).
inline constexpr std::size_t kTensorAlign = 64;

/// Minimal aligned allocator so tensor storage stays a std::vector
/// (cheap moves, capacity reuse in TensorPool) while meeting the kernel
/// alignment contract.
template <class T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// The tensor storage type: row-major doubles, 64-byte-aligned base.
using AlignedVec = std::vector<double, AlignedAllocator<double, kTensorAlign>>;

class Tensor {
 public:
  Tensor() = default;
  /// rows x cols, zero-initialized.
  Tensor(std::size_t rows, std::size_t cols);
  /// rows x cols from row-major data (size must match).
  Tensor(std::size_t rows, std::size_t cols, AlignedVec data);
  /// Convenience overloads copying unaligned sources into aligned storage.
  Tensor(std::size_t rows, std::size_t cols, std::initializer_list<double> vals)
      : Tensor(rows, cols, AlignedVec(vals)) {}
  Tensor(std::size_t rows, std::size_t cols, const std::vector<double>& data)
      : Tensor(rows, cols, AlignedVec(data.begin(), data.end())) {}

  [[nodiscard]] static Tensor zeros(std::size_t rows, std::size_t cols);
  [[nodiscard]] static Tensor full(std::size_t rows, std::size_t cols,
                                   double value);
  /// 1x1 scalar tensor.
  [[nodiscard]] static Tensor scalar(double value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  /// Unchecked element access (hot loops).
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> flat() noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const double> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] bool same_shape(const Tensor& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }
  /// Value of a 1x1 tensor; throws otherwise.
  [[nodiscard]] double item() const;

  /// Move the underlying row-major buffer out, leaving this tensor empty
  /// (0 x 0).  Used by TensorPool to recycle allocations.
  [[nodiscard]] AlignedVec take_buffer() && noexcept {
    rows_ = cols_ = 0;
    return std::move(data_);
  }

  // -- in-place helpers used by ops/optimizers -------------------------
  void fill(double v) noexcept;
  void add_inplace(const Tensor& o);          ///< this += o
  void axpy_inplace(double a, const Tensor& o);  ///< this += a * o
  void scale_inplace(double a) noexcept;      ///< this *= a
  [[nodiscard]] double squared_norm() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVec data_;
};

// -- out-of-place kernels (no autograd; ops.cpp builds the tape on top) --
//
// These dispatch to the runtime-selected SIMD backend (nn/kernels.hpp);
// shape checking lives here so backends stay raw-pointer kernels.

/// C = A (rows x k) * B (k x cols)
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T * B  (A: k x rows, B: k x cols)
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A * B^T  (A: rows x k, B: cols x k)
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C += A * B (accumulating variant; shapes as matmul)
void matmul_acc(Tensor& c, const Tensor& a, const Tensor& b);
/// C += A^T * B
void matmul_tn_acc(Tensor& c, const Tensor& a, const Tensor& b);
/// C += A * B^T
void matmul_nt_acc(Tensor& c, const Tensor& a, const Tensor& b);

}  // namespace rnx::nn
