#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace rnx::nn {

namespace {
constexpr char kMagic[4] = {'R', 'N', 'X', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void read_pod(std::istream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("load_params: truncated file");
}
}  // namespace

void save_params(std::ostream& f, const NamedParams& params) {
  f.write(kMagic, sizeof(kMagic));
  write_pod(f, kVersion);
  write_pod(f, static_cast<std::uint64_t>(params.size()));
  for (const auto& [name, var] : params) {
    write_pod(f, static_cast<std::uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor& t = var.value();
    write_pod(f, static_cast<std::uint64_t>(t.rows()));
    write_pod(f, static_cast<std::uint64_t>(t.cols()));
    f.write(reinterpret_cast<const char*>(t.flat().data()),
            static_cast<std::streamsize>(t.size() * sizeof(double)));
  }
  if (!f) throw std::runtime_error("save_params: write failed");
}

void save_params(const std::string& path, const NamedParams& params) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_params: cannot open " + path);
  save_params(f, params);
  if (!f) throw std::runtime_error("save_params: write failed on " + path);
}

void load_params(std::istream& f, NamedParams& params) {
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::string_view(magic, 4) != std::string_view(kMagic, 4))
    throw std::runtime_error("load_params: bad magic");
  std::uint32_t version = 0;
  read_pod(f, version);
  if (version != kVersion)
    throw std::runtime_error("load_params: unsupported version");
  std::uint64_t count = 0;
  read_pod(f, count);

  std::map<std::string, Var*> by_name;
  for (auto& [name, var] : params) {
    if (!by_name.emplace(name, &var).second)
      throw std::runtime_error("load_params: duplicate param name " + name);
  }
  if (count != params.size())
    throw std::runtime_error("load_params: parameter count mismatch");

  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    read_pod(f, name_len);
    // A corrupt header must fail loudly here, not surface later as a
    // multi-gigabyte allocation or a misleading "unknown parameter".
    if (name_len == 0 || name_len > kMaxParamNameLen)
      throw std::runtime_error(
          "load_params: corrupt file (parameter name length " +
          std::to_string(name_len) + " exceeds " +
          std::to_string(kMaxParamNameLen) + ")");
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    if (!f)
      throw std::runtime_error(
          "load_params: truncated file inside a parameter name");
    std::uint64_t rows = 0, cols = 0;
    read_pod(f, rows);
    read_pod(f, cols);
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::runtime_error("load_params: unknown parameter " + name);
    Tensor& dst = it->second->mutable_value();
    if (dst.rows() != rows || dst.cols() != cols)
      throw std::runtime_error("load_params: shape mismatch for " + name);
    f.read(reinterpret_cast<char*>(dst.flat().data()),
           static_cast<std::streamsize>(rows * cols * sizeof(double)));
    if (!f) throw std::runtime_error("load_params: truncated tensor " + name);
  }
}

void load_params(const std::string& path, NamedParams& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_params: cannot open " + path);
  try {
    load_params(f, params);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

}  // namespace rnx::nn
