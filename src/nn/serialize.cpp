#include "nn/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>

namespace rnx::nn {

namespace {
constexpr char kMagic[4] = {'R', 'N', 'X', 'W'};
constexpr std::uint32_t kVersion = 1;
constexpr char kQuantMagic[4] = {'R', 'N', 'X', 'Q'};
constexpr std::uint32_t kQuantVersion = 1;

template <typename T>
void write_pod(std::ostream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void read_pod(std::istream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("load_params: truncated file");
}
}  // namespace

void save_params(std::ostream& f, const NamedParams& params) {
  f.write(kMagic, sizeof(kMagic));
  write_pod(f, kVersion);
  write_pod(f, static_cast<std::uint64_t>(params.size()));
  for (const auto& [name, var] : params) {
    write_pod(f, static_cast<std::uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor& t = var.value();
    write_pod(f, static_cast<std::uint64_t>(t.rows()));
    write_pod(f, static_cast<std::uint64_t>(t.cols()));
    f.write(reinterpret_cast<const char*>(t.flat().data()),
            static_cast<std::streamsize>(t.size() * sizeof(double)));
  }
  if (!f) throw std::runtime_error("save_params: write failed");
}

void save_params(const std::string& path, const NamedParams& params) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_params: cannot open " + path);
  save_params(f, params);
  if (!f) throw std::runtime_error("save_params: write failed on " + path);
}

void load_params(std::istream& f, NamedParams& params) {
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::string_view(magic, 4) != std::string_view(kMagic, 4))
    throw std::runtime_error("load_params: bad magic");
  std::uint32_t version = 0;
  read_pod(f, version);
  if (version != kVersion)
    throw std::runtime_error("load_params: unsupported version");
  std::uint64_t count = 0;
  read_pod(f, count);

  std::map<std::string, Var*> by_name;
  for (auto& [name, var] : params) {
    if (!by_name.emplace(name, &var).second)
      throw std::runtime_error("load_params: duplicate param name " + name);
  }
  if (count != params.size())
    throw std::runtime_error("load_params: parameter count mismatch");

  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    read_pod(f, name_len);
    // A corrupt header must fail loudly here, not surface later as a
    // multi-gigabyte allocation or a misleading "unknown parameter".
    if (name_len == 0 || name_len > kMaxParamNameLen)
      throw std::runtime_error(
          "load_params: corrupt file (parameter name length " +
          std::to_string(name_len) + " exceeds " +
          std::to_string(kMaxParamNameLen) + ")");
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    if (!f)
      throw std::runtime_error(
          "load_params: truncated file inside a parameter name");
    std::uint64_t rows = 0, cols = 0;
    read_pod(f, rows);
    read_pod(f, cols);
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::runtime_error("load_params: unknown parameter " + name);
    Tensor& dst = it->second->mutable_value();
    if (dst.rows() != rows || dst.cols() != cols)
      throw std::runtime_error("load_params: shape mismatch for " + name);
    f.read(reinterpret_cast<char*>(dst.flat().data()),
           static_cast<std::streamsize>(rows * cols * sizeof(double)));
    if (!f) throw std::runtime_error("load_params: truncated tensor " + name);
  }
}

void load_params(const std::string& path, NamedParams& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_params: cannot open " + path);
  try {
    load_params(f, params);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

// ---- quantized weight sections ("RNXQ") -----------------------------------

const char* to_string(WeightEncoding enc) noexcept {
  switch (enc) {
    case WeightEncoding::kFp64: return "fp64";
    case WeightEncoding::kFp16: return "fp16";
    case WeightEncoding::kInt8: return "int8";
  }
  return "unknown";
}

WeightEncoding parse_weight_encoding(const std::string& s) {
  if (s == "fp64") return WeightEncoding::kFp64;
  if (s == "fp16") return WeightEncoding::kFp16;
  if (s == "int8") return WeightEncoding::kInt8;
  throw std::invalid_argument("unknown weight encoding '" + s +
                              "' (expected fp64, fp16 or int8)");
}

std::uint16_t fp16_from_double(double v) noexcept {
  // Contract: double -> float (hardware round-to-nearest-even), then
  // float -> binary16 RNE.  Out-of-range magnitudes saturate to inf;
  // NaN payloads keep a quiet bit so NaNs survive the round trip.
  const auto bits = std::bit_cast<std::uint32_t>(static_cast<float>(v));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t mag = bits & 0x7fffffffu;
  if (mag >= 0x7f800000u)  // inf / NaN
    return static_cast<std::uint16_t>(
        sign | 0x7c00u | (mag > 0x7f800000u ? 0x0200u : 0u));
  if (mag >= 0x47800000u)  // >= 2^16: beyond half range
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  if (mag >= 0x38800000u) {  // normal half: rebias exponent, round 23->10
    const std::uint32_t val = mag - 0x38000000u;
    std::uint32_t h = val >> 13;
    const std::uint32_t rem = val & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }
  if (mag >= 0x33000000u) {  // subnormal half
    const std::uint32_t exp = mag >> 23;
    const std::uint32_t mant = (mag & 0x7fffffu) | 0x800000u;
    const std::uint32_t shift = 126u - exp;  // in [14, 24]
    std::uint32_t h = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1u);
    if (rem > halfway || (rem == halfway && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }
  return static_cast<std::uint16_t>(sign);  // underflows to signed zero
}

double fp16_to_double(std::uint16_t h) noexcept {
  const bool neg = (h & 0x8000u) != 0;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  double v;
  if (exp == 0x1fu) {
    v = mant != 0 ? std::numeric_limits<double>::quiet_NaN()
                  : std::numeric_limits<double>::infinity();
  } else if (exp != 0) {
    v = std::ldexp(static_cast<double>(mant | 0x400u),
                   static_cast<int>(exp) - 25);
  } else {
    v = std::ldexp(static_cast<double>(mant), -24);
  }
  return neg ? -v : v;
}

void save_params_quantized(std::ostream& f, const NamedParams& params,
                           WeightEncoding enc) {
  if (enc != WeightEncoding::kFp16 && enc != WeightEncoding::kInt8)
    throw std::invalid_argument(
        "save_params_quantized: encoding must be fp16 or int8 (use "
        "save_params for fp64)");
  f.write(kQuantMagic, sizeof(kQuantMagic));
  write_pod(f, kQuantVersion);
  write_pod(f, static_cast<std::uint64_t>(params.size()));
  for (const auto& [name, var] : params) {
    write_pod(f, static_cast<std::uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor& t = var.value();
    write_pod(f, static_cast<std::uint64_t>(t.rows()));
    write_pod(f, static_cast<std::uint64_t>(t.cols()));
    write_pod(f, static_cast<std::uint8_t>(enc));
    const std::span<const double> src = t.flat();
    if (enc == WeightEncoding::kFp16) {
      for (const double v : src) write_pod(f, fp16_from_double(v));
    } else {
      // Per-tensor symmetric calibration: scale = maxabs/127 so the
      // largest weight maps exactly onto the int8 endpoints.  An
      // all-zero tensor stores scale 0 and decodes to exact zeros.
      double maxabs = 0.0;
      for (const double v : src) maxabs = std::max(maxabs, std::fabs(v));
      const double scale = maxabs > 0.0 ? maxabs / 127.0 : 0.0;
      write_pod(f, scale);
      for (const double v : src) {
        long q = scale > 0.0 ? std::lround(v / scale) : 0;
        if (q > 127) q = 127;
        if (q < -127) q = -127;
        write_pod(f, static_cast<std::int8_t>(q));
      }
    }
  }
  if (!f) throw std::runtime_error("save_params_quantized: write failed");
}

void save_params_quantized(const std::string& path, const NamedParams& params,
                           WeightEncoding enc) {
  std::ofstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("save_params_quantized: cannot open " + path);
  save_params_quantized(f, params, enc);
  if (!f)
    throw std::runtime_error("save_params_quantized: write failed on " + path);
}

void load_params_quantized(std::istream& f, NamedParams& params) {
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::string_view(magic, 4) != std::string_view(kQuantMagic, 4))
    throw std::runtime_error("load_params_quantized: bad magic");
  std::uint32_t version = 0;
  read_pod(f, version);
  if (version != kQuantVersion)
    throw std::runtime_error("load_params_quantized: unsupported version");
  std::uint64_t count = 0;
  read_pod(f, count);

  std::map<std::string, Var*> by_name;
  for (auto& [name, var] : params) {
    if (!by_name.emplace(name, &var).second)
      throw std::runtime_error("load_params_quantized: duplicate param name " +
                               name);
  }
  if (count != params.size())
    throw std::runtime_error("load_params_quantized: parameter count mismatch");

  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    read_pod(f, name_len);
    if (name_len == 0 || name_len > kMaxParamNameLen)
      throw std::runtime_error(
          "load_params_quantized: corrupt file (parameter name length " +
          std::to_string(name_len) + " exceeds " +
          std::to_string(kMaxParamNameLen) + ")");
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    if (!f)
      throw std::runtime_error(
          "load_params_quantized: truncated file inside a parameter name");
    std::uint64_t rows = 0, cols = 0;
    read_pod(f, rows);
    read_pod(f, cols);
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::runtime_error("load_params_quantized: unknown parameter " +
                               name);
    Tensor& dst = it->second->mutable_value();
    // Shape-check before any payload allocation, so a corrupt header can
    // never trigger a huge read — same guard order as load_params.
    if (dst.rows() != rows || dst.cols() != cols)
      throw std::runtime_error("load_params_quantized: shape mismatch for " +
                               name);
    std::uint8_t enc_byte = 0;
    read_pod(f, enc_byte);
    const std::span<double> out = dst.flat();
    if (enc_byte == static_cast<std::uint8_t>(WeightEncoding::kFp16)) {
      for (double& v : out) {
        std::uint16_t h = 0;
        read_pod(f, h);
        v = fp16_to_double(h);
      }
    } else if (enc_byte == static_cast<std::uint8_t>(WeightEncoding::kInt8)) {
      double scale = 0.0;
      read_pod(f, scale);
      if (!std::isfinite(scale) || scale < 0.0)
        throw std::runtime_error("load_params_quantized: corrupt scale for " +
                                 name);
      for (double& v : out) {
        std::int8_t q = 0;
        read_pod(f, q);
        v = static_cast<double>(q) * scale;
      }
    } else {
      throw std::runtime_error(
          "load_params_quantized: invalid encoding byte " +
          std::to_string(enc_byte) + " for " + name);
    }
    if (!f)
      throw std::runtime_error("load_params_quantized: truncated tensor " +
                               name);
  }
}

void load_params_quantized(const std::string& path, NamedParams& params) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("load_params_quantized: cannot open " + path);
  try {
    load_params_quantized(f, params);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

}  // namespace rnx::nn
