// Tape-based reverse-mode automatic differentiation.
//
// A Var is a shared handle to a tape node holding a Tensor value, a lazily
// allocated gradient, and a backward closure that routes the node's
// gradient into its parents.  Calling backward() on a 1x1 loss Var
// topologically sorts the reachable subgraph and runs closures in reverse,
// accumulating gradients (so shared subexpressions — e.g. a GRU weight used
// at every sequence position — sum their contributions, which is exactly
// backpropagation through time for the message-passing unroll).
//
// Inference can skip tape construction entirely with NoGradGuard.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace rnx::nn {

namespace detail {
struct Node;
using NodePtr = std::shared_ptr<Node>;

struct Node {
  Node() = default;
  /// Returns value/grad buffers to the thread-local TensorPool, so tape
  /// teardown feeds the next step's op outputs (ops.cpp draws from the
  /// pool) and steady-state training runs allocation-free.
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Tensor value;
  Tensor grad;  // allocated on first touch
  bool requires_grad = false;
  std::vector<NodePtr> parents;
  /// Receives this node's accumulated gradient; must add into parents.
  std::function<void(const Tensor& self_grad)> backward;
  // scratch for topological sort
  int visit_mark = 0;

  Tensor& grad_ref();  // allocate-on-demand, zero-filled
};
}  // namespace detail

class Var {
 public:
  Var() = default;
  /// Leaf node.  requires_grad marks a trainable parameter.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Interior node produced by an op.  `backward` receives the node's
  /// gradient and must accumulate into the captured parents' grad_ref()s.
  [[nodiscard]] static Var make(
      Tensor value, std::vector<Var> parents,
      std::function<void(const Tensor& self_grad)> backward);

  [[nodiscard]] bool defined() const noexcept { return node_ != nullptr; }
  [[nodiscard]] const Tensor& value() const;
  /// Mutable access to the value (optimizer updates); invalid on tape
  /// interior nodes mid-backward, intended for leaves.
  [[nodiscard]] Tensor& mutable_value();
  [[nodiscard]] bool requires_grad() const;
  /// The accumulated gradient; zero tensor if backward never reached it.
  [[nodiscard]] const Tensor& grad() const;
  [[nodiscard]] Tensor& grad_ref();
  void zero_grad();

  [[nodiscard]] std::size_t rows() const { return value().rows(); }
  [[nodiscard]] std::size_t cols() const { return value().cols(); }

  /// Reverse-mode sweep from this 1x1 scalar node.
  void backward() const;

  /// Identity comparison (same tape node).
  [[nodiscard]] bool same_node(const Var& o) const noexcept {
    return node_ == o.node_;
  }

  [[nodiscard]] const detail::NodePtr& node() const noexcept { return node_; }

 private:
  detail::NodePtr node_;
};

/// While alive, ops create leaf results without tape edges (inference mode).
class NoGradGuard {
 public:
  NoGradGuard() noexcept;
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// True when tape recording is suppressed (see NoGradGuard).
[[nodiscard]] bool grad_disabled() noexcept;

}  // namespace rnx::nn
