#include "nn/gru.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "nn/ops.hpp"

namespace rnx::nn {

GRUCell::GRUCell(std::size_t input_dim, std::size_t hidden_dim,
                 util::RngStream& rng, std::string name)
    : in_(input_dim), hid_(hidden_dim), name_(std::move(name)) {
  if (input_dim == 0 || hidden_dim == 0)
    throw std::invalid_argument("GRUCell: zero dimension");
  auto w = [&](std::size_t r, std::size_t c) {
    return Var(glorot_uniform(r, c, rng), /*requires_grad=*/true);
  };
  auto b = [&](std::size_t c) {
    return Var(Tensor::zeros(1, c), /*requires_grad=*/true);
  };
  wxz_ = w(in_, hid_); whz_ = w(hid_, hid_); bz_ = b(hid_);
  wxr_ = w(in_, hid_); whr_ = w(hid_, hid_); br_ = b(hid_);
  wxn_ = w(in_, hid_); whn_ = w(hid_, hid_); bn_ = b(hid_);
}

Var GRUCell::step(const Var& x, const Var& h) const {
  if (x.cols() != in_ || h.cols() != hid_ || x.rows() != h.rows())
    throw std::invalid_argument("GRUCell::step: shape mismatch");
  const Var z =
      sigmoid(add_bias(add(matmul(x, wxz_), matmul(h, whz_)), bz_));
  const Var r =
      sigmoid(add_bias(add(matmul(x, wxr_), matmul(h, whr_)), br_));
  const Var n = tanh_op(
      add_bias(add(matmul(x, wxn_), matmul(mul(r, h), whn_)), bn_));
  // h' = (1 - z) .* n + z .* h
  return add(mul(affine(z, -1.0, 1.0), n), mul(z, h));
}

std::vector<std::pair<std::string, Var>> GRUCell::named_params() const {
  return {{name_ + ".wxz", wxz_}, {name_ + ".whz", whz_}, {name_ + ".bz", bz_},
          {name_ + ".wxr", wxr_}, {name_ + ".whr", whr_}, {name_ + ".br", br_},
          {name_ + ".wxn", wxn_}, {name_ + ".whn", whn_}, {name_ + ".bn", bn_}};
}

}  // namespace rnx::nn
