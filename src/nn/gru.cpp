#include "nn/gru.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/ops.hpp"
#include "nn/pool.hpp"

namespace rnx::nn {

GRUCell::GRUCell(std::size_t input_dim, std::size_t hidden_dim,
                 util::RngStream& rng, std::string name)
    : in_(input_dim), hid_(hidden_dim), name_(std::move(name)) {
  if (input_dim == 0 || hidden_dim == 0)
    throw std::invalid_argument("GRUCell: zero dimension");
  auto w = [&](std::size_t r, std::size_t c) {
    return Var(glorot_uniform(r, c, rng), /*requires_grad=*/true);
  };
  auto b = [&](std::size_t c) {
    return Var(Tensor::zeros(1, c), /*requires_grad=*/true);
  };
  wxz_ = w(in_, hid_); whz_ = w(hid_, hid_); bz_ = b(hid_);
  wxr_ = w(in_, hid_); whr_ = w(hid_, hid_); br_ = b(hid_);
  wxn_ = w(in_, hid_); whn_ = w(hid_, hid_); bn_ = b(hid_);
}

Var GRUCell::step(const Var& x, const Var& h) const {
  if (x.cols() != in_ || h.cols() != hid_ || x.rows() != h.rows())
    throw std::invalid_argument(
        "GRUCell::step (" + name_ + "): shape mismatch: x " +
        std::to_string(x.rows()) + "x" + std::to_string(x.cols()) + ", h " +
        std::to_string(h.rows()) + "x" + std::to_string(h.cols()) +
        ", cell in=" + std::to_string(in_) + " hid=" + std::to_string(hid_));
  return fused_ ? step_fused(x, h) : step_composed(x, h);
}

Var GRUCell::step_composed(const Var& x, const Var& h) const {
  if (x.cols() != in_ || h.cols() != hid_ || x.rows() != h.rows())
    throw std::invalid_argument("GRUCell::step_composed: shape mismatch");
  const Var z =
      sigmoid(add_bias(add(matmul(x, wxz_), matmul(h, whz_)), bz_));
  const Var r =
      sigmoid(add_bias(add(matmul(x, wxr_), matmul(h, whr_)), br_));
  const Var n = tanh_op(
      add_bias(add(matmul(x, wxn_), matmul(mul(r, h), whn_)), bn_));
  // h' = (1 - z) .* n + z .* h
  return add(mul(affine(z, -1.0, 1.0), n), mul(z, h));
}

namespace {

/// dst (R x H) initialized to the bias row broadcast over R rows.
void broadcast_bias(Tensor& dst, const Tensor& bias) {
  const double* bv = bias.row(0).data();
  for (std::size_t r = 0; r < dst.rows(); ++r) {
    double* row = dst.row(r).data();
    for (std::size_t c = 0; c < dst.cols(); ++c) row[c] = bv[c];
  }
}

/// dst (R x 2H) initialized to [bias_a | bias_b] broadcast over R rows.
void broadcast_bias2(Tensor& dst, const Tensor& bias_a,
                     const Tensor& bias_b) {
  const std::size_t h = bias_a.cols();
  const double* av = bias_a.row(0).data();
  const double* bv = bias_b.row(0).data();
  for (std::size_t r = 0; r < dst.rows(); ++r) {
    double* row = dst.row(r).data();
    for (std::size_t c = 0; c < h; ++c) row[c] = av[c];
    for (std::size_t c = 0; c < h; ++c) row[h + c] = bv[c];
  }
}

/// dst (R x (Ca+Cb)) = [a | b] column concatenation.
void concat2(Tensor& dst, const Tensor& a, const Tensor& b) {
  const std::size_t ca = a.cols(), cb = b.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* row = dst.row(r).data();
    const double* ar = a.row(r).data();
    const double* br = b.row(r).data();
    for (std::size_t c = 0; c < ca; ++c) row[c] = ar[c];
    for (std::size_t c = 0; c < cb; ++c) row[ca + c] = br[c];
  }
}

/// dst ((in+hid) x 2H) = [[wxa|wxb]; [wha|whb]] — the stacked
/// concatenated z/r gate weight panel multiplying [x|h].
void build_zr_panel(Tensor& dst, const Tensor& wxa, const Tensor& wxb,
                    const Tensor& wha, const Tensor& whb) {
  const std::size_t h = wxa.cols();
  for (std::size_t r = 0; r < wxa.rows(); ++r) {
    double* d = dst.row(r).data();
    const double* a = wxa.row(r).data();
    const double* b = wxb.row(r).data();
    for (std::size_t c = 0; c < h; ++c) d[c] = a[c];
    for (std::size_t c = 0; c < h; ++c) d[h + c] = b[c];
  }
  for (std::size_t r = 0; r < wha.rows(); ++r) {
    double* d = dst.row(wxa.rows() + r).data();
    const double* a = wha.row(r).data();
    const double* b = whb.row(r).data();
    for (std::size_t c = 0; c < h; ++c) d[c] = a[c];
    for (std::size_t c = 0; c < h; ++c) d[h + c] = b[c];
  }
}

/// dst += the dst-shaped sub-block of src anchored at (row_off, col_off).
void add_block(Tensor& dst, const Tensor& src, std::size_t row_off,
               std::size_t col_off) {
  const std::size_t h = dst.cols();
  for (std::size_t r = 0; r < dst.rows(); ++r) {
    double* d = dst.row(r).data();
    const double* s = src.row(row_off + r).data() + col_off;
    for (std::size_t c = 0; c < h; ++c) d[c] += s[c];
  }
}

/// bias_grad (1 x H) += column sums of g's columns [off, off+H).
void colsum_block_acc(Tensor& bias_grad, const Tensor& g, std::size_t off) {
  const std::size_t h = bias_grad.cols();
  double* bg = bias_grad.row(0).data();
  for (std::size_t r = 0; r < g.rows(); ++r) {
    const double* row = g.row(r).data() + off;
    for (std::size_t c = 0; c < h; ++c) bg[c] += row[c];
  }
}

/// bias_grad (1 x H) += column sums of g (R x H).
void colsum_acc(Tensor& bias_grad, const Tensor& g) {
  colsum_block_acc(bias_grad, g, 0);
}

}  // namespace

Var GRUCell::step_fused(const Var& x, const Var& h) const {
  const Tensor& xv = x.value();
  const Tensor& hv = h.value();
  const std::size_t rows = xv.rows();

  // z/r gate pre-activations in one (R x 2H) panel and one kernel call:
  // [x|h] times the stacked concatenated weights [[Wxz|Wxr];[Whz|Whr]].
  // One quarter the kernel launches of the per-gate formulation, and the
  // panel is written in a single pass.
  Tensor xh = TensorPool::acquire_uninit(rows, in_ + hid_);
  concat2(xh, xv, hv);
  Tensor w_zr = TensorPool::acquire_uninit(in_ + hid_, 2 * hid_);
  build_zr_panel(w_zr, wxz_.value(), wxr_.value(), whz_.value(),
                 whr_.value());
  Tensor a_zr = TensorPool::acquire_uninit(rows, 2 * hid_);
  broadcast_bias2(a_zr, bz_.value(), br_.value());
  matmul_acc(a_zr, xh, w_zr);
  TensorPool::release(std::move(xh));
  TensorPool::release(std::move(w_zr));
  Tensor an = TensorPool::acquire_uninit(rows, hid_);
  broadcast_bias(an, bn_.value());
  matmul_acc(an, xv, wxn_.value());

  // z and r gates, then the reset-scaled hidden state feeding the
  // candidate matmul — one fused backend pass (vector sigmoid on SIMD
  // backends; this is the hottest elementwise site in serving).
  const auto& backend = kernels::active();
  Tensor z = TensorPool::acquire_uninit(rows, hid_);
  Tensor r = TensorPool::acquire_uninit(rows, hid_);
  Tensor rh = TensorPool::acquire_uninit(rows, hid_);
  backend.gru_gates(z.flat().data(), r.flat().data(), rh.flat().data(),
                    a_zr.flat().data(), hv.flat().data(), rows, hid_);
  matmul_acc(an, rh, whn_.value());

  // Candidate + state blend fused: n = tanh(an), y = (1-z) n + z h.
  Tensor n = TensorPool::acquire_uninit(rows, hid_);
  Tensor y = TensorPool::acquire_uninit(rows, hid_);
  backend.gru_blend(n.flat().data(), y.flat().data(), an.flat().data(),
                    z.flat().data(), hv.flat().data(), y.size());
  TensorPool::release(std::move(a_zr));
  TensorPool::release(std::move(an));
  TensorPool::release(std::move(rh));

  if (grad_disabled()) {
    TensorPool::release(std::move(z));
    TensorPool::release(std::move(r));
    TensorPool::release(std::move(n));
    return Var(std::move(y));
  }

  // One tape node for the whole step.  Saved activations: z, r, n.
  return Var::make(
      std::move(y),
      {x, h, wxz_, whz_, bz_, wxr_, whr_, br_, wxn_, whn_, bn_},
      [x = Var(x), h = Var(h), wxz = wxz_, whz = whz_, bz = bz_,
       wxr = wxr_, whr = whr_, br = br_, wxn = wxn_, whn = whn_, bn = bn_,
       z = std::move(z), r = std::move(r),
       n = std::move(n)](const Tensor& g) mutable {
        const Tensor& xval = x.value();
        const Tensor& hval = h.value();
        const std::size_t nrows = g.rows(), hid = g.cols();

        // dan = g (1-z) (1-n^2);  daz = g (h-n) z (1-z);
        // rh2  = r h (recomputed — cheaper than storing a 4th tensor).
        // daz lands in the left block of the (R x 2H) d_zr panel so the
        // z/r gate grads flow through concatenated matmuls.
        Tensor dan = TensorPool::acquire_uninit(nrows, hid);
        Tensor d_zr = TensorPool::acquire_uninit(nrows, 2 * hid);
        Tensor rh2 = TensorPool::acquire_uninit(nrows, hid);
        for (std::size_t row = 0; row < nrows; ++row) {
          const double* grow = g.row(row).data();
          const double* zrow = z.row(row).data();
          const double* rrow = r.row(row).data();
          const double* nrow = n.row(row).data();
          const double* hrow = hval.row(row).data();
          double* danrow = dan.row(row).data();
          double* dzr = d_zr.row(row).data();
          double* rhrow = rh2.row(row).data();
          for (std::size_t c = 0; c < hid; ++c) {
            danrow[c] = grow[c] * (1.0 - zrow[c]) * (1.0 - nrow[c] * nrow[c]);
            dzr[c] = grow[c] * (hrow[c] - nrow[c]) * zrow[c] * (1.0 - zrow[c]);
            rhrow[c] = rrow[c] * hrow[c];
          }
        }

        // Candidate-gate parameter grads.
        if (bn.requires_grad()) colsum_acc(bn.grad_ref(), dan);
        if (wxn.requires_grad()) matmul_tn_acc(wxn.grad_ref(), xval, dan);
        if (whn.requires_grad()) matmul_tn_acc(whn.grad_ref(), rh2, dan);

        // drh = dan Whn^T routes the candidate grad into r and h;
        // dar = (drh h) r (1-r) fills the right block of d_zr.
        Tensor drh = TensorPool::acquire(nrows, hid);
        matmul_nt_acc(drh, dan, whn.value());
        for (std::size_t row = 0; row < nrows; ++row) {
          const double* drhrow = drh.row(row).data();
          const double* rrow = r.row(row).data();
          const double* hrow = hval.row(row).data();
          double* dzr = d_zr.row(row).data() + hid;
          for (std::size_t c = 0; c < hid; ++c)
            dzr[c] = drhrow[c] * hrow[c] * rrow[c] * (1.0 - rrow[c]);
        }

        if (bz.requires_grad()) colsum_block_acc(bz.grad_ref(), d_zr, 0);
        if (br.requires_grad()) colsum_block_acc(br.grad_ref(), d_zr, hid);

        // Stacked z/r weight grads: [x|h]^T d_zr is one ((in+hid) x 2H)
        // panel holding all four gate-weight gradients as sub-blocks.
        const std::size_t in_dim = xval.cols();
        {
          Tensor xh2 = TensorPool::acquire_uninit(nrows, in_dim + hid);
          concat2(xh2, xval, hval);
          Tensor dw = TensorPool::acquire(in_dim + hid, 2 * hid);
          matmul_tn_acc(dw, xh2, d_zr);
          if (wxz.requires_grad()) add_block(wxz.grad_ref(), dw, 0, 0);
          if (wxr.requires_grad()) add_block(wxr.grad_ref(), dw, 0, hid);
          if (whz.requires_grad()) add_block(whz.grad_ref(), dw, in_dim, 0);
          if (whr.requires_grad()) add_block(whr.grad_ref(), dw, in_dim, hid);
          TensorPool::release(std::move(xh2));
          TensorPool::release(std::move(dw));
        }

        if (x.requires_grad() || h.requires_grad()) {
          // d[x|h] = d_zr [[Wxz|Wxr];[Whz|Whr]]^T in one call, split back
          // into the input gradients.
          Tensor wzr2 = TensorPool::acquire_uninit(in_dim + hid, 2 * hid);
          build_zr_panel(wzr2, wxz.value(), wxr.value(), whz.value(),
                         whr.value());
          Tensor dxh = TensorPool::acquire(nrows, in_dim + hid);
          matmul_nt_acc(dxh, d_zr, wzr2);
          if (x.requires_grad()) {
            Tensor& xg = x.grad_ref();
            add_block(xg, dxh, 0, 0);
            matmul_nt_acc(xg, dan, wxn.value());
          }
          if (h.requires_grad()) {
            Tensor& hg = h.grad_ref();
            add_block(hg, dxh, 0, in_dim);
            const auto gf = g.flat();
            const auto zf = z.flat(), rf = r.flat();
            const auto drhf = drh.flat();
            auto hgf = hg.flat();
            // dh += g z (direct blend term) + drh r (through the reset).
            for (std::size_t i = 0; i < hgf.size(); ++i)
              hgf[i] += gf[i] * zf[i] + drhf[i] * rf[i];
          }
          TensorPool::release(std::move(wzr2));
          TensorPool::release(std::move(dxh));
        }

        TensorPool::release(std::move(dan));
        TensorPool::release(std::move(d_zr));
        TensorPool::release(std::move(rh2));
        TensorPool::release(std::move(drh));
      });
}

std::vector<std::pair<std::string, Var>> GRUCell::named_params() const {
  return {{name_ + ".wxz", wxz_}, {name_ + ".whz", whz_}, {name_ + ".bz", bz_},
          {name_ + ".wxr", wxr_}, {name_ + ".whr", whr_}, {name_ + ".br", br_},
          {name_ + ".wxn", wxn_}, {name_ + ".whn", whn_}, {name_ + ".bn", bn_}};
}

}  // namespace rnx::nn
