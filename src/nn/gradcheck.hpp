// Central-difference gradient verification.
//
// Used by the test suite to pin every op's backward implementation: for a
// scalar loss L(theta) rebuilt by `loss_fn` on each call, the analytic
// gradient from one reverse sweep is compared entry-by-entry against
// (L(theta + eps e_i) - L(theta - eps e_i)) / 2 eps.
#pragma once

#include <functional>
#include <vector>

#include "nn/autograd.hpp"

namespace rnx::nn {

struct GradCheckReport {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;  ///< |analytic-numeric| / max(1, |analytic|, |numeric|)
  std::size_t entries = 0;

  [[nodiscard]] bool ok(double tol = 1e-6) const noexcept {
    return max_rel_err <= tol;
  }
};

/// loss_fn must rebuild the computation graph from `params` (reading their
/// current values) and return the 1x1 loss Var.
[[nodiscard]] GradCheckReport grad_check(
    const std::function<Var()>& loss_fn, std::vector<Var>& params,
    double eps = 1e-5);

}  // namespace rnx::nn
