#include "nn/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rnx::nn::kernels {

// ---------------------------------------------------------------------------
// Scalar reference backend.  These are the pre-backend-layer kernels moved
// here verbatim (tensor.cpp blocked matmuls, ops.cpp elementwise loops,
// gru.cpp gate/blend passes) and compiled with the default target flags, so
// their results are bitwise-identical to the pre-SIMD tree.  Every other
// backend is pinned against this one (tests/nn_kernels_test.cpp).
// ---------------------------------------------------------------------------
namespace scalar {
namespace {

// ikj-ordered, cache-blocked over the reduction dimension so a panel of B
// stays in L1/L2 while a block of A's rows streams over it.  Per (i, j)
// cell the additions happen in ascending p order — the accumulation-order
// contract SIMD backends must preserve (modulo documented FMA contraction).
constexpr std::size_t kBlockI = 32;   // rows of A per panel pass
constexpr std::size_t kBlockK = 128;  // reduction slice: B panel rows

void matmul_acc(double* c, const double* a, const double* b, std::size_t n,
                std::size_t k, std::size_t m) {
  for (std::size_t i0 = 0; i0 < n; i0 += kBlockI) {
    const std::size_t i1 = std::min(i0 + kBlockI, n);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        double* crow = c + i * m;
        const double* arow = a + i * k;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b + p * m;
          for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void matmul_tn_acc(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t k, std::size_t m) {
  for (std::size_t p = 0; p < k; ++p) {
    const double* arow = a + p * n;
    const double* brow = b + p * m;
    for (std::size_t i = 0; i < n; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c + i * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_nt_acc(double* c, const double* a, const double* b, std::size_t n,
                   std::size_t k, std::size_t m) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b + j * k;
      // Two-lane dot: breaks the serial FMA dependency chain.  (Changes
      // the summation order vs a single accumulator, deterministically.)
      double s0 = 0.0, s1 = 0.0;
      std::size_t p = 0;
      for (; p + 1 < k; p += 2) {
        s0 += arow[p] * brow[p];
        s1 += arow[p + 1] * brow[p + 1];
      }
      if (p < k) s0 += arow[p] * brow[p];
      crow[j] += s0 + s1;
    }
  }
}

void vadd(double* y, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void vsub(double* y, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] - b[i];
}

void vmul(double* y, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] * b[i];
}

void vmacc(double* y, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void vaxpy(double* y, double alpha, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void vaffine(double* y, const double* a, double alpha, double beta,
             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = alpha * a[i] + beta;
}

void vrelu(double* y, const double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a[i] > 0.0 ? a[i] : 0.0;
}

void vsigmoid(double* y, const double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = 1.0 / (1.0 + std::exp(-a[i]));
}

void vtanh(double* y, const double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = std::tanh(a[i]);
}

void gru_gates(double* z, double* r, double* rh, const double* a_zr,
               const double* h, std::size_t rows, std::size_t hid) {
  for (std::size_t row = 0; row < rows; ++row) {
    const double* azr = a_zr + row * 2 * hid;
    const double* hrow = h + row * hid;
    double* zrow = z + row * hid;
    double* rrow = r + row * hid;
    double* rhrow = rh + row * hid;
    for (std::size_t c = 0; c < hid; ++c) {
      zrow[c] = 1.0 / (1.0 + std::exp(-azr[c]));
      rrow[c] = 1.0 / (1.0 + std::exp(-azr[hid + c]));
      rhrow[c] = rrow[c] * hrow[c];
    }
  }
}

void gru_blend(double* nout, double* y, const double* an, const double* z,
               const double* h, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    nout[i] = std::tanh(an[i]);
    y[i] = (1.0 - z[i]) * nout[i] + z[i] * h[i];
  }
}

}  // namespace
}  // namespace scalar

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2Fma: return "avx2+fma";
    case Isa::kNeon: return "neon";
    case Isa::kScalar: break;
  }
  return "scalar";
}

const Backend& scalar_backend() noexcept {
  static const Backend backend = {
      Isa::kScalar,
      "scalar",
      &scalar::matmul_acc,
      &scalar::matmul_tn_acc,
      &scalar::matmul_nt_acc,
      &scalar::vadd,
      &scalar::vsub,
      &scalar::vmul,
      &scalar::vmacc,
      &scalar::vaxpy,
      &scalar::vaffine,
      &scalar::vrelu,
      &scalar::vsigmoid,
      &scalar::vtanh,
      &scalar::gru_gates,
      &scalar::gru_blend,
  };
  return backend;
}

const Backend* simd_backend() noexcept {
  static const Backend* const best = []() noexcept -> const Backend* {
    if (const Backend* b = detail::avx2_backend()) return b;
    if (const Backend* b = detail::neon_backend()) return b;
    return nullptr;
  }();
  return best;
}

// ---------------------------------------------------------------------------
// Dispatch: resolved once per process, overridable per thread for tests.
// ---------------------------------------------------------------------------
namespace {

struct Dispatch {
  const Backend* backend;
  std::string reason;
};

const Dispatch& resolve() {
  // Magic static: first caller resolves, throws propagate to them; later
  // callers see the settled choice.
  static const Dispatch dispatch = [] {
    const char* env = std::getenv("RNX_SIMD");
    const std::string mode = env ? env : "";
    if (mode == "scalar")
      return Dispatch{&scalar_backend(), "forced by RNX_SIMD=scalar"};
    if (!mode.empty() && mode != "native")
      throw std::runtime_error("RNX_SIMD: unknown value \"" + mode +
                               "\" (expected scalar|native)");
    const char* how = mode.empty() ? "auto-detected" : "RNX_SIMD=native";
    if (const Backend* simd = simd_backend())
      return Dispatch{simd, std::string(how) + ": cpu supports " + simd->name};
    return Dispatch{&scalar_backend(),
                    std::string(how) + ": no simd backend for this cpu"};
  }();
  return dispatch;
}

thread_local const Backend* t_override = nullptr;

}  // namespace

const Backend& active() {
  if (t_override != nullptr) return *t_override;
  return *resolve().backend;
}

const char* dispatch_reason() { return resolve().reason.c_str(); }

ScopedBackendOverride::ScopedBackendOverride(const Backend& backend) noexcept
    : prev_(t_override) {
  t_override = &backend;
}

ScopedBackendOverride::~ScopedBackendOverride() { t_override = prev_; }

}  // namespace rnx::nn::kernels
