// Runtime-dispatched SIMD kernel backends for the dense hot path.
//
// Every dense-algebra and elementwise primitive behind nn::Tensor,
// nn::ops and the fused GRU step routes through one Backend of raw
// function pointers, selected once per process:
//
//   * scalar   — the pre-SIMD reference kernels, unchanged code, same
//                blocked accumulation order.  Bitwise-stable: this
//                backend reproduces pre-backend-layer outputs exactly.
//   * avx2+fma — x86-64 AVX2/FMA register-tiled kernels + vectorized
//                exp/sigmoid/tanh.  Linear elementwise kernels are
//                bitwise-identical to scalar (same per-element IEEE
//                ops); matmul kernels keep the scalar per-cell
//                accumulation order but contract mul+add into FMA, and
//                the transcendentals use a Cephes-style polynomial, so
//                those results are pinned to a small-ulp bound instead
//                (tests/nn_kernels_test.cpp, DESIGN.md §K).
//   * neon     — aarch64 2-lane kernels, bitwise-identical to scalar
//                (mul+add, libm transcendentals).
//
// Dispatch: the best backend the CPU supports wins (cpuid AVX2+FMA on
// x86-64, NEON on aarch64, scalar otherwise).  RNX_SIMD=scalar forces
// the reference backend; RNX_SIMD=native forces auto-detection (and is
// the explicit spelling of the default); any other value throws.  The
// decision is made once, on first use, and is immutable for the
// process — except for ScopedBackendOverride, the thread-local hook the
// parity tests and bench_nn_ops use to run both backends in one
// process.
//
// Alignment contract: Tensor buffers are 64-byte aligned (kTensorAlign)
// so vector kernels never split a cache line at the base pointer.  Row
// starts are NOT aligned for arbitrary cols, so kernels use unaligned
// loads; the aligned base still keeps hot panels cache-line-tidy.
// Kernels accept any size >= 0 and any pointers for n == 0.
#pragma once

#include <cstddef>

namespace rnx::nn::kernels {

enum class Isa { kScalar, kAvx2Fma, kNeon };

/// Stable lowercase ISA tag for logs / BENCH json ("scalar",
/// "avx2+fma", "neon").
[[nodiscard]] const char* to_string(Isa isa) noexcept;

/// One kernel backend.  All matrices are dense row-major double; `acc`
/// kernels accumulate into c.  Shapes follow nn::Tensor's matmul
/// contracts (tensor.hpp).
struct Backend {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";

  // -- dense: C (n x m) views, reduction length k -----------------------
  /// c += a (n x k) * b (k x m)
  void (*matmul_acc)(double* c, const double* a, const double* b,
                     std::size_t n, std::size_t k, std::size_t m);
  /// c (n x m) += a^T * b, a is (k x n), b is (k x m)
  void (*matmul_tn_acc)(double* c, const double* a, const double* b,
                        std::size_t n, std::size_t k, std::size_t m);
  /// c (n x m) += a (n x k) * b^T, b is (m x k)
  void (*matmul_nt_acc)(double* c, const double* a, const double* b,
                        std::size_t n, std::size_t k, std::size_t m);

  // -- elementwise over flat arrays of length n -------------------------
  void (*vadd)(double* y, const double* a, const double* b, std::size_t n);
  void (*vsub)(double* y, const double* a, const double* b, std::size_t n);
  void (*vmul)(double* y, const double* a, const double* b, std::size_t n);
  /// y += a .* b (elementwise multiply-accumulate; mul then add, so it
  /// is bitwise-stable across backends)
  void (*vmacc)(double* y, const double* a, const double* b, std::size_t n);
  /// y += alpha * x
  void (*vaxpy)(double* y, double alpha, const double* x, std::size_t n);
  /// y = alpha * a + beta
  void (*vaffine)(double* y, const double* a, double alpha, double beta,
                  std::size_t n);
  void (*vrelu)(double* y, const double* a, std::size_t n);
  void (*vsigmoid)(double* y, const double* a, std::size_t n);
  void (*vtanh)(double* y, const double* a, std::size_t n);

  // -- fused GRU passes (gru.cpp) ---------------------------------------
  /// Gate pass over one (rows x 2*hid) pre-activation panel a_zr:
  /// z = sigmoid(a_zr[:, :hid]), r = sigmoid(a_zr[:, hid:]), rh = r .* h.
  /// z/r/rh/h are (rows x hid) contiguous.
  void (*gru_gates)(double* z, double* r, double* rh, const double* a_zr,
                    const double* h, std::size_t rows, std::size_t hid);
  /// Blend pass over flat arrays of length n: nout = tanh(an),
  /// y = (1 - z) .* nout + z .* h.
  void (*gru_blend)(double* nout, double* y, const double* an,
                    const double* z, const double* h, std::size_t n);
};

/// The reference backend (always available).
[[nodiscard]] const Backend& scalar_backend() noexcept;

/// The best SIMD backend this binary was compiled with AND this CPU
/// supports, or nullptr when only scalar is available.
[[nodiscard]] const Backend* simd_backend() noexcept;

/// The backend every nn kernel call dispatches through: the thread's
/// ScopedBackendOverride if one is active, else the process-wide choice
/// resolved once from RNX_SIMD + CPU detection.  Throws
/// std::runtime_error on an invalid RNX_SIMD value (first call only).
[[nodiscard]] const Backend& active();

/// Why the process-wide backend was chosen — e.g. "auto-detected: cpu
/// supports avx2+fma" or "forced by RNX_SIMD=scalar".  Resolves the
/// dispatch if it has not run yet.
[[nodiscard]] const char* dispatch_reason();

/// Pin this thread to a specific backend while alive (parity tests and
/// scalar-vs-SIMD benches; nests, restores the previous override).
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(const Backend& backend) noexcept;
  ~ScopedBackendOverride();
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

 private:
  const Backend* prev_;
};

namespace detail {
/// Per-ISA factories: nullptr when not compiled in or (avx2) when the
/// CPU lacks the feature set.  Defined in kernels_avx2.cpp /
/// kernels_neon.cpp so only those files need ISA compile flags.
[[nodiscard]] const Backend* avx2_backend() noexcept;
[[nodiscard]] const Backend* neon_backend() noexcept;
}  // namespace detail

}  // namespace rnx::nn::kernels
