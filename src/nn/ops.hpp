// Differentiable operations on Vars.
//
// The set is exactly what RouteNet-style message passing needs:
//  * dense algebra: matmul, add, add_bias, sub, mul, affine;
//  * nonlinearities: sigmoid, tanh, relu, softplus;
//  * graph plumbing: gather_rows (select entity states by index),
//    scatter_rows (functional row update for the position-vectorized RNN),
//    segment_sum (aggregate messages per target entity), concat_cols;
//  * reductions and regression losses.
//
// Every op's backward is verified against central differences in
// tests/nn_gradcheck_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/autograd.hpp"

namespace rnx::nn {

using Index = std::uint32_t;

/// Leaf Var wrapping a constant (no gradient).
[[nodiscard]] Var constant(Tensor t);

// -- elementwise / dense -------------------------------------------------
[[nodiscard]] Var add(const Var& a, const Var& b);        ///< same shape
[[nodiscard]] Var sub(const Var& a, const Var& b);
[[nodiscard]] Var mul(const Var& a, const Var& b);        ///< Hadamard
[[nodiscard]] Var scale(const Var& a, double c);
/// alpha * a + beta (elementwise); one_minus(x) == affine(x, -1, 1).
[[nodiscard]] Var affine(const Var& a, double alpha, double beta);
[[nodiscard]] Var matmul(const Var& a, const Var& b);
/// a (R x C) + bias (1 x C) broadcast over rows.
[[nodiscard]] Var add_bias(const Var& a, const Var& bias);

[[nodiscard]] Var sigmoid(const Var& a);
[[nodiscard]] Var tanh_op(const Var& a);
[[nodiscard]] Var relu(const Var& a);
[[nodiscard]] Var softplus(const Var& a);

// -- graph plumbing --------------------------------------------------------
/// y[i] = a[idx[i]] (row gather); rows may repeat.
[[nodiscard]] Var gather_rows(const Var& a, std::vector<Index> idx);
/// out = copy(base); out[idx[i]] = rows[i].  Indices must be distinct
/// (throws std::invalid_argument otherwise).
[[nodiscard]] Var scatter_rows(const Var& base, std::vector<Index> idx,
                               const Var& rows);
/// out[s] = sum of a's rows i with seg[i] == s; out has num_segments rows.
/// Segments may be empty (zero rows).
[[nodiscard]] Var segment_sum(const Var& a, std::vector<Index> seg,
                              std::size_t num_segments);
// Span overloads for arena-backed index sets (core::MpPlan).  The
// backward closures need owned storage, so each copies the span into a
// vector — exactly the copy callers used to make themselves.
[[nodiscard]] Var gather_rows(const Var& a, std::span<const Index> idx);
[[nodiscard]] Var scatter_rows(const Var& base, std::span<const Index> idx,
                               const Var& rows);
[[nodiscard]] Var segment_sum(const Var& a, std::span<const Index> seg,
                              std::size_t num_segments);
/// [a | b] column concatenation (same row count).
[[nodiscard]] Var concat_cols(const Var& a, const Var& b);

// -- reductions / losses ----------------------------------------------------
[[nodiscard]] Var sum_all(const Var& a);   ///< 1x1
[[nodiscard]] Var mean_all(const Var& a);  ///< 1x1
/// Mean squared error against a constant target (same shape).
[[nodiscard]] Var mse_loss(const Var& pred, const Tensor& target);
/// Mean absolute error.
[[nodiscard]] Var mae_loss(const Var& pred, const Tensor& target);
/// Huber loss with threshold delta (> 0).
[[nodiscard]] Var huber_loss(const Var& pred, const Tensor& target,
                             double delta = 1.0);

}  // namespace rnx::nn
