// Versioned binary (de)serialization of named parameter sets.
//
// Format: magic "RNXW", u32 version, u64 count, then per parameter:
// u32 name length, name bytes, u64 rows, u64 cols, rows*cols doubles
// (little-endian, as written by the host).  load_params matches strictly
// by name and shape so a weight file can never be silently misapplied to
// a different architecture.
//
// The stream overloads exist so the weight section can be embedded in
// larger containers (serve::ModelBundle stores one verbatim inside a
// .rnxb file); the path overloads are thin wrappers.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.hpp"

namespace rnx::nn {

using NamedParams = std::vector<std::pair<std::string, Var>>;

/// Parameter names longer than this are rejected on load: no real
/// parameter name comes close, so a bigger length can only be file
/// corruption — reject it instead of attempting the allocation.
inline constexpr std::uint32_t kMaxParamNameLen = 4096;

/// Write all parameters to path; throws std::runtime_error on I/O failure.
void save_params(const std::string& path, const NamedParams& params);
/// As above, appending the weight section to an open binary stream.
void save_params(std::ostream& f, const NamedParams& params);

/// Read parameters from path into the given set.  Every stored name must
/// exist in `params` with an identical shape and vice versa; throws
/// std::runtime_error otherwise (including on truncated or corrupt
/// input — a bad header can never trigger an unbounded allocation).
void load_params(const std::string& path, NamedParams& params);
/// As above, consuming one weight section from an open binary stream.
void load_params(std::istream& f, NamedParams& params);

}  // namespace rnx::nn
