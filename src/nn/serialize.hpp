// Versioned binary (de)serialization of named parameter sets.
//
// Format: magic "RNXW", u32 version, u64 count, then per parameter:
// u32 name length, name bytes, u64 rows, u64 cols, rows*cols doubles
// (little-endian, as written by the host).  load_params matches strictly
// by name and shape so a weight file can never be silently misapplied to
// a different architecture.
//
// Quantized sections use magic "RNXQ" instead: same header and per-
// parameter name/shape framing, but each tensor carries a u8 encoding
// tag and a compressed payload (see WeightEncoding).  Calibration is
// per-tensor and happens at save time; load always dequantizes back to
// fp64, so the rest of the stack never sees a reduced-precision type.
// DESIGN.md §K documents the format and the accuracy-drift gate.
//
// The stream overloads exist so the weight section can be embedded in
// larger containers (serve::ModelBundle stores one verbatim inside a
// .rnxb file); the path overloads are thin wrappers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.hpp"

namespace rnx::nn {

using NamedParams = std::vector<std::pair<std::string, Var>>;

/// Parameter names longer than this are rejected on load: no real
/// parameter name comes close, so a bigger length can only be file
/// corruption — reject it instead of attempting the allocation.
inline constexpr std::uint32_t kMaxParamNameLen = 4096;

/// Write all parameters to path; throws std::runtime_error on I/O failure.
void save_params(const std::string& path, const NamedParams& params);
/// As above, appending the weight section to an open binary stream.
void save_params(std::ostream& f, const NamedParams& params);

/// Read parameters from path into the given set.  Every stored name must
/// exist in `params` with an identical shape and vice versa; throws
/// std::runtime_error otherwise (including on truncated or corrupt
/// input — a bad header can never trigger an unbounded allocation).
void load_params(const std::string& path, NamedParams& params);
/// As above, consuming one weight section from an open binary stream.
void load_params(std::istream& f, NamedParams& params);

// ---- quantized weight sections ("RNXQ") -----------------------------------

/// How a tensor's payload is stored inside an "RNXQ" section.  The byte
/// values are the on-disk tags — never renumber, only append.
enum class WeightEncoding : std::uint8_t {
  kFp64 = 0,  ///< full precision (plain "RNXW" section / no quant byte)
  kFp16 = 1,  ///< IEEE binary16, round-to-nearest-even, u16 payload
  kInt8 = 2,  ///< per-tensor symmetric int8: scale = maxabs/127, i8 payload
};

[[nodiscard]] const char* to_string(WeightEncoding enc) noexcept;
/// Parse "fp64" / "fp16" / "int8"; throws std::invalid_argument otherwise.
[[nodiscard]] WeightEncoding parse_weight_encoding(const std::string& s);

/// Lossy round-trip primitives, exposed so tests can pin the rounding
/// rules (double -> float -> binary16 with round-to-nearest-even; values
/// beyond half range saturate to +/-inf).
[[nodiscard]] std::uint16_t fp16_from_double(double v) noexcept;
[[nodiscard]] double fp16_to_double(std::uint16_t h) noexcept;

/// Write one "RNXQ" section quantizing every tensor with `enc`
/// (kFp16 or kInt8; kFp64 is rejected — use save_params for that).
/// Per-tensor calibration happens here: int8 scale is maxabs/127
/// (0-tensors store scale 0 and decode to exact zeros).
void save_params_quantized(std::ostream& f, const NamedParams& params,
                           WeightEncoding enc);
void save_params_quantized(const std::string& path, const NamedParams& params,
                           WeightEncoding enc);

/// Consume one "RNXQ" section, dequantizing into fp64 values.  Same
/// strict name/shape matching and corrupt-header guards as load_params.
void load_params_quantized(std::istream& f, NamedParams& params);
void load_params_quantized(const std::string& path, NamedParams& params);

}  // namespace rnx::nn
