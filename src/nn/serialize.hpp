// Versioned binary (de)serialization of named parameter sets.
//
// Format: magic "RNXW", u32 version, u64 count, then per parameter:
// u32 name length, name bytes, u64 rows, u64 cols, rows*cols doubles
// (little-endian, as written by the host).  load_params matches strictly
// by name and shape so a weight file can never be silently misapplied to
// a different architecture.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.hpp"

namespace rnx::nn {

using NamedParams = std::vector<std::pair<std::string, Var>>;

/// Write all parameters to path; throws std::runtime_error on I/O failure.
void save_params(const std::string& path, const NamedParams& params);

/// Read parameters from path into the given set.  Every stored name must
/// exist in `params` with an identical shape and vice versa; throws
/// std::runtime_error otherwise.
void load_params(const std::string& path, NamedParams& params);

}  // namespace rnx::nn
