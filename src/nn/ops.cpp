#include "nn/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/kernels.hpp"
#include "nn/pool.hpp"

namespace rnx::nn {

// Forward-pass outputs and backward-saved activations come from the
// thread-local TensorPool rather than fresh allocations: every op output
// buffer returns to the pool when its tape node dies (see Node::~Node),
// so a steady-state training step runs allocation-free.  The elementwise
// ops are single-pass through the dispatched kernel backend — add/sub
// used to materialize a full copy of `a` and then fix it up in a second
// pass.

namespace {
void check_same_shape(const Var& a, const Var& b, const char* what) {
  if (!a.value().same_shape(b.value()))
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
}

/// Pool-backed deep copy (backward-saved activations).
Tensor pooled_copy(const Tensor& src) {
  Tensor dst = TensorPool::acquire_uninit(src.rows(), src.cols());
  const auto s = src.flat();
  std::copy(s.begin(), s.end(), dst.flat().begin());
  return dst;
}
}  // namespace

Var constant(Tensor t) { return Var(std::move(t), /*requires_grad=*/false); }

Var add(const Var& a, const Var& b) {
  check_same_shape(a, b, "add");
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  kernels::active().vadd(y.flat().data(), a.value().flat().data(),
                         b.value().flat().data(), y.size());
  return Var::make(std::move(y), {a, b}, [a = Var(a), b = Var(b)](const Tensor& g) mutable {
    if (a.requires_grad()) a.grad_ref().add_inplace(g);
    if (b.requires_grad()) b.grad_ref().add_inplace(g);
  });
}

Var sub(const Var& a, const Var& b) {
  check_same_shape(a, b, "sub");
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  kernels::active().vsub(y.flat().data(), a.value().flat().data(),
                         b.value().flat().data(), y.size());
  return Var::make(std::move(y), {a, b}, [a = Var(a), b = Var(b)](const Tensor& g) mutable {
    if (a.requires_grad()) a.grad_ref().add_inplace(g);
    if (b.requires_grad()) b.grad_ref().axpy_inplace(-1.0, g);
  });
}

Var mul(const Var& a, const Var& b) {
  check_same_shape(a, b, "mul");
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  kernels::active().vmul(y.flat().data(), a.value().flat().data(),
                         b.value().flat().data(), y.size());
  return Var::make(std::move(y), {a, b}, [a = Var(a), b = Var(b)](const Tensor& g) mutable {
    if (a.requires_grad())
      kernels::active().vmacc(a.grad_ref().flat().data(), g.flat().data(),
                              b.value().flat().data(), g.size());
    if (b.requires_grad())
      kernels::active().vmacc(b.grad_ref().flat().data(), g.flat().data(),
                              a.value().flat().data(), g.size());
  });
}

Var scale(const Var& a, double c) { return affine(a, c, 0.0); }

Var affine(const Var& a, double alpha, double beta) {
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  kernels::active().vaffine(y.flat().data(), a.value().flat().data(), alpha,
                            beta, y.size());
  return Var::make(std::move(y), {a}, [a = Var(a), alpha](const Tensor& g) mutable {
    if (a.requires_grad()) a.grad_ref().axpy_inplace(alpha, g);
  });
}

Var matmul(const Var& a, const Var& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor y = TensorPool::acquire(a.rows(), b.cols());
  matmul_acc(y, a.value(), b.value());
  return Var::make(std::move(y), {a, b}, [a = Var(a), b = Var(b)](const Tensor& g) mutable {
    if (a.requires_grad()) matmul_nt_acc(a.grad_ref(), g, b.value());
    if (b.requires_grad()) matmul_tn_acc(b.grad_ref(), a.value(), g);
  });
}

Var add_bias(const Var& a, const Var& bias) {
  if (bias.rows() != 1 || bias.cols() != a.cols())
    throw std::invalid_argument("add_bias: bias must be 1 x cols(a)");
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  const auto& backend = kernels::active();
  const double* bv = bias.value().flat().data();
  const std::size_t cols = a.cols();
  for (std::size_t r = 0; r < y.rows(); ++r)
    backend.vadd(y.row(r).data(), a.value().row(r).data(), bv, cols);
  return Var::make(std::move(y), {a, bias},
                   [a = Var(a), bias = Var(bias)](const Tensor& g) mutable {
                     if (a.requires_grad()) a.grad_ref().add_inplace(g);
                     if (bias.requires_grad()) {
                       double* bg = bias.grad_ref().flat().data();
                       const auto& bk = kernels::active();
                       for (std::size_t r = 0; r < g.rows(); ++r)
                         bk.vadd(bg, bg, g.row(r).data(), g.cols());
                     }
                   });
}

Var sigmoid(const Var& a) {
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  kernels::active().vsigmoid(y.flat().data(), a.value().flat().data(),
                             y.size());
  if (grad_disabled() || !a.requires_grad()) return Var(std::move(y));
  Tensor ycopy = pooled_copy(y);  // for the backward: dy/dx = y(1-y)
  return Var::make(std::move(y), {a},
                   [a = Var(a), ycopy = std::move(ycopy)](const Tensor& g) mutable {
                     auto ag = a.grad_ref().flat();
                     const auto gv = g.flat();
                     const auto yv2 = ycopy.flat();
                     for (std::size_t i = 0; i < gv.size(); ++i)
                       ag[i] += gv[i] * yv2[i] * (1.0 - yv2[i]);
                   });
}

Var tanh_op(const Var& a) {
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  kernels::active().vtanh(y.flat().data(), a.value().flat().data(), y.size());
  if (grad_disabled() || !a.requires_grad()) return Var(std::move(y));
  Tensor ycopy = pooled_copy(y);
  return Var::make(std::move(y), {a},
                   [a = Var(a), ycopy = std::move(ycopy)](const Tensor& g) mutable {
                     auto ag = a.grad_ref().flat();
                     const auto gv = g.flat();
                     const auto yv2 = ycopy.flat();
                     for (std::size_t i = 0; i < gv.size(); ++i)
                       ag[i] += gv[i] * (1.0 - yv2[i] * yv2[i]);
                   });
}

Var relu(const Var& a) {
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  kernels::active().vrelu(y.flat().data(), a.value().flat().data(), y.size());
  return Var::make(std::move(y), {a}, [a = Var(a)](const Tensor& g) mutable {
    if (!a.requires_grad()) return;
    auto ag = a.grad_ref().flat();
    const auto gv = g.flat();
    const auto av2 = a.value().flat();
    for (std::size_t i = 0; i < gv.size(); ++i)
      if (av2[i] > 0.0) ag[i] += gv[i];
  });
}

Var softplus(const Var& a) {
  Tensor y = TensorPool::acquire_uninit(a.rows(), a.cols());
  const auto av = a.value().flat();
  auto yv = y.flat();
  for (std::size_t i = 0; i < yv.size(); ++i) {
    // Numerically stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
    yv[i] = std::max(av[i], 0.0) + std::log1p(std::exp(-std::abs(av[i])));
  }
  return Var::make(std::move(y), {a}, [a = Var(a)](const Tensor& g) mutable {
    if (!a.requires_grad()) return;
    auto ag = a.grad_ref().flat();
    const auto gv = g.flat();
    const auto av2 = a.value().flat();
    for (std::size_t i = 0; i < gv.size(); ++i)
      ag[i] += gv[i] / (1.0 + std::exp(-av2[i]));
  });
}

Var gather_rows(const Var& a, std::vector<Index> idx) {
  const std::size_t cols = a.cols();
  for (const Index i : idx)
    if (i >= a.rows())
      throw std::out_of_range("gather_rows: index out of range");
  Tensor y = TensorPool::acquire_uninit(idx.size(), cols);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto src = a.value().row(idx[r]);
    std::copy(src.begin(), src.end(), y.row(r).begin());
  }
  return Var::make(std::move(y), {a},
                   [a = Var(a), idx = std::move(idx)](const Tensor& g) mutable {
                     if (!a.requires_grad()) return;
                     Tensor& ag = a.grad_ref();
                     for (std::size_t r = 0; r < idx.size(); ++r) {
                       auto dst = ag.row(idx[r]);
                       const auto src = g.row(r);
                       for (std::size_t c = 0; c < dst.size(); ++c)
                         dst[c] += src[c];
                     }
                   });
}

Var scatter_rows(const Var& base, std::vector<Index> idx, const Var& rows) {
  if (rows.rows() != idx.size() || rows.cols() != base.cols())
    throw std::invalid_argument("scatter_rows: rows shape mismatch");
  std::vector<char> seen(base.rows(), 0);
  for (const Index i : idx) {
    if (i >= base.rows())
      throw std::out_of_range("scatter_rows: index out of range");
    if (seen[i]) throw std::invalid_argument("scatter_rows: duplicate index");
    seen[i] = 1;
  }
  Tensor y = pooled_copy(base.value());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto src = rows.value().row(r);
    std::copy(src.begin(), src.end(), y.row(idx[r]).begin());
  }
  return Var::make(
      std::move(y), {base, rows},
      [base = Var(base), rows = Var(rows), idx = std::move(idx),
       seen = std::move(seen)](const Tensor& g) mutable {
        if (base.requires_grad()) {
          Tensor& bg = base.grad_ref();
          for (std::size_t r = 0; r < g.rows(); ++r) {
            if (seen[r]) continue;  // overwritten rows get no base grad
            auto dst = bg.row(r);
            const auto src = g.row(r);
            for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
          }
        }
        if (rows.requires_grad()) {
          Tensor& rg = rows.grad_ref();
          for (std::size_t r = 0; r < idx.size(); ++r) {
            auto dst = rg.row(r);
            const auto src = g.row(idx[r]);
            for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
          }
        }
      });
}

Var segment_sum(const Var& a, std::vector<Index> seg,
                std::size_t num_segments) {
  if (seg.size() != a.rows())
    throw std::invalid_argument("segment_sum: one segment id per row");
  for (const Index s : seg)
    if (s >= num_segments)
      throw std::out_of_range("segment_sum: segment id out of range");
  Tensor y = TensorPool::acquire(num_segments, a.cols());
  for (std::size_t r = 0; r < seg.size(); ++r) {
    auto dst = y.row(seg[r]);
    const auto src = a.value().row(r);
    for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
  }
  return Var::make(std::move(y), {a},
                   [a = Var(a), seg = std::move(seg)](const Tensor& g) mutable {
                     if (!a.requires_grad()) return;
                     Tensor& ag = a.grad_ref();
                     for (std::size_t r = 0; r < seg.size(); ++r) {
                       auto dst = ag.row(r);
                       const auto src = g.row(seg[r]);
                       for (std::size_t c = 0; c < dst.size(); ++c)
                         dst[c] += src[c];
                     }
                   });
}

Var gather_rows(const Var& a, std::span<const Index> idx) {
  return gather_rows(a, std::vector<Index>(idx.begin(), idx.end()));
}

Var scatter_rows(const Var& base, std::span<const Index> idx,
                 const Var& rows) {
  return scatter_rows(base, std::vector<Index>(idx.begin(), idx.end()), rows);
}

Var segment_sum(const Var& a, std::span<const Index> seg,
                std::size_t num_segments) {
  return segment_sum(a, std::vector<Index>(seg.begin(), seg.end()),
                     num_segments);
}

Var concat_cols(const Var& a, const Var& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("concat_cols: row count mismatch");
  const std::size_t ca = a.cols(), cb = b.cols();
  Tensor y = TensorPool::acquire_uninit(a.rows(), ca + cb);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const auto ra = a.value().row(r);
    const auto rb = b.value().row(r);
    auto ry = y.row(r);
    std::copy(ra.begin(), ra.end(), ry.begin());
    std::copy(rb.begin(), rb.end(), ry.begin() + static_cast<std::ptrdiff_t>(ca));
  }
  return Var::make(std::move(y), {a, b},
                   [a = Var(a), b = Var(b), ca, cb](const Tensor& g) mutable {
                     for (std::size_t r = 0; r < g.rows(); ++r) {
                       const auto gr = g.row(r);
                       if (a.requires_grad()) {
                         auto dst = a.grad_ref().row(r);
                         for (std::size_t c = 0; c < ca; ++c) dst[c] += gr[c];
                       }
                       if (b.requires_grad()) {
                         auto dst = b.grad_ref().row(r);
                         for (std::size_t c = 0; c < cb; ++c)
                           dst[c] += gr[ca + c];
                       }
                     }
                   });
}

Var sum_all(const Var& a) {
  double s = 0.0;
  for (const double x : a.value().flat()) s += x;
  return Var::make(Tensor::scalar(s), {a}, [a = Var(a)](const Tensor& g) mutable {
    if (!a.requires_grad()) return;
    const double gs = g(0, 0);
    auto ag = a.grad_ref().flat();
    for (auto& x : ag) x += gs;
  });
}

Var mean_all(const Var& a) {
  const auto n = static_cast<double>(a.value().size());
  return scale(sum_all(a), 1.0 / n);
}

namespace {
Var pointwise_loss(const Var& pred, const Tensor& target,
                   double (*f)(double), double (*df)(double),
                   const char* name) {
  if (!pred.value().same_shape(target))
    throw std::invalid_argument(std::string(name) + ": shape mismatch");
  const auto pv = pred.value().flat();
  const auto tv = target.flat();
  const auto n = static_cast<double>(pv.size());
  double s = 0.0;
  for (std::size_t i = 0; i < pv.size(); ++i) s += f(pv[i] - tv[i]);
  return Var::make(Tensor::scalar(s / n), {pred},
                   [pred = Var(pred), target, df, n](const Tensor& g) mutable {
                     if (!pred.requires_grad()) return;
                     const double gs = g(0, 0) / n;
                     auto pg = pred.grad_ref().flat();
                     const auto pv2 = pred.value().flat();
                     const auto tv2 = target.flat();
                     for (std::size_t i = 0; i < pg.size(); ++i)
                       pg[i] += gs * df(pv2[i] - tv2[i]);
                   });
}
}  // namespace

Var mse_loss(const Var& pred, const Tensor& target) {
  return pointwise_loss(
      pred, target, [](double e) { return e * e; },
      [](double e) { return 2.0 * e; }, "mse_loss");
}

Var mae_loss(const Var& pred, const Tensor& target) {
  return pointwise_loss(
      pred, target, [](double e) { return std::abs(e); },
      [](double e) { return e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0); },
      "mae_loss");
}

Var huber_loss(const Var& pred, const Tensor& target, double delta) {
  if (delta <= 0.0) throw std::invalid_argument("huber_loss: delta <= 0");
  if (!pred.value().same_shape(target))
    throw std::invalid_argument("huber_loss: shape mismatch");
  const auto pv = pred.value().flat();
  const auto tv = target.flat();
  const auto n = static_cast<double>(pv.size());
  double s = 0.0;
  for (std::size_t i = 0; i < pv.size(); ++i) {
    const double e = std::abs(pv[i] - tv[i]);
    s += e <= delta ? 0.5 * e * e : delta * (e - 0.5 * delta);
  }
  return Var::make(Tensor::scalar(s / n), {pred},
                   [pred = Var(pred), target, delta, n](const Tensor& g) mutable {
                     if (!pred.requires_grad()) return;
                     const double gs = g(0, 0) / n;
                     auto pg = pred.grad_ref().flat();
                     const auto pv2 = pred.value().flat();
                     const auto tv2 = target.flat();
                     for (std::size_t i = 0; i < pg.size(); ++i) {
                       const double e = pv2[i] - tv2[i];
                       pg[i] += gs * std::clamp(e, -delta, delta);
                     }
                   });
}

}  // namespace rnx::nn
