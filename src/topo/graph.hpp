// Directed graph with stable integer ids for nodes and links.
//
// All higher layers (routing, simulation, the GNN schema) address entities
// by these ids: NodeId indexes node-state rows, LinkId indexes link-state
// rows and simulator port queues.  Undirected physical links are modelled
// as two directed links (one per direction), matching both the simulator
// (independent per-direction queues) and RouteNet (per-direction states).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace rnx::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// One directed link.
struct Link {
  NodeId src;
  NodeId dst;
};

class Graph {
 public:
  explicit Graph(std::size_t num_nodes);

  /// Add a directed link; returns its id.  Parallel links are rejected
  /// (std::invalid_argument) — the network model is a simple digraph.
  LinkId add_link(NodeId src, NodeId dst);
  /// Add both directions of an undirected edge.
  void add_edge(NodeId a, NodeId b);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_links() const noexcept { return links_.size(); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }
  /// Outgoing link ids of a node.
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId n) const {
    return out_.at(n);
  }
  /// Directed link id from src to dst, if present.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId src,
                                                NodeId dst) const noexcept;
  /// True if every node can reach every other node along directed links.
  [[nodiscard]] bool strongly_connected() const;

 private:
  [[nodiscard]] std::uint64_t key(NodeId s, NodeId d) const noexcept {
    return static_cast<std::uint64_t>(s) * num_nodes_ + d;
  }
  std::size_t num_nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::unordered_map<std::uint64_t, LinkId> by_endpoints_;
};

}  // namespace rnx::topo
