// End-to-end traffic matrices and load/utilization accounting.
//
// A TrafficMatrix holds the offered rate (bits/s) for every ordered
// (source, destination) pair.  Dataset samples draw a matrix from one of
// the generators, then rescale it so the most loaded link hits a target
// utilization — this is how the datasets sweep the operating regime from
// lightly loaded to near saturation, as in the RouteNet data releases.
#pragma once

#include <vector>

#include "topo/routing.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace rnx::topo {

class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t num_nodes);

  void set(NodeId src, NodeId dst, double bits_per_sec);
  [[nodiscard]] double get(NodeId src, NodeId dst) const;
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  /// Sum of all entries (bits/s).
  [[nodiscard]] double total() const noexcept;
  /// Multiply every entry by f (> 0).
  void scale(double f);

 private:
  [[nodiscard]] std::size_t idx(NodeId s, NodeId d) const {
    return static_cast<std::size_t>(s) * n_ + d;
  }
  std::size_t n_;
  std::vector<double> bps_;
};

/// Independent uniform draw in [lo, hi) bits/s for every ordered pair.
[[nodiscard]] TrafficMatrix uniform_traffic(std::size_t n, double lo,
                                            double hi, util::RngStream& rng);

/// Gravity model: node masses m_i ~ Exp(1); T(s,d) proportional to
/// m_s * m_d, normalized so the matrix total equals total_bps.
[[nodiscard]] TrafficMatrix gravity_traffic(std::size_t n, double total_bps,
                                            util::RngStream& rng);

/// Uniform background plus `hotspots` randomly chosen pairs boosted by
/// `boost` (multiplier); models elephant flows.
[[nodiscard]] TrafficMatrix hotspot_traffic(std::size_t n, double lo,
                                            double hi, std::size_t hotspots,
                                            double boost,
                                            util::RngStream& rng);

/// Offered load per directed link (bits/s) when tm is routed over rs.
[[nodiscard]] std::vector<double> per_link_load_bps(const Topology& topo,
                                                    const RoutingScheme& rs,
                                                    const TrafficMatrix& tm);

/// max over links of load/capacity (0 if the matrix is empty).
[[nodiscard]] double max_link_utilization(const Topology& topo,
                                          const RoutingScheme& rs,
                                          const TrafficMatrix& tm);

/// Rescale tm in place so max_link_utilization == target (> 0).
/// Throws std::invalid_argument when tm carries no traffic.
void scale_to_max_utilization(TrafficMatrix& tm, const Topology& topo,
                              const RoutingScheme& rs, double target);

}  // namespace rnx::topo
