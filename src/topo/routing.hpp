// Routing schemes: per-(source, destination) forwarding paths.
//
// A RoutingScheme fixes one loop-free node path per ordered pair, which is
// what both the packet simulator (forwarding tables) and RouteNet (the set
// of path entities) consume.  Diversity across dataset samples comes from
// re-running Dijkstra under randomized link weights, mirroring how the
// RouteNet datasets vary routing.  Yen's algorithm provides k-shortest
// alternatives for the what-if example and tests.
#pragma once

#include <span>
#include <vector>

#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace rnx::topo {

/// One forwarding path: node sequence (size h+1) and the corresponding
/// directed link sequence (size h).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
};

class RoutingScheme {
 public:
  explicit RoutingScheme(std::size_t num_nodes);

  /// Install a path for (src, dst); validates endpoints and contiguity.
  void set_path(NodeId src, NodeId dst, Path path);
  [[nodiscard]] const Path& path(NodeId src, NodeId dst) const;
  [[nodiscard]] bool has_path(NodeId src, NodeId dst) const;
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }

  /// All ordered pairs with installed paths, in (src-major) order.  This is
  /// the canonical path-entity ordering used by the GNN schema and labels.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> pairs() const;

 private:
  [[nodiscard]] std::size_t idx(NodeId s, NodeId d) const {
    return static_cast<std::size_t>(s) * n_ + d;
  }
  std::size_t n_;
  std::vector<Path> paths_;
};

/// Single-source Dijkstra over directed link weights; returns the
/// min-weight path from src to dst (throws if unreachable).  Ties are
/// broken deterministically by node id.
[[nodiscard]] Path shortest_path(const Graph& g,
                                 std::span<const double> link_weights,
                                 NodeId src, NodeId dst);

/// All-pairs shortest-path routing under the given link weights.
[[nodiscard]] RoutingScheme shortest_path_routing(
    const Topology& topo, std::span<const double> link_weights);

/// Hop-count routing (all weights = 1).
[[nodiscard]] RoutingScheme hop_count_routing(const Topology& topo);

/// Per-directed-link weights drawn uniformly from [lo, hi); feeding these
/// to shortest_path_routing yields a randomized loop-free routing scheme.
[[nodiscard]] std::vector<double> random_link_weights(const Topology& topo,
                                                      util::RngStream& rng,
                                                      double lo = 1.0,
                                                      double hi = 10.0);

/// Yen's algorithm: up to k loop-free shortest paths from src to dst in
/// increasing weight order (fewer if the graph has fewer distinct paths).
[[nodiscard]] std::vector<Path> k_shortest_paths(
    const Graph& g, std::span<const double> link_weights, NodeId src,
    NodeId dst, std::size_t k);

}  // namespace rnx::topo
