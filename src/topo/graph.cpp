#include "topo/graph.hpp"

#include <stdexcept>

namespace rnx::topo {

Graph::Graph(std::size_t num_nodes) : num_nodes_(num_nodes), out_(num_nodes) {
  if (num_nodes == 0) throw std::invalid_argument("Graph: zero nodes");
}

LinkId Graph::add_link(NodeId src, NodeId dst) {
  if (src >= num_nodes_ || dst >= num_nodes_)
    throw std::out_of_range("Graph::add_link: node id out of range");
  if (src == dst) throw std::invalid_argument("Graph::add_link: self-loop");
  if (by_endpoints_.contains(key(src, dst)))
    throw std::invalid_argument("Graph::add_link: parallel link");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{src, dst});
  out_[src].push_back(id);
  by_endpoints_.emplace(key(src, dst), id);
  return id;
}

void Graph::add_edge(NodeId a, NodeId b) {
  add_link(a, b);
  add_link(b, a);
}

std::optional<LinkId> Graph::find_link(NodeId src, NodeId dst) const noexcept {
  if (src >= num_nodes_ || dst >= num_nodes_) return std::nullopt;
  const auto it = by_endpoints_.find(key(src, dst));
  if (it == by_endpoints_.end()) return std::nullopt;
  return it->second;
}

bool Graph::strongly_connected() const {
  if (num_nodes_ == 0) return false;
  // BFS forward from node 0 and on the reversed graph; strongly connected
  // iff both reach every node.  (Fine at our topology sizes.)
  auto bfs = [&](bool reversed) {
    std::vector<char> seen(num_nodes_, 0);
    std::vector<NodeId> stack{0};
    seen[0] = 1;
    std::size_t count = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const auto& l : links_) {
        const NodeId from = reversed ? l.dst : l.src;
        const NodeId to = reversed ? l.src : l.dst;
        if (from == u && !seen[to]) {
          seen[to] = 1;
          ++count;
          stack.push_back(to);
        }
      }
    }
    return count == num_nodes_;
  };
  return bfs(false) && bfs(true);
}

}  // namespace rnx::topo
