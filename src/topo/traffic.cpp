#include "topo/traffic.hpp"

#include <numeric>
#include <stdexcept>

namespace rnx::topo {

TrafficMatrix::TrafficMatrix(std::size_t num_nodes)
    : n_(num_nodes), bps_(num_nodes * num_nodes, 0.0) {
  if (num_nodes == 0) throw std::invalid_argument("TrafficMatrix: zero nodes");
}

void TrafficMatrix::set(NodeId src, NodeId dst, double bits_per_sec) {
  if (src >= n_ || dst >= n_)
    throw std::out_of_range("TrafficMatrix::set: endpoint out of range");
  if (src == dst && bits_per_sec != 0.0)
    throw std::invalid_argument("TrafficMatrix::set: self traffic");
  if (bits_per_sec < 0.0)
    throw std::invalid_argument("TrafficMatrix::set: negative rate");
  bps_[idx(src, dst)] = bits_per_sec;
}

double TrafficMatrix::get(NodeId src, NodeId dst) const {
  if (src >= n_ || dst >= n_)
    throw std::out_of_range("TrafficMatrix::get: endpoint out of range");
  return bps_[idx(src, dst)];
}

double TrafficMatrix::total() const noexcept {
  return std::accumulate(bps_.begin(), bps_.end(), 0.0);
}

void TrafficMatrix::scale(double f) {
  if (f <= 0.0) throw std::invalid_argument("TrafficMatrix::scale: f <= 0");
  for (auto& x : bps_) x *= f;
}

TrafficMatrix uniform_traffic(std::size_t n, double lo, double hi,
                              util::RngStream& rng) {
  if (lo < 0.0 || hi <= lo)
    throw std::invalid_argument("uniform_traffic: bad range");
  TrafficMatrix tm(n);
  for (NodeId s = 0; s < n; ++s)
    for (NodeId d = 0; d < n; ++d)
      if (s != d) tm.set(s, d, rng.uniform(lo, hi));
  return tm;
}

TrafficMatrix gravity_traffic(std::size_t n, double total_bps,
                              util::RngStream& rng) {
  if (total_bps <= 0.0)
    throw std::invalid_argument("gravity_traffic: total must be positive");
  std::vector<double> mass(n);
  for (auto& m : mass) m = rng.exponential(1.0);
  double denom = 0.0;
  for (NodeId s = 0; s < n; ++s)
    for (NodeId d = 0; d < n; ++d)
      if (s != d) denom += mass[s] * mass[d];
  TrafficMatrix tm(n);
  for (NodeId s = 0; s < n; ++s)
    for (NodeId d = 0; d < n; ++d)
      if (s != d) tm.set(s, d, total_bps * mass[s] * mass[d] / denom);
  return tm;
}

TrafficMatrix hotspot_traffic(std::size_t n, double lo, double hi,
                              std::size_t hotspots, double boost,
                              util::RngStream& rng) {
  TrafficMatrix tm = uniform_traffic(n, lo, hi, rng);
  for (std::size_t h = 0; h < hotspots; ++h) {
    NodeId s, d;
    do {
      s = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      d = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    } while (s == d);
    tm.set(s, d, tm.get(s, d) * boost);
  }
  return tm;
}

std::vector<double> per_link_load_bps(const Topology& topo,
                                      const RoutingScheme& rs,
                                      const TrafficMatrix& tm) {
  std::vector<double> load(topo.num_links(), 0.0);
  for (const auto& [s, d] : rs.pairs()) {
    const double rate = tm.get(s, d);
    if (rate <= 0.0) continue;
    for (const LinkId l : rs.path(s, d).links) load[l] += rate;
  }
  return load;
}

double max_link_utilization(const Topology& topo, const RoutingScheme& rs,
                            const TrafficMatrix& tm) {
  const auto load = per_link_load_bps(topo, rs, tm);
  double u = 0.0;
  for (LinkId l = 0; l < topo.num_links(); ++l)
    u = std::max(u, load[l] / topo.link_capacity(l));
  return u;
}

void scale_to_max_utilization(TrafficMatrix& tm, const Topology& topo,
                              const RoutingScheme& rs, double target) {
  if (target <= 0.0)
    throw std::invalid_argument("scale_to_max_utilization: target <= 0");
  const double current = max_link_utilization(topo, rs, tm);
  if (current <= 0.0)
    throw std::invalid_argument("scale_to_max_utilization: empty matrix");
  tm.scale(target / current);
}

}  // namespace rnx::topo
