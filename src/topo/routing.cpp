#include "topo/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace rnx::topo {

RoutingScheme::RoutingScheme(std::size_t num_nodes)
    : n_(num_nodes), paths_(num_nodes * num_nodes) {
  if (num_nodes == 0) throw std::invalid_argument("RoutingScheme: zero nodes");
}

void RoutingScheme::set_path(NodeId src, NodeId dst, Path path) {
  if (src >= n_ || dst >= n_)
    throw std::out_of_range("RoutingScheme::set_path: endpoint out of range");
  if (src == dst)
    throw std::invalid_argument("RoutingScheme::set_path: src == dst");
  if (path.nodes.size() < 2 || path.nodes.front() != src ||
      path.nodes.back() != dst || path.links.size() + 1 != path.nodes.size())
    throw std::invalid_argument("RoutingScheme::set_path: malformed path");
  paths_[idx(src, dst)] = std::move(path);
}

const Path& RoutingScheme::path(NodeId src, NodeId dst) const {
  const auto& p = paths_.at(idx(src, dst));
  if (p.empty())
    throw std::out_of_range("RoutingScheme::path: no path installed");
  return p;
}

bool RoutingScheme::has_path(NodeId src, NodeId dst) const {
  if (src >= n_ || dst >= n_ || src == dst) return false;
  return !paths_[idx(src, dst)].empty();
}

std::vector<std::pair<NodeId, NodeId>> RoutingScheme::pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId s = 0; s < n_; ++s)
    for (NodeId d = 0; d < n_; ++d)
      if (s != d && !paths_[idx(s, d)].empty()) out.emplace_back(s, d);
  return out;
}

namespace {

struct DijkstraResult {
  std::vector<double> dist;
  std::vector<LinkId> via_link;  // incoming link on the shortest path
  static constexpr LinkId kNone = std::numeric_limits<LinkId>::max();
};

DijkstraResult dijkstra(const Graph& g, std::span<const double> w,
                        NodeId src) {
  if (w.size() != g.num_links())
    throw std::invalid_argument("dijkstra: weight count != link count");
  DijkstraResult r;
  r.dist.assign(g.num_nodes(), std::numeric_limits<double>::infinity());
  r.via_link.assign(g.num_nodes(), DijkstraResult::kNone);
  using QE = std::pair<double, NodeId>;  // (dist, node); node id breaks ties
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  r.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;
    for (const LinkId l : g.out_links(u)) {
      if (w[l] < 0.0) continue;  // negative weight marks a removed link
      const NodeId v = g.link(l).dst;
      const double nd = d + w[l];
      if (nd < r.dist[v] ||
          (nd == r.dist[v] && r.via_link[v] != DijkstraResult::kNone &&
           l < r.via_link[v])) {
        r.dist[v] = nd;
        r.via_link[v] = l;
        pq.emplace(nd, v);
      }
    }
  }
  return r;
}

Path extract_path(const Graph& g, const DijkstraResult& r, NodeId src,
                  NodeId dst) {
  if (r.via_link[dst] == DijkstraResult::kNone && src != dst)
    throw std::runtime_error("shortest_path: destination unreachable");
  Path p;
  NodeId cur = dst;
  while (cur != src) {
    const LinkId l = r.via_link[cur];
    p.links.push_back(l);
    p.nodes.push_back(cur);
    cur = g.link(l).src;
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

double path_weight(const Path& p, std::span<const double> w) {
  double total = 0.0;
  for (const LinkId l : p.links) total += w[l];
  return total;
}

}  // namespace

Path shortest_path(const Graph& g, std::span<const double> link_weights,
                   NodeId src, NodeId dst) {
  if (src == dst) throw std::invalid_argument("shortest_path: src == dst");
  return extract_path(g, dijkstra(g, link_weights, src), src, dst);
}

RoutingScheme shortest_path_routing(const Topology& topo,
                                    std::span<const double> link_weights) {
  const auto& g = topo.graph();
  RoutingScheme rs(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const auto r = dijkstra(g, link_weights, s);
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      if (s == d) continue;
      rs.set_path(s, d, extract_path(g, r, s, d));
    }
  }
  return rs;
}

RoutingScheme hop_count_routing(const Topology& topo) {
  const std::vector<double> w(topo.num_links(), 1.0);
  return shortest_path_routing(topo, w);
}

std::vector<double> random_link_weights(const Topology& topo,
                                        util::RngStream& rng, double lo,
                                        double hi) {
  std::vector<double> w(topo.num_links());
  for (auto& x : w) x = rng.uniform(lo, hi);
  return w;
}

std::vector<Path> k_shortest_paths(const Graph& g,
                                   std::span<const double> link_weights,
                                   NodeId src, NodeId dst, std::size_t k) {
  if (k == 0) return {};
  std::vector<Path> result;
  result.push_back(shortest_path(g, link_weights, src, dst));

  // Candidate set ordered by (weight, node sequence) for determinism.
  auto cmp = [&](const Path& a, const Path& b) {
    const double wa = path_weight(a, link_weights);
    const double wb = path_weight(b, link_weights);
    if (wa != wb) return wa < wb;
    return a.nodes < b.nodes;
  };
  std::vector<Path> candidates;

  std::vector<double> w(link_weights.begin(), link_weights.end());
  while (result.size() < k) {
    const Path& prev = result.back();
    // Spur from every node of the previous path except the last.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur = prev.nodes[i];
      const std::span<const NodeId> root_nodes(prev.nodes.data(), i + 1);

      std::vector<double> wmod = w;
      // Remove links that would recreate an already-found path with the
      // same root.
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(root_nodes.begin(), root_nodes.end(),
                       p.nodes.begin())) {
          if (i < p.links.size()) wmod[p.links[i]] = -1.0;
        }
      }
      // Remove root nodes (except spur) to keep paths loop-free.
      for (std::size_t j = 0; j < i; ++j) {
        const NodeId banned = prev.nodes[j];
        for (const LinkId l : g.out_links(banned)) wmod[l] = -1.0;
        for (LinkId l = 0; l < g.num_links(); ++l)
          if (g.link(l).dst == banned) wmod[l] = -1.0;
      }

      Path spur_path;
      try {
        spur_path = extract_path(g, dijkstra(g, wmod, spur), spur, dst);
      } catch (const std::runtime_error&) {
        continue;  // no spur path from here
      }
      // Stitch root + spur.
      Path total;
      total.nodes.assign(root_nodes.begin(), root_nodes.end());
      total.links.assign(prev.links.begin(),
                         prev.links.begin() + static_cast<std::ptrdiff_t>(i));
      total.nodes.insert(total.nodes.end(), spur_path.nodes.begin() + 1,
                         spur_path.nodes.end());
      total.links.insert(total.links.end(), spur_path.links.begin(),
                         spur_path.links.end());
      const bool dup =
          std::any_of(result.begin(), result.end(),
                      [&](const Path& p) { return p.nodes == total.nodes; }) ||
          std::any_of(candidates.begin(), candidates.end(), [&](const Path& p) {
            return p.nodes == total.nodes;
          });
      if (!dup) candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    const auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

}  // namespace rnx::topo
