#include "topo/zoo.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

namespace rnx::topo {

namespace {

Topology from_edges(std::string name, std::size_t n,
                    std::initializer_list<std::pair<NodeId, NodeId>> edges,
                    double capacity_bps) {
  Graph g(n);
  for (const auto& [a, b] : edges) g.add_edge(a, b);
  Topology t(std::move(name), std::move(g));
  t.set_all_capacities(capacity_bps);
  return t;
}

}  // namespace

Topology nsfnet(double default_capacity_bps) {
  // 14 nodes, 21 undirected edges (42 directed links); the classic NSFNET
  // T1 backbone map used by the RouteNet datasets.
  return from_edges("nsfnet", 14,
                    {{0, 1},  {0, 2},  {0, 3},  {1, 2},  {1, 7},   {2, 5},
                     {3, 4},  {3, 10}, {4, 5},  {4, 6},  {5, 9},   {5, 12},
                     {6, 7},  {7, 8},  {8, 9},  {8, 11}, {8, 13},  {9, 10},
                     {10, 11}, {11, 12}, {12, 13}},
                    default_capacity_bps);
}

Topology geant2(double default_capacity_bps) {
  // 24 nodes, 37 undirected edges (74 directed links).  Matches the GEANT2
  // map's size and degree profile (mean degree ~3.1, hubs of degree 4-5);
  // see DESIGN.md §2 for the substitution note.
  return from_edges(
      "geant2", 24,
      {{0, 1},   {0, 2},   {0, 22},  {1, 3},   {1, 23},  {2, 3},   {2, 4},
       {3, 5},   {4, 5},   {4, 6},   {5, 7},   {5, 16},  {6, 7},   {6, 8},
       {7, 9},   {8, 9},   {8, 10},  {9, 11},  {10, 11}, {10, 12}, {11, 13},
       {12, 13}, {12, 14}, {13, 15}, {14, 15}, {14, 16}, {15, 17}, {16, 17},
       {16, 18}, {17, 19}, {18, 19}, {18, 20}, {19, 21}, {20, 21}, {20, 22},
       {21, 23}, {22, 23}},
      default_capacity_bps);
}

Topology line(std::size_t n, double capacity_bps) {
  if (n < 2) throw std::invalid_argument("line: need >= 2 nodes");
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  Topology t("line" + std::to_string(n), std::move(g));
  t.set_all_capacities(capacity_bps);
  return t;
}

Topology ring(std::size_t n, double capacity_bps) {
  if (n < 3) throw std::invalid_argument("ring: need >= 3 nodes");
  Graph g(n);
  for (NodeId i = 0; i < n; ++i)
    g.add_edge(i, static_cast<NodeId>((i + 1) % n));
  Topology t("ring" + std::to_string(n), std::move(g));
  t.set_all_capacities(capacity_bps);
  return t;
}

Topology star(std::size_t leaves, double capacity_bps) {
  if (leaves < 2) throw std::invalid_argument("star: need >= 2 leaves");
  Graph g(leaves + 1);
  for (NodeId i = 1; i <= leaves; ++i) g.add_edge(0, i);
  Topology t("star" + std::to_string(leaves), std::move(g));
  t.set_all_capacities(capacity_bps);
  return t;
}

Topology random_connected(std::size_t n, std::size_t m, util::RngStream& rng,
                          double capacity_bps) {
  if (n < 2) throw std::invalid_argument("random_connected: need >= 2 nodes");
  if (m + 1 < n || m > n * (n - 1) / 2)
    throw std::invalid_argument("random_connected: bad edge count");
  Graph g(n);
  std::set<std::pair<NodeId, NodeId>> used;
  auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  // Random spanning tree: attach each node i>0 to a uniformly chosen
  // earlier node (random recursive tree — uniform enough for workloads).
  for (NodeId i = 1; i < n; ++i) {
    const auto j = static_cast<NodeId>(rng.uniform_int(0, i - 1));
    g.add_edge(j, i);
    used.insert(norm(j, i));
  }
  while (used.size() < m) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (a == b || used.contains(norm(a, b))) continue;
    g.add_edge(a, b);
    used.insert(norm(a, b));
  }
  Topology t("rand" + std::to_string(n) + "m" + std::to_string(m),
             std::move(g));
  t.set_all_capacities(capacity_bps);
  return t;
}

Topology barabasi_albert(std::size_t n, std::size_t attach,
                         util::RngStream& rng, double capacity_bps) {
  if (attach == 0 || n <= attach)
    throw std::invalid_argument("barabasi_albert: need n > attach >= 1");
  Graph g(n);
  std::vector<NodeId> endpoint_pool;  // node appears once per incident edge
  std::set<std::pair<NodeId, NodeId>> used;
  auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  // Seed: clique over the first attach+1 nodes.
  for (NodeId a = 0; a <= attach; ++a)
    for (NodeId b = a + 1; b <= attach; ++b) {
      g.add_edge(a, b);
      used.insert(norm(a, b));
      endpoint_pool.push_back(a);
      endpoint_pool.push_back(b);
    }
  for (NodeId i = static_cast<NodeId>(attach) + 1; i < n; ++i) {
    std::size_t added = 0;
    while (added < attach) {
      const auto pick = endpoint_pool[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoint_pool.size()) - 1))];
      if (pick == i || used.contains(norm(pick, i))) continue;
      g.add_edge(pick, i);
      used.insert(norm(pick, i));
      endpoint_pool.push_back(pick);
      endpoint_pool.push_back(i);
      ++added;
    }
  }
  Topology t("ba" + std::to_string(n) + "k" + std::to_string(attach),
             std::move(g));
  t.set_all_capacities(capacity_bps);
  return t;
}

void randomize_capacities(Topology& topo, std::span<const double> choices,
                          util::RngStream& rng) {
  if (choices.empty())
    throw std::invalid_argument("randomize_capacities: no choices");
  const auto& g = topo.graph();
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto& lk = g.link(l);
    if (lk.src > lk.dst) continue;  // handle each undirected pair once
    const double cap = choices[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(choices.size()) - 1))];
    topo.set_link_capacity(l, cap);
    if (const auto rev = g.find_link(lk.dst, lk.src))
      topo.set_link_capacity(*rev, cap);
  }
}

void randomize_queue_sizes(Topology& topo, double p_tiny,
                           util::RngStream& rng) {
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    topo.set_queue_size(
        n, rng.bernoulli(p_tiny) ? kTinyQueuePackets : kStandardQueuePackets);
}

}  // namespace rnx::topo
