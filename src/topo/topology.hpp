// Topology = graph + physical attributes.
//
// Per directed link: capacity (bits/s) and propagation delay (s).
// Per node: output-queue capacity in packets — the node feature this
// paper's extended RouteNet learns to exploit.  A node's queue size applies
// to all of its output ports (the paper varies queue size per forwarding
// device, not per port).
#pragma once

#include <string>
#include <vector>

#include "topo/graph.hpp"

namespace rnx::topo {

/// Queue regimes used in the paper's evaluation (§3): devices either have a
/// standard-size queue or a queue holding a single packet.
inline constexpr std::uint32_t kStandardQueuePackets = 32;
inline constexpr std::uint32_t kTinyQueuePackets = 1;

class Topology {
 public:
  Topology(std::string name, Graph graph);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return graph_.num_nodes();
  }
  [[nodiscard]] std::size_t num_links() const noexcept {
    return graph_.num_links();
  }

  // -- link attributes ------------------------------------------------
  void set_link_capacity(LinkId l, double bits_per_sec);
  void set_all_capacities(double bits_per_sec);
  [[nodiscard]] double link_capacity(LinkId l) const {
    return capacity_bps_.at(l);
  }
  void set_link_prop_delay(LinkId l, double seconds);
  [[nodiscard]] double link_prop_delay(LinkId l) const {
    return prop_delay_s_.at(l);
  }

  // -- node attributes ------------------------------------------------
  void set_queue_size(NodeId n, std::uint32_t packets);
  void set_all_queue_sizes(std::uint32_t packets);
  [[nodiscard]] std::uint32_t queue_size(NodeId n) const {
    return queue_pkts_.at(n);
  }
  [[nodiscard]] const std::vector<std::uint32_t>& queue_sizes() const noexcept {
    return queue_pkts_;
  }

  /// Throws std::logic_error if any capacity or queue size is unset/invalid.
  void validate() const;

 private:
  std::string name_;
  Graph graph_;
  std::vector<double> capacity_bps_;
  std::vector<double> prop_delay_s_;
  std::vector<std::uint32_t> queue_pkts_;
};

}  // namespace rnx::topo
