// Topology zoo: the two topologies the paper evaluates on (NSFNET, GEANT2),
// small synthetic shapes for tests, and random-topology generators for the
// extension experiments (generalization beyond the paper's pair).
//
// Capacities follow the RouteNet dataset convention of a small set of
// discrete link speeds; callers can override.  Queue sizes default to
// kStandardQueuePackets; the dataset generator randomizes them per sample.
#pragma once

#include <span>

#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace rnx::topo {

/// 14-node / 21-edge NSFNET T1 backbone (the paper's unseen-test topology).
/// Edge map follows the standard published NSFNET adjacency.
[[nodiscard]] Topology nsfnet(double default_capacity_bps = 10e6);

/// 24-node / 37-edge GEANT2-scale pan-European backbone (the paper's
/// training topology).  Node/edge counts and degree profile match the
/// GEANT2 map used by the RouteNet dataset releases; see DESIGN.md for the
/// substitution note on the exact adjacency.
[[nodiscard]] Topology geant2(double default_capacity_bps = 10e6);

/// n-node line: 0-1-2-...-(n-1).  Unit tests and M/M/1 validation.
[[nodiscard]] Topology line(std::size_t n, double capacity_bps = 10e6);

/// n-node ring.
[[nodiscard]] Topology ring(std::size_t n, double capacity_bps = 10e6);

/// Star with n leaves around hub node 0 (n+1 nodes total).
[[nodiscard]] Topology star(std::size_t leaves, double capacity_bps = 10e6);

/// Connected random graph: uniform spanning tree + (m - n + 1) extra
/// distinct random edges.  Requires m >= n-1 and m <= n(n-1)/2.
[[nodiscard]] Topology random_connected(std::size_t n, std::size_t m,
                                        util::RngStream& rng,
                                        double capacity_bps = 10e6);

/// Barabási-Albert preferential attachment: each new node attaches to
/// `attach` existing nodes.  Produces hub-heavy degree profiles.
[[nodiscard]] Topology barabasi_albert(std::size_t n, std::size_t attach,
                                       util::RngStream& rng,
                                       double capacity_bps = 10e6);

/// Assign each link a capacity drawn uniformly from `choices`
/// (both directions of an undirected edge get the same speed).
void randomize_capacities(Topology& topo, std::span<const double> choices,
                          util::RngStream& rng);

/// Assign each node's queue size: tiny (1 packet) with probability
/// p_tiny, else standard — the paper's §3 evaluation scenario.
void randomize_queue_sizes(Topology& topo, double p_tiny,
                           util::RngStream& rng);

}  // namespace rnx::topo
