#include "topo/topology.hpp"

#include <stdexcept>

namespace rnx::topo {

Topology::Topology(std::string name, Graph graph)
    : name_(std::move(name)),
      graph_(std::move(graph)),
      capacity_bps_(graph_.num_links(), 0.0),
      prop_delay_s_(graph_.num_links(), 0.0),
      queue_pkts_(graph_.num_nodes(), kStandardQueuePackets) {}

void Topology::set_link_capacity(LinkId l, double bits_per_sec) {
  if (bits_per_sec <= 0.0)
    throw std::invalid_argument("Topology: capacity must be positive");
  capacity_bps_.at(l) = bits_per_sec;
}

void Topology::set_all_capacities(double bits_per_sec) {
  for (LinkId l = 0; l < graph_.num_links(); ++l)
    set_link_capacity(l, bits_per_sec);
}

void Topology::set_link_prop_delay(LinkId l, double seconds) {
  if (seconds < 0.0)
    throw std::invalid_argument("Topology: negative propagation delay");
  prop_delay_s_.at(l) = seconds;
}

void Topology::set_queue_size(NodeId n, std::uint32_t packets) {
  if (packets == 0)
    throw std::invalid_argument("Topology: queue must hold >= 1 packet");
  queue_pkts_.at(n) = packets;
}

void Topology::set_all_queue_sizes(std::uint32_t packets) {
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) set_queue_size(n, packets);
}

void Topology::validate() const {
  for (LinkId l = 0; l < graph_.num_links(); ++l)
    if (capacity_bps_[l] <= 0.0)
      throw std::logic_error("Topology: link " + std::to_string(l) +
                             " has no capacity");
  for (NodeId n = 0; n < graph_.num_nodes(); ++n)
    if (queue_pkts_[n] == 0)
      throw std::logic_error("Topology: node " + std::to_string(n) +
                             " has zero queue");
}

}  // namespace rnx::topo
