#include "sim/metrics.hpp"

#include <stdexcept>

namespace rnx::sim {

const PathStats& SimResult::path(topo::NodeId src, topo::NodeId dst) const {
  for (const auto& p : paths)
    if (p.src == src && p.dst == dst) return p;
  throw std::out_of_range("SimResult::path: pair not simulated");
}

}  // namespace rnx::sim
