// Output-port schedulers (DESIGN.md §S).
//
// A Scheduler owns the packets *waiting* at one output port (the packet
// in service is held by the simulator's Port) and decides, at each
// service-start instant, which waiting packet transmits next:
//
//  * FIFO            — arrival order; with the drop-tail admission rule in
//                      Simulator::run this is exactly the seed behavior;
//  * strict priority — lowest class index first (class 0 = highest),
//                      FIFO within a class, non-preemptive: a packet in
//                      service always finishes.  Validated against the
//                      two-class M/M/1 non-preemptive closed forms;
//  * DRR             — deficit round robin over classes with a per-visit
//                      quantum (bits): the classic O(1) approximation of
//                      weighted fair queueing.  Symmetric flows must
//                      receive equal throughput shares.
//
// All policies share one drop-tail admission rule: the port buffer is
// counted in packets across every class (the paper's per-node queue-size
// knob), so admission stays policy-independent and the FIFO golden test
// pins the refactor bitwise.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/scenario.hpp"

namespace rnx::sim {

/// One in-flight packet.  `cls` is the flow's scheduling class
/// (< ScenarioConfig::priority_classes).
struct SimPacket {
  double gen_time = 0.0;
  double size_bits = 0.0;
  std::uint32_t flow = 0;
  std::uint16_t hop = 0;
  std::uint8_t cls = 0;
  bool measured = false;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Add a packet to the waiting set (admission is the caller's job).
  virtual void push(const SimPacket& pkt) = 0;
  /// Select and remove the next packet to serve.  Precondition: !empty().
  [[nodiscard]] virtual SimPacket pop_next() = 0;
  /// Packets currently waiting (excludes the one in service).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
};

/// Scheduler factory for one port.  `num_classes` bounds SimPacket::cls;
/// `mean_packet_bits` supplies the default DRR quantum when the scenario
/// leaves drr_quantum_bits at 0.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const ScenarioConfig& scenario, double mean_packet_bits);

}  // namespace rnx::sim
