#include "sim/scheduler.hpp"

#include <deque>
#include <stdexcept>
#include <vector>

namespace rnx::sim {

namespace {

class FifoScheduler final : public Scheduler {
 public:
  void push(const SimPacket& pkt) override { q_.push_back(pkt); }
  SimPacket pop_next() override {
    SimPacket p = q_.front();
    q_.pop_front();
    return p;
  }
  std::size_t size() const noexcept override { return q_.size(); }

 private:
  std::deque<SimPacket> q_;
};

/// Per-class FIFO lanes served lowest-class-first.  Non-preemptive by
/// construction: selection only happens at service-start instants.
class StrictPriorityScheduler final : public Scheduler {
 public:
  explicit StrictPriorityScheduler(std::uint32_t classes)
      : lanes_(classes) {}

  void push(const SimPacket& pkt) override {
    lanes_.at(pkt.cls).push_back(pkt);
    ++total_;
  }
  SimPacket pop_next() override {
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      SimPacket p = lane.front();
      lane.pop_front();
      --total_;
      return p;
    }
    throw std::logic_error("StrictPriorityScheduler: pop from empty port");
  }
  std::size_t size() const noexcept override { return total_; }

 private:
  std::vector<std::deque<SimPacket>> lanes_;
  std::size_t total_ = 0;
};

/// Classic deficit round robin (Shreedhar & Varghese): on each visit to a
/// non-empty class its deficit grows by one quantum; the class transmits
/// head-of-line packets while the deficit covers them, then the rotation
/// moves on.  Deficits reset when a class drains, so an idle class cannot
/// bank credit.
class DrrScheduler final : public Scheduler {
 public:
  DrrScheduler(std::uint32_t classes, double quantum_bits)
      : lanes_(classes), deficit_(classes, 0.0), quantum_(quantum_bits) {
    if (!(quantum_ > 0.0))
      throw std::invalid_argument("DrrScheduler: quantum must be > 0");
  }

  void push(const SimPacket& pkt) override {
    lanes_.at(pkt.cls).push_back(pkt);
    ++total_;
  }

  SimPacket pop_next() override {
    if (total_ == 0)
      throw std::logic_error("DrrScheduler: pop from empty port");
    for (;;) {
      std::deque<SimPacket>& lane = lanes_[cur_];
      if (lane.empty()) {
        deficit_[cur_] = 0.0;
        advance();
        continue;
      }
      if (fresh_visit_) {
        deficit_[cur_] += quantum_;
        fresh_visit_ = false;
      }
      if (lane.front().size_bits <= deficit_[cur_]) {
        deficit_[cur_] -= lane.front().size_bits;
        SimPacket p = lane.front();
        lane.pop_front();
        --total_;
        if (lane.empty()) {
          deficit_[cur_] = 0.0;
          advance();
        }
        return p;
      }
      advance();  // deficit exhausted: the class waits for its next visit
    }
  }

  std::size_t size() const noexcept override { return total_; }

 private:
  void advance() noexcept {
    cur_ = (cur_ + 1) % lanes_.size();
    fresh_visit_ = true;
  }

  std::vector<std::deque<SimPacket>> lanes_;
  std::vector<double> deficit_;
  double quantum_;
  std::size_t cur_ = 0;
  std::size_t total_ = 0;
  bool fresh_visit_ = true;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const ScenarioConfig& scenario,
                                          double mean_packet_bits) {
  switch (scenario.policy) {
    case SchedulerPolicy::kFifo:
      return std::make_unique<FifoScheduler>();
    case SchedulerPolicy::kStrictPriority:
      return std::make_unique<StrictPriorityScheduler>(
          scenario.priority_classes);
    case SchedulerPolicy::kDrr:
      return std::make_unique<DrrScheduler>(
          scenario.priority_classes, scenario.drr_quantum_bits > 0.0
                                         ? scenario.drr_quantum_bits
                                         : mean_packet_bits);
  }
  throw std::logic_error("make_scheduler: unknown policy");
}

}  // namespace rnx::sim
