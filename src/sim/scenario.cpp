#include "sim/scenario.hpp"

#include <stdexcept>
#include <string>

namespace rnx::sim {

std::optional<SchedulerPolicy> policy_from_string(
    std::string_view s) noexcept {
  if (s == "fifo") return SchedulerPolicy::kFifo;
  if (s == "prio" || s == "priority") return SchedulerPolicy::kStrictPriority;
  if (s == "drr") return SchedulerPolicy::kDrr;
  return std::nullopt;
}

std::optional<TrafficProcess> traffic_from_string(
    std::string_view s) noexcept {
  if (s == "poisson") return TrafficProcess::kPoisson;
  if (s == "cbr" || s == "deterministic") return TrafficProcess::kCbr;
  if (s == "onoff") return TrafficProcess::kOnOff;
  return std::nullopt;
}

void ScenarioConfig::validate() const {
  if (priority_classes == 0)
    throw std::invalid_argument("ScenarioConfig: priority_classes must be >= 1");
  if (priority_classes > 64)
    throw std::invalid_argument(
        "ScenarioConfig: priority_classes implausibly large (" +
        std::to_string(priority_classes) + " > 64)");
  if (!(onoff_burst_pkts > 0.0))
    throw std::invalid_argument(
        "ScenarioConfig: onoff_burst_pkts must be > 0");
  if (!(onoff_duty > 0.0) || onoff_duty > 1.0)
    throw std::invalid_argument(
        "ScenarioConfig: onoff_duty must be in (0, 1]");
  if (drr_quantum_bits < 0.0)
    throw std::invalid_argument(
        "ScenarioConfig: drr_quantum_bits must be >= 0");
}

namespace {

/// Exponential inter-arrivals: exactly the seed simulator's one
/// exponential draw per arrival, so FIFO+Poisson stays bitwise-identical.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_pps) : mean_gap_(1.0 / rate_pps) {}
  double next(double now, util::RngStream& rng) override {
    return now + rng.exponential(mean_gap_);
  }

 private:
  double mean_gap_;
};

/// Deterministic inter-arrivals.  The first arrival is drawn uniformly
/// inside one period so concurrent CBR flows do not phase-lock onto the
/// same event times.
class CbrArrivals final : public ArrivalProcess {
 public:
  explicit CbrArrivals(double rate_pps) : gap_(1.0 / rate_pps) {}
  double next(double now, util::RngStream& rng) override {
    if (!primed_) {
      primed_ = true;
      return now + rng.uniform() * gap_;
    }
    return now + gap_;
  }

 private:
  double gap_;
  bool primed_ = false;
};

/// Markov-modulated on-off: exponential ON/OFF sojourns; Poisson arrivals
/// at peak rate rate/duty during ON, silence during OFF.  Mean ON length
/// is sized so a burst emits ~burst_pkts packets; the long-run average
/// rate equals rate_pps by construction.
class OnOffArrivals final : public ArrivalProcess {
 public:
  OnOffArrivals(double rate_pps, double burst_pkts, double duty)
      : peak_gap_(duty / rate_pps),
        mean_on_(burst_pkts * peak_gap_),
        mean_off_(mean_on_ * (1.0 - duty) / duty) {}

  double next(double now, util::RngStream& rng) override {
    if (!primed_) {
      primed_ = true;
      on_until_ = rng.exponential(mean_on_);  // every flow starts ON at t=0
    }
    double t = now;
    for (;;) {
      const double gap = rng.exponential(peak_gap_);
      if (t + gap <= on_until_) return t + gap;
      // Burst exhausted: sit out the OFF sojourn, start the next burst.
      // duty == 1 has no OFF phase and degenerates to pure Poisson.
      t = on_until_;
      if (mean_off_ > 0.0) t += rng.exponential(mean_off_);
      on_until_ = t + rng.exponential(mean_on_);
    }
  }

 private:
  double peak_gap_;
  double mean_on_;
  double mean_off_;
  double on_until_ = 0.0;
  bool primed_ = false;
};

}  // namespace

std::unique_ptr<ArrivalProcess> make_arrival_process(
    const ScenarioConfig& scenario, double rate_pps) {
  if (!(rate_pps > 0.0))
    throw std::invalid_argument("make_arrival_process: rate must be > 0");
  switch (scenario.traffic) {
    case TrafficProcess::kPoisson:
      return std::make_unique<PoissonArrivals>(rate_pps);
    case TrafficProcess::kCbr:
      return std::make_unique<CbrArrivals>(rate_pps);
    case TrafficProcess::kOnOff:
      return std::make_unique<OnOffArrivals>(
          rate_pps, scenario.onoff_burst_pkts, scenario.onoff_duty);
  }
  throw std::logic_error("make_arrival_process: unknown traffic process");
}

}  // namespace rnx::sim
