// Closed-form M/M/1 and M/M/1/K queueing results.
//
// These are the analytic ground truth the simulator is validated against
// (tests/sim_test.cpp, bench_sim_validation): a single link with Poisson
// arrivals and exponential packet sizes *is* an M/M/1/K system where K is
// the port queue capacity (system size, packet in service included).
#pragma once

#include <cstdint>

namespace rnx::sim {

/// Mean sojourn time (waiting + service) of an M/M/1 queue; requires
/// lambda < mu.  W = 1 / (mu - lambda).
[[nodiscard]] double mm1_mean_sojourn(double lambda, double mu);

/// Steady-state probability that an M/M/1/K system (capacity K packets
/// including the one in service) holds n packets.
[[nodiscard]] double mm1k_prob_n(double lambda, double mu, std::uint32_t k,
                                 std::uint32_t n);

/// Blocking probability (= P[N = K]): fraction of arrivals dropped.
[[nodiscard]] double mm1k_blocking(double lambda, double mu, std::uint32_t k);

/// Mean number in system.
[[nodiscard]] double mm1k_mean_system(double lambda, double mu,
                                      std::uint32_t k);

/// Mean sojourn time of *accepted* packets: N / (lambda * (1 - P_block)).
[[nodiscard]] double mm1k_mean_sojourn(double lambda, double mu,
                                       std::uint32_t k);

/// Utilization of the server: rho_eff = lambda_eff / mu.
[[nodiscard]] double mm1k_utilization(double lambda, double mu,
                                      std::uint32_t k);

}  // namespace rnx::sim
