#include "sim/mm1k.hpp"

#include <cmath>
#include <stdexcept>

namespace rnx::sim {

namespace {
void check(double lambda, double mu) {
  if (lambda < 0.0 || mu <= 0.0)
    throw std::invalid_argument("mm1k: need lambda >= 0, mu > 0");
}
}  // namespace

double mm1_mean_sojourn(double lambda, double mu) {
  check(lambda, mu);
  if (lambda >= mu) throw std::invalid_argument("mm1: unstable (lambda >= mu)");
  return 1.0 / (mu - lambda);
}

double mm1k_prob_n(double lambda, double mu, std::uint32_t k, std::uint32_t n) {
  check(lambda, mu);
  if (k == 0) throw std::invalid_argument("mm1k: K must be >= 1");
  if (n > k) return 0.0;
  const double rho = lambda / mu;
  if (std::abs(rho - 1.0) < 1e-12)
    return 1.0 / static_cast<double>(k + 1);
  return (1.0 - rho) * std::pow(rho, n) / (1.0 - std::pow(rho, k + 1));
}

double mm1k_blocking(double lambda, double mu, std::uint32_t k) {
  return mm1k_prob_n(lambda, mu, k, k);
}

double mm1k_mean_system(double lambda, double mu, std::uint32_t k) {
  check(lambda, mu);
  if (k == 0) throw std::invalid_argument("mm1k: K must be >= 1");
  const double rho = lambda / mu;
  if (std::abs(rho - 1.0) < 1e-12) return static_cast<double>(k) / 2.0;
  const double rk1 = std::pow(rho, k + 1);
  return rho / (1.0 - rho) -
         static_cast<double>(k + 1) * rk1 / (1.0 - rk1);
}

double mm1k_mean_sojourn(double lambda, double mu, std::uint32_t k) {
  check(lambda, mu);
  if (lambda == 0.0) return 1.0 / mu;
  const double lam_eff = lambda * (1.0 - mm1k_blocking(lambda, mu, k));
  if (lam_eff <= 0.0) return 1.0 / mu;
  return mm1k_mean_system(lambda, mu, k) / lam_eff;
}

double mm1k_utilization(double lambda, double mu, std::uint32_t k) {
  check(lambda, mu);
  return lambda * (1.0 - mm1k_blocking(lambda, mu, k)) / mu;
}

}  // namespace rnx::sim
