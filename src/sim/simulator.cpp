#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rnx::sim {

namespace {

enum class EvType : std::uint8_t { kFlowGen, kHopArrival, kDeparture };

struct Event {
  double time;
  std::uint64_t seq;  // tie-breaker: FIFO among simultaneous events
  EvType type;
  std::uint32_t idx;  // flow id (kFlowGen) or link id (others)
  SimPacket pkt{};    // payload for kHopArrival

  bool operator>(const Event& o) const noexcept {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

struct Flow {
  topo::NodeId src;
  topo::NodeId dst;
  double rate_pps;
  std::uint8_t cls;
  const topo::Path* path;
  util::RngStream rng;
  std::unique_ptr<ArrivalProcess> arrivals;
};

struct Port {
  std::unique_ptr<Scheduler> sched;     // waiting packets
  std::optional<SimPacket> in_service;  // transmitting packet, if any
  std::uint32_t capacity;    // max packets in system (service included)
  double service_start = 0;  // start time of current service
  // occupancy integration (measurement window only)
  double last_change = 0.0;
  double occupancy_integral = 0.0;
  double busy_s = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t drops = 0;

  [[nodiscard]] std::size_t occupancy() const noexcept {
    return sched->size() + (in_service.has_value() ? 1u : 0u);
  }
};

}  // namespace

Simulator::Simulator(const topo::Topology& topo,
                     const topo::RoutingScheme& routing,
                     const topo::TrafficMatrix& traffic, SimConfig config)
    : topo_(topo), routing_(routing), traffic_(traffic),
      cfg_(std::move(config)) {
  if (topo.num_nodes() != routing.num_nodes() ||
      topo.num_nodes() != traffic.num_nodes())
    throw std::invalid_argument("Simulator: size mismatch between inputs");
  if (cfg_.window_s <= 0.0 || cfg_.warmup_s < 0.0)
    throw std::invalid_argument("Simulator: bad time configuration");
  if (cfg_.mean_packet_bits <= 0.0)
    throw std::invalid_argument("Simulator: bad packet size");
  cfg_.scenario.validate();
  topo.validate();
}

SimResult Simulator::run() {
  const double w_start = cfg_.warmup_s;
  const double w_end = cfg_.warmup_s + cfg_.window_s;
  const util::RngStream root(cfg_.seed);
  const std::uint32_t num_classes = cfg_.scenario.priority_classes;

  // --- flows ----------------------------------------------------------
  std::vector<Flow> flows;
  for (const auto& [s, d] : routing_.pairs()) {
    const double bps = traffic_.get(s, d);
    if (bps <= 0.0) continue;
    const double rate_pps = bps / cfg_.mean_packet_bits;
    const std::uint32_t cls =
        cfg_.flow_class ? std::min(cfg_.flow_class(s, d), num_classes - 1)
                        : 0u;
    flows.push_back(Flow{s, d, rate_pps, static_cast<std::uint8_t>(cls),
                         &routing_.path(s, d),
                         root.derive("flow", flows.size()),
                         make_arrival_process(cfg_.scenario, rate_pps)});
  }

  // --- ports ----------------------------------------------------------
  std::vector<Port> ports(topo_.num_links());
  for (topo::LinkId l = 0; l < topo_.num_links(); ++l) {
    ports[l].sched = make_scheduler(cfg_.scenario, cfg_.mean_packet_bits);
    ports[l].capacity = topo_.queue_size(topo_.graph().link(l).src);
  }

  // --- per-flow statistics ---------------------------------------------
  std::vector<util::Welford> delay(flows.size());
  std::vector<std::uint64_t> generated(flows.size(), 0);
  std::vector<std::uint64_t> dropped(flows.size(), 0);

  // --- event loop -------------------------------------------------------
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  std::uint64_t seq = 0;
  std::uint64_t events = 0;

  auto window_overlap = [&](double a, double b) {
    return std::max(0.0, std::min(b, w_end) - std::max(a, w_start));
  };
  auto integrate = [&](Port& p, double now) {
    const double span = window_overlap(p.last_change, now);
    if (span > 0.0)
      p.occupancy_integral += span * static_cast<double>(p.occupancy());
    p.last_change = now;
  };

  auto start_service = [&](topo::LinkId l, double now) {
    Port& p = ports[l];
    p.service_start = now;
    const double svc = p.in_service->size_bits / topo_.link_capacity(l);
    heap.push(Event{now + svc, seq++, EvType::kDeparture, l});
  };

  // Offer a packet to the port of its current hop; drop-tail if full.
  auto offer = [&](const SimPacket& pkt, double now) {
    const Flow& f = flows[pkt.flow];
    const topo::LinkId l = f.path->links[pkt.hop];
    Port& p = ports[l];
    ++p.arrivals;
    if (p.occupancy() >= p.capacity) {
      ++p.drops;
      if (pkt.measured) ++dropped[pkt.flow];
      return;
    }
    integrate(p, now);
    if (!p.in_service.has_value()) {
      p.in_service = pkt;
      start_service(l, now);
    } else {
      p.sched->push(pkt);
    }
  };

  auto schedule_gen = [&](std::uint32_t fi, double now) {
    Flow& f = flows[fi];
    const double next = f.arrivals->next(now, f.rng);
    if (next < w_end) heap.push(Event{next, seq++, EvType::kFlowGen, fi});
  };

  // Prime every flow with its first arrival.
  for (std::uint32_t fi = 0; fi < flows.size(); ++fi) schedule_gen(fi, 0.0);

  while (!heap.empty()) {
    if (++events > cfg_.max_events) {
      util::log_warn("Simulator: event cap reached, truncating run");
      break;
    }
    const Event ev = heap.top();
    heap.pop();
    const double now = ev.time;

    switch (ev.type) {
      case EvType::kFlowGen: {
        Flow& f = flows[ev.idx];
        SimPacket pkt;
        pkt.gen_time = now;
        pkt.flow = ev.idx;
        pkt.hop = 0;
        pkt.cls = f.cls;
        pkt.measured = (now >= w_start && now < w_end);
        pkt.size_bits = cfg_.size_dist == PacketSizeDist::kExponential
                            ? f.rng.exponential(cfg_.mean_packet_bits)
                            : cfg_.mean_packet_bits;
        if (pkt.measured) ++generated[ev.idx];
        schedule_gen(ev.idx, now);
        offer(pkt, now);
        break;
      }
      case EvType::kDeparture: {
        Port& p = ports[ev.idx];
        integrate(p, now);
        const SimPacket done = *p.in_service;
        p.in_service.reset();
        p.busy_s += window_overlap(p.service_start, now);
        if (!p.sched->empty()) {
          p.in_service = p.sched->pop_next();
          start_service(ev.idx, now);
        }

        SimPacket pkt = done;
        const Flow& f = flows[pkt.flow];
        const double prop = topo_.link_prop_delay(ev.idx);
        const double arrive = now + prop;
        ++pkt.hop;
        if (pkt.hop == f.path->links.size()) {
          if (pkt.measured) delay[pkt.flow].add(arrive - pkt.gen_time);
        } else if (prop == 0.0) {
          offer(pkt, arrive);  // fast path: no wire latency, no heap trip
        } else {
          heap.push(Event{arrive, seq++, EvType::kHopArrival,
                          f.path->links[pkt.hop], pkt});
        }
        break;
      }
      case EvType::kHopArrival:
        offer(ev.pkt, now);
        break;
    }
  }

  // --- assemble results --------------------------------------------------
  SimResult res;
  res.total_events = events;
  res.sim_time_s = w_end;
  res.paths.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    PathStats ps;
    ps.src = flows[i].src;
    ps.dst = flows[i].dst;
    ps.generated = generated[i];
    ps.delivered = delay[i].count();
    ps.dropped = dropped[i];
    ps.mean_delay_s = delay[i].mean();
    ps.jitter_s2 = delay[i].variance();
    ps.min_delay_s = delay[i].min();
    ps.max_delay_s = delay[i].max();
    res.paths.push_back(ps);
  }
  res.links.resize(ports.size());
  for (std::size_t l = 0; l < ports.size(); ++l) {
    // Close the occupancy integral at the window end.
    integrate(ports[l], w_end);
    LinkStats& ls = res.links[l];
    ls.arrivals = ports[l].arrivals;
    ls.drops = ports[l].drops;
    ls.utilization = ports[l].busy_s / cfg_.window_s;
    ls.mean_queue_pkts = ports[l].occupancy_integral / cfg_.window_s;
  }
  return res;
}

}  // namespace rnx::sim
