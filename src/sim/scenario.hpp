// Scenario vocabulary: output-port scheduling policies and flow arrival
// processes (DESIGN.md §S).
//
// The paper's ground-truth datasets vary a single scenario knob (per-node
// queue size over drop-tail FIFO with Poisson traffic).  The scenario
// engine widens that axis in two directions, following RouteNet-Erlang
// (Ferriol-Galmés et al., 2022):
//
//  * SchedulerPolicy — how an output port picks the next packet to serve:
//    drop-tail FIFO (the original behavior, bitwise-preserved), strict
//    non-preemptive priority over flow classes, or deficit round robin
//    (a WFQ approximation) across the same classes;
//  * TrafficProcess — how each flow generates packets: Poisson (the
//    original, exponential inter-arrivals), CBR (deterministic
//    inter-arrivals), or a Markov-modulated on-off process whose ON
//    bursts emit Poisson traffic at a peak rate chosen so the long-run
//    average matches the traffic-matrix rate.
//
// A ScenarioConfig travels with every dataset sample (data::Sample), so
// datasets record the scenario they came from, and each non-default
// combination is pinned against closed-form queueing theory in
// tests/queueing_theory_test.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "util/rng.hpp"

namespace rnx::sim {

enum class SchedulerPolicy : std::uint8_t {
  kFifo = 0,           ///< drop-tail FIFO — the paper's (and seed's) policy
  kStrictPriority = 1, ///< non-preemptive; class 0 is the highest priority
  kDrr = 2,            ///< deficit round robin over classes (WFQ approx.)
};

enum class TrafficProcess : std::uint8_t {
  kPoisson = 0,  ///< exponential inter-arrivals (M/·/1-style; the default)
  kCbr = 1,      ///< deterministic inter-arrivals (constant bit rate)
  kOnOff = 2,    ///< Markov-modulated on-off bursts of Poisson traffic
};

[[nodiscard]] constexpr std::string_view to_string(
    SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::kFifo: return "fifo";
    case SchedulerPolicy::kStrictPriority: return "prio";
    case SchedulerPolicy::kDrr: return "drr";
  }
  return "?";
}
[[nodiscard]] constexpr std::string_view to_string(TrafficProcess t) noexcept {
  switch (t) {
    case TrafficProcess::kPoisson: return "poisson";
    case TrafficProcess::kCbr: return "cbr";
    case TrafficProcess::kOnOff: return "onoff";
  }
  return "?";
}
[[nodiscard]] std::optional<SchedulerPolicy> policy_from_string(
    std::string_view s) noexcept;
[[nodiscard]] std::optional<TrafficProcess> traffic_from_string(
    std::string_view s) noexcept;

inline constexpr std::uint32_t kNumSchedulerPolicies = 3;
inline constexpr std::uint32_t kNumTrafficProcesses = 3;

/// One scenario: the (policy, traffic process, class structure) triple a
/// sample was simulated under.  Defaults reproduce the seed simulator
/// exactly (FIFO + Poisson, one class).
struct ScenarioConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  TrafficProcess traffic = TrafficProcess::kPoisson;
  /// Number of flow classes the scheduler distinguishes.  1 degenerates
  /// strict priority and DRR to FIFO service order.
  std::uint32_t priority_classes = 1;
  /// On-off shape, scale-free per flow: mean packets emitted per ON burst
  /// and the long-run fraction of time spent ON.  Peak rate during ON is
  /// rate / duty, so the average rate always matches the traffic matrix.
  double onoff_burst_pkts = 10.0;
  double onoff_duty = 0.5;
  /// DRR quantum in bits; 0 selects the simulator's mean packet size.
  double drr_quantum_bits = 0.0;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;

  [[nodiscard]] bool operator==(const ScenarioConfig&) const = default;
};

/// Per-flow packet arrival process.  next() returns the absolute time of
/// the next generation given the previous one; all stochasticity draws
/// from the flow's own RngStream, so scenarios stay reproducible.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual double next(double now, util::RngStream& rng) = 0;
};

/// Build the arrival process for one flow of mean rate `rate_pps` under
/// `scenario`.  The Poisson process reproduces the seed simulator's draw
/// sequence exactly (one exponential draw per arrival).
[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrival_process(
    const ScenarioConfig& scenario, double rate_pps);

}  // namespace rnx::sim
