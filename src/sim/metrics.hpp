// Result records produced by one simulation run.
//
// PathStats carries exactly the label set the paper's datasets need:
// mean end-to-end delay (the regression target of Fig. 2), jitter
// (delay variance, the secondary metric RouteNet supports) and loss.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"

namespace rnx::sim {

/// Per source-destination pair statistics over the measurement window.
struct PathStats {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  std::uint64_t generated = 0;  ///< packets generated in the window
  std::uint64_t delivered = 0;  ///< ... that reached dst
  std::uint64_t dropped = 0;    ///< ... dropped at a full queue
  double mean_delay_s = 0.0;    ///< mean end-to-end delay of delivered pkts
  double jitter_s2 = 0.0;       ///< delay variance (RouteNet's "jitter")
  double min_delay_s = 0.0;
  double max_delay_s = 0.0;

  [[nodiscard]] double loss_rate() const noexcept {
    return generated ? static_cast<double>(dropped) /
                           static_cast<double>(generated)
                     : 0.0;
  }
};

/// Per directed-link statistics over the measurement window.
struct LinkStats {
  std::uint64_t arrivals = 0;  ///< packets offered to the port queue
  std::uint64_t drops = 0;     ///< packets rejected (queue full)
  double utilization = 0.0;    ///< busy time / window duration
  double mean_queue_pkts = 0.0;  ///< time-averaged system occupancy
};

/// Complete output of Simulator::run().
struct SimResult {
  std::vector<PathStats> paths;  ///< one per routed (src, dst), src-major
  std::vector<LinkStats> links;  ///< indexed by LinkId
  std::uint64_t total_events = 0;
  double sim_time_s = 0.0;  ///< simulated horizon (warmup + window)

  /// Index of the (src, dst) entry in paths, or throws.
  [[nodiscard]] const PathStats& path(topo::NodeId src,
                                      topo::NodeId dst) const;
};

}  // namespace rnx::sim
