// Packet-level discrete-event network simulator.
//
// This is the in-house OMNeT++ substitute used to produce ground-truth
// datasets (DESIGN.md S1).  Model:
//
//  * every (src, dst) pair with traffic is a flow: Poisson packet
//    arrivals at rate TM(src,dst)/mean_packet_bits, i.i.d. packet sizes
//    (exponential by default);
//  * forwarding follows the RoutingScheme's fixed path;
//  * each directed link is an output port with a finite drop-tail FIFO
//    whose capacity (in packets, including the one in service) is the
//    *queue size of the transmitting node* — the feature the paper varies;
//  * service time = packet size / link capacity; then the packet takes
//    the link's propagation delay to reach the next node.
//
// A single-link instance of this model is exactly M/M/1/K, which the test
// suite exploits to validate delay, loss and utilization against closed
// forms (sim/mm1k.hpp).
//
// Statistics are collected for the cohort of packets *generated* inside
// the measurement window (after warm-up); the event loop drains fully, so
// every measured packet is either delivered or dropped — an invariant the
// tests assert.
#pragma once

#include <cstdint>

#include "sim/metrics.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"
#include "topo/traffic.hpp"

namespace rnx::sim {

enum class PacketSizeDist : std::uint8_t {
  kExponential,   ///< M/M/1-style; default, matches the analytic reference
  kDeterministic  ///< fixed-size packets (M/D/1-style)
};

struct SimConfig {
  double warmup_s = 0.1;    ///< transient discarded before measuring
  double window_s = 1.0;    ///< measurement window length
  double mean_packet_bits = 8000.0;  ///< 1000-byte packets
  PacketSizeDist size_dist = PacketSizeDist::kExponential;
  std::uint64_t seed = 1;
  std::uint64_t max_events = 500'000'000;  ///< hard safety cap
};

/// One simulation run over a fixed topology/routing/traffic triple.
/// The referenced topology, routing and traffic objects must outlive run().
class Simulator {
 public:
  Simulator(const topo::Topology& topo, const topo::RoutingScheme& routing,
            const topo::TrafficMatrix& traffic, SimConfig config);

  /// Execute the simulation to full drain and return all statistics.
  /// Deterministic for a fixed (inputs, config.seed).
  [[nodiscard]] SimResult run();

 private:
  const topo::Topology& topo_;
  const topo::RoutingScheme& routing_;
  const topo::TrafficMatrix& traffic_;
  SimConfig cfg_;
};

}  // namespace rnx::sim
