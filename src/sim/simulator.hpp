// Packet-level discrete-event network simulator.
//
// This is the in-house OMNeT++ substitute used to produce ground-truth
// datasets (DESIGN.md S1).  Model:
//
//  * every (src, dst) pair with traffic is a flow: packet arrivals follow
//    the scenario's TrafficProcess (Poisson by default; CBR and
//    Markov-modulated on-off for the scenario engine, DESIGN.md §S),
//    i.i.d. packet sizes (exponential by default);
//  * forwarding follows the RoutingScheme's fixed path;
//  * each directed link is an output port with a finite drop-tail buffer
//    whose capacity (in packets, including the one in service) is the
//    *queue size of the transmitting node* — the feature the paper varies;
//    the scenario's SchedulerPolicy (FIFO / strict priority / DRR) picks
//    which waiting packet transmits next;
//  * service time = packet size / link capacity; then the packet takes
//    the link's propagation delay to reach the next node.
//
// A single-link instance of the default model is exactly M/M/1/K, which
// the test suite exploits to validate delay, loss and utilization against
// closed forms (sim/mm1k.hpp); the non-default scenario combinations are
// pinned against their own closed forms in tests/queueing_theory_test.cpp,
// and the default path is pinned bitwise by tests/sim_golden_test.cpp.
//
// Statistics are collected for the cohort of packets *generated* inside
// the measurement window (after warm-up); the event loop drains fully, so
// every measured packet is either delivered or dropped — an invariant the
// tests assert.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"
#include "topo/traffic.hpp"

namespace rnx::sim {

enum class PacketSizeDist : std::uint8_t {
  kExponential,   ///< M/M/1-style; default, matches the analytic reference
  kDeterministic  ///< fixed-size packets (M/D/1-style)
};

struct SimConfig {
  double warmup_s = 0.1;    ///< transient discarded before measuring
  double window_s = 1.0;    ///< measurement window length
  double mean_packet_bits = 8000.0;  ///< 1000-byte packets
  PacketSizeDist size_dist = PacketSizeDist::kExponential;
  std::uint64_t seed = 1;
  std::uint64_t max_events = 500'000'000;  ///< hard safety cap
  /// Scheduling policy / traffic process / class structure.  The default
  /// (FIFO + Poisson, one class) reproduces the seed simulator bitwise.
  ScenarioConfig scenario;
  /// Scheduling class per flow, keyed by (src, dst); the result is
  /// clamped to scenario.priority_classes - 1.  Unset = every flow in
  /// class 0.  The dataset generator records its assignment per path.
  std::function<std::uint32_t(topo::NodeId, topo::NodeId)> flow_class;
};

/// One simulation run over a fixed topology/routing/traffic triple.
/// The referenced topology, routing and traffic objects must outlive run().
class Simulator {
 public:
  Simulator(const topo::Topology& topo, const topo::RoutingScheme& routing,
            const topo::TrafficMatrix& traffic, SimConfig config);

  /// Execute the simulation to full drain and return all statistics.
  /// Deterministic for a fixed (inputs, config.seed).
  [[nodiscard]] SimResult run();

 private:
  const topo::Topology& topo_;
  const topo::RoutingScheme& routing_;
  const topo::TrafficMatrix& traffic_;
  SimConfig cfg_;
};

}  // namespace rnx::sim
