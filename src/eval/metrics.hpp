// Evaluation metrics over model predictions.
//
// The paper's headline plot (Fig. 2) is the CDF of the relative error of
// delay predictions; relative_errors() + util::Cdf reproduce it.  The
// summary adds the usual regression metrics for the tables.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"

namespace rnx::data {
class SampleSource;
}

namespace rnx::eval {

/// Ground-truth and predicted mean delays (seconds), paired per path,
/// pooled over a whole dataset.
struct PairedPredictions {
  std::vector<double> truth;
  std::vector<double> pred;

  [[nodiscard]] std::size_t size() const noexcept { return truth.size(); }
};

/// Run the model over every sample (inference mode, batched through
/// Model::forward_batch) and pool the label-valid paths.  Predictions are
/// de-normalized back to seconds (delay) or seconds^2 (jitter), matching
/// `target`.  A pool parallelizes the per-sample forwards.
[[nodiscard]] PairedPredictions predict_dataset(
    const core::Model& model, const data::Dataset& ds,
    const data::Scaler& scaler, std::uint64_t min_delivered,
    core::PredictionTarget target = core::PredictionTarget::kDelay,
    util::ThreadPool* pool = nullptr);

/// Streaming predict over one pass of a SampleSource (DESIGN.md §D):
/// samples are pulled in bounded windows, batched through
/// Model::forward_batch and pooled in sample order, so the result is
/// identical to predict_dataset on the same samples while residency
/// stays O(window + prefetch).  `model` is taken non-const because the
/// pass runs plan-cache-DETACHED when the source's sample addresses are
/// transient (an address-keyed cache entry must never outlive its
/// sample); the cache is restored on return.  With `per_sample` set,
/// every sample gets a prediction (no label-based skipping) and the
/// callback fires in sample order with (index, sample, predictions) —
/// the CSV export hook.
[[nodiscard]] PairedPredictions predict_source(
    core::Model& model, data::SampleSource& src, const data::Scaler& scaler,
    std::uint64_t min_delivered,
    core::PredictionTarget target = core::PredictionTarget::kDelay,
    util::ThreadPool* pool = nullptr,
    const std::function<void(std::size_t, const data::Sample&,
                             const nn::Tensor&)>& per_sample = nullptr);

/// Signed relative errors (pred - truth) / truth.
[[nodiscard]] std::vector<double> relative_errors(
    const PairedPredictions& pp);
/// |pred - truth| / truth.
[[nodiscard]] std::vector<double> absolute_relative_errors(
    const PairedPredictions& pp);

struct RegressionSummary {
  std::size_t n = 0;
  double mae = 0.0;         ///< seconds
  double rmse = 0.0;        ///< seconds
  double mape = 0.0;        ///< mean |rel err| (fraction)
  double median_ape = 0.0;  ///< median |rel err|
  double p90_ape = 0.0;     ///< 90th percentile |rel err|
  double r2 = 0.0;          ///< coefficient of determination
  double pearson = 0.0;     ///< linear correlation
};

[[nodiscard]] RegressionSummary summarize(const PairedPredictions& pp);

/// Render the summary as the CLI metric table (ms for delay, ms^2 for
/// jitter).  Shared by rnx_train and rnx_predict: the CI train->serve
/// smoke diffs their outputs line for line, so there must be exactly
/// one formatting implementation.
void print_summary(std::ostream& os, const RegressionSummary& s,
                   core::PredictionTarget target);

}  // namespace rnx::eval
