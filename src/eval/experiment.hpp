// End-to-end experiment drivers shared by benches and examples.
//
// run_fig2() reproduces the paper's §3 protocol at configurable scale:
// generate queue-varied datasets on GEANT2 (train + held-out test) and
// NSFNET (never trained on), train the original and the extended
// RouteNet on the same data, and evaluate all four (model, topology)
// combinations — the four curves of Fig. 2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "eval/metrics.hpp"

namespace rnx::eval {

struct Fig2Config {
  std::size_t train_samples = 160;
  std::size_t geant2_test_samples = 40;
  std::size_t nsfnet_test_samples = 40;
  data::GeneratorConfig gen;       ///< queue-varied scenario generator
  core::ModelConfig model;         ///< shared by both architectures
  core::TrainConfig train;
  std::uint64_t data_seed = 2019;  ///< dataset RNG root
  /// Directory for the on-disk dataset cache; empty = no caching.
  std::string cache_dir = "data";
  bool verbose = true;
};

/// One curve of Fig. 2: a (model, topology) combination.
struct Fig2Curve {
  std::string model;     ///< "routenet" or "routenet-ext"
  std::string topology;  ///< "geant2" or "nsfnet"
  PairedPredictions predictions;
  RegressionSummary summary;
  std::vector<double> rel_errors;  ///< signed, per path
};

struct Fig2Result {
  std::vector<Fig2Curve> curves;  ///< ext/geant2, orig/geant2, ext/nsfnet, orig/nsfnet
  std::vector<core::EpochRecord> ext_history;
  std::vector<core::EpochRecord> orig_history;
  double generate_seconds = 0.0;
  double train_seconds = 0.0;

  [[nodiscard]] const Fig2Curve& curve(const std::string& model,
                                       const std::string& topology) const;
};

[[nodiscard]] Fig2Result run_fig2(const Fig2Config& cfg);

/// Generate (or load from cache) the three datasets of the Fig. 2
/// protocol: GEANT2 train, GEANT2 test, NSFNET test.
struct Fig2Datasets {
  data::Dataset train;
  data::Dataset geant2_test;
  data::Dataset nsfnet_test;
  double generate_seconds = 0.0;
};
[[nodiscard]] Fig2Datasets make_fig2_datasets(const Fig2Config& cfg);

}  // namespace rnx::eval
