#include "eval/metrics.hpp"

#include <cmath>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "data/source.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace rnx::eval {

PairedPredictions predict_dataset(const core::Model& model,
                                  const data::Dataset& ds,
                                  const data::Scaler& scaler,
                                  std::uint64_t min_delivered,
                                  core::PredictionTarget target,
                                  util::ThreadPool* pool) {
  const bool delay = target == core::PredictionTarget::kDelay;
  // Samples with no label-valid paths contribute nothing — mask them out
  // so they do not pay a discarded forward pass.
  std::vector<std::vector<nn::Index>> valid_rows(ds.size());
  std::vector<char> skip(ds.size(), 0);
  for (std::size_t si = 0; si < ds.size(); ++si) {
    valid_rows[si] = core::valid_label_rows(ds[si], min_delivered, target);
    skip[si] = valid_rows[si].empty() ? 1 : 0;
  }
  const std::vector<nn::Tensor> preds =
      model.forward_batch(ds.samples(), scaler, pool, &skip);
  PairedPredictions pp;
  for (std::size_t si = 0; si < ds.size(); ++si) {
    const auto& s = ds[si];
    const auto& valid = valid_rows[si];
    const nn::Tensor& pred = preds[si];
    for (const auto row : valid) {
      pp.truth.push_back(delay ? s.paths[row].mean_delay_s
                               : s.paths[row].jitter_s2);
      pp.pred.push_back(delay ? scaler.target_to_delay(pred(row, 0))
                              : scaler.target_to_jitter(pred(row, 0)));
    }
  }
  return pp;
}

PairedPredictions predict_source(
    core::Model& model, data::SampleSource& src, const data::Scaler& scaler,
    std::uint64_t min_delivered, core::PredictionTarget target,
    util::ThreadPool* pool,
    const std::function<void(std::size_t, const data::Sample&,
                             const nn::Tensor&)>& per_sample) {
  const bool delay = target == core::PredictionTarget::kDelay;

  // Transient streaming samples must not populate an address-keyed plan
  // cache (a recycled address would serve a stale plan); detach for the
  // pass and restore on every exit path.
  const core::PlanCacheScope cache_scope(model);
  if (!src.stable_addresses()) model.set_plan_cache(nullptr);

  src.reset();
  const std::size_t lanes = pool ? pool->size() : 1;
  const std::size_t window = std::max<std::size_t>(4 * lanes, 8);
  std::vector<std::shared_ptr<const data::Sample>> hold;
  hold.reserve(window);
  PairedPredictions pp;
  std::size_t base_index = 0;

  const auto flush = [&] {
    if (hold.empty()) return;
    const std::size_t n = hold.size();
    std::vector<const data::Sample*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = hold[i].get();
    std::vector<std::vector<nn::Index>> valid_rows(n);
    std::vector<char> skip(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      valid_rows[i] = core::valid_label_rows(*ptrs[i], min_delivered, target);
      // With a per-sample consumer every sample needs its predictions;
      // metrics-only passes skip label-less samples as predict_dataset
      // does.
      skip[i] = (!per_sample && valid_rows[i].empty()) ? 1 : 0;
    }
    const std::vector<nn::Tensor> preds =
        model.forward_batch(ptrs, scaler, pool, nullptr, &skip);
    for (std::size_t i = 0; i < n; ++i) {
      const data::Sample& s = *ptrs[i];
      if (per_sample) per_sample(base_index + i, s, preds[i]);
      for (const auto row : valid_rows[i]) {
        pp.truth.push_back(delay ? s.paths[row].mean_delay_s
                                 : s.paths[row].jitter_s2);
        pp.pred.push_back(delay ? scaler.target_to_delay(preds[i](row, 0))
                                : scaler.target_to_jitter(preds[i](row, 0)));
      }
    }
    base_index += n;
    hold.clear();
  };

  while (auto sp = src.next()) {
    hold.push_back(std::move(sp));
    if (hold.size() == window) flush();
  }
  flush();
  return pp;
}

std::vector<double> relative_errors(const PairedPredictions& pp) {
  std::vector<double> out;
  out.reserve(pp.size());
  for (std::size_t i = 0; i < pp.size(); ++i) {
    if (pp.truth[i] <= 0.0)
      throw std::logic_error("relative_errors: non-positive truth");
    out.push_back((pp.pred[i] - pp.truth[i]) / pp.truth[i]);
  }
  return out;
}

std::vector<double> absolute_relative_errors(const PairedPredictions& pp) {
  std::vector<double> out = relative_errors(pp);
  for (auto& e : out) e = std::abs(e);
  return out;
}

RegressionSummary summarize(const PairedPredictions& pp) {
  if (pp.size() == 0)
    throw std::invalid_argument("summarize: empty prediction set");
  RegressionSummary s;
  s.n = pp.size();

  util::Welford truth_w, err_w;
  double se = 0.0, ae = 0.0;
  for (std::size_t i = 0; i < pp.size(); ++i) {
    const double e = pp.pred[i] - pp.truth[i];
    se += e * e;
    ae += std::abs(e);
    truth_w.add(pp.truth[i]);
    err_w.add(e);
  }
  const auto n = static_cast<double>(pp.size());
  s.mae = ae / n;
  s.rmse = std::sqrt(se / n);

  const std::vector<double> ape = absolute_relative_errors(pp);
  double ape_sum = 0.0;
  for (const double a : ape) ape_sum += a;
  s.mape = ape_sum / n;
  s.median_ape = util::percentile(ape, 50.0);
  s.p90_ape = util::percentile(ape, 90.0);

  const double ss_tot = truth_w.variance() * n;
  s.r2 = ss_tot > 0.0 ? 1.0 - se / ss_tot : 0.0;

  // Pearson correlation between truth and prediction.
  double mt = 0.0, mp = 0.0;
  for (std::size_t i = 0; i < pp.size(); ++i) {
    mt += pp.truth[i];
    mp += pp.pred[i];
  }
  mt /= n;
  mp /= n;
  double cov = 0.0, vt = 0.0, vp = 0.0;
  for (std::size_t i = 0; i < pp.size(); ++i) {
    const double a = pp.truth[i] - mt;
    const double b = pp.pred[i] - mp;
    cov += a * b;
    vt += a * a;
    vp += b * b;
  }
  s.pearson = (vt > 0.0 && vp > 0.0) ? cov / std::sqrt(vt * vp) : 0.0;
  return s;
}

void print_summary(std::ostream& os, const RegressionSummary& s,
                   core::PredictionTarget target) {
  const bool delay = target == core::PredictionTarget::kDelay;
  const std::string unit = delay ? " ms" : " ms^2";
  const double to_unit = delay ? 1e3 : 1e6;
  util::Table table({"metric", "value"});
  table.add_row({"paths", util::Table::cell(s.n)})
      .add_row({"median |rel err|",
                util::Table::cell(s.median_ape * 100, 2) + " %"})
      .add_row({"P90 |rel err|",
                util::Table::cell(s.p90_ape * 100, 2) + " %"})
      .add_row({"MAPE", util::Table::cell(s.mape * 100, 2) + " %"})
      .add_row({"MAE", util::Table::cell(s.mae * to_unit, 4) + unit})
      .add_row({"RMSE", util::Table::cell(s.rmse * to_unit, 4) + unit})
      .add_row({"Pearson r", util::Table::cell(s.pearson, 4)})
      .add_row({"R^2", util::Table::cell(s.r2, 4)});
  table.print(os);
}

}  // namespace rnx::eval
