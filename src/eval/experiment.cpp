#include "eval/experiment.hpp"

#include <stdexcept>

#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace rnx::eval {

namespace {
std::string cache_name(const Fig2Config& cfg, const std::string& topo,
                       std::size_t count, std::uint64_t salt) {
  // Key the cache file on everything that shapes the dataset.
  return cfg.cache_dir + "/" + topo + "_n" + std::to_string(count) + "_s" +
         std::to_string(cfg.data_seed + salt) + "_p" +
         std::to_string(static_cast<int>(cfg.gen.p_tiny_queue * 100)) + "_k" +
         std::to_string(cfg.gen.target_packets) + ".rnxd";
}

data::Dataset make_set(const Fig2Config& cfg, const topo::Topology& topo,
                       std::size_t count, std::uint64_t salt) {
  auto generate = [&] {
    return data::Dataset(data::generate_dataset(topo, count, cfg.gen,
                                                cfg.data_seed + salt));
  };
  if (cfg.cache_dir.empty()) return generate();
  return data::load_or_generate(cache_name(cfg, topo.name(), count, salt),
                                count, generate);
}
}  // namespace

Fig2Datasets make_fig2_datasets(const Fig2Config& cfg) {
  util::Stopwatch watch;
  const topo::Topology geant2 = topo::geant2();
  const topo::Topology nsf = topo::nsfnet();
  Fig2Datasets ds;
  // Distinct salts keep train and test draws independent.
  ds.train = make_set(cfg, geant2, cfg.train_samples, 0);
  ds.geant2_test = make_set(cfg, geant2, cfg.geant2_test_samples, 1'000'000);
  ds.nsfnet_test = make_set(cfg, nsf, cfg.nsfnet_test_samples, 2'000'000);
  ds.generate_seconds = watch.seconds();
  return ds;
}

const Fig2Curve& Fig2Result::curve(const std::string& model,
                                   const std::string& topology) const {
  for (const auto& c : curves)
    if (c.model == model && c.topology == topology) return c;
  throw std::out_of_range("Fig2Result::curve: no such combination");
}

Fig2Result run_fig2(const Fig2Config& cfg) {
  Fig2Result result;

  Fig2Datasets ds = make_fig2_datasets(cfg);
  result.generate_seconds = ds.generate_seconds;
  if (cfg.verbose)
    util::log_info("fig2: datasets ready (", ds.train.size(), " train / ",
                   ds.geant2_test.size(), " geant2 test / ",
                   ds.nsfnet_test.size(), " nsfnet test; ",
                   ds.generate_seconds, "s)");

  // Scaler fitted on the training set only (and reused everywhere),
  // exactly as the paper's protocol requires.
  const data::Scaler scaler =
      data::Scaler::fit(ds.train.samples(), cfg.train.min_delivered);

  core::ExtendedRouteNet ext(cfg.model);
  core::RouteNet orig(cfg.model);

  util::Stopwatch train_watch;
  {
    core::Trainer trainer(ext, cfg.train);
    result.ext_history = trainer.fit(ds.train, scaler, &ds.geant2_test);
  }
  {
    core::Trainer trainer(orig, cfg.train);
    result.orig_history = trainer.fit(ds.train, scaler, &ds.geant2_test);
  }
  result.train_seconds = train_watch.seconds();

  auto add_curve = [&](const core::Model& model, const std::string& topo,
                       const data::Dataset& set) {
    Fig2Curve c;
    c.model = model.name();
    c.topology = topo;
    c.predictions =
        predict_dataset(model, set, scaler, cfg.train.min_delivered);
    c.summary = summarize(c.predictions);
    c.rel_errors = relative_errors(c.predictions);
    result.curves.push_back(std::move(c));
  };
  add_curve(ext, "geant2", ds.geant2_test);
  add_curve(orig, "geant2", ds.geant2_test);
  add_curve(ext, "nsfnet", ds.nsfnet_test);
  add_curve(orig, "nsfnet", ds.nsfnet_test);
  return result;
}

}  // namespace rnx::eval
