// Extension — jitter estimation (paper abstract: "delay or jitter").
//
// Trains the extended RouteNet with the jitter (delay-variance) label on
// the same queue-varied GEANT2 data used for Fig. 2 and reports accuracy
// on held-out GEANT2 and unseen NSFNET, next to a delay-trained model as
// the reference point.
#include <iostream>

#include "bench_common.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "util/table.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner("Extension: jitter as the regression target");

  eval::Fig2Config base = benchcfg::default_fig2_config();
  base.train_samples = benchcfg::scaled(benchcfg::quick_mode() ? 12 : 40);
  base.geant2_test_samples = benchcfg::scaled(benchcfg::quick_mode() ? 4 : 10);
  base.nsfnet_test_samples = benchcfg::scaled(benchcfg::quick_mode() ? 4 : 10);
  base.train.epochs = benchcfg::quick_mode() ? 8 : 25;
  base.model.state_dim = 10;
  base.model.iterations = 3;

  const eval::Fig2Datasets ds = eval::make_fig2_datasets(base);
  const data::Scaler scaler =
      data::Scaler::fit(ds.train.samples(), base.train.min_delivered);

  util::Table table({"target", "topology", "median APE", "MAPE",
                     "Pearson r"});
  for (const auto target :
       {core::PredictionTarget::kDelay, core::PredictionTarget::kJitter}) {
    core::ExtendedRouteNet model(base.model);
    core::TrainConfig tc = base.train;
    tc.target = target;
    core::Trainer trainer(model, tc);
    (void)trainer.fit(ds.train, scaler);
    const char* name =
        target == core::PredictionTarget::kDelay ? "delay" : "jitter";
    for (const auto* set : {&ds.geant2_test, &ds.nsfnet_test}) {
      const auto s = eval::summarize(eval::predict_dataset(
          model, *set, scaler, tc.min_delivered, target));
      table.add_row({name,
                     set == &ds.geant2_test ? "geant2" : "nsfnet (unseen)",
                     util::Table::cell(s.median_ape * 100, 2) + " %",
                     util::Table::cell(s.mape * 100, 2) + " %",
                     util::Table::cell(s.pearson, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: jitter is harder than delay (variance of\n"
               "a heavy-tailed quantity) but remains clearly predictive,\n"
               "as the RouteNet line of work reports.\n";
  return 0;
}
