// bench_serve_latency — serving-path latency/throughput vs offered load.
//
// Open-loop load generation (a pacing producer draws exponential
// inter-arrival gaps and feeds client threads through a
// util::BoundedQueue, so a slow server cannot slow the arrival process
// down — no coordinated omission) against a two-bundle ModelRegistry
// behind a threaded BatchScheduler.  Sweeps offered load as a fraction
// of the measured serial service rate and reports p50/p99 latency,
// completed throughput and shed fraction per point; emits
// BENCH_serve_latency.json for CI tracking (RNX_BENCH_QUICK honoured).
#include <chrono>
#include <cstdio>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "nn/kernels.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "topo/zoo.hpp"
#include "util/bounded_queue.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace rnx;

serve::ModelBundle make_bundle(const data::Dataset& ds,
                               std::uint64_t init_seed) {
  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.readout_hidden = 24;
  mc.iterations = 3;
  mc.init_seed = init_seed;
  serve::ModelBundle b;
  b.model = core::make_model(core::ModelKind::kExtended, mc);
  b.scaler = data::Scaler::fit(ds.samples(), 5);
  b.target = core::PredictionTarget::kDelay;
  b.min_delivered = 5;
  return b;
}

struct LoadPoint {
  double offered_rps = 0;
  double completed_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double shed_fraction = 0;
};

LoadPoint run_point(const serve::ModelRegistry& registry,
                    const std::vector<std::string>& names,
                    const data::Dataset& ds, double offered_rps,
                    std::size_t requests, std::size_t clients) {
  serve::SchedulerConfig cfg;
  cfg.max_queue_depth = 256;
  cfg.max_batch_samples = 16;
  cfg.max_linger = std::chrono::microseconds(100);
  serve::BatchScheduler sched(cfg, registry.pool());

  util::BoundedQueue<std::size_t> feed(256);
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::size_t> shed(clients, 0);

  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c)
    workers.emplace_back([&, c] {
      while (const std::optional<std::size_t> idx = feed.pop()) {
        const std::string& name = names[*idx % names.size()];
        const data::Sample& sample = ds[*idx % ds.size()];
        const auto t0 = std::chrono::steady_clock::now();
        serve::Submitted sub =
            sched.submit(registry, name, std::span(&sample, 1));
        if (!sub.admitted()) {
          ++shed[c];
          continue;
        }
        try {
          (void)sub.result.get();
        } catch (const std::exception&) {
          ++shed[c];  // failed requests leave the latency sample too
          continue;
        }
        const auto t1 = std::chrono::steady_clock::now();
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });

  // Open-loop pacing: the arrival clock never waits for the server.
  util::RngStream arrivals(97);
  util::Stopwatch wall;
  std::size_t gen_dropped = 0;
  auto next_arrival = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(arrivals.exponential(1.0 / offered_rps)));
    std::this_thread::sleep_until(next_arrival);
    if (!feed.try_push(i)) ++gen_dropped;  // feed full: shed at the door
  }
  feed.close();
  for (std::thread& w : workers) w.join();
  const double wall_s = wall.seconds();

  std::vector<double> lat;
  std::size_t total_shed = gen_dropped;
  for (std::size_t c = 0; c < clients; ++c) {
    lat.insert(lat.end(), latencies[c].begin(), latencies[c].end());
    total_shed += shed[c];
  }
  LoadPoint pt;
  pt.offered_rps = offered_rps;
  pt.completed_rps =
      wall_s > 0 ? static_cast<double>(lat.size()) / wall_s : 0.0;
  pt.p50_us = lat.empty() ? 0.0 : util::percentile(lat, 50);
  pt.p99_us = lat.empty() ? 0.0 : util::percentile(lat, 99);
  pt.shed_fraction =
      static_cast<double>(total_shed) / static_cast<double>(requests);
  return pt;
}

}  // namespace

int main() {
  benchcfg::print_banner("serve latency vs offered load");
  benchcfg::BenchResult result("serve_latency");
  std::printf("kernels: %s (%s)\n", rnx::nn::kernels::active().name,
              rnx::nn::kernels::dispatch_reason());
  result.note("isa", rnx::nn::kernels::active().name);
  result.note("dispatch_reason", rnx::nn::kernels::dispatch_reason());
  const bool quick = benchcfg::quick_mode();

  data::GeneratorConfig gen;
  gen.target_packets = quick ? 20'000 : 60'000;
  const data::Dataset ds(data::generate_dataset(
      topo::nsfnet(), quick ? 4 : 8, gen, 41));

  serve::ModelRegistry registry(/*threads=*/0);
  registry.add("delay_a", make_bundle(ds, 5));
  registry.add("delay_b", make_bundle(ds, 6));
  const std::vector<std::string> names = registry.names();

  // Serial service rate: the per-request cost with no batching at all.
  const serve::InferenceEngine& probe = registry.at("delay_a");
  util::Stopwatch probe_watch;
  constexpr std::size_t kProbe = 20;
  for (std::size_t i = 0; i < kProbe; ++i)
    (void)probe.predict(ds[i % ds.size()]);
  const double service_rps =
      static_cast<double>(kProbe) / probe_watch.seconds();
  result.add("serial_service_rps", service_rps);
  std::printf("serial service rate: %.0f req/s\n", service_rps);

  const std::size_t requests = benchcfg::scaled(quick ? 80 : 400);
  const std::size_t clients = 4;
  const std::vector<double> load_fractions =
      quick ? std::vector<double>{0.25, 0.6, 1.5}
            : std::vector<double>{0.25, 0.5, 0.9, 1.5};

  std::printf("%10s %12s %12s %10s %10s %8s\n", "load", "offered",
              "completed", "p50_us", "p99_us", "shed");
  for (const double f : load_fractions) {
    const LoadPoint pt =
        run_point(registry, names, ds, f * service_rps, requests, clients);
    std::printf("%9.2fx %12.1f %12.1f %10.1f %10.1f %7.1f%%\n", f,
                pt.offered_rps, pt.completed_rps, pt.p50_us, pt.p99_us,
                100.0 * pt.shed_fraction);
    char key[64];
    std::snprintf(key, sizeof(key), "load_%.2fx", f);
    result.add(std::string(key) + "_offered_rps", pt.offered_rps);
    result.add(std::string(key) + "_completed_rps", pt.completed_rps);
    result.add(std::string(key) + "_p50_us", pt.p50_us);
    result.add(std::string(key) + "_p99_us", pt.p99_us);
    result.add(std::string(key) + "_shed_fraction", pt.shed_fraction);
  }

  result.set_config("nsfnet replay, 2 bundles, clients=4, batch<=16, "
                    "linger=100us, depth=256, open-loop exponential arrivals");
  result.write();
  return 0;
}
