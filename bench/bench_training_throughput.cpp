// P1 — end-to-end training and inference throughput of both
// architectures on a real GEANT2 sample (552 paths): one full
// forward+backward+Adam step, and inference-only forward.
#include <benchmark/benchmark.h>

#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;

struct Fixture {
  data::Sample sample;
  data::Scaler scaler;
  Fixture() : scaler(make()) {}
  data::Scaler make() {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    util::RngStream rng(13);
    sample = data::generate_sample(topo::geant2(), gen, rng);
    return data::Scaler::fit({&sample, 1});
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

template <typename Model>
void train_step_bench(benchmark::State& state) {
  core::ModelConfig mc;
  mc.state_dim = static_cast<std::size_t>(state.range(0));
  Model model(mc);
  std::vector<nn::Var> params;
  for (auto& [n, v] : model.named_params()) params.push_back(v);
  nn::Adam opt(params, 1e-3);
  for (auto _ : state) {
    opt.zero_grad();
    nn::Var loss =
        core::Trainer::sample_loss(model, fixture().sample, fixture().scaler, 10);
    loss.backward();
    opt.clip_global_norm(10.0);
    opt.step();
    benchmark::DoNotOptimize(loss.value().item());
  }
  state.SetLabel("H=" + std::to_string(state.range(0)) +
                 ", full sample fwd+bwd+Adam");
}

void BM_TrainStepOriginal(benchmark::State& state) {
  train_step_bench<core::RouteNet>(state);
}
BENCHMARK(BM_TrainStepOriginal)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_TrainStepExtended(benchmark::State& state) {
  train_step_bench<core::ExtendedRouteNet>(state);
}
BENCHMARK(BM_TrainStepExtended)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

template <typename Model>
void inference_bench(benchmark::State& state) {
  core::ModelConfig mc;
  mc.state_dim = 16;
  const Model model(mc);
  const nn::NoGradGuard guard;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        model.forward(fixture().sample, fixture().scaler));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fixture().sample.paths.size()));
}

void BM_InferenceOriginal(benchmark::State& state) {
  inference_bench<core::RouteNet>(state);
}
BENCHMARK(BM_InferenceOriginal)->Unit(benchmark::kMillisecond);

void BM_InferenceExtended(benchmark::State& state) {
  inference_bench<core::ExtendedRouteNet>(state);
}
BENCHMARK(BM_InferenceExtended)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
