// Figure 1 — the extended message-passing architecture.
//
// Fig. 1 is a diagram; its code realization is the message-passing plan
// and the three update functions.  This bench (a) audits the structure —
// interleaving, aggregation fan-in — on a real GEANT2 sample, printing
// the quantities the diagram depicts, and (b) times one forward pass
// phase by phase for both architectures.
#include <iostream>

#include "bench_common.hpp"
#include "core/plan.hpp"
#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "data/generator.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner("Figure 1: extended message-passing structure");

  data::GeneratorConfig gen;
  gen.target_packets = 30'000;
  util::RngStream rng(1);
  const data::Sample sample =
      data::generate_sample(topo::geant2(), gen, rng);
  const data::Scaler scaler = data::Scaler::fit({&sample, 1});

  const core::MpPlan orig_plan = core::build_plan(sample, false);
  const core::MpPlan ext_plan = core::build_plan(sample, true);

  std::size_t ext_node_positions = 0, ext_link_positions = 0;
  for (std::size_t i = 0; i < ext_plan.num_positions(); ++i)
    (ext_plan.position(i).is_node ? ext_node_positions : ext_link_positions) +=
        1;
  const std::size_t ext_elems = ext_plan.total_entries();
  const std::size_t orig_elems = orig_plan.total_entries();

  util::Table structure({"quantity", "original", "extended"});
  structure
      .add_row({"path entities", util::Table::cell(orig_plan.num_paths),
                util::Table::cell(ext_plan.num_paths)})
      .add_row({"link entities", util::Table::cell(orig_plan.num_links),
                util::Table::cell(ext_plan.num_links)})
      .add_row({"node entities", "0 (not modelled)",
                util::Table::cell(ext_plan.num_nodes)})
      .add_row({"RNN_P sequence positions",
                util::Table::cell(orig_plan.num_positions()),
                util::Table::cell(ext_plan.num_positions())})
      .add_row({"  of which node positions", "0",
                util::Table::cell(ext_node_positions)})
      .add_row({"  of which link positions",
                util::Table::cell(orig_plan.num_positions()),
                util::Table::cell(ext_link_positions)})
      .add_row({"sequence elements (sum over paths)",
                util::Table::cell(orig_elems), util::Table::cell(ext_elems)})
      .add_row({"path->node incidences (RNN_N fan-in)", "0",
                util::Table::cell(ext_plan.inc_path_rows.size())});
  structure.print(std::cout);

  // The interleaving invariant of Fig. 1: node1-link1-node2-link2-...
  bool interleaved = true;
  for (std::size_t i = 0; i < ext_plan.num_positions(); ++i)
    interleaved &= (ext_plan.position(i).is_node == (i % 2 == 0));
  std::cout << "\ninterleaving node-link-node-link holds: "
            << (interleaved ? "YES" : "NO") << "\n\n";

  // -- per-architecture forward timing -----------------------------------
  core::ModelConfig mc;
  mc.state_dim = 16;
  mc.iterations = 4;
  const core::RouteNet orig(mc);
  const core::ExtendedRouteNet ext(mc);

  auto time_forward = [&](const core::Model& m) {
    const nn::NoGradGuard guard;
    util::Stopwatch w;
    constexpr int kReps = 20;
    for (int i = 0; i < kReps; ++i) (void)m.forward(sample, scaler);
    return w.seconds() / kReps * 1e3;
  };
  util::Table timing({"model", "forward (ms/sample)", "overhead vs original"});
  const double t_orig = time_forward(orig);
  const double t_ext = time_forward(ext);
  timing
      .add_row({"routenet", util::Table::cell(t_orig, 3), "1.00x"})
      .add_row({"routenet-ext", util::Table::cell(t_ext, 3),
                util::Table::cell(t_ext / t_orig, 2) + "x"});
  timing.print(std::cout);
  std::cout << "\nnode entity cost: the interleaved sequence doubles RNN_P "
               "positions;\nmeasured overhead should sit near 2x.\n";
  return 0;
}
