// Train small, serve huge (DESIGN.md §G): train an extended RouteNet
// with scale-invariant features on a mix of small Barabási–Albert
// topologies (<= 50 nodes), then evaluate on ever larger BA graphs —
// up to 300 nodes — that the model has never seen at any scale.  The
// paper's generalization experiment holds network size roughly fixed;
// this probes the orthogonal axis the compact arena plans + plan-cache
// byte budget exist for: does accuracy survive a 6x size extrapolation,
// and how much plan memory does serving the big graphs actually take?
//
// Evaluation runs with a plan cache attached under a fixed byte budget,
// so the emitted peak/eviction numbers are exactly what an operator
// sizing --plan-cache-mb would observe.  BENCH_generalization_size.json
// carries the MRE-vs-size curve plus per-size plan bytes and the cache
// peak.
#include <cstddef>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "topo/zoo.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner(
      "Extension: train small, serve huge (size generalization)");
  benchcfg::BenchResult result("generalization_size");
  const bool quick = benchcfg::quick_mode();

  data::GeneratorConfig gen;
  gen.target_packets = quick ? 40'000 : 120'000;
  gen.util_lo = 0.5;
  gen.util_hi = 0.9;

  // Mixed small-topology training corpus: BA graphs at four sizes, all
  // well under the evaluation range so every eval point extrapolates.
  const std::size_t per_topo = benchcfg::scaled(quick ? 3 : 10);
  std::vector<data::Sample> pool;
  for (const std::size_t n : {std::size_t{20}, std::size_t{30},
                              std::size_t{40}, std::size_t{50}}) {
    util::RngStream trng(9'000 + n);
    const topo::Topology topo = topo::barabasi_albert(n, 2, trng);
    std::vector<data::Sample> s =
        data::generate_dataset(topo, per_topo, gen, 7'000'000 + n);
    for (data::Sample& smp : s) pool.push_back(std::move(smp));
  }
  const data::Dataset train(std::move(pool));

  core::ModelConfig mc;
  mc.state_dim = 10;
  mc.iterations = 3;
  // The tentpole mode: dimensionless inputs, so nothing about the
  // fitted scaler's traffic/capacity moments anchors the model to the
  // training sizes.
  mc.scale_invariant_features = true;

  core::TrainConfig tc;
  tc.epochs = quick ? 8 : 25;
  tc.batch_samples = 4;
  tc.lr = 2e-3;
  tc.verbose = false;

  const data::Scaler scaler =
      data::Scaler::fit(train.samples(), tc.min_delivered);
  core::ExtendedRouteNet model(mc);
  core::Trainer trainer(model, tc);
  std::cout << "training on " << train.size()
            << " samples over BA{20,30,40,50}...\n";
  (void)trainer.fit(train, scaler);

  // Serve-side evaluation: fixed byte budget, like rnx_predict
  // --plan-cache-mb.  Peak bytes tell the operator what an uncapped run
  // would have held resident.
  core::PlanCache cache((quick ? 4u : 8u) * 1024 * 1024);
  model.set_plan_cache(&cache);

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{60, 100}
            : std::vector<std::size_t>{60, 120, 200, 300};
  const std::size_t eval_n = quick ? 2 : 3;

  util::Table table({"BA nodes", "paths/sample", "MRE", "median APE",
                     "Pearson r", "plan bytes"});
  for (const std::size_t n : sizes) {
    util::RngStream trng(11'000 + n);
    const topo::Topology topo = topo::barabasi_albert(n, 2, trng);
    const data::Dataset test(
        data::generate_dataset(topo, eval_n, gen, 8'000'000 + n));
    const auto s = eval::summarize(
        eval::predict_dataset(model, test, scaler, tc.min_delivered));
    // Plan footprint at this size (extended plans: node+link interleave).
    const std::size_t plan_bytes = core::build_plan(test[0], true).bytes();
    table.add_row({std::to_string(n), std::to_string(n * (n - 1)),
                   util::Table::cell(s.mape * 100, 2) + " %",
                   util::Table::cell(s.median_ape * 100, 2) + " %",
                   util::Table::cell(s.pearson, 3),
                   std::to_string(plan_bytes)});
    // Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
    // positive in the inlined char_traits copy (PR105651).
    std::string tag = "n";
    tag += std::to_string(n);
    result.add(tag + "_mre", s.mape);
    result.add(tag + "_median_ape", s.median_ape);
    result.add(tag + "_pearson", s.pearson);
    result.add(tag + "_plan_bytes", static_cast<double>(plan_bytes));
    // Each size's Dataset dies here and the next one may reuse its heap
    // addresses; the cache keys by sample address, so drop residency
    // (counters and peak survive clear() — DESIGN.md §G).
    cache.clear();
  }
  model.set_plan_cache(nullptr);
  table.print(std::cout);

  const core::PlanCache::Stats cs = cache.stats();
  std::cout << "\nplan cache: peak " << cs.peak_bytes << " bytes, "
            << cs.evictions << " evictions under "
            << (quick ? 4 : 8) << " MiB budget\n"
            << "expected shape: MRE degrades gracefully with size (the\n"
               "scale-invariant inputs keep features in-distribution);\n"
               "plan bytes grow linearly in total path length, not in\n"
               "paths x links.\n";
  result.add("plan_cache_peak_bytes", static_cast<double>(cs.peak_bytes));
  result.add("plan_cache_evictions", static_cast<double>(cs.evictions));
  result.set_config(
      "ExtendedRouteNet(state_dim 10, iters 3, scale-invariant), " +
      std::to_string(train.size()) + " train samples on BA{20..50}, " +
      std::to_string(tc.epochs) + " epochs; eval on BA up to " +
      std::to_string(sizes.back()) + " nodes, plan cache " +
      std::to_string(quick ? 4 : 8) + " MiB");
  result.write();
  return 0;
}
