// T-claim — "accuracy comparable to packet-level simulators with a very
// low computational cost" (paper §1).
//
// google-benchmark comparison of the per-scenario cost of (a) answering a
// delay query with one extended-RouteNet forward pass vs (b) running the
// packet-level simulation that produces the ground truth, at several
// simulation fidelities.  The GNN's cost is fixed; simulation cost grows
// with the packet budget, so the speedup factor is what the paper's
// claim is about.
#include <benchmark/benchmark.h>

#include "core/routenet_ext.hpp"
#include "data/generator.hpp"
#include "sim/simulator.hpp"
#include "topo/routing.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;

struct Scenario {
  topo::Topology topo = topo::geant2();
  topo::RoutingScheme routing = topo::hop_count_routing(topo);
  topo::TrafficMatrix tm{24};
  data::Sample sample;
  data::Scaler scaler;

  Scenario() : scaler(make()) {}

  data::Scaler make() {
    util::RngStream rng(7);
    topo::randomize_queue_sizes(topo, 0.5, rng);
    tm = topo::uniform_traffic(24, 0.5, 1.0, rng);
    topo::scale_to_max_utilization(tm, topo, routing, 0.8);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    util::RngStream srng(7);
    sample = data::generate_sample(topo::geant2(), gen, srng);
    return data::Scaler::fit({&sample, 1});
  }
};

Scenario& scenario() {
  static Scenario s;
  return s;
}

void BM_RouteNetExtInference(benchmark::State& state) {
  util::set_log_level(util::LogLevel::kWarn);
  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.iterations = static_cast<std::size_t>(state.range(0));
  const core::ExtendedRouteNet model(mc);
  const nn::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.forward(scenario().sample, scenario().scaler));
  }
  state.SetLabel("one full 552-path delay query, T=" +
                 std::to_string(state.range(0)));
}
BENCHMARK(BM_RouteNetExtInference)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PacketSimulation(benchmark::State& state) {
  util::set_log_level(util::LogLevel::kWarn);
  auto& sc = scenario();
  const auto packets = static_cast<double>(state.range(0));
  const double total_pps = sc.tm.total() / 8000.0;
  sim::SimConfig cfg;
  cfg.window_s = packets / total_pps;
  cfg.warmup_s = 0.1 * cfg.window_s;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim(sc.topo, sc.routing, sc.tm, cfg);
    const sim::SimResult res = sim.run();
    events += res.total_events;
    benchmark::DoNotOptimize(res.paths.data());
  }
  state.SetLabel(std::to_string(state.range(0)) + " pkts (ground truth)");
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketSimulation)
    ->Arg(20'000)->Arg(60'000)->Arg(200'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
