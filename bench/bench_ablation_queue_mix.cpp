// Ablation A2 — queue-size observability vs queue-size prevalence.
//
// Sweeps the fraction of 1-packet-queue devices in the data.  With no
// queue variation (p=0) the node feature is uninformative and the two
// architectures should tie; as variation grows, the original RouteNet
// faces irreducible ambiguity (identical traffic/routing inputs map to
// different delays) while the extended model can resolve it.  This is
// the mechanism behind the Fig. 2 gap.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner("Ablation A2: fraction of tiny-queue devices");

  util::Table table({"P(tiny queue)", "orig median APE", "ext median APE",
                     "gap (orig-ext)", "orig r", "ext r"});
  for (const double p : {0.0, 0.25, 0.5, 0.75}) {
    eval::Fig2Config cfg = benchcfg::default_fig2_config();
    cfg.train_samples = benchcfg::scaled(benchcfg::quick_mode() ? 10 : 32);
    cfg.geant2_test_samples =
        benchcfg::scaled(benchcfg::quick_mode() ? 4 : 8);
    cfg.nsfnet_test_samples = 1;  // not evaluated in this ablation
    cfg.train.epochs = benchcfg::quick_mode() ? 8 : 20;
    cfg.model.state_dim = 10;
    cfg.model.iterations = 3;
    cfg.gen.p_tiny_queue = p;
    cfg.data_seed = 3000 + static_cast<std::uint64_t>(p * 100);

    const eval::Fig2Result res = eval::run_fig2(cfg);
    const auto& ext = res.curve("routenet-ext", "geant2").summary;
    const auto& orig = res.curve("routenet", "geant2").summary;
    table.add_row(
        {util::Table::cell(p, 2),
         util::Table::cell(orig.median_ape * 100, 2) + " %",
         util::Table::cell(ext.median_ape * 100, 2) + " %",
         util::Table::cell((orig.median_ape - ext.median_ape) * 100, 2) +
             " pp",
         util::Table::cell(orig.pearson, 3),
         util::Table::cell(ext.pearson, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: the gap opens as queue variation grows;\n"
               "at P=0 both models see a queue-homogeneous network and tie.\n";
  return 0;
}
