// Shared configuration for the experiment benches.
//
// Every training-pipeline bench honours the RNX_BENCH_QUICK environment
// variable (set to 1 for a fast smoke-scale run) and RNX_BENCH_SCALE
// (a float multiplier on sample counts, for pushing towards paper scale).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/experiment.hpp"
#include "util/log.hpp"

namespace rnx::benchcfg {

inline bool quick_mode() {
  const char* v = std::getenv("RNX_BENCH_QUICK");
  return v != nullptr && std::string(v) == "1";
}

inline double scale_factor() {
  const char* v = std::getenv("RNX_BENCH_SCALE");
  return v != nullptr ? std::atof(v) : 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const double s = scale_factor();
  return static_cast<std::size_t>(n * (s > 0.0 ? s : 1.0));
}

/// The default §3 protocol settings shared by the training benches:
/// queue-varied GEANT2/NSFNET scenarios in the load regime where queueing
/// dominates, sample counts scaled for CPU training.
inline eval::Fig2Config default_fig2_config() {
  eval::Fig2Config cfg;
  cfg.train_samples = scaled(quick_mode() ? 24 : 100);
  cfg.geant2_test_samples = scaled(quick_mode() ? 6 : 25);
  cfg.nsfnet_test_samples = scaled(quick_mode() ? 6 : 25);
  cfg.gen.target_packets = quick_mode() ? 60'000 : 200'000;
  cfg.gen.util_lo = 0.7;
  cfg.gen.util_hi = 0.95;
  cfg.model.state_dim = 12;
  cfg.model.readout_hidden = 24;
  cfg.model.iterations = quick_mode() ? 3 : 4;
  cfg.train.epochs = quick_mode() ? 15 : 40;
  cfg.train.batch_samples = 4;
  cfg.train.lr = 2e-3;
  cfg.train.verbose = false;
  cfg.cache_dir = "data";
  return cfg;
}

inline void print_banner(const std::string& title) {
  util::set_log_level(util::LogLevel::kWarn);
  std::cout << "==== " << title << (quick_mode() ? "  [QUICK MODE]" : "")
            << " ====\n";
}

}  // namespace rnx::benchcfg
