// Shared configuration for the experiment benches.
//
// Every training-pipeline bench honours the RNX_BENCH_QUICK environment
// variable (set to 1 for a fast smoke-scale run) and RNX_BENCH_SCALE
// (a float multiplier on sample counts, for pushing towards paper scale).
//
// BenchResult emits a machine-readable BENCH_<name>.json next to the
// binary (or under RNX_BENCH_OUT) so CI can track the perf trajectory
// across PRs instead of scraping stdout tables.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "eval/experiment.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace rnx::benchcfg {

inline bool quick_mode() {
  const char* v = std::getenv("RNX_BENCH_QUICK");
  return v != nullptr && std::string(v) == "1";
}

inline double scale_factor() {
  const char* v = std::getenv("RNX_BENCH_SCALE");
  return v != nullptr ? std::atof(v) : 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const double s = scale_factor();
  return static_cast<std::size_t>(n * (s > 0.0 ? s : 1.0));
}

/// The default §3 protocol settings shared by the training benches:
/// queue-varied GEANT2/NSFNET scenarios in the load regime where queueing
/// dominates, sample counts scaled for CPU training.
inline eval::Fig2Config default_fig2_config() {
  eval::Fig2Config cfg;
  cfg.train_samples = scaled(quick_mode() ? 24 : 100);
  cfg.geant2_test_samples = scaled(quick_mode() ? 6 : 25);
  cfg.nsfnet_test_samples = scaled(quick_mode() ? 6 : 25);
  cfg.gen.target_packets = quick_mode() ? 60'000 : 200'000;
  cfg.gen.util_lo = 0.7;
  cfg.gen.util_hi = 0.95;
  cfg.model.state_dim = 12;
  cfg.model.readout_hidden = 24;
  cfg.model.iterations = quick_mode() ? 3 : 4;
  cfg.train.epochs = quick_mode() ? 15 : 40;
  cfg.train.batch_samples = 4;
  cfg.train.lr = 2e-3;
  cfg.train.verbose = false;
  cfg.cache_dir = "data";
  return cfg;
}

inline void print_banner(const std::string& title) {
  util::set_log_level(util::LogLevel::kWarn);
  std::cout << "==== " << title << (quick_mode() ? "  [QUICK MODE]" : "")
            << " ====\n";
}

/// Collects (metric, value) pairs and writes BENCH_<name>.json on
/// write().  Metrics are flat doubles (samples/sec, speedups, wall
/// seconds); `config` is a free-form description of the run settings.
class BenchResult {
 public:
  explicit BenchResult(std::string name) : name_(std::move(name)) {}

  void set_config(std::string config) { config_ = std::move(config); }
  void add(const std::string& metric, double value) {
    metrics_.emplace_back(metric, value);
  }
  /// Free-form string facts about the run (e.g. the detected kernel ISA);
  /// emitted as a flat "notes" object of strings in the json.
  void note(const std::string& key, const std::string& value) {
    notes_.emplace_back(key, value);
  }

  /// Total wall seconds since construction is stamped automatically.
  void write() const {
    const char* out_dir = std::getenv("RNX_BENCH_OUT");
    const std::string path =
        (out_dir != nullptr ? std::string(out_dir) + "/" : std::string()) +
        "BENCH_" + name_ + ".json";
    std::ofstream f(path);
    if (!f) {
      util::log_warn("BenchResult: cannot write ", path);
      return;
    }
    f << "{\n  \"bench\": \"" << name_ << "\",\n  \"quick\": "
      << (quick_mode() ? "true" : "false") << ",\n  \"config\": \""
      << escaped(config_) << "\",\n  \"wall_seconds\": " << watch_.seconds();
    if (!notes_.empty()) {
      f << ",\n  \"notes\": {";
      for (std::size_t i = 0; i < notes_.size(); ++i) {
        f << (i ? "," : "") << "\n    \"" << escaped(notes_[i].first)
          << "\": \"" << escaped(notes_[i].second) << "\"";
      }
      f << "\n  }";
    }
    f << ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      f << (i ? "," : "") << "\n    \"" << escaped(metrics_[i].first)
        << "\": " << metrics_[i].second;
    }
    f << "\n  }\n}\n";
    std::cout << "wrote " << path << "\n";
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::string config_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> notes_;
  util::Stopwatch watch_;
};

}  // namespace rnx::benchcfg
