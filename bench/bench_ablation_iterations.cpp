// Ablation A1 — message-passing depth T.
//
// RouteNet's accuracy depends on how many rounds of path<->link<->node
// message passing are run before the readout (DESIGN.md design decision).
// This bench trains the extended architecture at several T on the same
// GEANT2 dataset and reports held-out accuracy and per-sample cost.
// Expected shape: large gain from T=1 to T~3-4, then diminishing returns
// at growing cost.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner("Ablation A1: message-passing iterations (T)");

  eval::Fig2Config base = benchcfg::default_fig2_config();
  base.train_samples = benchcfg::scaled(benchcfg::quick_mode() ? 12 : 40);
  base.geant2_test_samples = benchcfg::scaled(benchcfg::quick_mode() ? 4 : 10);
  base.nsfnet_test_samples = 1;  // unused here, keep generation minimal
  base.train.epochs = benchcfg::quick_mode() ? 8 : 25;
  base.model.state_dim = 10;

  const eval::Fig2Datasets ds = eval::make_fig2_datasets(base);
  const data::Scaler scaler =
      data::Scaler::fit(ds.train.samples(), base.train.min_delivered);

  util::Table table({"T", "train loss", "test median APE", "test MAPE",
                     "train s/epoch", "inference ms/sample"});
  for (const std::size_t t : {1u, 2u, 4u, 6u}) {
    core::ModelConfig mc = base.model;
    mc.iterations = t;
    core::ExtendedRouteNet model(mc);
    core::Trainer trainer(model, base.train);
    util::Stopwatch w;
    const auto history = trainer.fit(ds.train, scaler);
    const double per_epoch = w.seconds() / static_cast<double>(history.size());

    const auto pp = eval::predict_dataset(model, ds.geant2_test, scaler,
                                          base.train.min_delivered);
    const auto summary = eval::summarize(pp);

    const nn::NoGradGuard guard;
    util::Stopwatch infer;
    constexpr int kReps = 10;
    for (int i = 0; i < kReps; ++i)
      (void)model.forward(ds.geant2_test[0], scaler);
    table.add_row({util::Table::cell(t),
                   util::Table::cell(history.back().train_loss, 4),
                   util::Table::cell(summary.median_ape * 100, 2) + " %",
                   util::Table::cell(summary.mape * 100, 2) + " %",
                   util::Table::cell(per_epoch, 2),
                   util::Table::cell(infer.seconds() / kReps * 1e3, 2)});
  }
  table.print(std::cout);
  return 0;
}
