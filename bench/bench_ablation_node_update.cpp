// Ablation A3 — node-update rule variants.
//
// The paper specifies the node update as an element-wise *sum* of the
// states of the paths traversing the node (§2).  We compare:
//   (a) sum of path states, mean-normalized (library default — the
//       normalization makes aggregation magnitudes topology-size free,
//       which matters for transfer to the 14-node NSFNET);
//   (b) plain sum of path states (the paper's literal rule);
//   (c) positional messages (links' aggregation style applied to nodes).
// Reported on both the seen (GEANT2) and unseen (NSFNET) topology.
#include <iostream>

#include "bench_common.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "util/table.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner("Ablation A3: node-update rule");

  eval::Fig2Config base = benchcfg::default_fig2_config();
  base.train_samples = benchcfg::scaled(benchcfg::quick_mode() ? 12 : 40);
  base.geant2_test_samples = benchcfg::scaled(benchcfg::quick_mode() ? 4 : 10);
  base.nsfnet_test_samples = benchcfg::scaled(benchcfg::quick_mode() ? 4 : 10);
  base.train.epochs = benchcfg::quick_mode() ? 8 : 25;
  base.model.state_dim = 10;
  base.model.iterations = 3;

  const eval::Fig2Datasets ds = eval::make_fig2_datasets(base);
  const data::Scaler scaler =
      data::Scaler::fit(ds.train.samples(), base.train.min_delivered);

  struct Variant {
    std::string name;
    core::NodeUpdateRule rule;
    bool mean;
  };
  const std::vector<Variant> variants = {
      {"sum of path states, mean-normalized",
       core::NodeUpdateRule::kSumPathStates, true},
      {"sum of path states (paper literal)",
       core::NodeUpdateRule::kSumPathStates, false},
      {"positional messages", core::NodeUpdateRule::kPositionalMessages,
       true},
  };

  util::Table table({"node update", "geant2 median APE", "nsfnet median APE",
                     "nsfnet r"});
  for (const auto& v : variants) {
    core::ModelConfig mc = base.model;
    mc.node_rule = v.rule;
    mc.node_mean_aggregation = v.mean;
    core::ExtendedRouteNet model(mc);
    core::Trainer trainer(model, base.train);
    (void)trainer.fit(ds.train, scaler);
    const auto g = eval::summarize(eval::predict_dataset(
        model, ds.geant2_test, scaler, base.train.min_delivered));
    const auto n = eval::summarize(eval::predict_dataset(
        model, ds.nsfnet_test, scaler, base.train.min_delivered));
    table.add_row({v.name,
                   util::Table::cell(g.median_ape * 100, 2) + " %",
                   util::Table::cell(n.median_ape * 100, 2) + " %",
                   util::Table::cell(n.pearson, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: all variants are comparable on the training\n"
               "topology; mean normalization wins on the unseen topology\n"
               "because sum magnitudes scale with path count (552 vs 182).\n";
  return 0;
}
