// §S — simulator throughput across the scenario engine's scheduling
// policies and traffic processes.
//
// The DES is the data-generation bottleneck, so the cost of the new
// schedulers (strict priority, DRR) and arrival processes (CBR, on-off)
// directly bounds how fast mixed-scenario datasets can be produced.
// Measures events/s and packets/s per (policy, traffic) combination on a
// queue-varied NSFNET at high load, plus a mixed-scenario dataset
// generation rate, and emits BENCH_scenario_mix.json via bench_common.
#include <iostream>

#include "bench_common.hpp"
#include "data/generator.hpp"
#include "sim/simulator.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace rnx;

struct Throughput {
  double events_per_s = 0.0;
  double packets_per_s = 0.0;
};

Throughput measure(sim::SchedulerPolicy policy, sim::TrafficProcess traffic,
                   std::uint64_t packets_per_run, int runs) {
  topo::Topology topo = topo::nsfnet();
  util::RngStream rng(11);
  topo::randomize_queue_sizes(topo, 0.5, rng);
  const topo::RoutingScheme rs = topo::hop_count_routing(topo);
  topo::TrafficMatrix tm =
      topo::uniform_traffic(topo.num_nodes(), 0.5, 1.0, rng);
  topo::scale_to_max_utilization(tm, topo, rs, 0.9);
  const double total_pps = tm.total() / 8000.0;

  sim::SimConfig cfg;
  cfg.window_s = static_cast<double>(packets_per_run) / total_pps;
  cfg.warmup_s = 0.0;
  cfg.scenario.policy = policy;
  cfg.scenario.traffic = traffic;
  cfg.scenario.priority_classes = 2;
  cfg.flow_class = [](topo::NodeId s, topo::NodeId d) -> std::uint32_t {
    return (s + d) % 2;
  };

  std::uint64_t events = 0, packets = 0;
  util::Stopwatch watch;
  for (int r = 0; r < runs; ++r) {
    cfg.seed = static_cast<std::uint64_t>(r + 1);
    sim::Simulator sim(topo, rs, tm, cfg);
    const sim::SimResult res = sim.run();
    events += res.total_events;
    for (const auto& p : res.paths) packets += p.generated;
  }
  const double secs = watch.seconds();
  return {static_cast<double>(events) / secs,
          static_cast<double>(packets) / secs};
}

}  // namespace

int main() {
  benchcfg::print_banner("scenario mix: simulator throughput per policy");
  const bool quick = benchcfg::quick_mode();
  const std::uint64_t packets = quick ? 20'000 : 200'000;
  const int runs = quick ? 2 : 5;

  benchcfg::BenchResult result("scenario_mix");
  result.set_config("nsfnet, util 0.9, 2 classes, " +
                    std::to_string(packets) + " pkts x " +
                    std::to_string(runs) + " runs per combination");

  util::Table table({"policy", "traffic", "events/s", "pkts/s"});
  for (const auto policy :
       {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kStrictPriority,
        sim::SchedulerPolicy::kDrr}) {
    for (const auto traffic :
         {sim::TrafficProcess::kPoisson, sim::TrafficProcess::kCbr,
          sim::TrafficProcess::kOnOff}) {
      const Throughput t = measure(policy, traffic, packets, runs);
      const std::string key = std::string(sim::to_string(policy)) + "_" +
                              std::string(sim::to_string(traffic));
      result.add(key + "_events_per_s", t.events_per_s);
      result.add(key + "_pkts_per_s", t.packets_per_s);
      table.add_row({std::string(sim::to_string(policy)),
                     std::string(sim::to_string(traffic)),
                     util::Table::cell(t.events_per_s, 0),
                     util::Table::cell(t.packets_per_s, 0)});
    }
  }
  table.print(std::cout);

  // Mixed-scenario dataset generation rate (samples/s end to end).
  data::GeneratorConfig gen;
  gen.mixed_scenarios = true;
  gen.scenario.priority_classes = 2;
  gen.target_packets = quick ? 5'000 : 20'000;
  const std::size_t count = benchcfg::scaled(quick ? 4 : 12);
  util::Stopwatch watch;
  const auto ds = data::generate_dataset(topo::nsfnet(), count, gen, 31);
  const double gen_rate = static_cast<double>(ds.size()) / watch.seconds();
  std::cout << "mixed-scenario datagen: " << gen_rate << " samples/s\n";
  result.add("mixed_datagen_samples_per_s", gen_rate);

  result.write();
  return 0;
}
