// Figure 2 — the paper's headline result.
//
// Reproduces §3 end to end: generate queue-varied datasets with the
// packet-level simulator (GEANT2 train/test, NSFNET test), train the
// original and the extended RouteNet on the same GEANT2 data, and print
// the CDF of the relative error of delay predictions for the four
// (model, topology) combinations, plus a percentile summary table.
// Writes fig2_cdf.csv for plotting.
//
// Scaled protocol (see DESIGN.md): sample counts are laptop-scale, but
// the training/evaluation topology split and the queue-size scenario are
// exactly the paper's.  Expectation: the extended curves dominate
// (higher CDF at every error level) on both topologies.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner(
      "Figure 2: CDF of relative error in delay prediction");

  const eval::Fig2Config cfg = benchcfg::default_fig2_config();
  std::cout << "protocol: train " << cfg.train_samples
            << " GEANT2 samples; evaluate " << cfg.geant2_test_samples
            << " GEANT2 + " << cfg.nsfnet_test_samples
            << " NSFNET samples (unseen topology)\n"
            << "model: state_dim=" << cfg.model.state_dim
            << " T=" << cfg.model.iterations
            << " epochs=" << cfg.train.epochs << "\n\n";

  const eval::Fig2Result res = eval::run_fig2(cfg);
  std::cout << "dataset generation: " << res.generate_seconds
            << " s; training: " << res.train_seconds << " s\n\n";

  // -- percentile summary (the table view of Fig. 2) ---------------------
  util::Table table({"model", "topology", "paths", "P50 |rel err|",
                     "P90 |rel err|", "MAPE", "Pearson r"});
  for (const auto& c : res.curves) {
    std::vector<double> ape;
    ape.reserve(c.rel_errors.size());
    for (const double e : c.rel_errors) ape.push_back(std::abs(e));
    table.add_row({c.model, c.topology, util::Table::cell(c.summary.n),
                   util::Table::cell(util::percentile(ape, 50) * 100, 2) + " %",
                   util::Table::cell(util::percentile(ape, 90) * 100, 2) + " %",
                   util::Table::cell(c.summary.mape * 100, 2) + " %",
                   util::Table::cell(c.summary.pearson, 4)});
  }
  table.print(std::cout);

  // -- the CDF series (what the paper plots) ------------------------------
  std::cout << "\nCDF of |relative error| (fraction of paths with error <= x):\n";
  util::Table cdf_table({"|rel err| <=", "ext/geant2", "orig/geant2",
                         "ext/nsfnet", "orig/nsfnet"});
  const std::vector<double> xs = {0.02, 0.05, 0.10, 0.15, 0.20, 0.30,
                                  0.40, 0.50, 0.75, 1.00};
  std::vector<util::Cdf> cdfs;
  for (const auto& c : res.curves) {
    std::vector<double> ape;
    for (const double e : c.rel_errors) ape.push_back(std::abs(e));
    cdfs.emplace_back(std::move(ape));
  }
  for (const double x : xs) {
    std::vector<std::string> row{util::Table::cell(x, 2)};
    for (const auto& cdf : cdfs) row.push_back(util::Table::cell(cdf.at(x), 3));
    cdf_table.add_row(std::move(row));
  }
  cdf_table.print(std::cout);

  // -- CSV with the full signed-error curves -------------------------------
  {
    util::CsvWriter csv("fig2_cdf.csv", {"model", "topology", "rel_error"});
    for (const auto& c : res.curves)
      for (const double e : c.rel_errors)
        csv.add_row({c.model, c.topology, util::Table::cell(e, 6)});
    std::cout << "\nfull per-path errors written to " << csv.path() << "\n";
  }

  // -- verdict --------------------------------------------------------------
  const auto& eg = res.curve("routenet-ext", "geant2").summary;
  const auto& og = res.curve("routenet", "geant2").summary;
  const auto& en = res.curve("routenet-ext", "nsfnet").summary;
  const auto& on = res.curve("routenet", "nsfnet").summary;
  std::cout << "\npaper-shape check:\n"
            << "  extended < original on GEANT2 (median APE): "
            << (eg.median_ape < og.median_ape ? "YES" : "NO") << " ("
            << eg.median_ape << " vs " << og.median_ape << ")\n"
            << "  extended < original on NSFNET (median APE): "
            << (en.median_ape < on.median_ape ? "YES" : "NO") << " ("
            << en.median_ape << " vs " << on.median_ape << ")\n"
            << "  extended generalizes (NSFNET within 2x of GEANT2): "
            << (en.median_ape < 2.0 * eg.median_ape ? "YES" : "NO") << "\n";
  return 0;
}
