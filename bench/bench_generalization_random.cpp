// Extension experiment (beyond the paper): how far does generalization
// carry?  The paper evaluates one unseen topology (NSFNET).  Here the
// GEANT2-trained extended RouteNet is evaluated on a family of random
// connected graphs of growing size, probing where transfer degrades.
#include <iostream>

#include "bench_common.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner(
      "Extension: generalization to random unseen topologies");
  benchcfg::BenchResult result("generalization_random");

  eval::Fig2Config base = benchcfg::default_fig2_config();
  base.train_samples = benchcfg::scaled(benchcfg::quick_mode() ? 12 : 40);
  base.geant2_test_samples = benchcfg::scaled(benchcfg::quick_mode() ? 4 : 8);
  base.nsfnet_test_samples = 1;
  base.train.epochs = benchcfg::quick_mode() ? 8 : 25;
  base.model.state_dim = 10;
  base.model.iterations = 3;

  const eval::Fig2Datasets ds = eval::make_fig2_datasets(base);
  const data::Scaler scaler =
      data::Scaler::fit(ds.train.samples(), base.train.min_delivered);

  core::ExtendedRouteNet model(base.model);
  core::Trainer trainer(model, base.train);
  std::cout << "training on GEANT2 (" << ds.train.size() << " samples)...\n";
  (void)trainer.fit(ds.train, scaler);

  const auto seen = eval::summarize(eval::predict_dataset(
      model, ds.geant2_test, scaler, base.train.min_delivered));

  util::Table table({"topology", "nodes", "paths/sample", "median APE",
                     "MAPE", "Pearson r"});
  table.add_row({"geant2 (seen)", "24", "552",
                 util::Table::cell(seen.median_ape * 100, 2) + " %",
                 util::Table::cell(seen.mape * 100, 2) + " %",
                 util::Table::cell(seen.pearson, 3)});
  result.add("geant2_seen_median_ape", seen.median_ape);
  result.add("geant2_seen_mape", seen.mape);
  result.add("geant2_seen_pearson", seen.pearson);

  const std::size_t eval_n = benchcfg::quick_mode() ? 3 : 6;
  struct Shape {
    std::size_t nodes;
    std::size_t edges;
  };
  for (const auto [n, m] : {Shape{10, 15}, Shape{16, 25}, Shape{24, 37},
                            Shape{32, 50}}) {
    util::RngStream trng(n * 100 + m);
    const topo::Topology topo = topo::random_connected(n, m, trng);
    eval::Fig2Config gen_cfg = base;
    const data::Dataset test(data::generate_dataset(
        topo, eval_n, gen_cfg.gen, 5'000'000 + n));
    const auto s = eval::summarize(eval::predict_dataset(
        model, test, scaler, base.train.min_delivered));
    table.add_row({"random (unseen)", std::to_string(n),
                   std::to_string(n * (n - 1)),
                   util::Table::cell(s.median_ape * 100, 2) + " %",
                   util::Table::cell(s.mape * 100, 2) + " %",
                   util::Table::cell(s.pearson, 3)});
    const std::string tag = "random_n" + std::to_string(n);
    result.add(tag + "_median_ape", s.median_ape);
    result.add(tag + "_mape", s.mape);
    result.add(tag + "_pearson", s.pearson);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: graceful degradation with topology-size\n"
               "distance from the 24-node training distribution; correlation\n"
               "stays clearly positive everywhere (the GNN transfers).\n";
  result.set_config("GEANT2-trained ExtendedRouteNet, " +
                    std::to_string(ds.train.size()) + " train samples, " +
                    std::to_string(base.train.epochs) +
                    " epochs; random_connected eval at n=10/16/24/32");
  result.write();
  return 0;
}
