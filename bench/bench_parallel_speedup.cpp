// P2 — throughput of the data-parallel training engine.
//
// Measures training samples/sec for
//   * the legacy serial path (composed GRU, no plan cache),
//   * the optimized serial path (fused GRU + plan cache),
//   * the parallel engine at 2/4/8 lanes (fused + cache),
// plus batched-inference paths/sec at 1 and 8 lanes, and emits
// BENCH_parallel_speedup.json so CI tracks the trajectory across PRs.
//
// Note on lane scaling: the engine is bitwise-deterministic for any lane
// count, so the parallel numbers here are pure throughput — comparing
// them against the serial row is apples-to-apples on the same final
// weights.  Speedups are bounded by the machine's core count (reported
// as hardware_threads in the JSON).
#include <iostream>

#include "bench_common.hpp"
#include "core/plan_cache.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace rnx;

struct BenchSetup {
  data::Dataset train;
  data::Scaler scaler;
  std::size_t epochs = 5;
};

BenchSetup make_setup() {
  const bool quick = benchcfg::quick_mode();
  data::GeneratorConfig gen;
  gen.target_packets = quick ? 5'000 : 20'000;
  gen.util_lo = 0.6;
  gen.util_hi = 0.9;
  const std::size_t samples = benchcfg::scaled(quick ? 6 : 16);
  BenchSetup s;
  s.train = data::Dataset(
      data::generate_dataset(topo::nsfnet(), samples, gen, /*seed=*/417));
  s.scaler = data::Scaler::fit(s.train.samples());
  s.epochs = quick ? 2 : 5;
  return s;
}

double train_samples_per_sec(const BenchSetup& setup, std::size_t threads,
                             bool fused, bool plan_cache) {
  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.readout_hidden = 24;
  mc.iterations = 3;
  mc.fused_gru = fused;
  core::ExtendedRouteNet model(mc);
  core::TrainConfig tc;
  tc.epochs = setup.epochs;
  tc.batch_samples = 4;
  tc.min_delivered = 1;
  tc.threads = threads;
  tc.use_plan_cache = plan_cache;
  tc.verbose = false;
  core::Trainer trainer(model, tc);
  util::Stopwatch watch;
  (void)trainer.fit(setup.train, setup.scaler);
  const double secs = watch.seconds();
  return static_cast<double>(setup.epochs * setup.train.size()) / secs;
}

double inference_paths_per_sec(const BenchSetup& setup, std::size_t threads) {
  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.readout_hidden = 24;
  mc.iterations = 3;
  core::ExtendedRouteNet model(mc);
  core::PlanCache cache;
  model.set_plan_cache(&cache);
  util::ThreadPool pool(threads);
  constexpr int kReps = 3;
  util::Stopwatch watch;
  for (int rep = 0; rep < kReps; ++rep)
    (void)model.forward_batch(setup.train.samples(), setup.scaler, &pool);
  const double secs = watch.seconds();
  return static_cast<double>(kReps * setup.train.total_paths()) / secs;
}

}  // namespace

int main() {
  benchcfg::print_banner("P2: data-parallel training engine throughput");
  benchcfg::BenchResult result("parallel_speedup");
  const BenchSetup setup = make_setup();
  result.set_config("nsfnet, samples=" + std::to_string(setup.train.size()) +
                    ", epochs=" + std::to_string(setup.epochs) +
                    ", state_dim=12, iterations=3, batch=4");

  const double baseline =
      train_samples_per_sec(setup, 1, /*fused=*/false, /*plan_cache=*/false);
  const double serial_opt =
      train_samples_per_sec(setup, 1, /*fused=*/true, /*plan_cache=*/true);

  util::Table table({"config", "samples/sec", "speedup vs legacy"});
  table.add_row({"legacy serial (composed GRU, no cache)",
                 util::Table::cell(baseline, 2), "1.00"});
  table.add_row({"serial + fused GRU + plan cache",
                 util::Table::cell(serial_opt, 2),
                 util::Table::cell(serial_opt / baseline, 2)});
  result.add("hardware_threads",
             static_cast<double>(util::ThreadPool::hardware_threads()));
  result.add("train_samples_per_sec_legacy_serial", baseline);
  result.add("train_samples_per_sec_serial_fused_cache", serial_opt);
  result.add("speedup_serial_fused_cache", serial_opt / baseline);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    const double sps = train_samples_per_sec(setup, threads, true, true);
    table.add_row({"parallel x" + std::to_string(threads) + " (fused+cache)",
                   util::Table::cell(sps, 2),
                   util::Table::cell(sps / baseline, 2)});
    const std::string key = "train_samples_per_sec_threads_" +
                            std::to_string(threads);
    result.add(key, sps);
    result.add("speedup_threads_" + std::to_string(threads), sps / baseline);
    result.add("speedup_vs_serial_opt_threads_" + std::to_string(threads),
               sps / serial_opt);
  }

  const double inf1 = inference_paths_per_sec(setup, 1);
  const double inf8 = inference_paths_per_sec(setup, 8);
  result.add("inference_paths_per_sec_threads_1", inf1);
  result.add("inference_paths_per_sec_threads_8", inf8);

  table.print(std::cout);
  std::cout << "inference: " << inf1 << " paths/sec x1, " << inf8
            << " paths/sec x8 (forward_batch)\n";
  result.write();
  return 0;
}
