// Parallel datagen + shard-write throughput (DESIGN.md §D).
//
// Sweeps the ordered-commit dataset generator over thread counts and
// reports samples/s per lane count plus the speedup over serial —
// determinism means every sweep point produces byte-identical samples,
// so the ratios are pure scheduling overhead.  A second phase measures
// the sharded store's write path (serialize + checksum + atomic
// rename): samples/s and MB/s at a realistic shard size.
//
// Emits BENCH_datagen_parallel.json.  RNX_BENCH_QUICK=1 shrinks counts
// for CI smoke.
#include <filesystem>
#include <vector>

#include "bench_common.hpp"
#include "data/generator.hpp"
#include "data/sample_io.hpp"
#include "data/shards.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner("parallel datagen + shard write throughput");
  benchcfg::BenchResult result("datagen_parallel");

  const std::size_t count = benchcfg::scaled(benchcfg::quick_mode() ? 12 : 48);
  data::GeneratorConfig cfg;
  cfg.target_packets = benchcfg::quick_mode() ? 10'000 : 60'000;
  const topo::Topology base = topo::nsfnet();
  const std::uint64_t seed = 2019;
  result.set_config("nsfnet, " + std::to_string(count) + " samples, " +
                    std::to_string(cfg.target_packets) +
                    " packets/sample, shard write at 8 samples/shard");

  std::vector<std::size_t> lane_counts{1, 2, 4};
  const std::size_t hw = util::ThreadPool::hardware_threads();
  if (hw > 4) lane_counts.push_back(hw);

  util::Table table({"threads", "seconds", "samples/s", "speedup"});
  double serial_seconds = 0.0;
  std::vector<data::Sample> generated;  // reused for the shard phase
  for (const std::size_t threads : lane_counts) {
    util::Stopwatch watch;
    auto samples = data::generate_dataset(base, count, cfg, seed, threads);
    const double secs = watch.seconds();
    if (threads == 1) {
      serial_seconds = secs;
      generated = std::move(samples);
    }
    const double rate = static_cast<double>(count) / secs;
    const double speedup = serial_seconds > 0.0 ? serial_seconds / secs : 1.0;
    table.add_row({std::to_string(threads), util::Table::cell(secs, 3),
                   util::Table::cell(rate, 2),
                   util::Table::cell(speedup, 2)});
    result.add("samples_per_s_threads_" + std::to_string(threads), rate);
    result.add("speedup_threads_" + std::to_string(threads), speedup);
  }
  table.print(std::cout);
  result.add("hardware_threads", static_cast<double>(hw));

  // ---- shard write throughput ---------------------------------------------
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rnx_bench_datagen_parallel";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string manifest = (dir / "bench.rnxm").string();
  util::Stopwatch write_watch;
  data::ShardWriter writer(manifest, 8, seed, data::config_digest(cfg));
  for (const auto& s : generated) writer.add(s);
  (void)writer.finish();
  const double write_secs = write_watch.seconds();

  std::uintmax_t bytes = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    bytes += e.file_size();
  const double mb = static_cast<double>(bytes) / 1e6;
  std::cout << "shard write: " << generated.size() << " samples, "
            << util::Table::cell(mb, 2) << " MB in "
            << util::Table::cell(write_secs, 3) << " s ("
            << util::Table::cell(mb / write_secs, 2) << " MB/s)\n";
  result.add("shard_write_samples_per_s",
             static_cast<double>(generated.size()) / write_secs);
  result.add("shard_write_mb_per_s", mb / write_secs);
  result.add("shard_store_mb", mb);

  // Round-trip sanity: the store must read back identical to what was
  // generated (cheap guard against benching a broken writer).
  data::ShardedReader reader(manifest);
  const data::Dataset back = reader.load_all();
  bool identical = back.size() == generated.size();
  for (std::size_t i = 0; identical && i < back.size(); ++i)
    identical = data::io::sample_digest(back[i]) ==
                data::io::sample_digest(generated[i]);
  if (!identical) {
    std::cerr << "ERROR: shard round-trip diverged from generated samples\n";
    return 1;
  }
  std::filesystem::remove_all(dir);

  result.write();
  return 0;
}
