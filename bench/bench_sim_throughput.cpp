// P1 — discrete-event simulator throughput (events/s, packets/s) across
// topology sizes and load regimes.  The DES is the data-generation
// bottleneck, so its speed bounds achievable dataset scale.
#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;

void run_sim_bench(benchmark::State& state, const topo::Topology& base,
                   double util) {
  util::set_log_level(util::LogLevel::kWarn);
  topo::Topology topo = base;
  util::RngStream rng(11);
  topo::randomize_queue_sizes(topo, 0.5, rng);
  const topo::RoutingScheme rs = topo::hop_count_routing(topo);
  topo::TrafficMatrix tm =
      topo::uniform_traffic(topo.num_nodes(), 0.5, 1.0, rng);
  topo::scale_to_max_utilization(tm, topo, rs, util);
  const double total_pps = tm.total() / 8000.0;
  sim::SimConfig cfg;
  cfg.window_s = 30'000.0 / total_pps;  // ~30k packets per iteration
  cfg.warmup_s = 0.0;
  std::uint64_t events = 0, packets = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    sim::Simulator sim(topo, rs, tm, cfg);
    const sim::SimResult res = sim.run();
    events += res.total_events;
    for (const auto& p : res.paths) packets += p.generated;
    benchmark::DoNotOptimize(res.links.data());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
}

void BM_SimNsfnet(benchmark::State& state) {
  run_sim_bench(state, topo::nsfnet(),
                static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_SimNsfnet)->Arg(50)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_SimGeant2(benchmark::State& state) {
  run_sim_bench(state, topo::geant2(),
                static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_SimGeant2)->Arg(50)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_SimRandom50(benchmark::State& state) {
  util::RngStream rng(3);
  run_sim_bench(state, topo::random_connected(50, 85, rng),
                static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_SimRandom50)->Arg(70)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
