// Validation V1 — simulator vs closed-form queueing theory.
//
// Prints simulated vs analytic M/M/1/K mean sojourn, blocking and
// utilization across load and queue-capacity regimes — the evidence that
// the ground-truth generator behind every other experiment is sound.
#include <iostream>

#include "bench_common.hpp"
#include "sim/mm1k.hpp"
#include "sim/simulator.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace rnx;
  benchcfg::print_banner("V1: simulator vs M/M/1/K closed forms");

  const double cap_bps = 1e6;
  const double mean_pkt_bits = 8000.0;
  const double mu = cap_bps / mean_pkt_bits;
  const double window = benchcfg::quick_mode() ? 60.0 : 300.0;

  util::Table table({"rho", "K", "delay sim (ms)", "delay theory (ms)",
                     "loss sim", "loss theory", "util sim", "util theory"});
  for (const double rho : {0.3, 0.7, 0.9, 1.1}) {
    for (const std::uint32_t k : {1u, 8u, 32u}) {
      topo::Topology t = topo::line(2, cap_bps);
      t.set_all_queue_sizes(k);
      const topo::RoutingScheme rs = topo::hop_count_routing(t);
      topo::TrafficMatrix tm(2);
      tm.set(0, 1, rho * cap_bps);
      sim::SimConfig cfg;
      cfg.window_s = window;
      cfg.warmup_s = 5.0;
      sim::Simulator s(t, rs, tm, cfg);
      const sim::SimResult res = s.run();
      const auto& p = res.path(0, 1);
      table.add_row(
          {util::Table::cell(rho, 1), std::to_string(k),
           util::Table::cell(p.mean_delay_s * 1e3, 3),
           util::Table::cell(sim::mm1k_mean_sojourn(rho * mu, mu, k) * 1e3, 3),
           util::Table::cell(p.loss_rate(), 4),
           util::Table::cell(sim::mm1k_blocking(rho * mu, mu, k), 4),
           util::Table::cell(res.links[0].utilization, 4),
           util::Table::cell(sim::mm1k_utilization(rho * mu, mu, k), 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: sim within a few percent of theory everywhere\n"
               "(exact asymptotically; the run is " << window << " s).\n";
  return 0;
}
