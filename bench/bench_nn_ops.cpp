// P1 — microbenchmarks of the autograd substrate at RouteNet-realistic
// shapes: 552 paths x 16 state dims (GEANT2) for the row ops, GRU steps
// forward and forward+backward.
#include <benchmark/benchmark.h>

#include "nn/gru.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx::nn;
using rnx::util::RngStream;

Var rand_var(std::size_t r, std::size_t c, bool grad = true) {
  RngStream rng(r * 1000 + c);
  return Var(uniform_init(r, c, -1.0, 1.0, rng), grad);
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = [&] {
    RngStream rng(1);
    return uniform_init(n, 16, -1, 1, rng);
  }();
  const Tensor b = [&] {
    RngStream rng(2);
    return uniform_init(16, 16, -1, 1, rng);
  }();
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * 16 * 16);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(552)->Arg(2048);

void BM_GatherRows(benchmark::State& state) {
  const Var a = rand_var(552, 16, false);
  std::vector<Index> idx(552);
  RngStream rng(3);
  for (auto& i : idx)
    i = static_cast<Index>(rng.uniform_int(0, 551));
  const NoGradGuard guard;
  for (auto _ : state) benchmark::DoNotOptimize(gather_rows(a, idx));
}
BENCHMARK(BM_GatherRows);

void BM_SegmentSum(benchmark::State& state) {
  const Var a = rand_var(552, 16, false);
  std::vector<Index> seg(552);
  RngStream rng(4);
  for (auto& s : seg) s = static_cast<Index>(rng.uniform_int(0, 73));
  const NoGradGuard guard;
  for (auto _ : state) benchmark::DoNotOptimize(segment_sum(a, seg, 74));
}
BENCHMARK(BM_SegmentSum);

void BM_GruStepForward(benchmark::State& state) {
  RngStream rng(5);
  const GRUCell cell(16, 16, rng);
  const Var x = rand_var(552, 16, false);
  const Var h = rand_var(552, 16, false);
  const NoGradGuard guard;
  for (auto _ : state) benchmark::DoNotOptimize(cell.step(x, h));
}
BENCHMARK(BM_GruStepForward);

void BM_GruStepForwardBackward(benchmark::State& state) {
  RngStream rng(6);
  const GRUCell cell(16, 16, rng);
  Var x = rand_var(552, 16, true);
  Var h = rand_var(552, 16, true);
  for (auto _ : state) {
    x.zero_grad();
    h.zero_grad();
    Var loss = mean_all(cell.step(x, h));
    loss.backward();
    benchmark::DoNotOptimize(x.grad());
  }
}
BENCHMARK(BM_GruStepForwardBackward);

void BM_MlpForward(benchmark::State& state) {
  RngStream rng(7);
  // Readout shape: 552 paths through 16->32->1.
  const Dense l1(16, 32, Activation::kRelu, rng);
  const Dense l2(32, 1, Activation::kNone, rng);
  const Var x = rand_var(552, 16, false);
  const NoGradGuard guard;
  for (auto _ : state) benchmark::DoNotOptimize(l2.forward(l1.forward(x)));
}
BENCHMARK(BM_MlpForward);

}  // namespace

BENCHMARK_MAIN();
