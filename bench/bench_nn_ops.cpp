// P1 — scalar-vs-SIMD microbenchmarks of the dense hot path at
// RouteNet-realistic shapes: the matmul family, the elementwise
// transcendentals and full GRU steps (552 paths x 16 state dims is the
// GEANT2 working set; 256^3 is the throughput-bound shape).
//
// Every kernel runs twice in-process — once pinned to the scalar
// reference backend, once to the runtime-dispatched SIMD backend — via
// nn::kernels::ScopedBackendOverride, so the emitted speedups compare
// identical code paths on identical buffers.  BENCH_nn_ops.json records
// the detected ISA, the dispatch reason and per-shape speedups (the
// DESIGN.md §K target: >= 4x matmul/GRU on AVX2 hosts).
#include <cstddef>
#include <iomanip>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "nn/gru.hpp"
#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/ops.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace rnx;
using nn::Tensor;
using nn::kernels::Backend;

Tensor rand_tensor(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::RngStream rng(seed);
  return nn::uniform_init(r, c, -1.0, 1.0, rng);
}

/// Time fn() until it has consumed ~min_seconds of wall clock (after one
/// untimed warmup call), returning seconds per iteration.
template <typename Fn>
double time_per_iter(Fn&& fn, double min_seconds) {
  fn();  // warmup: page in buffers, resolve dispatch
  std::size_t iters = 1;
  for (;;) {
    util::Stopwatch sw;
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double secs = sw.seconds();
    if (secs >= min_seconds) return secs / static_cast<double>(iters);
    // Grow geometrically towards the time budget.
    iters = secs > 0.0
                ? static_cast<std::size_t>(
                      static_cast<double>(iters) * (min_seconds / secs) * 1.3) +
                      1
                : iters * 8;
  }
}

struct Case {
  std::string name;
  double flops_per_iter;  ///< for GFLOP/s reporting (0 = skip)
  double scalar_s = 0.0;
  double simd_s = 0.0;

  [[nodiscard]] double speedup() const {
    return simd_s > 0.0 ? scalar_s / simd_s : 1.0;
  }
};

}  // namespace

int main() {
  benchcfg::print_banner("nn ops: scalar vs SIMD kernel backends");
  const double budget = benchcfg::quick_mode() ? 0.05 : 0.25;

  const Backend& scalar = nn::kernels::scalar_backend();
  const Backend* simd = nn::kernels::simd_backend();
  const Backend& best = simd != nullptr ? *simd : scalar;
  std::cout << "active backend: " << nn::kernels::active().name << " ("
            << nn::kernels::dispatch_reason() << ")\n"
            << "comparing scalar vs " << best.name
            << (simd == nullptr ? "  [no SIMD backend on this host]" : "")
            << "\n\n";

  benchcfg::BenchResult result("nn_ops");
  result.set_config("matmul family + transcendentals + GRU step, scalar vs " +
                    std::string(best.name));
  result.note("isa", best.name);
  result.note("dispatch_reason", nn::kernels::dispatch_reason());

  std::vector<Case> cases;
  const auto run_both = [&](const std::string& name, double flops,
                            auto&& fn) {
    Case c{name, flops};
    {
      const nn::kernels::ScopedBackendOverride pin(scalar);
      c.scalar_s = time_per_iter(fn, budget);
    }
    {
      const nn::kernels::ScopedBackendOverride pin(best);
      c.simd_s = time_per_iter(fn, budget);
    }
    cases.push_back(c);
  };

  // -- matmul family ---------------------------------------------------
  {
    const Tensor a = rand_tensor(552, 16, 1), b = rand_tensor(16, 16, 2);
    Tensor c(552, 16);
    run_both("matmul_552x16x16", 2.0 * 552 * 16 * 16,
             [&] { nn::matmul_acc(c, a, b); });
  }
  {
    const Tensor a = rand_tensor(256, 256, 3), b = rand_tensor(256, 256, 4);
    Tensor c(256, 256);
    run_both("matmul_256x256x256", 2.0 * 256 * 256 * 256,
             [&] { nn::matmul_acc(c, a, b); });
  }
  {
    const Tensor a = rand_tensor(552, 16, 5), b = rand_tensor(552, 16, 6);
    Tensor c(16, 16);
    run_both("matmul_tn_552x16x16", 2.0 * 552 * 16 * 16,
             [&] { nn::matmul_tn_acc(c, a, b); });
  }
  {
    const Tensor a = rand_tensor(552, 16, 7), b = rand_tensor(16, 16, 8);
    Tensor c(552, 16);
    run_both("matmul_nt_552x16x16", 2.0 * 552 * 16 * 16,
             [&] { nn::matmul_nt_acc(c, a, b); });
  }

  // -- elementwise transcendentals -------------------------------------
  {
    const Tensor a = rand_tensor(552, 32, 9);
    Tensor y(552, 32);
    run_both("sigmoid_552x32", 0.0, [&] {
      nn::kernels::active().vsigmoid(y.flat().data(), a.flat().data(),
                                     a.size());
    });
    run_both("tanh_552x32", 0.0, [&] {
      nn::kernels::active().vtanh(y.flat().data(), a.flat().data(), a.size());
    });
  }

  // -- GRU steps (the message-passing hot loop) ------------------------
  {
    util::RngStream rng(10);
    const nn::GRUCell cell(16, 16, rng);
    const nn::Var x(rand_tensor(552, 16, 11), false);
    const nn::Var h(rand_tensor(552, 16, 12), false);
    const nn::NoGradGuard guard;
    run_both("gru_step_fwd_552x16", 0.0,
             [&] { (void)cell.step(x, h); });
  }
  {
    util::RngStream rng(13);
    const nn::GRUCell cell(16, 16, rng);
    nn::Var x(rand_tensor(552, 16, 14), true);
    nn::Var h(rand_tensor(552, 16, 15), true);
    run_both("gru_step_fwdbwd_552x16", 0.0, [&] {
      x.zero_grad();
      h.zero_grad();
      nn::Var loss = nn::mean_all(cell.step(x, h));
      loss.backward();
    });
  }

  // -- report ----------------------------------------------------------
  std::cout << std::left << std::setw(26) << "kernel" << std::right
            << std::setw(14) << "scalar us" << std::setw(14)
            << (std::string(best.name) + " us") << std::setw(10) << "speedup"
            << std::setw(16) << "simd GFLOP/s" << "\n";
  for (const Case& c : cases) {
    std::cout << std::left << std::setw(26) << c.name << std::right
              << std::setw(14) << std::fixed << std::setprecision(2)
              << c.scalar_s * 1e6 << std::setw(14) << c.simd_s * 1e6
              << std::setw(10) << std::setprecision(2) << c.speedup();
    if (c.flops_per_iter > 0.0)
      std::cout << std::setw(16) << std::setprecision(2)
                << c.flops_per_iter / c.simd_s / 1e9;
    std::cout << "\n";
    result.add(c.name + "_scalar_us", c.scalar_s * 1e6);
    result.add(c.name + "_simd_us", c.simd_s * 1e6);
    result.add(c.name + "_speedup", c.speedup());
    if (c.flops_per_iter > 0.0)
      result.add(c.name + "_simd_gflops", c.flops_per_iter / c.simd_s / 1e9);
  }

  // Headline numbers CI tracks against the >= 4x DESIGN.md §K target.
  for (const Case& c : cases) {
    if (c.name == "matmul_256x256x256") result.add("matmul_speedup", c.speedup());
    if (c.name == "gru_step_fwd_552x16") result.add("gru_speedup", c.speedup());
  }

  result.write();
  return 0;
}
