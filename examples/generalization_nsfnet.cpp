// The paper's generalization experiment (§3): train on GEANT2 only, then
// predict delays on NSFNET — a topology the model has never seen — and
// compare both architectures.  This is the four-curve Fig. 2 protocol in
// example form (the bench version runs at larger scale).
//
// Run: ./generalization_nsfnet [train_samples] [epochs]
#include <cstdlib>
#include <iostream>

#include "eval/experiment.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rnx;
  util::set_log_level(util::LogLevel::kWarn);

  eval::Fig2Config cfg;
  cfg.train_samples =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;
  cfg.geant2_test_samples = 8;
  cfg.nsfnet_test_samples = 8;
  cfg.gen.target_packets = 150'000;
  cfg.gen.util_lo = 0.7;
  cfg.gen.util_hi = 0.95;
  cfg.model.state_dim = 12;
  cfg.model.iterations = 3;
  cfg.train.epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;
  cfg.train.batch_samples = 4;
  cfg.train.lr = 2e-3;
  cfg.train.verbose = false;
  cfg.cache_dir.clear();

  std::cout << "training both architectures on " << cfg.train_samples
            << " GEANT2 samples; evaluating on GEANT2 and unseen NSFNET...\n\n";
  const eval::Fig2Result res = eval::run_fig2(cfg);

  util::Table table(
      {"model", "topology", "median |rel err|", "MAPE", "Pearson r"});
  for (const auto& c : res.curves)
    table.add_row({c.model, c.topology,
                   util::Table::cell(c.summary.median_ape * 100, 2) + " %",
                   util::Table::cell(c.summary.mape * 100, 2) + " %",
                   util::Table::cell(c.summary.pearson, 4)});
  table.print(std::cout);

  const auto& eg = res.curve("routenet-ext", "geant2").summary;
  const auto& en = res.curve("routenet-ext", "nsfnet").summary;
  std::cout << "\nextended RouteNet generalization penalty (NSFNET vs GEANT2 "
               "median APE): "
            << util::Table::cell(
                   (en.median_ape - eg.median_ape) * 100, 2)
            << " pp\n"
            << "(the paper reports successful generalization: the NSFNET "
               "curve stays close)\n";
  return 0;
}
