// Standalone use of the packet-level simulator (no ML): simulate a
// queue-varied GEANT2 scenario and print per-path delays and per-link
// utilization — the kind of run that produces one dataset sample.
//
// Run: ./simulate_network [max_utilization] (default 0.8)
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "sim/simulator.hpp"
#include "topo/routing.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rnx;
  const double target_util = argc > 1 ? std::atof(argv[1]) : 0.8;

  // Queue-varied GEANT2: half the routers get 1-packet queues.
  topo::Topology net = topo::geant2();
  util::RngStream rng(2024);
  topo::randomize_queue_sizes(net, 0.5, rng);

  const topo::RoutingScheme routing = topo::shortest_path_routing(
      net, topo::random_link_weights(net, rng));
  topo::TrafficMatrix tm = topo::gravity_traffic(net.num_nodes(), 1.0, rng);
  topo::scale_to_max_utilization(tm, net, routing, target_util);

  sim::SimConfig cfg;
  cfg.window_s = 100'000.0 / (tm.total() / cfg.mean_packet_bits);
  cfg.warmup_s = 0.1 * cfg.window_s;
  sim::Simulator simulator(net, routing, tm, cfg);
  const sim::SimResult res = simulator.run();

  std::cout << "GEANT2, " << res.paths.size() << " flows, target max util "
            << target_util << ", " << res.total_events << " events simulated\n\n";

  // Ten most-delayed paths.
  std::vector<const sim::PathStats*> sorted;
  for (const auto& p : res.paths) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->mean_delay_s > b->mean_delay_s;
  });
  util::Table worst({"path", "hops", "mean delay (ms)", "jitter (ms^2)",
                     "loss", "tiny queues on path"});
  for (std::size_t i = 0; i < 10 && i < sorted.size(); ++i) {
    const auto* p = sorted[i];
    const auto& nodes = routing.path(p->src, p->dst).nodes;
    std::size_t tiny = 0;
    for (std::size_t h = 0; h + 1 < nodes.size(); ++h)
      tiny += net.queue_size(nodes[h]) == topo::kTinyQueuePackets ? 1 : 0;
    worst.add_row({std::to_string(p->src) + "->" + std::to_string(p->dst),
                   std::to_string(nodes.size() - 1),
                   util::Table::cell(p->mean_delay_s * 1e3, 4),
                   util::Table::cell(p->jitter_s2 * 1e6, 4),
                   util::Table::cell(p->loss_rate(), 4),
                   std::to_string(tiny)});
  }
  worst.print(std::cout);

  // Five busiest links.
  std::vector<topo::LinkId> links(net.num_links());
  for (topo::LinkId l = 0; l < net.num_links(); ++l) links[l] = l;
  std::sort(links.begin(), links.end(), [&](auto a, auto b) {
    return res.links[a].utilization > res.links[b].utilization;
  });
  std::cout << "\nbusiest links:\n";
  util::Table busy({"link", "utilization", "mean queue (pkts)", "drops"});
  for (std::size_t i = 0; i < 5; ++i) {
    const auto l = links[i];
    const auto& lk = net.graph().link(l);
    busy.add_row({std::to_string(lk.src) + "->" + std::to_string(lk.dst),
                  util::Table::cell(res.links[l].utilization, 3),
                  util::Table::cell(res.links[l].mean_queue_pkts, 2),
                  std::to_string(res.links[l].drops)});
  }
  busy.print(std::cout);
  return 0;
}
