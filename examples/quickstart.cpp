// Quickstart: the whole pipeline on a small topology in under a minute.
//
//   1. build a 5-node topology with mixed queue sizes,
//   2. simulate queue-varied scenarios to create a dataset,
//   3. train the extended RouteNet on it,
//   4. predict delays for a held-out scenario and compare to simulation.
//
// Run: ./quickstart [num_samples] (default 60)
#include <cstdlib>
#include <iostream>

#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "eval/metrics.hpp"
#include "topo/zoo.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rnx;
  const std::size_t num_samples =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;

  // 1. A small ring topology; every node starts with a standard queue.
  //    The generator below randomizes queue sizes per scenario.
  const topo::Topology net = topo::ring(5, /*capacity_bps=*/10e6);
  std::cout << "topology: " << net.name() << " (" << net.num_nodes()
            << " nodes, " << net.num_links() << " directed links)\n";

  // 2. Generate a dataset with the packet-level simulator.
  data::GeneratorConfig gen;
  gen.p_tiny_queue = 0.5;        // half the devices get 1-packet queues
  gen.target_packets = 20'000;   // per-scenario simulated packet budget
  std::cout << "simulating " << num_samples << " scenarios...\n";
  data::Dataset all(data::generate_dataset(net, num_samples, gen,
                                           /*seed=*/7));
  const auto [test, train] = all.split(num_samples / 5);
  std::cout << "dataset: " << train.size() << " train / " << test.size()
            << " test samples, " << all.total_paths() << " paths total\n";

  // 3. Train the extended RouteNet (the paper's architecture).
  const data::Scaler scaler = data::Scaler::fit(train.samples());
  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.iterations = 4;
  core::ExtendedRouteNet model(mc);
  core::TrainConfig tc;
  tc.epochs = 15;
  tc.verbose = false;
  core::Trainer trainer(model, tc);
  std::cout << "training " << model.name() << " for " << tc.epochs
            << " epochs...\n";
  const auto history = trainer.fit(train, scaler, &test);
  std::cout << "final train loss " << history.back().train_loss
            << ", test loss " << history.back().val_loss << "\n\n";

  // 4. Evaluate: per-path predicted vs simulated delay on held-out data.
  const auto pp = eval::predict_dataset(model, test, scaler, 10);
  const auto summary = eval::summarize(pp);
  util::Table table({"metric", "value"});
  table.add_row({"paths evaluated", util::Table::cell(summary.n)})
      .add_row({"MAPE", util::Table::cell(summary.mape * 100, 2) + " %"})
      .add_row({"median APE", util::Table::cell(summary.median_ape * 100, 2) + " %"})
      .add_row({"RMSE", util::Table::cell(summary.rmse * 1e3, 4) + " ms"})
      .add_row({"Pearson r", util::Table::cell(summary.pearson, 4)});
  table.print(std::cout);

  std::cout << "\nfirst 5 held-out paths (simulated vs predicted):\n";
  util::Table preview({"path", "simulated delay", "predicted delay"});
  for (std::size_t i = 0; i < 5 && i < pp.size(); ++i)
    preview.add_row({std::to_string(i),
                     util::Table::cell(pp.truth[i] * 1e3, 4) + " ms",
                     util::Table::cell(pp.pred[i] * 1e3, 4) + " ms"});
  preview.print(std::cout);
  return 0;
}
