// Knowledge-defined networking use case (paper §1): use the trained GNN
// as a fast network model inside a what-if loop.
//
// Scenario: a GEANT2 operator with mixed queue hardware wants to know
// which single router upgrade (tiny -> standard queue) most reduces the
// network-wide mean delay.  Brute-forcing this with the packet simulator
// costs one full simulation per candidate; the GNN answers each
// candidate in milliseconds.  The example cross-checks the GNN's chosen
// upgrade against the simulator.
//
// Run: ./what_if_queue_upgrade
//      (trains a small model inline if routenet_ext_geant2.rnxw is absent)
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "sim/simulator.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace rnx;

// Mean delay (over paths) predicted by the model for a scenario.
double predicted_mean_delay(const core::Model& model, const data::Sample& s,
                            const data::Scaler& sc) {
  const nn::NoGradGuard guard;
  const nn::Var pred = model.forward(s, sc);
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.rows(); ++i)
    sum += sc.target_to_delay(pred.value()(i, 0));
  return sum / static_cast<double>(pred.rows());
}

// Ground-truth mean delay via packet simulation of the same scenario.
double simulated_mean_delay(const data::Sample& s) {
  const topo::Topology topo = s.to_topology();
  topo::RoutingScheme rs(topo.num_nodes());
  topo::TrafficMatrix tm(topo.num_nodes());
  for (const auto& p : s.paths) {
    topo::Path path;
    path.nodes = p.nodes;
    path.links = p.links;
    rs.set_path(p.src, p.dst, std::move(path));
    tm.set(p.src, p.dst, p.traffic_bps);
  }
  sim::SimConfig cfg;
  cfg.window_s = 150'000.0 / (tm.total() / cfg.mean_packet_bits);
  cfg.warmup_s = 0.1 * cfg.window_s;
  sim::Simulator simulator(topo, rs, tm, cfg);
  const sim::SimResult res = simulator.run();
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : res.paths)
    if (p.delivered > 0) {
      sum += p.mean_delay_s;
      ++n;
    }
  return sum / static_cast<double>(n);
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  // Training data: queue-varied GEANT2 (the regime the model must know).
  data::GeneratorConfig gen;
  gen.target_packets = 150'000;
  gen.util_lo = 0.7;
  gen.util_hi = 0.95;
  std::cout << "preparing model...\n";
  data::Dataset train(data::generate_dataset(topo::geant2(), 40, gen, 99));
  const data::Scaler scaler = data::Scaler::fit(train.samples());

  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.iterations = 4;
  core::ExtendedRouteNet model(mc);
  if (std::filesystem::exists("routenet_ext_geant2.rnxw")) {
    std::cout << "loading weights from routenet_ext_geant2.rnxw\n";
    model.load_weights("routenet_ext_geant2.rnxw");
  } else {
    std::cout << "no saved weights; training inline (30 epochs)...\n";
    core::TrainConfig tc;
    tc.epochs = 30;
    tc.batch_samples = 4;
    tc.lr = 2e-3;
    tc.verbose = false;
    core::Trainer(model, tc).fit(train, scaler);
  }

  // The scenario under study: one fresh queue-varied sample.
  util::RngStream rng(12345);
  const data::Sample base = data::generate_sample(topo::geant2(), gen, rng);
  std::vector<topo::NodeId> tiny_nodes;
  for (topo::NodeId n = 0; n < base.num_nodes; ++n)
    if (base.queue_pkts[n] == topo::kTinyQueuePackets)
      tiny_nodes.push_back(n);
  std::cout << "\nscenario: GEANT2 with " << tiny_nodes.size()
            << " tiny-queue routers; which single upgrade helps most?\n\n";

  // GNN what-if sweep: flip each tiny queue to standard, predict.
  util::Stopwatch gnn_watch;
  const double base_pred = predicted_mean_delay(model, base, scaler);
  std::vector<std::pair<topo::NodeId, double>> gains;
  for (const topo::NodeId n : tiny_nodes) {
    data::Sample upgraded = base;
    upgraded.queue_pkts[n] = topo::kStandardQueuePackets;
    gains.emplace_back(n, predicted_mean_delay(model, upgraded, scaler) -
                              base_pred);
  }
  const double gnn_seconds = gnn_watch.seconds();
  std::sort(gains.begin(), gains.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  util::Table table({"upgrade node", "predicted delay change"});
  for (const auto& [node, delta] : gains)
    table.add_row({std::to_string(node),
                   util::Table::cell(delta * 1e3, 4) + " ms"});
  table.print(std::cout);
  std::cout << "\nGNN evaluated " << gains.size() + 1 << " scenarios in "
            << util::Table::cell(gnn_seconds, 3) << " s\n";

  // Cross-check the top recommendation against the simulator.
  // (Upgrading a queue *raises* mean delay of delivered packets — packets
  // that were dropped now wait in line instead — so the "best" upgrade
  // here is the one the model says changes delay most; the point is that
  // the GNN ranks hardware changes without running the simulator.)
  const topo::NodeId best = gains.front().first;
  std::cout << "\ncross-checking node " << best << " with the simulator...\n";
  util::Stopwatch sim_watch;
  const double sim_base = simulated_mean_delay(base);
  data::Sample upgraded = base;
  upgraded.queue_pkts[best] = topo::kStandardQueuePackets;
  const double sim_upgraded = simulated_mean_delay(upgraded);
  const double sim_seconds = sim_watch.seconds();

  util::Table check({"source", "base delay (ms)", "after upgrade (ms)",
                     "change (ms)", "wall time (s)"});
  check
      .add_row({"GNN", util::Table::cell(base_pred * 1e3, 4),
                util::Table::cell((base_pred + gains.front().second) * 1e3, 4),
                util::Table::cell(gains.front().second * 1e3, 4),
                util::Table::cell(gnn_seconds, 3)})
      .add_row({"simulator", util::Table::cell(sim_base * 1e3, 4),
                util::Table::cell(sim_upgraded * 1e3, 4),
                util::Table::cell((sim_upgraded - sim_base) * 1e3, 4),
                util::Table::cell(sim_seconds, 3)});
  check.print(std::cout);
  std::cout << "\nsame sign and similar magnitude = the GNN is a usable "
               "fast surrogate for what-if planning.\n";
  return 0;
}
