// Knowledge-defined networking use case (paper §1): use the trained GNN
// as a fast network model inside a what-if loop.
//
// Scenario: a GEANT2 operator with mixed queue hardware wants to know
// which single router upgrade (tiny -> standard queue) most reduces the
// network-wide mean delay.  Brute-forcing this with the packet simulator
// costs one full simulation per candidate; the GNN answers each
// candidate in milliseconds.  The example cross-checks the GNN's chosen
// upgrade against the simulator.
//
// Run: ./what_if_queue_upgrade
//      (first run trains a small model and writes
//      routenet_ext_geant2.rnxb; later runs serve straight from the
//      bundle — no retraining, no dataset regeneration, no scaler
//      re-fit)
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "serve/inference.hpp"
#include "sim/simulator.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace rnx;

constexpr const char* kBundlePath = "routenet_ext_geant2.rnxb";

// Train a small extended model on queue-varied GEANT2 and persist it as
// a self-contained bundle (weights + scaler moments + config).
void train_and_save_bundle() {
  data::GeneratorConfig gen;
  gen.target_packets = 150'000;
  gen.util_lo = 0.7;
  gen.util_hi = 0.95;
  std::cout << "no saved bundle; training inline (30 epochs)...\n";
  data::Dataset train(data::generate_dataset(topo::geant2(), 40, gen, 99));
  const data::Scaler scaler = data::Scaler::fit(train.samples());

  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.iterations = 4;
  core::ExtendedRouteNet model(mc);
  core::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_samples = 4;
  tc.lr = 2e-3;
  tc.verbose = false;
  core::Trainer(model, tc).fit(train, scaler);
  serve::save_bundle(kBundlePath, model, scaler,
                     core::PredictionTarget::kDelay, tc.min_delivered);
  std::cout << "bundle written: " << kBundlePath << "\n";
}

// Ground-truth mean delay via packet simulation of the same scenario.
double simulated_mean_delay(const data::Sample& s) {
  const topo::Topology topo = s.to_topology();
  topo::RoutingScheme rs(topo.num_nodes());
  topo::TrafficMatrix tm(topo.num_nodes());
  for (const auto& p : s.paths) {
    topo::Path path;
    path.nodes = p.nodes;
    path.links = p.links;
    rs.set_path(p.src, p.dst, std::move(path));
    tm.set(p.src, p.dst, p.traffic_bps);
  }
  sim::SimConfig cfg;
  cfg.window_s = 150'000.0 / (tm.total() / cfg.mean_packet_bits);
  cfg.warmup_s = 0.1 * cfg.window_s;
  sim::Simulator simulator(topo, rs, tm, cfg);
  const sim::SimResult res = simulator.run();
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : res.paths)
    if (p.delivered > 0) {
      sum += p.mean_delay_s;
      ++n;
    }
  return sum / static_cast<double>(n);
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  std::cout << "preparing model...\n";
  if (!std::filesystem::exists(kBundlePath)) train_and_save_bundle();
  // Serve every what-if query from the bundle: the deployed model's
  // scaler moments come from the bundle, never from a re-fit.
  serve::InferenceEngine engine(kBundlePath);
  std::cout << "serving from " << kBundlePath << " ("
            << engine.model().name() << ")\n";

  // The scenario under study: one fresh queue-varied sample.
  data::GeneratorConfig gen;
  gen.target_packets = 150'000;
  gen.util_lo = 0.7;
  gen.util_hi = 0.95;
  util::RngStream rng(12345);
  const data::Sample base = data::generate_sample(topo::geant2(), gen, rng);
  std::vector<topo::NodeId> tiny_nodes;
  for (topo::NodeId n = 0; n < base.num_nodes; ++n)
    if (base.queue_pkts[n] == topo::kTinyQueuePackets)
      tiny_nodes.push_back(n);
  std::cout << "\nscenario: GEANT2 with " << tiny_nodes.size()
            << " tiny-queue routers; which single upgrade helps most?\n\n";

  // GNN what-if sweep: flip each tiny queue to standard, predict the
  // whole candidate set as one batched request to the engine.
  util::Stopwatch gnn_watch;
  const double base_pred = engine.predict_mean(base);
  std::vector<data::Sample> variants;
  variants.reserve(tiny_nodes.size());
  for (const topo::NodeId n : tiny_nodes) {
    variants.push_back(base);
    variants.back().queue_pkts[n] = topo::kStandardQueuePackets;
  }
  const std::vector<std::vector<double>> preds =
      engine.predict_batch(variants);
  std::vector<std::pair<topo::NodeId, double>> gains;
  for (std::size_t i = 0; i < tiny_nodes.size(); ++i) {
    double sum = 0.0;
    for (const double p : preds[i]) sum += p;
    gains.emplace_back(tiny_nodes[i],
                       sum / static_cast<double>(preds[i].size()) -
                           base_pred);
  }
  const double gnn_seconds = gnn_watch.seconds();
  std::sort(gains.begin(), gains.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  util::Table table({"upgrade node", "predicted delay change"});
  for (const auto& [node, delta] : gains)
    table.add_row({std::to_string(node),
                   util::Table::cell(delta * 1e3, 4) + " ms"});
  table.print(std::cout);
  std::cout << "\nGNN evaluated " << gains.size() + 1 << " scenarios in "
            << util::Table::cell(gnn_seconds, 3) << " s\n";

  // Cross-check the top recommendation against the simulator.
  // (Upgrading a queue *raises* mean delay of delivered packets — packets
  // that were dropped now wait in line instead — so the "best" upgrade
  // here is the one the model says changes delay most; the point is that
  // the GNN ranks hardware changes without running the simulator.)
  const topo::NodeId best = gains.front().first;
  std::cout << "\ncross-checking node " << best << " with the simulator...\n";
  util::Stopwatch sim_watch;
  const double sim_base = simulated_mean_delay(base);
  data::Sample upgraded = base;
  upgraded.queue_pkts[best] = topo::kStandardQueuePackets;
  const double sim_upgraded = simulated_mean_delay(upgraded);
  const double sim_seconds = sim_watch.seconds();

  util::Table check({"source", "base delay (ms)", "after upgrade (ms)",
                     "change (ms)", "wall time (s)"});
  check
      .add_row({"GNN", util::Table::cell(base_pred * 1e3, 4),
                util::Table::cell((base_pred + gains.front().second) * 1e3, 4),
                util::Table::cell(gains.front().second * 1e3, 4),
                util::Table::cell(gnn_seconds, 3)})
      .add_row({"simulator", util::Table::cell(sim_base * 1e3, 4),
                util::Table::cell(sim_upgraded * 1e3, 4),
                util::Table::cell((sim_upgraded - sim_base) * 1e3, 4),
                util::Table::cell(sim_seconds, 3)});
  check.print(std::cout);
  std::cout << "\nsame sign and similar magnitude = the GNN is a usable "
               "fast surrogate for what-if planning.\n";
  return 0;
}
