// The paper's core use case: train the extended RouteNet on queue-varied
// GEANT2 scenarios and predict per-path mean delays for new scenarios,
// comparing against the packet-level simulator's ground truth.  Trained
// weights are saved so the what-if example can reuse them.
//
// Run: ./delay_prediction_geant2 [train_samples] [epochs]
//      (defaults 60 / 30; larger = more accurate, slower)
#include <cstdlib>
#include <iostream>

#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "eval/metrics.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rnx;
  const std::size_t train_n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;

  // Queue-varied GEANT2 scenarios in the load regime where queueing
  // dominates (cf. paper §3).
  data::GeneratorConfig gen;
  gen.target_packets = 150'000;
  gen.util_lo = 0.7;
  gen.util_hi = 0.95;

  std::cout << "generating " << train_n + 10 << " GEANT2 scenarios...\n";
  data::Dataset all(
      data::generate_dataset(topo::geant2(), train_n + 10, gen, 99));
  const auto [test, train] = all.split(10);

  const data::Scaler scaler = data::Scaler::fit(train.samples());
  core::ModelConfig mc;
  mc.state_dim = 12;
  mc.iterations = 4;
  core::ExtendedRouteNet model(mc);

  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_samples = 4;
  tc.lr = 2e-3;
  tc.verbose = false;
  core::Trainer trainer(model, tc);
  std::cout << "training extended RouteNet (" << train.size()
            << " samples, " << epochs << " epochs)...\n";
  const auto history = trainer.fit(train, scaler, &test);
  std::cout << "loss: " << history.front().train_loss << " -> "
            << history.back().train_loss << " (val "
            << history.back().val_loss << ")\n\n";

  const auto pp = eval::predict_dataset(model, test, scaler, 10);
  const auto s = eval::summarize(pp);
  const auto ape = eval::absolute_relative_errors(pp);

  util::Table table({"metric", "value"});
  table.add_row({"held-out paths", util::Table::cell(s.n)})
      .add_row({"median |rel err|",
                util::Table::cell(s.median_ape * 100, 2) + " %"})
      .add_row({"P90 |rel err|",
                util::Table::cell(util::percentile(ape, 90) * 100, 2) + " %"})
      .add_row({"MAPE", util::Table::cell(s.mape * 100, 2) + " %"})
      .add_row({"Pearson r", util::Table::cell(s.pearson, 4)})
      .add_row({"R^2", util::Table::cell(s.r2, 4)});
  table.print(std::cout);

  model.save_weights("routenet_ext_geant2.rnxw");
  std::cout << "\nweights saved to routenet_ext_geant2.rnxw "
               "(what_if_queue_upgrade reuses them)\n";
  return 0;
}
