// rnx_train — train / evaluate RouteNet models on saved datasets.
//
//   rnx_train --train train.rnxd --eval test.rnxd --model ext
//             --epochs 40 --save weights.rnxw
//   rnx_train --eval test.rnxd --model ext --load weights.rnxw
//             --scaler-from train.rnxd
//
// The scaler is always fitted on the --train set (or --scaler-from when
// only evaluating), never on evaluation data.
#include <iostream>
#include <memory>
#include <optional>

#include "cli.hpp"
#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rnx;
  const cli::Args args(
      argc, argv,
      {"train", "eval", "model", "epochs", "lr", "batch", "state-dim",
       "iterations", "save", "load", "scaler-from", "seed", "threads",
       "quiet"},
      "usage: rnx_train --train ds.rnxd [--eval test.rnxd] [options]\n"
      "  --train FILE      training dataset (.rnxd)\n"
      "  --eval FILE       evaluation dataset (.rnxd)\n"
      "  --model M         ext (default) | orig\n"
      "  --epochs N        default 30\n"
      "  --lr X            default 2e-3\n"
      "  --batch N         samples per optimizer step, default 4\n"
      "  --state-dim H     default 12\n"
      "  --iterations T    message-passing rounds, default 4\n"
      "  --save FILE       write trained weights (.rnxw)\n"
      "  --load FILE       load weights instead of training\n"
      "  --scaler-from F   dataset for scaler statistics (eval-only mode)\n"
      "  --seed S          init/shuffle seed, default 42\n"
      "  --threads N       data-parallel lanes (0 = all cores), default 1;\n"
      "                    results are identical for any thread count\n"
      "  --quiet           suppress per-epoch logs");

  // Data-parallel lanes, shared by training and evaluation.
  std::size_t threads = args.get("threads", std::size_t{1});
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  const std::string model_kind = args.get("model", std::string("ext"));
  core::ModelConfig mc;
  mc.state_dim = args.get("state-dim", std::size_t{12});
  mc.iterations = args.get("iterations", std::size_t{4});
  mc.init_seed = static_cast<std::uint64_t>(args.get("seed", 42.0));

  std::unique_ptr<core::Model> model;
  if (model_kind == "ext")
    model = std::make_unique<core::ExtendedRouteNet>(mc);
  else if (model_kind == "orig")
    model = std::make_unique<core::RouteNet>(mc);
  else {
    std::cerr << "error: --model must be ext or orig\n";
    return 2;
  }

  // Resolve the dataset that defines the scaler.
  const std::string train_path = args.get("train", std::string());
  const std::string scaler_path =
      args.get("scaler-from", train_path);
  if (scaler_path.empty()) {
    std::cerr << "error: need --train or --scaler-from\n";
    return 2;
  }
  const data::Dataset scaler_ds = data::Dataset::load(scaler_path);
  const data::Scaler scaler = data::Scaler::fit(scaler_ds.samples());

  if (args.has("load")) {
    model->load_weights(args.get("load", std::string()));
    std::cout << "loaded weights from " << args.get("load", std::string())
              << "\n";
  } else {
    if (train_path.empty()) {
      std::cerr << "error: need --train (or --load)\n";
      return 2;
    }
    const data::Dataset train =
        train_path == scaler_path ? scaler_ds
                                  : data::Dataset::load(train_path);
    core::TrainConfig tc;
    tc.epochs = args.get("epochs", std::size_t{30});
    tc.lr = args.get("lr", 2e-3);
    tc.batch_samples = args.get("batch", std::size_t{4});
    tc.seed = static_cast<std::uint64_t>(args.get("seed", 42.0));
    tc.threads = threads;
    tc.verbose = !args.has("quiet");
    core::Trainer trainer(*model, tc);
    std::cout << "training " << model->name() << " on " << train.size()
              << " samples...\n";
    const auto history = trainer.fit(train, scaler);
    std::cout << "train loss " << history.front().train_loss << " -> "
              << history.back().train_loss << "\n";
  }

  if (args.has("save")) {
    model->save_weights(args.get("save", std::string()));
    std::cout << "weights written: " << args.get("save", std::string())
              << "\n";
  }

  if (args.has("eval")) {
    const data::Dataset test =
        data::Dataset::load(args.get("eval", std::string()));
    const auto pp =
        eval::predict_dataset(*model, test, scaler, 10,
                              core::PredictionTarget::kDelay,
                              pool ? &*pool : nullptr);
    const auto s = eval::summarize(pp);
    util::Table table({"metric", "value"});
    table.add_row({"paths", util::Table::cell(s.n)})
        .add_row({"median |rel err|",
                  util::Table::cell(s.median_ape * 100, 2) + " %"})
        .add_row({"P90 |rel err|",
                  util::Table::cell(s.p90_ape * 100, 2) + " %"})
        .add_row({"MAPE", util::Table::cell(s.mape * 100, 2) + " %"})
        .add_row({"MAE", util::Table::cell(s.mae * 1e3, 4) + " ms"})
        .add_row({"RMSE", util::Table::cell(s.rmse * 1e3, 4) + " ms"})
        .add_row({"Pearson r", util::Table::cell(s.pearson, 4)})
        .add_row({"R^2", util::Table::cell(s.r2, 4)});
    table.print(std::cout);
  }
  return 0;
}
