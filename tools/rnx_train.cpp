// rnx_train — train / evaluate RouteNet models on saved datasets.
//
//   rnx_train --train train.rnxd --eval test.rnxd --model ext
//             --epochs 40 --save-bundle model.rnxb
//   rnx_train --eval test.rnxd --model ext --load weights.rnxw
//             --scaler-from train.rnxd
//
// The scaler is always fitted on the --train set (or --scaler-from when
// only evaluating), never on evaluation data.  --save-bundle persists
// weights AND the fitted scaler moments (plus config/target) as one
// .rnxb artifact, so deployment (rnx_predict, serve::InferenceEngine)
// never re-fits statistics; bare --save writes weights only.
//
// Every dataset flag accepts either a monolithic .rnxd file or a
// sharded-store .rnxm manifest (detected by magic, DESIGN.md §D).
// Manifests stream: scaler fitting, training and evaluation pull
// shard-by-shard through a background prefetcher, so the dataset never
// fully materializes — corpora larger than RAM train fine.
#include <iostream>
#include <memory>
#include <optional>

#include "cli.hpp"
#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/sample_io.hpp"
#include "data/source.hpp"
#include "eval/metrics.hpp"
#include "serve/bundle.hpp"
#include "util/signal.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace rnx;
  const cli::Args args(
      argc, argv,
      {"train", "eval", "model", "target", "epochs", "lr", "batch",
       "state-dim", "iterations", "min-delivered", "save", "save-bundle",
       "load", "scaler-from", "seed", "threads", "quiet",
       "scenario-features", "scale-invariant-features",
       "link-mean-aggregation", "checkpoint-dir", "checkpoint-every",
       "resume", "quantize"},
      "usage: rnx_train --train ds.rnxd [--eval test.rnxd] [options]\n"
      "  --train FILE      training dataset (.rnxd, or a sharded .rnxm\n"
      "                    manifest — streamed, never fully in memory)\n"
      "  --eval FILE       evaluation dataset (.rnxd or .rnxm)\n"
      "  --model M         ext (default) | orig\n"
      "  --target T        regression target: delay (default) | jitter\n"
      "  --epochs N        default 30\n"
      "  --lr X            default 2e-3\n"
      "  --batch N         samples per optimizer step, default 4\n"
      "  --state-dim H     default 12\n"
      "  --iterations T    message-passing rounds, default 4\n"
      "  --min-delivered N label-quality threshold for scaler fitting,\n"
      "                    training loss and eval, default 10\n"
      "  --save FILE       write trained weights only (.rnxw)\n"
      "  --save-bundle F   write self-contained model bundle (.rnxb):\n"
      "                    weights + scaler moments + config + target\n"
      "  --quantize E      weight encoding for --save-bundle: fp64\n"
      "                    (default, byte-identical v3 bundle) | fp16 |\n"
      "                    int8 (per-tensor symmetric calibration, v4\n"
      "                    bundle; weights dequantize to fp64 on load)\n"
      "  --load FILE       load weights instead of training\n"
      "  --scaler-from F   dataset for scaler statistics (eval-only mode)\n"
      "  --seed S          init/shuffle seed, default 42\n"
      "  --threads N       data-parallel lanes (0 = all cores), default 1;\n"
      "                    results are identical for any thread count\n"
      "  --scenario-features  feed scheduling-policy / flow-class /\n"
      "                    traffic-process inputs (needs a scenario-\n"
      "                    recording dataset; persisted in the bundle)\n"
      "  --scale-invariant-features  feed dimensionless inputs (per-link\n"
      "                    utilization, traffic over bottleneck capacity,\n"
      "                    queue occupancy) instead of z-scored rates —\n"
      "                    the train-small/serve-huge mode (persisted in\n"
      "                    the bundle)\n"
      "  --link-mean-aggregation  normalize the link update's message sum\n"
      "                    by contributing-message count (persisted in\n"
      "                    the bundle)\n"
      "  --checkpoint-dir D   write a crash-safe .rnxc checkpoint to D\n"
      "                    (atomically, every --checkpoint-every batches\n"
      "                    and at each epoch end); SIGINT/SIGTERM also\n"
      "                    finalize one before exiting with code 130/143\n"
      "  --checkpoint-every N optimizer steps between checkpoints,\n"
      "                    default 25 (0 = epoch boundaries only)\n"
      "  --resume          resume from --checkpoint-dir's checkpoint; the\n"
      "                    resumed run is bitwise-identical to an\n"
      "                    uninterrupted one\n"
      "  --quiet           suppress per-epoch logs");

  // Validate the bundle encoding up front: a bad or orphaned
  // --quantize must fail before hours of training, not after.
  nn::WeightEncoding bundle_enc = nn::WeightEncoding::kFp64;
  try {
    bundle_enc =
        nn::parse_weight_encoding(args.get("quantize", std::string("fp64")));
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: --quantize: " << e.what() << "\n";
    return 2;
  }
  if (args.has("quantize") && !args.has("save-bundle")) {
    std::cerr << "error: --quantize requires --save-bundle\n";
    return 2;
  }

  // Data-parallel lanes, shared by training and evaluation.
  std::size_t threads = args.get("threads", std::size_t{1});
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  const std::string model_kind = args.get("model", std::string("ext"));
  core::ModelConfig mc;
  mc.state_dim = args.get("state-dim", std::size_t{12});
  mc.iterations = args.get("iterations", std::size_t{4});
  mc.init_seed = args.get("seed", std::size_t{42});
  mc.scenario_features = args.has("scenario-features");
  mc.scale_invariant_features = args.has("scale-invariant-features");
  mc.link_mean_aggregation = args.has("link-mean-aggregation");

  const auto kind = core::model_kind_from_string(model_kind);
  if (!kind) {
    std::cerr << "error: --model must be ext or orig\n";
    return 2;
  }
  const std::unique_ptr<core::Model> model = core::make_model(*kind, mc);

  const auto target =
      core::target_from_string(args.get("target", std::string("delay")));
  if (!target) {
    std::cerr << "error: --target must be delay or jitter\n";
    return 2;
  }
  const std::size_t min_delivered = args.get("min-delivered", std::size_t{10});

  // Resolve the dataset that defines the scaler.  Manifests (.rnxm)
  // stream shard-by-shard; monolithic files load once and are reused
  // for training when --train names the same file.
  const std::string train_path = args.get("train", std::string());
  const std::string scaler_path =
      args.get("scaler-from", train_path);
  if (scaler_path.empty()) {
    std::cerr << "error: need --train or --scaler-from\n";
    return 2;
  }
  std::optional<data::Dataset> scaler_ds;  // monolithic scaler set only
  const data::Scaler scaler = [&] {
    if (data::is_manifest_file(scaler_path)) {
      data::StreamingShardSource src(scaler_path);
      return data::Scaler::fit(src, min_delivered);
    }
    scaler_ds.emplace(data::Dataset::load(scaler_path));
    return data::Scaler::fit(scaler_ds->samples(), min_delivered);
  }();

  if (args.has("load")) {
    model->load_weights(args.get("load", std::string()));
    std::cout << "loaded weights from " << args.get("load", std::string())
              << "\n";
  } else {
    if (train_path.empty()) {
      std::cerr << "error: need --train (or --load)\n";
      return 2;
    }
    core::TrainConfig tc;
    tc.epochs = args.get("epochs", std::size_t{30});
    tc.lr = args.get("lr", 2e-3);
    tc.batch_samples = args.get("batch", std::size_t{4});
    tc.min_delivered = min_delivered;
    tc.target = *target;
    tc.seed = args.get("seed", std::size_t{42});
    tc.threads = threads;
    tc.verbose = !args.has("quiet");
    tc.checkpoint_dir = args.get("checkpoint-dir", std::string());
    tc.checkpoint_every = args.get("checkpoint-every", std::size_t{25});
    tc.resume = args.has("resume");
    if (!tc.checkpoint_dir.empty()) {
      // A crash between flush and rename leaves a *.tmp twin behind;
      // sweep it so the directory always holds exactly the real files.
      const std::size_t stale =
          data::io::remove_stale_temps(tc.checkpoint_dir);
      if (stale != 0 && tc.verbose)
        std::cout << "removed " << stale << " stale temp file(s) from "
                  << tc.checkpoint_dir << "\n";
      util::install_interrupt_handlers();
      tc.stop_requested = [] { return util::interrupt_requested(); };
    }
    core::Trainer trainer(*model, tc);
    std::vector<core::EpochRecord> history;
    if (data::is_manifest_file(train_path)) {
      data::StreamingShardSource train_src(train_path);
      std::cout << "training " << model->name() << " on "
                << train_src.size() << " samples (target: "
                << core::to_string(*target) << ", streaming "
                << train_src.reader().num_shards() << " shards)...\n";
      history = trainer.fit_stream(train_src, scaler);
    } else {
      const data::Dataset train =
          train_path == scaler_path && scaler_ds
              ? std::move(*scaler_ds)
              : data::Dataset::load(train_path);
      std::cout << "training " << model->name() << " on " << train.size()
                << " samples (target: " << core::to_string(*target)
                << ")...\n";
      history = trainer.fit(train, scaler);
    }
    if (trainer.interrupted()) {
      // The signal landed at a batch boundary and a final checkpoint was
      // written; conventional 128+signum exit, nothing half-saved.
      std::cout << "interrupted: checkpoint finalized in "
                << tc.checkpoint_dir << "; rerun with --resume to continue\n";
      return util::interrupt_exit_code();
    }
    if (history.empty())
      std::cout << "no epochs trained (--epochs 0): weights stay at "
                   "initialization\n";
    else
      std::cout << "train loss " << history.front().train_loss << " -> "
                << history.back().train_loss << "\n";
  }

  if (args.has("save")) {
    model->save_weights(args.get("save", std::string()));
    std::cout << "weights written: " << args.get("save", std::string())
              << "\n";
  }
  if (args.has("save-bundle")) {
    const std::string path = args.get("save-bundle", std::string());
    serve::save_bundle(path, *model, scaler, *target, min_delivered,
                       bundle_enc);
    std::cout << "model bundle written: " << path << " ("
              << nn::to_string(bundle_enc) << " weights)\n";
  }

  if (args.has("eval")) {
    const std::string eval_path = args.get("eval", std::string());
    if (data::is_manifest_file(eval_path)) {
      data::StreamingShardSource test(eval_path);
      const auto pp =
          eval::predict_source(*model, test, scaler, min_delivered, *target,
                               pool ? &*pool : nullptr);
      eval::print_summary(std::cout, eval::summarize(pp), *target);
    } else {
      const data::Dataset test = data::Dataset::load(eval_path);
      const auto pp =
          eval::predict_dataset(*model, test, scaler, min_delivered, *target,
                                pool ? &*pool : nullptr);
      eval::print_summary(std::cout, eval::summarize(pp), *target);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // Corrupt weight/dataset files and I/O failures surface here as
    // clean diagnostics instead of std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
