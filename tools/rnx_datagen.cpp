// rnx_datagen — generate RouteNet datasets from the command line.
//
//   rnx_datagen --topo geant2 --count 200 --seed 1 --out train.rnxd
//   rnx_datagen --topo nsfnet --count 50 --p-tiny 0.5 --csv out.csv
//   rnx_datagen --topo nsfnet --count 50 --policy drr --traffic onoff
//               --priority-classes 3 --out bursty.rnxd
//   rnx_datagen --topo mix --count 5000 --threads 0 --shards 16
//               --out corpus.rnxm
//
// Topologies: geant2, nsfnet, ring<N>, line<N>, rand<N>x<M> (N nodes,
// M undirected edges; seeded by --seed), ba (Barabási–Albert with
// --nodes up to 300 — the large evaluation graphs for size
// generalization), or mix (per-sample random topology from {geant2,
// nsfnet, random_connected, barabasi_albert} with randomized size — the
// cross-topology generalization corpus).
// Scenario knobs (DESIGN.md §S): --policy / --traffic fix one
// scheduling policy and traffic process for the whole dataset;
// --mixed-scenarios draws the pair per sample instead.
//
// --threads fans the simulation out over parallel lanes; output is
// bitwise-identical for ANY thread count (ordered commit, DESIGN.md
// §D).  --shards writes a sharded store (.rnxm manifest + .rnxd shard
// files) streamingly — peak memory one shard, so corpus size is
// disk-bound, not RAM-bound.  --digests dumps one FNV-1a digest per
// sample; identical digests across thread counts / shard layouts is
// the equivalence CI pins.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "cli.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/sample_io.hpp"
#include "data/shards.hpp"
#include "sim/scenario.hpp"
#include "topo/zoo.hpp"
#include "util/signal.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Thrown out of the sample sink when SIGINT/SIGTERM lands: unwinds the
/// generator (which joins its lanes), after which the committed prefix
/// is finalized as a valid, smaller dataset.
struct Interrupted {};

rnx::topo::Topology parse_topology(const std::string& name,
                                   std::uint64_t seed, std::size_t nodes) {
  using namespace rnx::topo;
  if (name == "geant2") return geant2();
  if (name == "nsfnet") return nsfnet();
  if (name == "ba") {
    // Barabási–Albert evaluation graphs for size generalization
    // (train small, serve huge): up to 300 nodes.
    if (nodes < 3 || nodes > 300)
      throw std::invalid_argument("--topo ba needs --nodes in [3, 300]");
    rnx::util::RngStream rng(seed ^ 0x6261ULL);  // "ba"
    return barabasi_albert(nodes, 2, rng);
  }
  if (name.rfind("ring", 0) == 0)
    return ring(static_cast<std::size_t>(std::stoul(name.substr(4))));
  if (name.rfind("line", 0) == 0)
    return line(static_cast<std::size_t>(std::stoul(name.substr(4))));
  if (name.rfind("rand", 0) == 0) {
    const auto x = name.find('x');
    if (x == std::string::npos)
      throw std::invalid_argument("rand topology needs NxM");
    const auto n = static_cast<std::size_t>(std::stoul(name.substr(4, x - 4)));
    const auto m = static_cast<std::size_t>(std::stoul(name.substr(x + 1)));
    rnx::util::RngStream rng(seed ^ 0x70706fULL);
    return random_connected(n, m, rng);
  }
  throw std::invalid_argument("unknown topology: " + name);
}

std::string hex_digest(std::uint64_t d) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(d));
  return buf;
}

}  // namespace

int run(int argc, char** argv) {
  using namespace rnx;
  const cli::Args args(
      argc, argv,
      {"topo", "count", "seed", "out", "csv", "p-tiny", "packets",
       "util-lo", "util-hi", "fixed-routing", "policy", "traffic",
       "priority-classes", "mixed-scenarios", "threads", "shards",
       "digests", "nodes"},
      "usage: rnx_datagen --topo geant2 --count 100 --out ds.rnxd\n"
      "  --topo NAME      geant2 | nsfnet | ringN | lineN | randNxM |\n"
      "                   ba (Barabási–Albert, size via --nodes) | mix\n"
      "                   (mix = per-sample random topology/size)\n"
      "  --nodes N        ba topology size, 3..300 (default 50; ba only)\n"
      "  --count N        samples to generate (default 100)\n"
      "  --seed S         dataset RNG seed (default 1)\n"
      "  --out FILE       binary dataset output (.rnxd; with --shards, the\n"
      "                   .rnxm manifest of a sharded store)\n"
      "  --csv FILE       also export per-path CSV\n"
      "  --digests FILE   one FNV-1a digest per sample (hex, in order) —\n"
      "                   identical for any --threads/--shards layout\n"
      "  --threads N      parallel simulation lanes (0 = all cores),\n"
      "                   default 1; output bitwise-identical regardless\n"
      "  --shards N       write N on-disk shards + manifest, streamingly\n"
      "  --p-tiny P       P(node gets a 1-packet queue), default 0.5\n"
      "  --packets N      simulated packets per sample, default 100000\n"
      "  --util-lo/hi U   target max-utilization range, default 0.4/0.95\n"
      "  --fixed-routing  hop-count routing instead of randomized weights\n"
      "  --policy P       port scheduler: fifo (default) | prio | drr\n"
      "  --traffic T      arrival process: poisson (default) | cbr | onoff\n"
      "  --priority-classes N  flow classes for prio/drr, default 1\n"
      "  --mixed-scenarios     draw (policy, traffic) per sample");

  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1.0));
  const std::string topo_name = args.get("topo", std::string("geant2"));
  if (args.has("nodes") && topo_name != "ba") {
    std::cerr << "error: --nodes only applies to --topo ba\n";
    return 2;
  }
  const std::size_t nodes = args.get("nodes", std::size_t{50});
  data::TopologySampler sampler;
  std::string topo_label;
  if (topo_name == "mix") {
    sampler = data::mixed_topology();
    topo_label = "mix";
  } else {
    topo::Topology base = parse_topology(topo_name, seed, nodes);
    topo_label = base.name();
    sampler = data::fixed_topology(std::move(base));
  }

  data::GeneratorConfig cfg;
  cfg.p_tiny_queue = args.get("p-tiny", 0.5);
  cfg.target_packets = args.get("packets", std::size_t{100'000});
  cfg.util_lo = args.get("util-lo", 0.4);
  cfg.util_hi = args.get("util-hi", 0.95);
  cfg.randomize_routing = !args.has("fixed-routing");

  const std::string policy_s = args.get("policy", std::string("fifo"));
  const auto policy = sim::policy_from_string(policy_s);
  if (!policy) {
    std::cerr << "error: --policy must be fifo, prio or drr (got '"
              << policy_s << "')\n";
    return 2;
  }
  cfg.scenario.policy = *policy;
  const std::string traffic_s = args.get("traffic", std::string("poisson"));
  const auto traffic = sim::traffic_from_string(traffic_s);
  if (!traffic) {
    std::cerr << "error: --traffic must be poisson, cbr or onoff (got '"
              << traffic_s << "')\n";
    return 2;
  }
  cfg.scenario.traffic = *traffic;
  cfg.scenario.priority_classes = static_cast<std::uint32_t>(
      args.get("priority-classes", std::size_t{1}));
  cfg.mixed_scenarios = args.has("mixed-scenarios");
  cfg.validate();

  const std::size_t count = args.get("count", std::size_t{100});
  const std::size_t threads = args.get("threads", std::size_t{1});
  const std::size_t shards = args.get("shards", std::size_t{0});
  const std::string out = args.get("out", std::string());
  if (shards > 0 && out.empty()) {
    std::cerr << "error: --shards needs --out (the manifest path)\n";
    return 2;
  }

  std::optional<std::ofstream> digests;
  if (const auto dig = args.get("digests", std::string()); !dig.empty()) {
    digests.emplace(dig);
    if (!*digests) {
      std::cerr << "error: cannot open " << dig << "\n";
      return 1;
    }
  }
  std::optional<util::CsvWriter> csv;
  if (const auto path = args.get("csv", std::string()); !path.empty())
    csv.emplace(path, data::dataset_csv_header());

  std::cout << "generating " << count << " samples on " << topo_label
            << " (seed " << seed << ", policy " << sim::to_string(*policy)
            << ", traffic " << sim::to_string(*traffic)
            << (cfg.mixed_scenarios ? ", mixed" : "") << ", threads "
            << threads;
  if (shards > 0) std::cout << ", shards " << shards;
  std::cout << ")...\n";

  const auto progress = [](std::size_t done, std::size_t total) {
    if (done % 25 == 0 || done == total)
      std::cout << "  " << done << "/" << total << "\n";
  };
  // Interrupt discipline: handlers latch the signal; the sink (ordered,
  // serialized) polls it between samples and unwinds, so the store is
  // finalized from the committed prefix — every artifact on disk stays
  // complete and loadable, just shorter.  Stale *.tmp twins from an
  // earlier hard crash are swept before generating.
  util::install_interrupt_handlers();
  if (!out.empty())
    data::io::remove_stale_temps(
        std::filesystem::path(out).parent_path().string());

  util::Stopwatch watch;
  std::size_t total_paths = 0;
  std::size_t committed = 0;
  bool interrupted = false;
  const auto feed_side_outputs = [&](std::size_t i, const data::Sample& s) {
    if (util::interrupt_requested()) throw Interrupted{};
    total_paths += s.paths.size();
    if (digests) *digests << hex_digest(data::io::sample_digest(s)) << "\n";
    if (csv) data::append_csv_rows(*csv, s, i);
    committed = i + 1;
  };

  if (shards > 0) {
    const std::size_t per_shard = (count + shards - 1) / shards;
    data::ShardWriter writer(out, std::max<std::size_t>(per_shard, 1), seed,
                             data::config_digest(cfg));
    try {
      data::generate_dataset_stream(
          sampler, count, cfg, seed, threads,
          [&](std::size_t i, data::Sample s) {
            feed_side_outputs(i, s);
            writer.add(s);
          },
          progress);
    } catch (const Interrupted&) {
      interrupted = true;
    }
    // finish() flushes the buffered partial shard and writes the
    // manifest atomically: interrupted or not, the store is valid.
    const data::ShardManifest manifest = writer.finish();
    std::cout << "done in " << watch.seconds() << " s (" << total_paths
              << " paths)\n";
    std::cout << "sharded store written: " << out << " ("
              << manifest.shards.size() << " shards, "
              << manifest.total_samples << " samples)\n";
  } else {
    std::vector<data::Sample> samples(count);
    try {
      data::generate_dataset_stream(
          sampler, count, cfg, seed, threads,
          [&](std::size_t i, data::Sample s) {
            feed_side_outputs(i, s);
            samples[i] = std::move(s);
          },
          progress);
    } catch (const Interrupted&) {
      interrupted = true;
      samples.resize(committed);  // ordered commit: the prefix is whole
    }
    const data::Dataset ds(std::move(samples));
    std::cout << "done in " << watch.seconds() << " s (" << total_paths
              << " paths)\n";
    if (!out.empty() && (!interrupted || !ds.empty())) {
      ds.save(out);
      std::cout << "dataset written: " << out << "\n";
    }
  }
  if (interrupted)
    std::cout << "interrupted: committed prefix finalized (" << committed
              << "/" << count << " samples)\n";
  if (csv) std::cout << "csv written: " << csv->path() << "\n";
  if (digests) {
    // The digest file is the determinism artifact CI diffs — a silently
    // truncated one (disk full) must fail the run, not pass as empty.
    digests->flush();
    if (!*digests) {
      std::cerr << "error: write failed on "
                << args.get("digests", std::string()) << "\n";
      return 1;
    }
    std::cout << "digests written: " << args.get("digests", std::string())
              << "\n";
  }
  if (!args.has("out") && !args.has("csv") && !args.has("digests"))
    std::cout << "(no --out/--csv/--digests given: dry run)\n";
  return interrupted ? util::interrupt_exit_code() : 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // Bad topology specs and out-of-range generator configs surface as
    // clean diagnostics instead of std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
