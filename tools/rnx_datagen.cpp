// rnx_datagen — generate RouteNet datasets from the command line.
//
//   rnx_datagen --topo geant2 --count 200 --seed 1 --out train.rnxd
//   rnx_datagen --topo nsfnet --count 50 --p-tiny 0.5 --csv out.csv
//   rnx_datagen --topo nsfnet --count 50 --policy drr --traffic onoff
//               --priority-classes 3 --out bursty.rnxd
//
// Topologies: geant2, nsfnet, ring<N>, line<N>, rand<N>x<M> (N nodes,
// M undirected edges; seeded by --seed).  Scenario knobs (DESIGN.md §S):
// --policy / --traffic fix one scheduling policy and traffic process for
// the whole dataset; --mixed-scenarios draws the pair per sample instead.
#include <iostream>

#include "cli.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "sim/scenario.hpp"
#include "topo/zoo.hpp"
#include "util/timer.hpp"

namespace {

rnx::topo::Topology parse_topology(const std::string& name,
                                   std::uint64_t seed) {
  using namespace rnx::topo;
  if (name == "geant2") return geant2();
  if (name == "nsfnet") return nsfnet();
  if (name.rfind("ring", 0) == 0)
    return ring(static_cast<std::size_t>(std::stoul(name.substr(4))));
  if (name.rfind("line", 0) == 0)
    return line(static_cast<std::size_t>(std::stoul(name.substr(4))));
  if (name.rfind("rand", 0) == 0) {
    const auto x = name.find('x');
    if (x == std::string::npos)
      throw std::invalid_argument("rand topology needs NxM");
    const auto n = static_cast<std::size_t>(std::stoul(name.substr(4, x - 4)));
    const auto m = static_cast<std::size_t>(std::stoul(name.substr(x + 1)));
    rnx::util::RngStream rng(seed ^ 0x70706fULL);
    return random_connected(n, m, rng);
  }
  throw std::invalid_argument("unknown topology: " + name);
}

}  // namespace

int run(int argc, char** argv) {
  using namespace rnx;
  const cli::Args args(
      argc, argv,
      {"topo", "count", "seed", "out", "csv", "p-tiny", "packets",
       "util-lo", "util-hi", "fixed-routing", "policy", "traffic",
       "priority-classes", "mixed-scenarios"},
      "usage: rnx_datagen --topo geant2 --count 100 --out ds.rnxd\n"
      "  --topo NAME      geant2 | nsfnet | ringN | lineN | randNxM\n"
      "  --count N        samples to generate (default 100)\n"
      "  --seed S         dataset RNG seed (default 1)\n"
      "  --out FILE       binary dataset output (.rnxd)\n"
      "  --csv FILE       also export per-path CSV\n"
      "  --p-tiny P       P(node gets a 1-packet queue), default 0.5\n"
      "  --packets N      simulated packets per sample, default 100000\n"
      "  --util-lo/hi U   target max-utilization range, default 0.4/0.95\n"
      "  --fixed-routing  hop-count routing instead of randomized weights\n"
      "  --policy P       port scheduler: fifo (default) | prio | drr\n"
      "  --traffic T      arrival process: poisson (default) | cbr | onoff\n"
      "  --priority-classes N  flow classes for prio/drr, default 1\n"
      "  --mixed-scenarios     draw (policy, traffic) per sample");

  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1.0));
  const topo::Topology topo =
      parse_topology(args.get("topo", std::string("geant2")), seed);

  data::GeneratorConfig cfg;
  cfg.p_tiny_queue = args.get("p-tiny", 0.5);
  cfg.target_packets = args.get("packets", std::size_t{100'000});
  cfg.util_lo = args.get("util-lo", 0.4);
  cfg.util_hi = args.get("util-hi", 0.95);
  cfg.randomize_routing = !args.has("fixed-routing");

  const std::string policy_s = args.get("policy", std::string("fifo"));
  const auto policy = sim::policy_from_string(policy_s);
  if (!policy) {
    std::cerr << "error: --policy must be fifo, prio or drr (got '"
              << policy_s << "')\n";
    return 2;
  }
  cfg.scenario.policy = *policy;
  const std::string traffic_s = args.get("traffic", std::string("poisson"));
  const auto traffic = sim::traffic_from_string(traffic_s);
  if (!traffic) {
    std::cerr << "error: --traffic must be poisson, cbr or onoff (got '"
              << traffic_s << "')\n";
    return 2;
  }
  cfg.scenario.traffic = *traffic;
  cfg.scenario.priority_classes = static_cast<std::uint32_t>(
      args.get("priority-classes", std::size_t{1}));
  cfg.mixed_scenarios = args.has("mixed-scenarios");
  cfg.validate();

  const std::size_t count = args.get("count", std::size_t{100});
  std::cout << "generating " << count << " samples on " << topo.name()
            << " (seed " << seed << ", policy " << sim::to_string(*policy)
            << ", traffic " << sim::to_string(*traffic)
            << (cfg.mixed_scenarios ? ", mixed" : "") << ")...\n";
  util::Stopwatch watch;
  data::Dataset ds(data::generate_dataset(
      topo, count, cfg, seed, [](std::size_t done, std::size_t total) {
        if (done % 25 == 0 || done == total)
          std::cout << "  " << done << "/" << total << "\n";
      }));
  std::cout << "done in " << watch.seconds() << " s (" << ds.total_paths()
            << " paths)\n";

  if (const auto out = args.get("out", std::string()); !out.empty()) {
    ds.save(out);
    std::cout << "dataset written: " << out << "\n";
  }
  if (const auto csv = args.get("csv", std::string()); !csv.empty()) {
    ds.export_csv(csv);
    std::cout << "csv written: " << csv << "\n";
  }
  if (!args.has("out") && !args.has("csv"))
    std::cout << "(no --out/--csv given: dry run)\n";
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // Bad topology specs and out-of-range generator configs surface as
    // clean diagnostics instead of std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
