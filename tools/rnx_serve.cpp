// rnx_serve — multi-bundle micro-batching serving harness.
//
//   rnx_serve --bundle delay=d.rnxb --bundle jitter=j.rnxb
//             --data scenarios.rnxd --requests 512 --clients 8 --verify
//
// Loads every named bundle into one serve::ModelRegistry (shared plan
// cache + shared fan-out pool), starts a serve::BatchScheduler in
// threaded mode, and drives it with a deterministic replay workload: a
// producer paces request descriptors (model name + sample index) through
// a util::BoundedQueue, client threads pop, submit, and wait — the
// closed-loop shape of an operator API in front of the scheduler.
// Prints the ServeStats snapshot plus client-side p50/p99 latency and
// throughput; --verify additionally rechecks every response bitwise
// against direct InferenceEngine::predict, which is the scheduler's
// determinism contract (DESIGN.md §B2).  Exits 1 on any mismatch.
//
// Degradation rig (DESIGN.md §R): --deadline-ms attaches a completion
// deadline to every request (expired ones resolve with
// DeadlineExceededError, never a lost future); SIGINT/SIGTERM — or
// --term-after N, which raises SIGTERM deterministically after N
// requests for CI replay — stops the producer and drains gracefully:
// admitted requests complete, late ones shed with kDraining, and the
// final ServeStats snapshot is printed before exiting 128+signum.
// Either way the run self-checks the conservation laws
// (submitted == admitted + shed; every admitted future resolved) and
// exits 1 when they do not hold.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <iostream>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "cli.hpp"
#include "data/dataset.hpp"
#include "nn/kernels.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "util/bounded_queue.hpp"
#include "util/rng.hpp"
#include "util/signal.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace rnx;

struct RequestPlan {
  std::size_t model;   ///< index into names
  std::size_t sample;  ///< index into the dataset
};

int run(int argc, char** argv) {
  const cli::Args args(
      argc, argv,
      {"bundle", "data", "requests", "clients", "threads", "max-batch",
       "linger-us", "queue-depth", "seed", "verify", "deadline-ms",
       "term-after", "plan-cache-mb"},
      "usage: rnx_serve --bundle NAME=FILE [--bundle NAME=FILE ...] "
      "--data ds.rnxd [options]\n"
      "  --bundle NAME=FILE  register bundle FILE as model NAME\n"
      "                      (bare FILE registers as 'default')\n"
      "  --data FILE         scenarios to replay as requests (.rnxd)\n"
      "  --requests N        total requests to issue (default 256)\n"
      "  --clients C         concurrent client threads (default 4)\n"
      "  --threads T         fan-out lanes, 0 = all cores (default 0)\n"
      "  --max-batch B       micro-batch sample bound (default 16)\n"
      "  --linger-us L       micro-batch linger in us (default 100)\n"
      "  --queue-depth Q     admission bound in requests (default 1024)\n"
      "  --plan-cache-mb M   cap the shared plan cache at M MiB (LRU\n"
      "                      eviction); peak bytes / evictions appear in\n"
      "                      the final stats so the budget can be sized\n"
      "  --seed S            request routing seed (default 1)\n"
      "  --deadline-ms D     per-request completion deadline (0 = none);\n"
      "                      expired requests resolve with a typed error\n"
      "  --term-after N      raise SIGTERM after issuing N requests — the\n"
      "                      deterministic drain-path replay for CI\n"
      "  --verify            recheck every response bitwise vs predict()\n"
      "\n"
      "SIGINT/SIGTERM drain gracefully: admitted requests complete, new\n"
      "ones shed, final stats print, exit 128+signum.");

  const std::vector<std::string> bundle_specs = args.all("bundle");
  const std::string data_path = args.get("data", std::string());
  if (bundle_specs.empty() || data_path.empty()) {
    std::cerr << "error: need at least one --bundle and --data\n";
    return 2;
  }

  std::cout << "kernels: " << nn::kernels::active().name << " ("
            << nn::kernels::dispatch_reason() << ")\n";

  serve::ModelRegistry registry(args.get("threads", std::size_t{0}));
  if (args.has("plan-cache-mb"))
    registry.set_plan_cache_budget(
        args.get_positive("plan-cache-mb", std::size_t{64}) * 1024 * 1024);
  std::vector<std::string> names;
  for (const std::string& spec : bundle_specs) {
    const auto eq = spec.find('=');
    const std::string name =
        eq == std::string::npos ? "default" : spec.substr(0, eq);
    const std::string path =
        eq == std::string::npos ? spec : spec.substr(eq + 1);
    try {
      registry.add(name, path);
    } catch (const std::invalid_argument& e) {
      // Empty/duplicate names are usage errors (exit 2, like cli.hpp),
      // not runtime failures.
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    names.push_back(name);
    const serve::InferenceEngine& e = registry.at(name);
    std::cout << "model '" << name << "': " << e.model().name()
              << ", target " << core::to_string(e.target()) << " ("
              << path << ")\n";
  }

  const data::Dataset ds = data::Dataset::load(data_path);
  if (ds.size() == 0) {
    std::cerr << "error: dataset holds no samples\n";
    return 2;
  }

  serve::SchedulerConfig cfg;
  cfg.max_queue_depth = args.get("queue-depth", std::size_t{1024});
  cfg.max_batch_samples = args.get("max-batch", std::size_t{16});
  cfg.max_linger =
      std::chrono::microseconds(args.get("linger-us", std::size_t{100}));
  serve::BatchScheduler scheduler(cfg, registry.pool());

  serve::SubmitOptions submit_opts;
  submit_opts.deadline = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::milliseconds(args.get("deadline-ms", std::size_t{0})));
  const std::size_t term_after = args.get("term-after", std::size_t{0});
  util::install_interrupt_handlers();

  // Deterministic workload: one stream draws every request's route.
  const std::size_t requests = args.get("requests", std::size_t{256});
  const std::size_t clients = std::max<std::size_t>(
      args.get("clients", std::size_t{4}), 1);
  util::RngStream rng(args.get("seed", std::size_t{1}));
  std::vector<RequestPlan> plan(requests);
  for (RequestPlan& r : plan) {
    r.model = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(names.size()) - 1));
    r.sample = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ds.size()) - 1));
  }

  std::cout << "replaying " << requests << " requests over " << ds.size()
            << " samples, " << clients << " clients, batch<="
            << cfg.max_batch_samples << ", linger "
            << cfg.max_linger.count() << "us\n";

  // Producer -> clients: descriptor indices through a bounded queue.
  util::BoundedQueue<std::size_t> feed(2 * clients + 1);
  struct ClientLog {
    std::vector<double> latency_us;
    std::vector<std::size_t> answered;  ///< plan indices, for --verify
    std::vector<std::vector<double>> responses;
    std::size_t admitted = 0;  ///< futures handed out — all must resolve
    std::size_t resolved = 0;  ///< futures that delivered value OR error
    std::size_t shed = 0;
    std::size_t expired = 0;    ///< DeadlineExceededError resolutions
    std::size_t cancelled = 0;  ///< Cancelled/ShutdownError resolutions
    std::size_t failed = 0;
    std::string first_error;
  };
  std::vector<ClientLog> logs(clients);
  const bool verify = args.has("verify");

  util::Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c)
    workers.emplace_back([&, c] {
      ClientLog& log = logs[c];
      while (const std::optional<std::size_t> idx = feed.pop()) {
        const RequestPlan& r = plan[*idx];
        const auto t0 = std::chrono::steady_clock::now();
        serve::Submitted sub =
            scheduler.submit(registry, names[r.model],
                             std::span(&ds[r.sample], 1), submit_opts);
        if (!sub.admitted()) {
          ++log.shed;
          continue;
        }
        ++log.admitted;
        serve::PredictionSet got;
        try {
          got = sub.result.get();
          ++log.resolved;
        } catch (const serve::DeadlineExceededError&) {
          // The deadline passed while queued: typed, counted, and the
          // forward pass was never paid — degradation, not failure.
          ++log.resolved;
          ++log.expired;
          continue;
        } catch (const serve::CancelledError&) {
          ++log.resolved;
          ++log.cancelled;
          continue;
        } catch (const serve::ShutdownError&) {
          ++log.resolved;
          ++log.cancelled;
          continue;
        } catch (const std::exception& e) {
          // A failed request (e.g. feature-gating) is a reportable
          // outcome for the harness, not a process abort.
          ++log.resolved;
          if (log.failed++ == 0) log.first_error = e.what();
          continue;
        }
        const auto t1 = std::chrono::steady_clock::now();
        log.latency_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        if (verify) {
          log.answered.push_back(*idx);
          log.responses.push_back(std::move(got[0]));
        }
      }
    });

  std::size_t issued = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (term_after != 0 && issued >= term_after &&
        !util::interrupt_requested())
      std::raise(SIGTERM);  // the deterministic CI stand-in for operator ^C
    if (util::interrupt_requested()) break;
    bool pushed = false;
    while (!(pushed = feed.try_push(i)) && !util::interrupt_requested())
      std::this_thread::yield();
    if (!pushed) break;
    ++issued;
  }
  // Graceful drain on signal (or normal end-of-workload): stop feeding,
  // let clients finish their in-hand requests, then drain the scheduler
  // so every admitted future resolves before stats print.
  feed.close();
  for (std::thread& w : workers) w.join();
  const bool interrupted = util::interrupt_requested();
  if (interrupted)
    std::cout << "signal received after " << issued << "/" << requests
              << " requests: draining scheduler...\n";
  scheduler.drain();
  const double wall_s = wall.seconds();

  serve::ServeStats stats = scheduler.stats();
  stats.plan_cache = registry.plan_cache().stats();
  serve::print_stats(std::cout, stats);

  std::vector<double> lat;
  std::size_t admitted = 0, resolved = 0, shed = 0, expired = 0,
              cancelled = 0, failed = 0;
  std::string first_error;
  for (const ClientLog& log : logs) {
    lat.insert(lat.end(), log.latency_us.begin(), log.latency_us.end());
    admitted += log.admitted;
    resolved += log.resolved;
    shed += log.shed;
    expired += log.expired;
    cancelled += log.cancelled;
    failed += log.failed;
    if (first_error.empty()) first_error = log.first_error;
  }
  if (failed != 0)
    std::cout << "requests failed: " << failed << " (first: " << first_error
              << ")\n";
  std::sort(lat.begin(), lat.end());
  std::cout << "client side: " << lat.size() << " answered, " << shed
            << " shed, " << expired << " expired, " << cancelled
            << " cancelled, wall " << wall_s << " s, throughput "
            << (wall_s > 0 ? static_cast<double>(lat.size()) / wall_s : 0)
            << " req/s\n"
            << "latency p50 "
            << (lat.empty() ? 0.0 : util::percentile(lat, 50))
            << " us, p99 "
            << (lat.empty() ? 0.0 : util::percentile(lat, 99))
            << " us, max " << (lat.empty() ? 0.0 : lat.back()) << " us\n";

  if (verify) {
    // Requests draw (model, sample) with replacement, so memoize the
    // direct predictions: O(unique pairs) forwards, not O(requests).
    std::map<std::pair<std::size_t, std::size_t>, std::vector<double>>
        reference;
    std::size_t mismatches = 0;
    for (const ClientLog& log : logs)
      for (std::size_t i = 0; i < log.answered.size(); ++i) {
        const RequestPlan& r = plan[log.answered[i]];
        auto [it, fresh] = reference.try_emplace({r.model, r.sample});
        if (fresh)
          it->second = registry.at(names[r.model]).predict(ds[r.sample]);
        if (log.responses[i] != it->second) ++mismatches;
      }
    std::cout << "verify: " << mismatches
              << " mismatches vs direct predict()\n";
    if (mismatches != 0) return 1;
  }

  // Conservation self-checks (DESIGN.md §R): every submission is
  // accounted for, and every admitted future resolved — a violation
  // means the scheduler lost a request, which no exit path may mask.
  bool conserved = true;
  if (stats.submitted != stats.admitted + stats.shed) {
    std::cerr << "CONSERVATION VIOLATION: submitted " << stats.submitted
              << " != admitted " << stats.admitted << " + shed "
              << stats.shed << "\n";
    conserved = false;
  }
  if (stats.admitted != admitted) {
    std::cerr << "CONSERVATION VIOLATION: scheduler admitted "
              << stats.admitted << " != client-side admitted " << admitted
              << "\n";
    conserved = false;
  }
  if (resolved != admitted) {
    std::cerr << "CONSERVATION VIOLATION: " << (admitted - resolved)
              << " admitted future(s) never resolved (admitted " << admitted
              << ", resolved " << resolved << ")\n";
    conserved = false;
  }
  if (!conserved) return 1;
  std::cout << "conservation: ok (submitted == admitted + shed; "
               "all futures resolved)\n";
  if (interrupted) {
    std::cout << "drained after signal; exiting "
              << util::interrupt_exit_code() << "\n";
    return util::interrupt_exit_code();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
