// rnx_predict — serve predictions from a self-contained model bundle.
//
//   rnx_predict --bundle model.rnxb --data test.rnxd
//   rnx_predict --bundle model.rnxb --data scenarios.rnxd --csv preds.csv
//
// The bundle carries weights, scaler moments, model config and target,
// so no training dataset (and no scaler re-fit) is needed: metrics here
// reproduce `rnx_train --load --eval --scaler-from <train-set>` exactly.
// Labeled datasets additionally get the regression metric table; --csv
// dumps one row per path for external tooling.
//
// --data also accepts a sharded .rnxm manifest (DESIGN.md §D): samples
// then stream shard-by-shard through eval::predict_source — CSV rows
// and metrics are produced without ever materializing the dataset, and
// the model runs plan-cache-detached (streamed sample addresses are
// transient, so address-keyed plan entries would go stale).
#include <fstream>
#include <iostream>
#include <optional>

#include "cli.hpp"
#include "data/source.hpp"
#include "eval/metrics.hpp"
#include "nn/kernels.hpp"
#include "serve/inference.hpp"

namespace {

// Streaming path: drive the bundle's model directly (no InferenceEngine
// — its persistent plan cache is exactly what transient samples must
// not touch).  Output format matches the monolithic path line for line.
int run_streaming(const std::string& bundle_path,
                  const std::string& data_path, const std::string& csv_path,
                  std::size_t threads, bool metrics) {
  using namespace rnx;
  serve::ModelBundle bundle = serve::load_bundle(bundle_path);
  std::cout << "bundle: " << bundle_path << " (" << bundle.model->name()
            << ", target " << core::to_string(bundle.target)
            << ", state_dim " << bundle.model->config().state_dim
            << ", iterations " << bundle.model->config().iterations
            << ", " << nn::to_string(bundle.encoding) << " weights)\n";
  std::cout << "kernels: " << nn::kernels::active().name << " ("
            << nn::kernels::dispatch_reason() << ")\n";

  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  data::StreamingShardSource src(data_path);
  std::cout << "predicting " << src.size() << " samples (streaming "
            << src.reader().num_shards() << " shards)...\n";

  std::optional<std::ofstream> csv;
  const bool delay = bundle.target == core::PredictionTarget::kDelay;
  if (!csv_path.empty()) {
    csv.emplace(csv_path);
    if (!*csv) {
      std::cerr << "error: cannot open " << csv_path << "\n";
      return 1;
    }
    *csv << "sample,src,dst,prediction,"
         << (delay ? "mean_delay_s" : "jitter_s2") << ",delivered\n";
  }
  const auto per_sample = [&](std::size_t si, const data::Sample& s,
                              const nn::Tensor& pred) {
    for (std::size_t pi = 0; pi < s.paths.size(); ++pi) {
      const auto& p = s.paths[pi];
      const double value =
          delay ? bundle.scaler.target_to_delay(
                      pred(static_cast<nn::Index>(pi), 0))
                : bundle.scaler.target_to_jitter(
                      pred(static_cast<nn::Index>(pi), 0));
      *csv << si << ',' << p.src << ',' << p.dst << ',' << value << ','
           << (delay ? p.mean_delay_s : p.jitter_s2) << ',' << p.delivered
           << "\n";
    }
  };

  const auto pp = eval::predict_source(
      *bundle.model, src, bundle.scaler, bundle.min_delivered, bundle.target,
      pool ? &*pool : nullptr,
      csv ? std::function<void(std::size_t, const data::Sample&,
                               const nn::Tensor&)>(per_sample)
          : nullptr);
  if (csv) std::cout << "csv written: " << csv_path << "\n";

  if (metrics) {
    if (pp.size() == 0) {
      std::cout << "(no label-valid paths: skipping metrics)\n";
      return 0;
    }
    eval::print_summary(std::cout, eval::summarize(pp), bundle.target);
  }
  return 0;
}

int run(int argc, char** argv) {
  using namespace rnx;
  const cli::Args args(
      argc, argv,
      {"bundle", "data", "csv", "threads", "no-metrics", "plan-cache-mb"},
      "usage: rnx_predict --bundle model.rnxb --data ds.rnxd [options]\n"
      "  --bundle FILE   model bundle (.rnxb) from rnx_train --save-bundle\n"
      "  --data FILE     scenarios to predict (.rnxd, or a sharded .rnxm\n"
      "                  manifest — streamed shard by shard)\n"
      "  --csv FILE      write per-path predictions as CSV\n"
      "  --threads N     batch fan-out lanes (0 = all cores), default 1\n"
      "  --plan-cache-mb M  cap the plan cache at M MiB (LRU eviction);\n"
      "                  peak bytes / evictions print at exit so the\n"
      "                  budget can be sized from a real run\n"
      "  --no-metrics    skip the label-based metric table");

  const std::string bundle_path = args.get("bundle", std::string());
  const std::string data_path = args.get("data", std::string());
  if (bundle_path.empty() || data_path.empty()) {
    std::cerr << "error: need --bundle and --data\n";
    return 2;
  }

  if (data::is_manifest_file(data_path))
    return run_streaming(bundle_path, data_path,
                         args.get("csv", std::string()),
                         args.get("threads", std::size_t{1}),
                         !args.has("no-metrics"));

  serve::InferenceEngine engine(bundle_path,
                                args.get("threads", std::size_t{1}));
  if (args.has("plan-cache-mb"))
    engine.set_plan_cache_budget(
        args.get_positive("plan-cache-mb", std::size_t{64}) * 1024 * 1024);
  std::cout << "bundle: " << bundle_path << " (" << engine.model().name()
            << ", target " << core::to_string(engine.target())
            << ", state_dim " << engine.model().config().state_dim
            << ", iterations " << engine.model().config().iterations
            << ")\n";
  std::cout << "kernels: " << nn::kernels::active().name << " ("
            << nn::kernels::dispatch_reason() << ")\n";

  const data::Dataset ds = data::Dataset::load(data_path);
  std::cout << "predicting " << ds.total_paths() << " paths across "
            << ds.size() << " samples...\n";

  if (const auto csv = args.get("csv", std::string()); !csv.empty()) {
    const std::vector<std::vector<double>> preds =
        engine.predict_batch(ds.samples());
    std::ofstream f(csv);
    if (!f) {
      std::cerr << "error: cannot open " << csv << "\n";
      return 1;
    }
    const bool delay = engine.target() == core::PredictionTarget::kDelay;
    f << "sample,src,dst,prediction," << (delay ? "mean_delay_s" : "jitter_s2")
      << ",delivered\n";
    for (std::size_t si = 0; si < ds.size(); ++si)
      for (std::size_t pi = 0; pi < ds[si].paths.size(); ++pi) {
        const auto& p = ds[si].paths[pi];
        f << si << ',' << p.src << ',' << p.dst << ',' << preds[si][pi]
          << ',' << (delay ? p.mean_delay_s : p.jitter_s2) << ','
          << p.delivered << "\n";
      }
    std::cout << "csv written: " << csv << "\n";
  }

  // Exit report for operators sizing --plan-cache-mb: the peak is what
  // an unbudgeted run would have held resident; evictions > 0 means the
  // budget actually bit on this workload.
  const auto report_cache = [&engine] {
    const core::PlanCache::Stats cs = engine.plan_cache().stats();
    std::cout << "plan cache: peak " << cs.peak_bytes << " bytes, "
              << cs.evictions << " evictions (" << cs.hits << " hits / "
              << cs.misses << " misses)\n";
  };

  if (!args.has("no-metrics")) {
    // Metric computation goes through the same eval path as rnx_train so
    // the bundle reproduces training-time numbers bit for bit.  The
    // engine's pool is idle here (no predict_batch in flight), so borrow
    // it for the fan-out; a --csv run before this warmed the plan cache.
    const auto pp = eval::predict_dataset(
        engine.model(), ds, engine.scaler(), engine.min_delivered(),
        engine.target(), engine.batch_pool());
    if (pp.size() == 0) {
      std::cout << "(no label-valid paths: skipping metrics)\n";
      report_cache();
      return 0;
    }
    eval::print_summary(std::cout, eval::summarize(pp), engine.target());
  }
  report_cache();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // Corrupt bundles/datasets and I/O failures surface here as clean
    // diagnostics instead of std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
