// rnx_predict — serve predictions from a self-contained model bundle.
//
//   rnx_predict --bundle model.rnxb --data test.rnxd
//   rnx_predict --bundle model.rnxb --data scenarios.rnxd --csv preds.csv
//
// The bundle carries weights, scaler moments, model config and target,
// so no training dataset (and no scaler re-fit) is needed: metrics here
// reproduce `rnx_train --load --eval --scaler-from <train-set>` exactly.
// Labeled datasets additionally get the regression metric table; --csv
// dumps one row per path for external tooling.
#include <fstream>
#include <iostream>

#include "cli.hpp"
#include "eval/metrics.hpp"
#include "serve/inference.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace rnx;
  const cli::Args args(
      argc, argv, {"bundle", "data", "csv", "threads", "no-metrics"},
      "usage: rnx_predict --bundle model.rnxb --data ds.rnxd [options]\n"
      "  --bundle FILE   model bundle (.rnxb) from rnx_train --save-bundle\n"
      "  --data FILE     scenarios to predict (.rnxd)\n"
      "  --csv FILE      write per-path predictions as CSV\n"
      "  --threads N     batch fan-out lanes (0 = all cores), default 1\n"
      "  --no-metrics    skip the label-based metric table");

  const std::string bundle_path = args.get("bundle", std::string());
  const std::string data_path = args.get("data", std::string());
  if (bundle_path.empty() || data_path.empty()) {
    std::cerr << "error: need --bundle and --data\n";
    return 2;
  }

  serve::InferenceEngine engine(bundle_path,
                                args.get("threads", std::size_t{1}));
  std::cout << "bundle: " << bundle_path << " (" << engine.model().name()
            << ", target " << core::to_string(engine.target())
            << ", state_dim " << engine.model().config().state_dim
            << ", iterations " << engine.model().config().iterations
            << ")\n";

  const data::Dataset ds = data::Dataset::load(data_path);
  std::cout << "predicting " << ds.total_paths() << " paths across "
            << ds.size() << " samples...\n";

  if (const auto csv = args.get("csv", std::string()); !csv.empty()) {
    const std::vector<std::vector<double>> preds =
        engine.predict_batch(ds.samples());
    std::ofstream f(csv);
    if (!f) {
      std::cerr << "error: cannot open " << csv << "\n";
      return 1;
    }
    const bool delay = engine.target() == core::PredictionTarget::kDelay;
    f << "sample,src,dst,prediction," << (delay ? "mean_delay_s" : "jitter_s2")
      << ",delivered\n";
    for (std::size_t si = 0; si < ds.size(); ++si)
      for (std::size_t pi = 0; pi < ds[si].paths.size(); ++pi) {
        const auto& p = ds[si].paths[pi];
        f << si << ',' << p.src << ',' << p.dst << ',' << preds[si][pi]
          << ',' << (delay ? p.mean_delay_s : p.jitter_s2) << ','
          << p.delivered << "\n";
      }
    std::cout << "csv written: " << csv << "\n";
  }

  if (!args.has("no-metrics")) {
    // Metric computation goes through the same eval path as rnx_train so
    // the bundle reproduces training-time numbers bit for bit.  The
    // engine's pool is idle here (no predict_batch in flight), so borrow
    // it for the fan-out; a --csv run before this warmed the plan cache.
    const auto pp = eval::predict_dataset(
        engine.model(), ds, engine.scaler(), engine.min_delivered(),
        engine.target(), engine.batch_pool());
    if (pp.size() == 0) {
      std::cout << "(no label-valid paths: skipping metrics)\n";
      return 0;
    }
    eval::print_summary(std::cout, eval::summarize(pp), engine.target());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // Corrupt bundles/datasets and I/O failures surface here as clean
    // diagnostics instead of std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
