// Minimal --flag=value / --flag value command-line parsing shared by the
// CLI tools.  Unknown flags abort with the tool's usage text so typos
// never silently fall back to defaults.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rnx::cli {

class Args {
 public:
  Args(int argc, char** argv, std::set<std::string> known,
       std::string usage)
      : usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) fail("unexpected positional: " + arg);
      arg = arg.substr(2);
      std::string value = "1";  // bare flags act as booleans
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      if (arg == "help") fail("");
      if (!known.contains(arg)) fail("unknown flag: --" + arg);
      values_[arg] = value;
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] std::size_t get(const std::string& key,
                                std::size_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(std::atoll(it->second.c_str()));
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr << usage_ << "\n";
    std::exit(msg.empty() ? 0 : 2);
  }
  std::map<std::string, std::string> values_;
  std::string usage_;
};

}  // namespace rnx::cli
