// Minimal --flag=value / --flag value command-line parsing shared by the
// CLI tools.  Unknown flags abort with the tool's usage text so typos
// never silently fall back to defaults, and numeric values are parsed
// strictly (full consumption, range checks): "--epochs ten" or
// "--epochs -3" is a fatal usage error (exit 2), not 0 epochs or a
// wrapped-around huge count as std::atof/std::atoll would give.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace rnx::cli {

/// Parse the whole string as a finite double.  Rejects empty input,
/// trailing garbage ("1.5x"), bare words ("ten"), inf/nan, and values
/// outside double range.
[[nodiscard]] inline std::optional<double> parse_double(
    const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE || !std::isfinite(v))
    return std::nullopt;
  return v;
}

/// Parse the whole string as a non-negative integer count.  Rejects
/// everything parse_double rejects plus signs ("-3" must not wrap to a
/// huge std::size_t; "+3" is noise), fractions, and overflow.
[[nodiscard]] inline std::optional<std::size_t> parse_size(
    const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE || v < 0)
    return std::nullopt;
  return static_cast<std::size_t>(v);
}

class Args {
 public:
  Args(int argc, char** argv, std::set<std::string> known,
       std::string usage)
      : usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) fail("unexpected positional: " + arg);
      arg = arg.substr(2);
      std::string value = "1";  // bare flags act as booleans
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      if (arg == "help") fail("");
      if (!known.contains(arg)) fail("unknown flag: --" + arg);
      values_[arg].push_back(value);
    }
  }

  /// Every value a repeated flag was given, in command-line order (e.g.
  /// rnx_serve --bundle delay=a.rnxb --bundle jitter=b.rnxb).  The
  /// single-value get() accessors keep their last-one-wins behavior.
  [[nodiscard]] std::vector<std::string> all(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::vector<std::string>() : it->second;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const std::string* v = last(key);
    return v == nullptr ? fallback : *v;
  }
  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const std::string* s = last(key);
    if (s == nullptr) return fallback;
    const auto v = parse_double(*s);
    if (!v)
      fail("invalid value for --" + key + ": '" + *s +
           "' (expected a number)");
    return *v;
  }
  [[nodiscard]] std::size_t get(const std::string& key,
                                std::size_t fallback) const {
    const std::string* s = last(key);
    if (s == nullptr) return fallback;
    const auto v = parse_size(*s);
    if (!v)
      fail("invalid value for --" + key + ": '" + *s +
           "' (expected a non-negative integer)");
    return *v;
  }
  /// As the std::size_t get(), but additionally rejects zero — for
  /// flags where 0 is as nonsensical as a negative value (a byte budget,
  /// a worker count).  Negative input already dies in parse_size; both
  /// exit 2.
  [[nodiscard]] std::size_t get_positive(const std::string& key,
                                         std::size_t fallback) const {
    const std::size_t v = get(key, fallback);
    if (v == 0)
      fail("invalid value for --" + key +
           ": expected a positive integer, got 0");
    return v;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  /// Last occurrence of a flag (single-value accessors keep their
  /// last-one-wins behavior), nullptr when absent.
  [[nodiscard]] const std::string* last(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second.back();
  }

  [[noreturn]] void fail(const std::string& msg) const {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr << usage_ << "\n";
    std::exit(msg.empty() ? 0 : 2);
  }
  std::map<std::string, std::vector<std::string>> values_;
  std::string usage_;
};

}  // namespace rnx::cli
