// rnx_lint — repo-invariant checker CLI (DESIGN.md §L).
//
//   rnx_lint [--list-rules] [root]
//
// Exit codes follow the tool doctrine: 0 clean, 1 violations found,
// 2 usage error.  Violations print to stdout as
// `file:line: rule-id: message`; the summary goes to stderr.
#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return rnx::lint::run(args, std::cout, std::cerr);
}
