// rnx_lint — repo-invariant checker (DESIGN.md §L).
//
// A fast token-level linter (no libclang, no std::regex) enforcing the
// invariants generic tools cannot know.  Rules and rationale:
//
//   raw-mutex       std::mutex / std::lock_guard / std::unique_lock /
//                   std::scoped_lock / std::condition_variable are banned
//                   outside src/util/mutex.hpp: raw primitives carry no
//                   thread-safety capability, so locking through them is
//                   invisible to the -Wthread-safety gate.
//   guarded-by      a Mutex member named in src/ must have at least one
//                   RNX_GUARDED_BY(name) in the same file — a mutex that
//                   guards nothing is either dead weight or (worse) a
//                   field forgot its annotation.
//   unseeded-rng    rand()/srand()/std::random_device are banned in
//                   src/ and tools/: every random draw flows from a
//                   seeded util::RngStream (determinism doctrine, §T/§D
//                   — bitwise-reproducible datasets and training).
//   swallowed-catch catch (...) must rethrow, capture
//                   (current_exception/set_exception), abort, or log:
//                   a silently swallowed error is how corrupt data gets
//                   committed downstream (§R error doctrine).
//   printf-family   printf/fprintf/puts/... are banned in src/ (library
//                   code reports through util::log so tools can silence
//                   or redirect it; tools/ may format their own stdout).
//   banned-include  C-header spellings (<stdio.h>, <stdlib.h>, ...) and
//                   <regex> are banned tree-wide.
//   fp-contract     every kernel TU (src/nn/kernels*.cpp) must carry
//                   -ffp-contract=off in CMakeLists.txt — the §K bitwise
//                   cross-backend parity contract dies silently if a new
//                   kernel file is added without the flag.
//
// Escape hatch: a violation is suppressed when the offending line or
// the line above carries `// rnx-lint: allow(rule-id[, rule-id...])` —
// always pair it with a reason.
//
// Output: `file:line: rule-id: message`, one per violation, in path
// order.  Exit codes (tool doctrine, tools/cli.hpp): 0 clean, 1
// violations found, 2 usage error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rnx::lint {

struct Violation {
  std::string file;  ///< repo-relative path (forward slashes)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// Every rule id, in report order (for --list-rules and the tests).
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Blank comments and string/character literals (newlines preserved) so
/// token rules never fire on prose.  Exposed for the test suite.
[[nodiscard]] std::string scrub(const std::string& content);

/// Lint one file.  `relpath` (repo-relative, forward slashes) selects
/// the applicable rules: src/ gets all file rules, tools/tests/bench a
/// subset (see the rule table above).
[[nodiscard]] std::vector<Violation> lint_file(const std::string& relpath,
                                               const std::string& content);

/// fp-contract cross-check: each kernel TU in `kernel_tus` (repo-relative
/// .cpp paths) must appear in a set_source_files_properties(...) block of
/// `cmake_content` that carries -ffp-contract=off.
[[nodiscard]] std::vector<Violation> lint_cmake(
    const std::string& cmake_content,
    const std::vector<std::string>& kernel_tus);

/// Walk `root` (must hold CMakeLists.txt): lint every .cpp/.hpp/.h under
/// src/ tools/ tests/ bench/ plus the CMake cross-check.  Throws
/// std::runtime_error when root is not a repo root.
[[nodiscard]] std::vector<Violation> lint_tree(const std::string& root);

/// CLI driver: `args` excludes argv[0].  Returns the process exit code
/// (0 clean, 1 violations, 2 usage error); violations go to `out`,
/// diagnostics and the summary to `err`.
[[nodiscard]] int run(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err);

}  // namespace rnx::lint
