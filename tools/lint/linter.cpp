#include "lint/linter.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace rnx::lint {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kAllowMarker = "rnx-lint: allow(";
constexpr std::string_view kWrapperFile = "src/util/mutex.hpp";

[[nodiscard]] bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

[[nodiscard]] bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

// ---- scrubbing -------------------------------------------------------------

// True when content[i] opens a raw string literal's quote; fills the
// closing marker (")delim"") for the caller to scan for.
bool raw_string_at(const std::string& s, std::size_t i, std::string* closer) {
  if (s[i] != '"' || i == 0 || s[i - 1] != 'R') return false;
  // The R must start a token (or follow a u8/u/U/L encoding prefix) —
  // an identifier that happens to end in R is not a raw string.
  if (i >= 2 && is_ident(s[i - 2]) && s[i - 2] != '8' && s[i - 2] != 'u' &&
      s[i - 2] != 'U' && s[i - 2] != 'L')
    return false;
  std::string delim;
  for (std::size_t j = i + 1; j < s.size() && s[j] != '('; ++j) {
    if (delim.size() > 16 || s[j] == '"' || s[j] == '\n') return false;
    delim.push_back(s[j]);
  }
  *closer = ")" + delim + "\"";
  return true;
}

}  // namespace

std::string scrub(const std::string& content) {
  std::string out = content;
  enum class St { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  std::size_t i = 0;
  const std::size_t n = content.size();
  auto blank = [&](std::size_t at) {
    if (out[at] != '\n') out[at] = ' ';
  };
  while (i < n) {
    const char c = content[i];
    switch (st) {
      case St::kCode: {
        std::string closer;
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          st = St::kLine;
          blank(i);
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          st = St::kBlock;
          blank(i);
          blank(i + 1);
          ++i;
        } else if (raw_string_at(content, i, &closer)) {
          const std::size_t end = content.find(closer, i + 1);
          const std::size_t stop = end == std::string::npos ? n : end;
          for (std::size_t j = i; j < stop; ++j) blank(j);
          i = stop + (end == std::string::npos ? 0 : closer.size() - 1);
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'' && (i == 0 || !is_ident(content[i - 1]))) {
          st = St::kChar;  // excludes digit separators (1'000) and suffixes
        }
        break;
      }
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else blank(i);
        break;
      case St::kBlock:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          ++i;
          st = St::kCode;
        } else {
          blank(i);
        }
        break;
      case St::kStr:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '"' || c == '\n') {
          st = St::kCode;
        } else {
          blank(i);
        }
        break;
      case St::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '\'' || c == '\n') {
          st = St::kCode;
        } else {
          blank(i);
        }
        break;
    }
    ++i;
  }
  return out;
}

namespace {

// ---- shared text helpers ---------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// Find `token` in `line` starting at `from`, requiring a non-identifier
// char on each side.  `allow_colon_before` admits qualified names
// (std::rand) without re-flagging inside longer identifiers.
std::size_t find_token(const std::string& line, std::string_view token,
                       std::size_t from, bool allow_colon_before = true) {
  std::size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    const bool ok_before =
        pos == 0 || (!is_ident(line[pos - 1]) &&
                     (allow_colon_before || line[pos - 1] != ':'));
    const std::size_t after = pos + token.size();
    const bool ok_after = after >= line.size() || !is_ident(line[after]);
    if (ok_before && ok_after) return pos;
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

// True when the token at `pos` (of length `len`) is a call: the next
// non-space char is '('.
bool is_call(const std::string& line, std::size_t pos, std::size_t len) {
  std::size_t j = pos + len;
  while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
  return j < line.size() && line[j] == '(';
}

// Parse an allow-comment's rule list out of a raw source line.
bool line_allows(const std::string& raw_line, const std::string& rule) {
  const std::size_t m = raw_line.find(kAllowMarker);
  if (m == std::string::npos) return false;
  const std::size_t open = m + kAllowMarker.size();
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return false;
  std::string ids = raw_line.substr(open, close - open);
  for (char& c : ids)
    if (c == ',') c = ' ';
  std::istringstream iss(ids);
  std::string id;
  while (iss >> id)
    if (id == rule) return true;
  return false;
}

// The escape hatch: the offending line or the line above may carry
// `// rnx-lint: allow(rule[, rule...])`.
bool allowed(const std::vector<std::string>& raw_lines, int line,
             const std::string& rule) {
  const std::size_t idx = static_cast<std::size_t>(line) - 1;
  if (idx < raw_lines.size() && line_allows(raw_lines[idx], rule)) return true;
  return idx >= 1 && idx - 1 < raw_lines.size() &&
         line_allows(raw_lines[idx - 1], rule);
}

enum class Scope { kSrc, kTools, kTests, kBench, kOther };

Scope scope_of(const std::string& relpath) {
  if (relpath.rfind("src/", 0) == 0) return Scope::kSrc;
  if (relpath.rfind("tools/", 0) == 0) return Scope::kTools;
  if (relpath.rfind("tests/", 0) == 0) return Scope::kTests;
  if (relpath.rfind("bench/", 0) == 0) return Scope::kBench;
  return Scope::kOther;
}

// ---- per-rule checkers -----------------------------------------------------

struct Ctx {
  const std::string& relpath;
  const std::vector<std::string>& raw;
  const std::vector<std::string>& scrubbed;
  const std::string& scrubbed_text;
  std::vector<Violation>& out;

  void add(int line, const char* rule, std::string msg) const {
    if (!allowed(raw, line, rule))
      out.push_back(Violation{relpath, line, rule, std::move(msg)});
  }
};

void check_raw_mutex(const Ctx& ctx) {
  static constexpr std::array<std::string_view, 12> kBanned = {
      "std::mutex",          "std::recursive_mutex",
      "std::timed_mutex",    "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any"};
  for (std::size_t li = 0; li < ctx.scrubbed.size(); ++li) {
    for (const auto token : kBanned) {
      if (find_token(ctx.scrubbed[li], token, 0) != std::string::npos) {
        ctx.add(static_cast<int>(li) + 1, "raw-mutex",
                std::string(token) +
                    " is invisible to -Wthread-safety; use util::Mutex / "
                    "util::MutexLock / util::CondVar (src/util/mutex.hpp)");
        break;  // one report per line
      }
    }
  }
}

void check_guarded_by(const Ctx& ctx) {
  for (std::size_t li = 0; li < ctx.scrubbed.size(); ++li) {
    const std::string& line = ctx.scrubbed[li];
    std::size_t pos = find_token(line, "Mutex", 0);
    while (pos != std::string::npos) {
      std::size_t j = pos + 5;
      while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
      // A declaration `Mutex name;` — references/pointers/parameters
      // (Mutex&, Mutex*) and type positions (Mutex) are someone else's
      // member and are skipped here.
      std::size_t name_end = j;
      while (name_end < line.size() && is_ident(line[name_end])) ++name_end;
      if (name_end > j) {
        const std::string name = line.substr(j, name_end - j);
        std::size_t k = name_end;
        while (k < line.size() && (line[k] == ' ' || line[k] == '\t')) ++k;
        if (k < line.size() && line[k] == ';') {
          const std::string want = "RNX_GUARDED_BY(" + name + ")";
          const std::string want_pt = "RNX_PT_GUARDED_BY(" + name + ")";
          if (ctx.scrubbed_text.find(want) == std::string::npos &&
              ctx.scrubbed_text.find(want_pt) == std::string::npos) {
            ctx.add(static_cast<int>(li) + 1, "guarded-by",
                    "Mutex '" + name + "' guards no field: annotate data " +
                        "with RNX_GUARDED_BY(" + name +
                        ") or allow with a reason");
          }
        }
      }
      pos = find_token(line, "Mutex", pos + 5);
    }
  }
}

void check_unseeded_rng(const Ctx& ctx) {
  for (std::size_t li = 0; li < ctx.scrubbed.size(); ++li) {
    const std::string& line = ctx.scrubbed[li];
    if (find_token(line, "random_device", 0) != std::string::npos) {
      ctx.add(static_cast<int>(li) + 1, "unseeded-rng",
              "std::random_device breaks run-to-run reproducibility; derive "
              "a util::RngStream from the experiment seed");
      continue;
    }
    for (const std::string_view fn : {"srand", "rand"}) {
      const std::size_t pos = find_token(line, fn, 0);
      if (pos != std::string::npos && is_call(line, pos, fn.size())) {
        ctx.add(static_cast<int>(li) + 1, "unseeded-rng",
                std::string(fn) +
                    "() draws from hidden global state; use a seeded "
                    "util::RngStream");
        break;
      }
    }
  }
}

void check_printf_family(const Ctx& ctx) {
  static constexpr std::array<std::string_view, 13> kFns = {
      "printf", "fprintf", "sprintf",  "snprintf", "vprintf",
      "vfprintf", "vsprintf", "vsnprintf", "puts", "fputs",
      "putchar", "fputc", "putc"};
  for (std::size_t li = 0; li < ctx.scrubbed.size(); ++li) {
    for (const auto fn : kFns) {
      const std::size_t pos = find_token(ctx.scrubbed[li], fn, 0);
      if (pos != std::string::npos && is_call(ctx.scrubbed[li], pos, fn.size())) {
        ctx.add(static_cast<int>(li) + 1, "printf-family",
                std::string(fn) +
                    "() bypasses util::log in library code; report through "
                    "log_line/log_error so tools control the stream");
        break;
      }
    }
  }
}

void check_swallowed_catch(const Ctx& ctx) {
  static constexpr std::array<std::string_view, 14> kHandled = {
      "throw", "rethrow_exception", "current_exception", "set_exception",
      "set_value", "abort", "exit", "_Exit", "quick_exit", "log_line",
      "log_error", "log_warn", "FAIL", "ADD_FAILURE"};
  const std::string& text = ctx.scrubbed_text;
  std::size_t pos = 0;
  while ((pos = text.find("catch", pos)) != std::string::npos) {
    const std::size_t hit = pos;
    pos += 5;
    if ((hit > 0 && is_ident(text[hit - 1])) ||
        (pos < text.size() && is_ident(text[pos])))
      continue;
    std::size_t j = pos;
    while (j < text.size() && is_space(text[j])) ++j;
    if (j >= text.size() || text[j] != '(') continue;
    ++j;
    while (j < text.size() && is_space(text[j])) ++j;
    if (text.compare(j, 3, "...") != 0) continue;  // typed catch: fine
    j = text.find(')', j);
    if (j == std::string::npos) continue;
    ++j;
    while (j < text.size() && is_space(text[j])) ++j;
    if (j >= text.size() || text[j] != '{') continue;
    // Matching close brace (strings/comments are already blanked, so
    // every brace in the scrubbed text is structural).
    int depth = 0;
    std::size_t body_begin = j + 1, body_end = j;
    for (; body_end < text.size(); ++body_end) {
      if (text[body_end] == '{') ++depth;
      else if (text[body_end] == '}' && --depth == 0) break;
    }
    const std::string body = text.substr(body_begin, body_end - body_begin);
    bool handles = false;
    for (const auto word : kHandled)
      if (find_token(body, word, 0) != std::string::npos) {
        handles = true;
        break;
      }
    if (!handles) {
      const int line =
          1 + static_cast<int>(std::count(text.begin(), text.begin() + hit, '\n'));
      ctx.add(line, "swallowed-catch",
              "catch (...) swallows the error: rethrow, capture it "
              "(current_exception), log it, or abort");
    }
    pos = body_begin;
  }
}

void check_banned_include(const Ctx& ctx) {
  // header -> replacement advice
  static constexpr std::array<std::pair<std::string_view, std::string_view>, 7>
      kBanned = {{{"stdio.h", "<cstdio> (and printf-family is banned in src/)"},
                  {"stdlib.h", "<cstdlib>"},
                  {"string.h", "<cstring>"},
                  {"assert.h", "<cassert>"},
                  {"math.h", "<cmath>"},
                  {"setjmp.h", "typed errors (DESIGN.md error doctrine)"},
                  {"regex", "hand-rolled parsing (std::regex is slow to "
                            "compile and to run)"}}};
  for (std::size_t li = 0; li < ctx.scrubbed.size(); ++li) {
    const std::string& line = ctx.scrubbed[li];
    std::size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (j >= line.size() || line[j] != '#') continue;
    ++j;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (line.compare(j, 7, "include") != 0) continue;
    const std::size_t open = line.find('<', j + 7);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('>', open + 1);
    if (close == std::string::npos) continue;
    const std::string header = line.substr(open + 1, close - open - 1);
    for (const auto& [banned, advice] : kBanned) {
      if (header == banned) {
        ctx.add(static_cast<int>(li) + 1, "banned-include",
                "<" + header + "> is banned; use " + std::string(advice));
        break;
      }
    }
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

// ---- public API ------------------------------------------------------------

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "raw-mutex",    "guarded-by",      "unseeded-rng", "swallowed-catch",
      "printf-family", "banned-include", "fp-contract"};
  return kIds;
}

std::vector<Violation> lint_file(const std::string& relpath,
                                 const std::string& content) {
  std::vector<Violation> out;
  const Scope scope = scope_of(relpath);
  const std::string scrubbed_text = scrub(content);
  const std::vector<std::string> raw = split_lines(content);
  const std::vector<std::string> scrubbed = split_lines(scrubbed_text);
  const Ctx ctx{relpath, raw, scrubbed, scrubbed_text, out};

  check_banned_include(ctx);  // every scope: C headers never belong
  if (relpath != kWrapperFile && scope != Scope::kOther) check_raw_mutex(ctx);
  if (scope == Scope::kSrc || scope == Scope::kTools) {
    check_unseeded_rng(ctx);
    check_swallowed_catch(ctx);
  }
  if (scope == Scope::kSrc) {
    check_printf_family(ctx);
    if (relpath != kWrapperFile) check_guarded_by(ctx);
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<Violation> lint_cmake(const std::string& cmake_content,
                                  const std::vector<std::string>& kernel_tus) {
  // Blank cmake comments (# to end of line) so commented-out blocks
  // cannot satisfy the check.
  std::string text = cmake_content;
  bool in_comment = false;
  for (char& c : text) {
    if (c == '\n') in_comment = false;
    else if (c == '#') in_comment = true;
    if (in_comment && c != '\n') c = ' ';
  }

  // Collect every set_source_files_properties(...) block that carries
  // -ffp-contract=off.
  std::vector<std::string> covered;
  std::size_t pos = 0;
  while ((pos = text.find("set_source_files_properties", pos)) !=
         std::string::npos) {
    std::size_t open = text.find('(', pos);
    pos += 1;
    if (open == std::string::npos) break;
    int depth = 0;
    std::size_t end = open;
    for (; end < text.size(); ++end) {
      if (text[end] == '(') ++depth;
      else if (text[end] == ')' && --depth == 0) break;
    }
    std::string block = text.substr(open + 1, end - open - 1);
    if (block.find("ffp-contract=off") != std::string::npos)
      covered.push_back(std::move(block));
  }

  std::vector<Violation> out;
  const std::vector<std::string> raw_lines = split_lines(cmake_content);
  for (const std::string& tu : kernel_tus) {
    const bool ok = std::any_of(covered.begin(), covered.end(),
                                [&](const std::string& block) {
                                  return block.find(tu) != std::string::npos;
                                });
    if (ok) continue;
    // Anchor the report at the TU's first mention (else line 1).
    int line = 1;
    for (std::size_t li = 0; li < raw_lines.size(); ++li) {
      if (raw_lines[li].find(tu) != std::string::npos) {
        line = static_cast<int>(li) + 1;
        break;
      }
    }
    if (!allowed(raw_lines, line, "fp-contract"))
      out.push_back(Violation{
          "CMakeLists.txt", line, "fp-contract",
          "kernel TU " + tu +
              " is not covered by a set_source_files_properties(... "
              "-ffp-contract=off) block: auto-fused FMA breaks the "
              "cross-backend bitwise parity contract"});
  }
  return out;
}

std::vector<Violation> lint_tree(const std::string& root) {
  const fs::path rootp(root);
  const fs::path cmake = rootp / "CMakeLists.txt";
  if (!fs::exists(cmake))
    throw std::runtime_error(root + " is not a repo root (no CMakeLists.txt)");

  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path d = rootp / dir;
    if (!fs::is_directory(d)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(d)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h")
        files.push_back(entry.path());
    }
  }
  std::vector<std::pair<std::string, fs::path>> rel;
  rel.reserve(files.size());
  for (const auto& f : files)
    rel.emplace_back(f.lexically_relative(rootp).generic_string(), f);
  std::sort(rel.begin(), rel.end());

  std::vector<Violation> out;
  std::vector<std::string> kernel_tus;
  for (const auto& [relpath, path] : rel) {
    auto vs = lint_file(relpath, read_file(path));
    out.insert(out.end(), std::make_move_iterator(vs.begin()),
               std::make_move_iterator(vs.end()));
    // Kernel TU inventory for the CMake cross-check.
    if (relpath.rfind("src/nn/kernels", 0) == 0 &&
        relpath.size() >= 4 && relpath.compare(relpath.size() - 4, 4, ".cpp") == 0)
      kernel_tus.push_back(relpath);
  }
  auto cs = lint_cmake(read_file(cmake), kernel_tus);
  out.insert(out.end(), std::make_move_iterator(cs.begin()),
             std::make_move_iterator(cs.end()));
  return out;
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  static constexpr std::string_view kUsage =
      "usage: rnx_lint [--list-rules] [root]\n"
      "  Checks repo invariants over <root>/{src,tools,tests,bench} plus\n"
      "  the CMakeLists fp-contract cross-check (root defaults to `.`).\n"
      "  Exit: 0 clean, 1 violations, 2 usage error.\n";
  std::string root;
  for (const std::string& arg : args) {
    if (arg == "--list-rules") {
      for (const std::string& id : rule_ids()) out << id << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      err << "rnx_lint: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
    if (!root.empty()) {
      err << "rnx_lint: more than one root given\n" << kUsage;
      return 2;
    }
    root = arg;
  }
  if (root.empty()) root = ".";

  std::vector<Violation> vs;
  try {
    vs = lint_tree(root);
  } catch (const std::exception& e) {
    err << "rnx_lint: " << e.what() << "\n";
    return 2;
  }
  for (const Violation& v : vs)
    out << v.file << ":" << v.line << ": " << v.rule << ": " << v.message
        << "\n";
  if (!vs.empty()) {
    err << "rnx_lint: " << vs.size() << " violation(s)\n";
    return 1;
  }
  err << "rnx_lint: clean\n";
  return 0;
}

}  // namespace rnx::lint
