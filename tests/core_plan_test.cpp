// Tests for the message-passing plan (core/plan.hpp): the batched index
// structure must agree with a per-path reading of the paper's Fig. 1.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "data/generator.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using core::build_plan;
using core::MpPlan;

// Hand-built sample on line 0-1-2 with two paths:
//   path 0: 0 -> 2 (hops 0->1, 1->2)
//   path 1: 1 -> 2 (hop 1->2)
data::Sample tiny_sample() {
  data::Sample s;
  s.topo_name = "line3";
  s.num_nodes = 3;
  s.links = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  s.link_capacity_bps = {1e6, 1e6, 1e6, 1e6};
  s.queue_pkts = {32, 1, 32};
  data::PathRecord p0;
  p0.src = 0;
  p0.dst = 2;
  p0.nodes = {0, 1, 2};
  p0.links = {0, 2};
  p0.traffic_bps = 1e5;
  p0.mean_delay_s = 1e-3;
  p0.delivered = 100;
  data::PathRecord p1;
  p1.src = 1;
  p1.dst = 2;
  p1.nodes = {1, 2};
  p1.links = {2};
  p1.traffic_bps = 2e5;
  p1.mean_delay_s = 5e-4;
  p1.delivered = 100;
  s.paths = {p0, p1};
  s.validate();
  return s;
}

TEST(PlanOriginal, LinkSequencePositions) {
  const MpPlan plan = build_plan(tiny_sample(), /*use_nodes=*/false);
  EXPECT_EQ(plan.num_paths, 2u);
  EXPECT_EQ(plan.num_links, 4u);
  EXPECT_EQ(plan.num_nodes, 3u);
  ASSERT_EQ(plan.positions.size(), 2u);  // max 2 hops

  // Position 0: both paths consume their first link.
  const auto& p0 = plan.positions[0];
  EXPECT_FALSE(p0.is_node);
  EXPECT_EQ(p0.path_rows, (std::vector<nn::Index>{0, 1}));
  EXPECT_EQ(p0.elem_ids, (std::vector<nn::Index>{0, 2}));

  // Position 1: only path 0 is still active.
  const auto& p1 = plan.positions[1];
  EXPECT_EQ(p1.path_rows, (std::vector<nn::Index>{0}));
  EXPECT_EQ(p1.elem_ids, (std::vector<nn::Index>{2}));

  // Original plan has no node incidences.
  EXPECT_TRUE(plan.inc_path_rows.empty());
}

TEST(PlanExtended, InterleavedNodeLinkPositions) {
  const MpPlan plan = build_plan(tiny_sample(), /*use_nodes=*/true);
  ASSERT_EQ(plan.positions.size(), 4u);  // n,l,n,l for the 2-hop path

  // Position 0 (node): path 0 reads node 0, path 1 reads node 1.
  EXPECT_TRUE(plan.positions[0].is_node);
  EXPECT_EQ(plan.positions[0].path_rows, (std::vector<nn::Index>{0, 1}));
  EXPECT_EQ(plan.positions[0].elem_ids, (std::vector<nn::Index>{0, 1}));

  // Position 1 (link): first links.
  EXPECT_FALSE(plan.positions[1].is_node);
  EXPECT_EQ(plan.positions[1].elem_ids, (std::vector<nn::Index>{0, 2}));

  // Position 2 (node): only path 0; its second transit node is 1.
  EXPECT_TRUE(plan.positions[2].is_node);
  EXPECT_EQ(plan.positions[2].path_rows, (std::vector<nn::Index>{0}));
  EXPECT_EQ(plan.positions[2].elem_ids, (std::vector<nn::Index>{1}));

  // Position 3 (link): path 0's second link.
  EXPECT_FALSE(plan.positions[3].is_node);
  EXPECT_EQ(plan.positions[3].elem_ids, (std::vector<nn::Index>{2}));
}

TEST(PlanExtended, NodeIncidencesCoverTransitNodes) {
  const MpPlan plan = build_plan(tiny_sample(), /*use_nodes=*/true);
  // path 0 occupies queues at nodes 0 and 1; path 1 at node 1.
  ASSERT_EQ(plan.inc_path_rows.size(), 3u);
  EXPECT_EQ(plan.inc_path_rows, (std::vector<nn::Index>{0, 0, 1}));
  EXPECT_EQ(plan.inc_node_ids, (std::vector<nn::Index>{0, 1, 1}));
}

TEST(PlanExtended, AlternatingParityInvariant) {
  // On a real sample: every even position is a node, odd is a link, and
  // element ids are within range.
  data::GeneratorConfig cfg;
  cfg.target_packets = 3'000;
  util::RngStream rng(3);
  const data::Sample s = data::generate_sample(topo::nsfnet(), cfg, rng);
  const MpPlan plan = build_plan(s, true);
  for (std::size_t pos = 0; pos < plan.positions.size(); ++pos) {
    const auto& sp = plan.positions[pos];
    EXPECT_EQ(sp.is_node, pos % 2 == 0);
    ASSERT_EQ(sp.path_rows.size(), sp.elem_ids.size());
    for (std::size_t i = 0; i < sp.path_rows.size(); ++i) {
      EXPECT_LT(sp.path_rows[i], plan.num_paths);
      EXPECT_LT(sp.elem_ids[i],
                sp.is_node ? plan.num_nodes : plan.num_links);
    }
  }
}

TEST(PlanExtended, PerPathSequenceReconstructs) {
  // Collecting each path's (position, element) participation must
  // reproduce exactly its interleaved node/link sequence.
  data::GeneratorConfig cfg;
  cfg.target_packets = 3'000;
  util::RngStream rng(5);
  const data::Sample s = data::generate_sample(topo::ring(6), cfg, rng);
  const MpPlan plan = build_plan(s, true);

  for (std::size_t pi = 0; pi < s.paths.size(); ++pi) {
    std::vector<nn::Index> seq;
    for (const auto& pos : plan.positions)
      for (std::size_t i = 0; i < pos.path_rows.size(); ++i)
        if (pos.path_rows[i] == pi) seq.push_back(pos.elem_ids[i]);
    const auto& path = s.paths[pi];
    ASSERT_EQ(seq.size(), 2 * path.links.size());
    for (std::size_t h = 0; h < path.links.size(); ++h) {
      EXPECT_EQ(seq[2 * h], path.nodes[h]);      // node position
      EXPECT_EQ(seq[2 * h + 1], path.links[h]);  // link position
    }
  }
}

TEST(PlanOriginal, ActivePathCountsDecrease) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 3'000;
  util::RngStream rng(7);
  const data::Sample s = data::generate_sample(topo::geant2(), cfg, rng);
  const MpPlan plan = build_plan(s, false);
  for (std::size_t pos = 1; pos < plan.positions.size(); ++pos)
    EXPECT_LE(plan.positions[pos].path_rows.size(),
              plan.positions[pos - 1].path_rows.size());
  // First position covers every path.
  EXPECT_EQ(plan.positions[0].path_rows.size(), plan.num_paths);
  // No empty trailing positions.
  EXPECT_FALSE(plan.positions.back().path_rows.empty());
}

TEST(ValidLabelRows, FiltersThinAndZeroLabels) {
  data::Sample s = tiny_sample();
  s.paths[0].delivered = 5;     // below threshold 10
  s.paths[1].delivered = 100;
  auto rows = core::valid_label_rows(s, 10);
  EXPECT_EQ(rows, (std::vector<nn::Index>{1}));
  s.paths[1].mean_delay_s = 0.0;  // unusable label
  rows = core::valid_label_rows(s, 10);
  EXPECT_TRUE(rows.empty());
  rows = core::valid_label_rows(s, 0);
  EXPECT_EQ(rows, (std::vector<nn::Index>{0}));
}

}  // namespace
