// Tests for the message-passing plan (core/plan.hpp): the batched index
// structure must agree with a per-path reading of the paper's Fig. 1, and
// the arena layout must match the reference per-position builder bitwise.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "data/generator.hpp"
#include "topo/routing.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using core::build_plan;
using core::build_plan_reference;
using core::MpPlan;
using core::PlanPosition;

std::vector<nn::Index> to_vec(std::span<const nn::Index> s) {
  return {s.begin(), s.end()};
}

// Hand-built sample on line 0-1-2 with two paths:
//   path 0: 0 -> 2 (hops 0->1, 1->2)
//   path 1: 1 -> 2 (hop 1->2)
data::Sample tiny_sample() {
  data::Sample s;
  s.topo_name = "line3";
  s.num_nodes = 3;
  s.links = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  s.link_capacity_bps = {1e6, 1e6, 1e6, 1e6};
  s.queue_pkts = {32, 1, 32};
  data::PathRecord p0;
  p0.src = 0;
  p0.dst = 2;
  p0.nodes = {0, 1, 2};
  p0.links = {0, 2};
  p0.traffic_bps = 1e5;
  p0.mean_delay_s = 1e-3;
  p0.delivered = 100;
  data::PathRecord p1;
  p1.src = 1;
  p1.dst = 2;
  p1.nodes = {1, 2};
  p1.links = {2};
  p1.traffic_bps = 2e5;
  p1.mean_delay_s = 5e-4;
  p1.delivered = 100;
  s.paths = {p0, p1};
  s.validate();
  return s;
}

TEST(PlanOriginal, LinkSequencePositions) {
  const MpPlan plan = build_plan(tiny_sample(), /*use_nodes=*/false);
  EXPECT_EQ(plan.num_paths, 2u);
  EXPECT_EQ(plan.num_links, 4u);
  EXPECT_EQ(plan.num_nodes, 3u);
  ASSERT_EQ(plan.num_positions(), 2u);  // max 2 hops

  // Position 0: both paths consume their first link.
  const PlanPosition p0 = plan.position(0);
  EXPECT_FALSE(p0.is_node);
  EXPECT_EQ(to_vec(p0.path_rows), (std::vector<nn::Index>{0, 1}));
  EXPECT_EQ(to_vec(p0.elem_ids), (std::vector<nn::Index>{0, 2}));

  // Position 1: only path 0 is still active.
  const PlanPosition p1 = plan.position(1);
  EXPECT_EQ(to_vec(p1.path_rows), (std::vector<nn::Index>{0}));
  EXPECT_EQ(to_vec(p1.elem_ids), (std::vector<nn::Index>{2}));

  // Original plan has no node incidences.
  EXPECT_TRUE(plan.inc_path_rows.empty());
}

TEST(PlanExtended, InterleavedNodeLinkPositions) {
  const MpPlan plan = build_plan(tiny_sample(), /*use_nodes=*/true);
  ASSERT_EQ(plan.num_positions(), 4u);  // n,l,n,l for the 2-hop path
  EXPECT_TRUE(plan.interleaved());

  // Position 0 (node): path 0 reads node 0, path 1 reads node 1.
  EXPECT_TRUE(plan.position(0).is_node);
  EXPECT_EQ(to_vec(plan.position(0).path_rows),
            (std::vector<nn::Index>{0, 1}));
  EXPECT_EQ(to_vec(plan.position(0).elem_ids),
            (std::vector<nn::Index>{0, 1}));

  // Position 1 (link): first links.
  EXPECT_FALSE(plan.position(1).is_node);
  EXPECT_EQ(to_vec(plan.position(1).elem_ids),
            (std::vector<nn::Index>{0, 2}));

  // Position 2 (node): only path 0; its second transit node is 1.
  EXPECT_TRUE(plan.position(2).is_node);
  EXPECT_EQ(to_vec(plan.position(2).path_rows), (std::vector<nn::Index>{0}));
  EXPECT_EQ(to_vec(plan.position(2).elem_ids), (std::vector<nn::Index>{1}));

  // Position 3 (link): path 0's second link.
  EXPECT_FALSE(plan.position(3).is_node);
  EXPECT_EQ(to_vec(plan.position(3).elem_ids), (std::vector<nn::Index>{2}));
}

TEST(PlanExtended, NodeIncidencesCoverTransitNodes) {
  const MpPlan plan = build_plan(tiny_sample(), /*use_nodes=*/true);
  // path 0 occupies queues at nodes 0 and 1; path 1 at node 1.
  ASSERT_EQ(plan.inc_path_rows.size(), 3u);
  EXPECT_EQ(plan.inc_path_rows, (std::vector<nn::Index>{0, 0, 1}));
  EXPECT_EQ(plan.inc_node_ids, (std::vector<nn::Index>{0, 1, 1}));
}

TEST(PlanExtended, AlternatingParityInvariant) {
  // On a real sample: every even position is a node, odd is a link, and
  // element ids are within range.
  data::GeneratorConfig cfg;
  cfg.target_packets = 3'000;
  util::RngStream rng(3);
  const data::Sample s = data::generate_sample(topo::nsfnet(), cfg, rng);
  const MpPlan plan = build_plan(s, true);
  for (std::size_t pos = 0; pos < plan.num_positions(); ++pos) {
    const PlanPosition sp = plan.position(pos);
    EXPECT_EQ(sp.is_node, pos % 2 == 0);
    ASSERT_EQ(sp.path_rows.size(), sp.elem_ids.size());
    for (std::size_t i = 0; i < sp.path_rows.size(); ++i) {
      EXPECT_LT(sp.path_rows[i], plan.num_paths);
      EXPECT_LT(sp.elem_ids[i],
                sp.is_node ? plan.num_nodes : plan.num_links);
    }
  }
}

TEST(PlanExtended, PerPathSequenceReconstructs) {
  // Collecting each path's (position, element) participation must
  // reproduce exactly its interleaved node/link sequence.
  data::GeneratorConfig cfg;
  cfg.target_packets = 3'000;
  util::RngStream rng(5);
  const data::Sample s = data::generate_sample(topo::ring(6), cfg, rng);
  const MpPlan plan = build_plan(s, true);

  for (std::size_t pi = 0; pi < s.paths.size(); ++pi) {
    std::vector<nn::Index> seq;
    for (std::size_t p = 0; p < plan.num_positions(); ++p) {
      const PlanPosition pos = plan.position(p);
      for (std::size_t i = 0; i < pos.path_rows.size(); ++i)
        if (pos.path_rows[i] == pi) seq.push_back(pos.elem_ids[i]);
    }
    const auto& path = s.paths[pi];
    ASSERT_EQ(seq.size(), 2 * path.links.size());
    for (std::size_t h = 0; h < path.links.size(); ++h) {
      EXPECT_EQ(seq[2 * h], path.nodes[h]);      // node position
      EXPECT_EQ(seq[2 * h + 1], path.links[h]);  // link position
    }
  }
}

TEST(PlanOriginal, ActivePathCountsDecrease) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 3'000;
  util::RngStream rng(7);
  const data::Sample s = data::generate_sample(topo::geant2(), cfg, rng);
  const MpPlan plan = build_plan(s, false);
  for (std::size_t pos = 1; pos < plan.num_positions(); ++pos)
    EXPECT_LE(plan.position(pos).path_rows.size(),
              plan.position(pos - 1).path_rows.size());
  // First position covers every path.
  EXPECT_EQ(plan.position(0).path_rows.size(), plan.num_paths);
  // No empty trailing positions.
  EXPECT_FALSE(plan.position(plan.num_positions() - 1).path_rows.empty());
}

TEST(ValidLabelRows, FiltersThinAndZeroLabels) {
  data::Sample s = tiny_sample();
  s.paths[0].delivered = 5;     // below threshold 10
  s.paths[1].delivered = 100;
  auto rows = core::valid_label_rows(s, 10);
  EXPECT_EQ(rows, (std::vector<nn::Index>{1}));
  s.paths[1].mean_delay_s = 0.0;  // unusable label
  rows = core::valid_label_rows(s, 10);
  EXPECT_TRUE(rows.empty());
  rows = core::valid_label_rows(s, 0);
  EXPECT_EQ(rows, (std::vector<nn::Index>{0}));
}

// -- arena vs reference builder (the refactor's bitwise pin) ---------------

void expect_matches_reference(const data::Sample& s, bool use_nodes) {
  const MpPlan arena = build_plan(s, use_nodes);
  const core::RefPlan ref = build_plan_reference(s, use_nodes);
  EXPECT_EQ(arena.num_paths, ref.num_paths);
  EXPECT_EQ(arena.num_links, ref.num_links);
  EXPECT_EQ(arena.num_nodes, ref.num_nodes);
  ASSERT_EQ(arena.num_positions(), ref.positions.size());
  for (std::size_t p = 0; p < ref.positions.size(); ++p) {
    const PlanPosition pos = arena.position(p);
    EXPECT_EQ(pos.is_node, ref.positions[p].is_node) << "position " << p;
    EXPECT_EQ(to_vec(pos.path_rows), ref.positions[p].path_rows)
        << "position " << p;
    EXPECT_EQ(to_vec(pos.elem_ids), ref.positions[p].elem_ids)
        << "position " << p;
  }
  EXPECT_EQ(arena.inc_path_rows, ref.inc_path_rows);
  EXPECT_EQ(arena.inc_node_ids, ref.inc_node_ids);
}

TEST(PlanArena, BitwiseEquivalentToReferenceBuilder) {
  expect_matches_reference(tiny_sample(), false);
  expect_matches_reference(tiny_sample(), true);

  data::GeneratorConfig cfg;
  cfg.target_packets = 3'000;
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    util::RngStream rng(seed);
    util::RngStream topo_rng(seed ^ 0xbaull);
    const topo::Topology topos[] = {
        topo::geant2(), topo::nsfnet(),
        topo::barabasi_albert(20, 2, topo_rng)};
    for (const auto& t : topos) {
      const data::Sample s = data::generate_sample(t, cfg, rng);
      expect_matches_reference(s, false);
      expect_matches_reference(s, true);
    }
  }
}

// -- memory growth law (the compaction's point) ----------------------------

// A routing-only sample (no simulation): all-pairs hop-count paths on the
// topology, with placeholder labels — plan construction only reads the
// path structure, so this is enough to measure bytes() on large graphs.
data::Sample routing_only_sample(const topo::Topology& t) {
  data::Sample s;
  s.topo_name = t.name();
  s.num_nodes = static_cast<std::uint32_t>(t.num_nodes());
  for (const auto& l : t.graph().links()) s.links.push_back(l);
  s.link_capacity_bps.assign(t.num_links(), 1e7);
  s.queue_pkts.assign(t.num_nodes(), 32);
  const topo::RoutingScheme routing = topo::hop_count_routing(t);
  for (const auto& [src, dst] : routing.pairs()) {
    const topo::Path& p = routing.path(src, dst);
    data::PathRecord rec;
    rec.src = src;
    rec.dst = dst;
    rec.nodes = p.nodes;
    rec.links = p.links;
    rec.traffic_bps = 1e5;
    rec.mean_delay_s = 1e-3;
    rec.delivered = 100;
    s.paths.push_back(std::move(rec));
  }
  s.validate();
  return s;
}

TEST(PlanMemory, BytesGrowLinearInTotalPathLength) {
  // On Barabási–Albert graphs of increasing size, the arena footprint
  // must track the total path length (sum of hops), NOT paths x links —
  // the quadratic blowup that would sink a 300-node serve.
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    util::RngStream rng(0xba5eull + n);
    const topo::Topology t = topo::barabasi_albert(n, 2, rng);
    const data::Sample s = routing_only_sample(t);
    std::size_t total_hops = 0;
    for (const auto& p : s.paths) total_hops += p.links.size();

    for (const bool use_nodes : {false, true}) {
      const MpPlan plan = build_plan(s, use_nodes);
      // Entry accounting is exact: one arena slot per traversed element,
      // twice that (interleaved + incidences) in the extended plan.
      EXPECT_EQ(plan.total_entries(),
                use_nodes ? 2 * total_hops : total_hops);
      // Linear law: every index buffer is a fixed multiple of total path
      // length, plus the offset table (one u32 per position, bounded by
      // the graph diameter, not by size x paths).
      const std::size_t per_hop = use_nodes ? 6 : 2;  // index slots / hop
      const std::size_t linear_bound =
          per_hop * total_hops * sizeof(nn::Index) +
          (plan.num_positions() + 1) * sizeof(std::uint32_t);
      EXPECT_EQ(plan.bytes(), linear_bound);
      // And decisively below the quadratic regime.
      EXPECT_LT(plan.bytes(),
                plan.num_paths * plan.num_links * sizeof(nn::Index));
    }
  }
}

}  // namespace
