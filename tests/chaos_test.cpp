// Replayed chaos sequences (DESIGN.md §R): every fault-injection site is
// armed with a deterministic spec and driven 30 times, so one run
// exercises 200+ distinct failure sequences — and each one must surface
// through the REAL typed error path (ShardChecksumError, ManifestError,
// FaultInjectedError, ...), never a crash, a hang, or a silently wrong
// artifact.  After every sequence the invariant is the same: on-disk
// artifacts are either absent or fully loadable, and no *.tmp residue
// survives.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/sample_io.hpp"
#include "data/shards.hpp"
#include "data/source.hpp"
#include "serve/inference.hpp"
#include "serve/scheduler.hpp"
#include "topo/zoo.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;
namespace fs = std::filesystem;

constexpr int kIterations = 30;  // per scenario; 7 scenarios => 210 sequences

class ChaosTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSamples = 4;
  static constexpr std::size_t kPerShard = 2;

  ChaosTest() {
    util::FaultInjector::instance().reset();
    util::set_log_level(util::LogLevel::kWarn);
    dir_ = fs::temp_directory_path() /
           ("rnx_chaos." + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data::GeneratorConfig cfg;
    cfg.target_packets = 5'000;
    ds_ = std::make_unique<data::Dataset>(
        data::generate_dataset(topo::ring(4), kSamples, cfg, 97));
    data::ShardWriter writer(manifest(), kPerShard, 97,
                             data::config_digest(cfg));
    for (const auto& s : ds_->samples()) writer.add(s);
    (void)writer.finish();
  }
  ~ChaosTest() override {
    util::FaultInjector::instance().reset();
    fs::remove_all(dir_);
  }

  [[nodiscard]] std::string manifest() const {
    return (dir_ / "store.rnxm").string();
  }

  [[nodiscard]] std::size_t drain_source() const {
    data::StreamingShardSource src(manifest());
    src.reset();
    std::size_t n = 0;
    while (src.next()) ++n;
    return n;
  }

  /// The post-sequence invariant: no temp residue, store still loadable.
  void expect_store_intact() const {
    for (const auto& e : fs::directory_iterator(dir_))
      EXPECT_NE(e.path().extension(), ".tmp") << e.path();
    util::FaultInjector::instance().reset();
    EXPECT_EQ(drain_source(), kSamples);
  }

  std::filesystem::path dir_;
  std::unique_ptr<data::Dataset> ds_;
};

TEST_F(ChaosTest, ShardBitflipAlwaysDetectedByChecksum) {
  for (int it = 1; it <= kIterations; ++it) {
    // Vary WHICH shard read eats the flip across iterations.
    util::FaultInjector::instance().configure(
        "io.shard.bitflip=nth:" + std::to_string(1 + (it % 2)));
    EXPECT_THROW((void)drain_source(), data::ShardChecksumError)
        << "iteration " << it;
    expect_store_intact();
  }
}

TEST_F(ChaosTest, ShardTruncationAlwaysDetected) {
  for (int it = 1; it <= kIterations; ++it) {
    util::FaultInjector::instance().configure(
        "io.shard.truncate=nth:" + std::to_string(1 + (it % 2)));
    EXPECT_THROW((void)drain_source(), data::ShardChecksumError)
        << "iteration " << it;
    expect_store_intact();
  }
}

TEST_F(ChaosTest, ManifestBitflipAlwaysDetected) {
  for (int it = 1; it <= kIterations; ++it) {
    util::FaultInjector::instance().configure("io.manifest.bitflip=nth:1");
    // The manifest parses at construction; the flip lands before the
    // checksum verify, so the REAL integrity error reports it.
    EXPECT_THROW(data::StreamingShardSource src(manifest()),
                 data::ManifestError)
        << "iteration " << it;
    expect_store_intact();
  }
}

TEST_F(ChaosTest, AtomicWriteFailureLeavesNoTornArtifact) {
  const std::string victim = (dir_ / "victim.rnxd").string();
  ds_->save(victim);  // a good previous version to protect
  for (int it = 1; it <= kIterations; ++it) {
    util::FaultInjector::instance().configure("io.atomic.write=nth:1");
    EXPECT_THROW(ds_->save(victim), std::runtime_error) << "iteration " << it;
    util::FaultInjector::instance().reset();
    EXPECT_FALSE(fs::exists(victim + ".tmp"));
    // The previous good file survives the failed overwrite untouched.
    EXPECT_EQ(data::Dataset::load(victim).size(), kSamples);
    expect_store_intact();
  }
}

TEST_F(ChaosTest, AtomicRenameFailureLeavesNoTornArtifact) {
  const std::string victim = (dir_ / "victim2.rnxd").string();
  ds_->save(victim);
  for (int it = 1; it <= kIterations; ++it) {
    util::FaultInjector::instance().configure("io.atomic.rename=nth:1");
    EXPECT_THROW(ds_->save(victim), std::runtime_error) << "iteration " << it;
    util::FaultInjector::instance().reset();
    EXPECT_FALSE(fs::exists(victim + ".tmp"));
    EXPECT_EQ(data::Dataset::load(victim).size(), kSamples);
    expect_store_intact();
  }
}

TEST_F(ChaosTest, ProducerCrashSurfacesTypedAtNext) {
  for (int it = 1; it <= kIterations; ++it) {
    // The prefetch thread throws mid-stream; the consumer must see the
    // typed error at next(), after the already-queued prefix drains.
    util::FaultInjector::instance().configure(
        "source.producer=nth:" + std::to_string(1 + (it % 2)));
    data::StreamingShardSource src(manifest());
    src.reset();
    std::size_t delivered = 0;
    try {
      while (src.next()) ++delivered;
      FAIL() << "iteration " << it << ": producer fault never surfaced";
    } catch (const util::FaultInjectedError&) {
      // Crash before shard (it%2)+1 was loaded: only whole earlier
      // shards were delivered.
      EXPECT_EQ(delivered, static_cast<std::size_t>(it % 2) * kPerShard)
          << "iteration " << it;
    }
    expect_store_intact();
  }
}

TEST_F(ChaosTest, SchedulerExecuteFaultFailsRequestsNotProcess) {
  core::ModelConfig mc;
  mc.state_dim = 6;
  mc.readout_hidden = 8;
  mc.iterations = 2;
  mc.init_seed = 5;
  serve::ModelBundle b;
  b.model = core::make_model(core::ModelKind::kExtended, mc);
  b.scaler = data::Scaler::fit(ds_->samples(), 5);
  b.target = core::PredictionTarget::kDelay;
  b.min_delivered = 5;
  const serve::InferenceEngine engine(std::move(b));

  serve::SchedulerConfig cfg;
  cfg.manual_drain = true;
  cfg.now = [] { return std::chrono::steady_clock::time_point{}; };
  for (int it = 1; it <= kIterations; ++it) {
    util::FaultInjector::instance().configure(
        "serve.execute=nth:1;serve.execute.slow=always,param:1");
    serve::BatchScheduler sched(cfg);
    // First batch eats the injected failure, the second (injector fires
    // only on the 1st execute hit) completes normally — per-batch
    // degradation, not a poisoned scheduler.
    serve::Submitted bad = sched.submit(engine, {&(*ds_)[0], 1});
    ASSERT_TRUE(bad.admitted());
    EXPECT_EQ(sched.flush(), 1u);
    EXPECT_THROW((void)bad.result.get(), util::FaultInjectedError)
        << "iteration " << it;
    serve::Submitted good =
        sched.submit(engine, {&(*ds_)[it % kSamples], 1});
    ASSERT_TRUE(good.admitted());
    EXPECT_EQ(sched.flush(), 1u);
    EXPECT_EQ(good.result.get()[0], engine.predict((*ds_)[it % kSamples]))
        << "iteration " << it;
    const serve::ServeStats st = sched.stats();
    EXPECT_EQ(st.submitted, 2u);
    EXPECT_EQ(st.admitted, 2u);
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.in_flight(), 0u);
    util::FaultInjector::instance().reset();
  }
}

}  // namespace
