// Crash-safe checkpoint/resume (DESIGN.md §R).  The central pin is the
// kill-at-every-batch-boundary sweep: for EVERY optimizer step k, a run
// interrupted after step k and resumed from its checkpoint must finish
// with weights BITWISE-IDENTICAL to the uninterrupted reference — for
// fit and fit_stream, and regardless of the resuming run's thread
// count.  Around it: .rnxc round-trip fidelity, corruption rejection,
// and the refusal paths (config drift, scaler drift, fit/fit_stream
// cross-resume).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "data/source.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;
namespace fs = std::filesystem;
using core::TrainCheckpoint;

class CheckpointTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSamples = 6;
  static constexpr std::size_t kBatch = 2;
  static constexpr std::size_t kEpochs = 3;
  // 6 samples / batch 2 => 3 optimizer steps per epoch, 9 total.
  static constexpr std::size_t kTotalSteps = kEpochs * (kSamples / kBatch);

  CheckpointTest() {
    util::set_log_level(util::LogLevel::kWarn);
    dir_ = fs::temp_directory_path() /
           ("rnx_checkpoint." + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data::GeneratorConfig cfg;
    cfg.target_packets = 5'000;
    ds_ = std::make_unique<data::Dataset>(
        data::generate_dataset(topo::ring(4), kSamples, cfg, 97));
    scaler_ =
        std::make_unique<data::Scaler>(data::Scaler::fit(ds_->samples(), 10));
  }
  ~CheckpointTest() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string ckpt_dir() const { return dir_.string(); }
  [[nodiscard]] std::string ckpt_path() const {
    return core::checkpoint_file(ckpt_dir());
  }

  [[nodiscard]] static std::unique_ptr<core::Model> fresh_model() {
    core::ModelConfig mc;
    mc.state_dim = 8;
    mc.readout_hidden = 12;
    mc.iterations = 2;
    mc.init_seed = 5;
    return std::make_unique<core::ExtendedRouteNet>(mc);
  }

  [[nodiscard]] static core::TrainConfig base_config(std::size_t threads = 1) {
    core::TrainConfig tc;
    tc.epochs = kEpochs;
    tc.batch_samples = kBatch;
    tc.threads = threads;
    tc.verbose = false;
    return tc;
  }

  static void expect_identical_weights(const core::Model& a,
                                       const core::Model& b,
                                       const std::string& ctx) {
    const auto pa = a.named_params();
    const auto pb = b.named_params();
    ASSERT_EQ(pa.size(), pb.size()) << ctx;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      const auto& ta = pa[i].second.value();
      const auto& tb = pb[i].second.value();
      ASSERT_EQ(ta.size(), tb.size()) << ctx;
      for (std::size_t j = 0; j < ta.size(); ++j)
        ASSERT_EQ(ta.flat()[j], tb.flat()[j])
            << ctx << ": " << pa[i].first << "[" << j << "]";
    }
  }

  /// Reference weights from an uninterrupted run (no checkpointing).
  [[nodiscard]] std::unique_ptr<core::Model> reference_fit() const {
    auto model = fresh_model();
    core::Trainer trainer(*model, base_config());
    (void)trainer.fit(*ds_, *scaler_);
    return model;
  }
  [[nodiscard]] std::unique_ptr<core::Model> reference_fit_stream() const {
    auto model = fresh_model();
    core::Trainer trainer(*model, base_config());
    data::DatasetSource src(*ds_);
    (void)trainer.fit_stream(src, *scaler_);
    return model;
  }

  /// stop_requested hook that fires exactly at the k-th poll (polls
  /// happen once per optimizer step).
  [[nodiscard]] static std::function<bool()> stop_after(
      std::size_t k, std::shared_ptr<std::size_t> polled) {
    return [k, polled] { return ++*polled == k; };
  }

  std::filesystem::path dir_;
  std::unique_ptr<data::Dataset> ds_;
  std::unique_ptr<data::Scaler> scaler_;
};

// ---- .rnxc round trip + corruption ----------------------------------------

TEST_F(CheckpointTest, RoundTripIsBitwise) {
  TrainCheckpoint ck;
  ck.streaming = true;
  ck.config_digest = 0xDEADBEEFCAFEF00Dull;
  ck.epoch = 3;
  ck.batch_in_epoch = 7;
  ck.samples_done = 41;
  ck.lr = 1.25e-3;
  ck.shuffle_state = {1u, 2u, 3u, 0xFFFFFFFFFFFFFFFFull};
  ck.loss_sum = -0.125;
  ck.loss_count = 11;
  ck.best_val = 0.75;
  ck.since_best = 2;
  ck.adam_t = 99;
  for (std::size_t i = 0; i < ck.scaler_moments.size(); ++i)
    ck.scaler_moments[i] = {0.5 * static_cast<double>(i) - 1.0,
                            1.0 + 0.25 * static_cast<double>(i)};
  for (int p = 0; p < 3; ++p) {
    TrainCheckpoint::ParamState st;
    st.name = "layer." + std::to_string(p) + ".w";
    st.value = nn::Tensor(2, 3);
    st.m = nn::Tensor(2, 3);
    st.v = nn::Tensor(2, 3);
    for (std::size_t j = 0; j < st.value.size(); ++j) {
      st.value.flat()[j] = -1.5 + 0.3 * static_cast<double>(j + p);
      st.m.flat()[j] = 1e-8 * static_cast<double>(j) - 2e-9;
      st.v.flat()[j] = 1e-16 * static_cast<double>(j + 1);
    }
    ck.params.push_back(std::move(st));
  }

  const std::string path = ckpt_path();
  core::save_checkpoint(path, ck);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  const TrainCheckpoint got = core::load_checkpoint(path);

  EXPECT_EQ(got.streaming, ck.streaming);
  EXPECT_EQ(got.config_digest, ck.config_digest);
  EXPECT_EQ(got.epoch, ck.epoch);
  EXPECT_EQ(got.batch_in_epoch, ck.batch_in_epoch);
  EXPECT_EQ(got.samples_done, ck.samples_done);
  EXPECT_EQ(got.lr, ck.lr);
  EXPECT_EQ(got.shuffle_state, ck.shuffle_state);
  EXPECT_EQ(got.loss_sum, ck.loss_sum);
  EXPECT_EQ(got.loss_count, ck.loss_count);
  EXPECT_EQ(got.best_val, ck.best_val);
  EXPECT_EQ(got.since_best, ck.since_best);
  EXPECT_EQ(got.adam_t, ck.adam_t);
  for (std::size_t i = 0; i < ck.scaler_moments.size(); ++i) {
    EXPECT_EQ(got.scaler_moments[i].mean, ck.scaler_moments[i].mean);
    EXPECT_EQ(got.scaler_moments[i].stddev, ck.scaler_moments[i].stddev);
  }
  ASSERT_EQ(got.params.size(), ck.params.size());
  for (std::size_t p = 0; p < ck.params.size(); ++p) {
    EXPECT_EQ(got.params[p].name, ck.params[p].name);
    for (std::size_t j = 0; j < ck.params[p].value.size(); ++j) {
      EXPECT_EQ(got.params[p].value.flat()[j], ck.params[p].value.flat()[j]);
      EXPECT_EQ(got.params[p].m.flat()[j], ck.params[p].m.flat()[j]);
      EXPECT_EQ(got.params[p].v.flat()[j], ck.params[p].v.flat()[j]);
    }
  }
}

TEST_F(CheckpointTest, CorruptionIsAlwaysATypedError) {
  TrainCheckpoint ck;
  ck.config_digest = 1;
  TrainCheckpoint::ParamState st;
  st.name = "w";
  st.value = nn::Tensor(2, 2);
  st.m = nn::Tensor(2, 2);
  st.v = nn::Tensor(2, 2);
  ck.params.push_back(std::move(st));
  const std::string path = ckpt_path();
  core::save_checkpoint(path, ck);

  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  ASSERT_GT(bytes.size(), 24u);
  const auto write_variant = [&](std::string b) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(b.data(), static_cast<std::streamsize>(b.size()));
  };

  // Missing file.
  fs::remove(path);
  EXPECT_THROW((void)core::load_checkpoint(path), core::CheckpointError);
  // Bad magic.
  {
    std::string b = bytes;
    b[0] = 'X';
    write_variant(b);
    EXPECT_THROW((void)core::load_checkpoint(path), core::CheckpointError);
  }
  // Unsupported version.
  {
    std::string b = bytes;
    b[4] = 99;
    write_variant(b);
    EXPECT_THROW((void)core::load_checkpoint(path), core::CheckpointError);
  }
  // Truncation at several depths (header, mid-body, last byte).
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{10}, bytes.size() / 2,
        bytes.size() - 1}) {
    write_variant(bytes.substr(0, keep));
    EXPECT_THROW((void)core::load_checkpoint(path), core::CheckpointError)
        << "kept " << keep << " of " << bytes.size();
  }
  // A single flipped body bit fails the checksum.
  {
    std::string b = bytes;
    b[bytes.size() - 3] ^= 0x10;
    write_variant(b);
    EXPECT_THROW((void)core::load_checkpoint(path), core::CheckpointError);
  }
  // And the pristine bytes still load.
  write_variant(bytes);
  EXPECT_NO_THROW((void)core::load_checkpoint(path));
}

// ---- kill-at-every-batch-boundary sweeps ----------------------------------

TEST_F(CheckpointTest, FitResumeIsBitwiseAtEveryBoundary) {
  const auto reference = reference_fit();
  for (std::size_t k = 1; k <= kTotalSteps; ++k) {
    fs::remove(ckpt_path());
    auto interrupted = fresh_model();
    {
      core::TrainConfig tc = base_config();
      tc.checkpoint_dir = ckpt_dir();
      tc.checkpoint_every = 1;
      auto polled = std::make_shared<std::size_t>(0);
      tc.stop_requested = stop_after(k, polled);
      core::Trainer trainer(*interrupted, tc);
      (void)trainer.fit(*ds_, *scaler_);
      ASSERT_TRUE(trainer.interrupted()) << "k=" << k;
      ASSERT_TRUE(fs::exists(ckpt_path())) << "k=" << k;
    }
    auto resumed = fresh_model();
    {
      core::TrainConfig tc = base_config();
      tc.checkpoint_dir = ckpt_dir();
      tc.checkpoint_every = 1;
      tc.resume = true;
      core::Trainer trainer(*resumed, tc);
      (void)trainer.fit(*ds_, *scaler_);
      EXPECT_FALSE(trainer.interrupted());
    }
    expect_identical_weights(*reference, *resumed,
                             "fit killed after step " + std::to_string(k));
  }
}

TEST_F(CheckpointTest, FitStreamResumeIsBitwiseAtEveryBoundary) {
  const auto reference = reference_fit_stream();
  for (std::size_t k = 1; k <= kTotalSteps; ++k) {
    fs::remove(ckpt_path());
    auto interrupted = fresh_model();
    {
      core::TrainConfig tc = base_config();
      tc.checkpoint_dir = ckpt_dir();
      tc.checkpoint_every = 1;
      auto polled = std::make_shared<std::size_t>(0);
      tc.stop_requested = stop_after(k, polled);
      core::Trainer trainer(*interrupted, tc);
      data::DatasetSource src(*ds_);
      (void)trainer.fit_stream(src, *scaler_);
      ASSERT_TRUE(trainer.interrupted()) << "k=" << k;
    }
    auto resumed = fresh_model();
    {
      core::TrainConfig tc = base_config();
      tc.checkpoint_dir = ckpt_dir();
      tc.checkpoint_every = 1;
      tc.resume = true;
      core::Trainer trainer(*resumed, tc);
      data::DatasetSource src(*ds_);
      (void)trainer.fit_stream(src, *scaler_);
      EXPECT_FALSE(trainer.interrupted());
    }
    expect_identical_weights(
        *reference, *resumed,
        "fit_stream killed after step " + std::to_string(k));
  }
}

TEST_F(CheckpointTest, ResumeWithDifferentThreadCountIsStillBitwise) {
  const auto reference = reference_fit();
  // Kill mid-epoch under serial training, resume with 4 lanes: the lane
  // count must not change the trajectory (DESIGN.md §T), checkpoint or
  // not.
  auto interrupted = fresh_model();
  {
    core::TrainConfig tc = base_config(/*threads=*/1);
    tc.checkpoint_dir = ckpt_dir();
    tc.checkpoint_every = 1;
    auto polled = std::make_shared<std::size_t>(0);
    tc.stop_requested = stop_after(4, polled);
    core::Trainer trainer(*interrupted, tc);
    (void)trainer.fit(*ds_, *scaler_);
    ASSERT_TRUE(trainer.interrupted());
  }
  auto resumed = fresh_model();
  {
    core::TrainConfig tc = base_config(/*threads=*/4);
    tc.checkpoint_dir = ckpt_dir();
    tc.resume = true;
    core::Trainer trainer(*resumed, tc);
    (void)trainer.fit(*ds_, *scaler_);
  }
  expect_identical_weights(*reference, *resumed, "cross-thread resume");
}

TEST_F(CheckpointTest, EpochOnlyCheckpointStillFinalizesOnStop) {
  // checkpoint_every=0 writes only at epoch ends — but a stop request
  // must still flush one final mid-epoch checkpoint, or the interrupt
  // would lose work.
  auto interrupted = fresh_model();
  {
    core::TrainConfig tc = base_config();
    tc.checkpoint_dir = ckpt_dir();
    tc.checkpoint_every = 0;
    auto polled = std::make_shared<std::size_t>(0);
    tc.stop_requested = stop_after(2, polled);
    core::Trainer trainer(*interrupted, tc);
    (void)trainer.fit(*ds_, *scaler_);
    ASSERT_TRUE(trainer.interrupted());
  }
  const TrainCheckpoint ck = core::load_checkpoint(ckpt_path());
  EXPECT_EQ(ck.epoch, 0u);
  EXPECT_EQ(ck.batch_in_epoch, 2u);

  auto resumed = fresh_model();
  {
    core::TrainConfig tc = base_config();
    tc.checkpoint_dir = ckpt_dir();
    tc.checkpoint_every = 0;
    tc.resume = true;
    core::Trainer trainer(*resumed, tc);
    (void)trainer.fit(*ds_, *scaler_);
  }
  expect_identical_weights(*reference_fit(), *resumed, "epoch-only resume");
}

TEST_F(CheckpointTest, ResumingAFinishedRunRetrainsNothing) {
  auto model = fresh_model();
  core::TrainConfig tc = base_config();
  tc.checkpoint_dir = ckpt_dir();
  {
    core::Trainer trainer(*model, tc);
    const auto hist = trainer.fit(*ds_, *scaler_);
    ASSERT_EQ(hist.size(), kEpochs);
  }
  const TrainCheckpoint ck = core::load_checkpoint(ckpt_path());
  EXPECT_EQ(ck.epoch, kEpochs);  // cursor parked past the last epoch
  auto again = fresh_model();
  tc.resume = true;
  core::Trainer trainer(*again, tc);
  const auto hist = trainer.fit(*ds_, *scaler_);
  EXPECT_TRUE(hist.empty());  // no epochs re-run
  expect_identical_weights(*model, *again, "finished-run resume");
}

// ---- refusal paths --------------------------------------------------------

TEST_F(CheckpointTest, ResumeRefusesChangedHyperparameters) {
  auto model = fresh_model();
  {
    core::TrainConfig tc = base_config();
    tc.checkpoint_dir = ckpt_dir();
    auto polled = std::make_shared<std::size_t>(0);
    tc.stop_requested = stop_after(1, polled);
    core::Trainer trainer(*model, tc);
    (void)trainer.fit(*ds_, *scaler_);
  }
  auto other = fresh_model();
  core::TrainConfig tc = base_config();
  tc.checkpoint_dir = ckpt_dir();
  tc.resume = true;
  tc.lr = tc.lr * 0.5;  // any trajectory-relevant knob refuses
  core::Trainer trainer(*other, tc);
  EXPECT_THROW((void)trainer.fit(*ds_, *scaler_), core::CheckpointError);
}

TEST_F(CheckpointTest, ResumeRefusesChangedScaler) {
  auto model = fresh_model();
  {
    core::TrainConfig tc = base_config();
    tc.checkpoint_dir = ckpt_dir();
    auto polled = std::make_shared<std::size_t>(0);
    tc.stop_requested = stop_after(1, polled);
    core::Trainer trainer(*model, tc);
    (void)trainer.fit(*ds_, *scaler_);
  }
  // Same config digest (same dataset size/knobs), different scaler
  // moments: the checkpointed run would silently train a different
  // function, so resume must refuse.
  data::GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  const data::Dataset other_ds(
      data::generate_dataset(topo::ring(4), kSamples, cfg, 131));
  const data::Scaler other_scaler =
      data::Scaler::fit(other_ds.samples(), 10);
  auto other = fresh_model();
  core::TrainConfig tc = base_config();
  tc.checkpoint_dir = ckpt_dir();
  tc.resume = true;
  core::Trainer trainer(*other, tc);
  EXPECT_THROW((void)trainer.fit(*ds_, other_scaler), core::CheckpointError);
}

TEST_F(CheckpointTest, FitRefusesAStreamingCheckpointAndViceVersa) {
  auto model = fresh_model();
  {
    core::TrainConfig tc = base_config();
    tc.checkpoint_dir = ckpt_dir();
    auto polled = std::make_shared<std::size_t>(0);
    tc.stop_requested = stop_after(1, polled);
    core::Trainer trainer(*model, tc);
    (void)trainer.fit(*ds_, *scaler_);  // writes a non-streaming checkpoint
  }
  auto other = fresh_model();
  core::TrainConfig tc = base_config();
  tc.checkpoint_dir = ckpt_dir();
  tc.resume = true;
  core::Trainer trainer(*other, tc);
  data::DatasetSource src(*ds_);
  EXPECT_THROW((void)trainer.fit_stream(src, *scaler_),
               core::CheckpointError);

  fs::remove(ckpt_path());
  auto stream_model = fresh_model();
  {
    core::TrainConfig sc = base_config();
    sc.checkpoint_dir = ckpt_dir();
    auto polled = std::make_shared<std::size_t>(0);
    sc.stop_requested = stop_after(1, polled);
    core::Trainer trainer2(*stream_model, sc);
    data::DatasetSource src2(*ds_);
    (void)trainer2.fit_stream(src2, *scaler_);  // streaming checkpoint
  }
  auto other2 = fresh_model();
  core::Trainer trainer3(*other2, tc);
  EXPECT_THROW((void)trainer3.fit(*ds_, *scaler_), core::CheckpointError);
}

}  // namespace
