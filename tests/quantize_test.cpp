// Quantized weight bundles (DESIGN.md §K): the fp16/int8 "RNXQ" weight
// sections, the v4 .rnxb container, and the accuracy-drift gate.
//
// Pins three independent contracts:
//   * the lossy primitives themselves (binary16 round-to-nearest-even,
//     subnormals, saturation, NaN; int8 symmetric per-tensor scale);
//   * the container: fp64 saves stay BYTE-identical to the v3 layout,
//     quantized saves round-trip through v4 with provenance recorded,
//     and corrupt sections fail loudly without huge allocations;
//   * the drift gate: int8/fp16 predictions stay within a pinned
//     mean-relative-error bound of the fp64 bundle on real samples.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/routenet_ext.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "serve/bundle.hpp"
#include "serve/inference.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx;
using nn::WeightEncoding;

// ---- fp16 primitives -------------------------------------------------------

TEST(QuantizeFp16, ExactValuesRoundTrip) {
  // Everything representable in binary16 must survive unchanged.
  const std::vector<double> exact = {0.0,   1.0,    -1.0,   0.5,    2.0,
                                     -2.5,  1024.0, 65504.0, -65504.0,
                                     0.125, 6.103515625e-05 /* min normal */};
  for (const double v : exact)
    EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(v)), v) << v;
}

TEST(QuantizeFp16, SignedZeroAndInfinity) {
  EXPECT_EQ(nn::fp16_from_double(0.0), 0x0000);
  EXPECT_EQ(nn::fp16_from_double(-0.0), 0x8000);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(inf)), inf);
  EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(-inf)), -inf);
  // Beyond half range saturates to infinity rather than garbage.
  EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(70000.0)), inf);
  EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(-1e300)), -inf);
}

TEST(QuantizeFp16, NanStaysNan) {
  const std::uint16_t h =
      nn::fp16_from_double(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(nn::fp16_to_double(h)));
}

TEST(QuantizeFp16, SubnormalsRepresented) {
  // Smallest positive binary16 subnormal is 2^-24.
  const double tiny = std::ldexp(1.0, -24);
  EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(tiny)), tiny);
  // Halfway below the smallest subnormal rounds to zero (even).
  EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(std::ldexp(1.0, -26))),
            0.0);
}

TEST(QuantizeFp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half value
  // 1 + 2^-10; ties go to the even mantissa, i.e. down to 1.0.
  EXPECT_EQ(nn::fp16_to_double(nn::fp16_from_double(1.0 + std::ldexp(1.0, -11))),
            1.0);
  // Just above the tie rounds up.
  EXPECT_EQ(nn::fp16_to_double(
                nn::fp16_from_double(1.0 + std::ldexp(1.0, -11) * 1.5)),
            1.0 + std::ldexp(1.0, -10));
}

TEST(QuantizeFp16, RelativeErrorBounded) {
  util::RngStream rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-8.0, 8.0);
    const double r = nn::fp16_to_double(nn::fp16_from_double(v));
    // binary16 has 11 significand bits: eps/2 = 2^-12.
    EXPECT_LE(std::abs(r - v), std::abs(v) * std::ldexp(1.0, -11) + 1e-30)
        << v;
  }
}

// ---- RNXQ sections ---------------------------------------------------------

nn::NamedParams make_params(std::uint64_t seed) {
  util::RngStream rng(seed);
  nn::NamedParams p;
  p.emplace_back("w", nn::Var(nn::uniform_init(7, 5, -2.0, 2.0, rng), true));
  p.emplace_back("b", nn::Var(nn::uniform_init(1, 5, -0.5, 0.5, rng), true));
  p.emplace_back("zeros", nn::Var(nn::Tensor(3, 3), true));
  return p;
}

nn::NamedParams like(const nn::NamedParams& src) {
  nn::NamedParams out;
  for (const auto& [name, v] : src)
    out.emplace_back(name,
                     nn::Var(nn::Tensor(v.value().rows(), v.value().cols()),
                             true));
  return out;
}

TEST(QuantizeSection, Fp16RoundTripWithinHalfPrecision) {
  const nn::NamedParams src = make_params(5);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_params_quantized(buf, src, WeightEncoding::kFp16);
  nn::NamedParams dst = like(src);
  nn::load_params_quantized(buf, dst);
  for (std::size_t p = 0; p < src.size(); ++p) {
    const auto& a = src[p].second.value();
    const auto& b = dst[p].second.value();
    for (std::size_t i = 0; i < a.size(); ++i) {
      // The stored value is exactly the fp16 rounding of the original.
      EXPECT_EQ(b.flat()[i],
                nn::fp16_to_double(nn::fp16_from_double(a.flat()[i])));
    }
  }
}

TEST(QuantizeSection, Int8RoundTripWithinScaleStep) {
  const nn::NamedParams src = make_params(7);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_params_quantized(buf, src, WeightEncoding::kInt8);
  nn::NamedParams dst = like(src);
  nn::load_params_quantized(buf, dst);
  for (std::size_t p = 0; p < src.size(); ++p) {
    const auto& a = src[p].second.value();
    const auto& b = dst[p].second.value();
    double maxabs = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
      maxabs = std::max(maxabs, std::abs(a.flat()[i]));
    const double scale = maxabs / 127.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Within half a quantization step, and the extremes map exactly.
      EXPECT_LE(std::abs(b.flat()[i] - a.flat()[i]), scale / 2.0 + 1e-15);
      const double q = b.flat()[i] / (scale > 0 ? scale : 1.0);
      EXPECT_NEAR(q, std::round(q), 1e-9);  // decoded values sit on the grid
    }
  }
  // The all-zero tensor decodes to exact zeros (scale 0 special case).
  const auto& z = dst.back().second.value();
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z.flat()[i], 0.0);
}

TEST(QuantizeSection, Fp64EncodingRejectedAtSave) {
  const nn::NamedParams src = make_params(9);
  std::stringstream buf;
  EXPECT_THROW(nn::save_params_quantized(buf, src, WeightEncoding::kFp64),
               std::invalid_argument);
}

TEST(QuantizeSection, ParseEncodingNames) {
  EXPECT_EQ(nn::parse_weight_encoding("fp64"), WeightEncoding::kFp64);
  EXPECT_EQ(nn::parse_weight_encoding("fp16"), WeightEncoding::kFp16);
  EXPECT_EQ(nn::parse_weight_encoding("int8"), WeightEncoding::kInt8);
  EXPECT_THROW((void)nn::parse_weight_encoding("int4"), std::invalid_argument);
  EXPECT_STREQ(nn::to_string(WeightEncoding::kInt8), "int8");
}

TEST(QuantizeSection, CorruptInputRejected) {
  const nn::NamedParams src = make_params(11);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_params_quantized(buf, src, WeightEncoding::kInt8);
  const std::string bytes = buf.str();

  const auto load_from = [&](std::string data) {
    std::stringstream in(std::move(data),
                         std::ios::in | std::ios::out | std::ios::binary);
    nn::NamedParams dst = like(src);
    nn::load_params_quantized(in, dst);
  };

  // Truncation at several depths: header, mid-name, mid-payload.
  for (const std::size_t keep :
       {std::size_t{2}, std::size_t{9}, std::size_t{20}, bytes.size() - 3})
    EXPECT_THROW(load_from(bytes.substr(0, keep)), std::runtime_error)
        << "keep=" << keep;

  // Wrong magic ("RNXW" plain section fed to the quantized loader).
  std::string wrong = bytes;
  wrong[3] = 'W';
  EXPECT_THROW(load_from(wrong), std::runtime_error);

  // Invalid encoding tag on the first tensor.  Layout: magic 4 +
  // version 4 + count 8 + name_len 4 + "w" 1 + rows 8 + cols 8 = 37.
  std::string bad_enc = bytes;
  bad_enc[37] = 9;
  EXPECT_THROW(load_from(bad_enc), std::runtime_error);
}

TEST(QuantizeSection, NameAndShapeMismatchRejected) {
  const nn::NamedParams src = make_params(13);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_params_quantized(buf, src, WeightEncoding::kFp16);

  nn::NamedParams renamed = like(src);
  renamed[0].first = "nope";
  EXPECT_THROW(nn::load_params_quantized(buf, renamed), std::runtime_error);

  buf.clear();
  buf.seekg(0);
  nn::NamedParams reshaped = like(src);
  reshaped[0].second = nn::Var(nn::Tensor(2, 2), true);
  EXPECT_THROW(nn::load_params_quantized(buf, reshaped), std::runtime_error);
}

// ---- v4 bundles ------------------------------------------------------------

const data::Dataset& test_dataset() {
  static const data::Dataset ds = [] {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    return data::Dataset(data::generate_dataset(topo::nsfnet(), 4, gen, 11));
  }();
  return ds;
}

core::ModelConfig small_config() {
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.readout_hidden = 12;
  mc.iterations = 2;
  mc.init_seed = 5;
  return mc;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), {}};
}

TEST(QuantizeBundle, Fp64SaveStaysByteIdenticalV3) {
  const data::Dataset& ds = test_dataset();
  const core::ExtendedRouteNet model(small_config());
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);

  const std::string p_default = "/tmp/rnx_quant_default.rnxb";
  const std::string p_explicit = "/tmp/rnx_quant_fp64.rnxb";
  serve::save_bundle(p_default, model, scaler, core::PredictionTarget::kDelay,
                     5);
  serve::save_bundle(p_explicit, model, scaler, core::PredictionTarget::kDelay,
                     5, WeightEncoding::kFp64);
  const std::string a = slurp(p_default), b = slurp(p_explicit);
  EXPECT_EQ(a, b);

  // Header says v3 — the pre-quantization layout, bit for bit.
  ASSERT_GE(a.size(), 8u);
  std::uint32_t version = 0;
  std::memcpy(&version, a.data() + 4, 4);
  EXPECT_EQ(version, serve::kFp64BundleVersion);

  const serve::ModelBundle loaded = serve::load_bundle(p_default);
  EXPECT_EQ(loaded.encoding, WeightEncoding::kFp64);
  std::filesystem::remove(p_default);
  std::filesystem::remove(p_explicit);
}

TEST(QuantizeBundle, QuantizedRoundTripRecordsEncoding) {
  const data::Dataset& ds = test_dataset();
  const core::ExtendedRouteNet model(small_config());
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);

  for (const WeightEncoding enc :
       {WeightEncoding::kFp16, WeightEncoding::kInt8}) {
    const std::string path = "/tmp/rnx_quant_v4.rnxb";
    serve::save_bundle(path, model, scaler, core::PredictionTarget::kDelay, 5,
                       enc);
    const std::string bytes = slurp(path);
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 4, 4);
    EXPECT_EQ(version, serve::kBundleVersion);

    const serve::ModelBundle loaded = serve::load_bundle(path);
    EXPECT_EQ(loaded.encoding, enc);
    EXPECT_EQ(loaded.model->config().state_dim, 8u);

    // Weights decode to the expected grid: every loaded value matches
    // quantize(original) exactly — the container adds no extra loss.
    if (enc == WeightEncoding::kFp16) {
      const nn::NamedParams pa = model.named_params();
      const nn::NamedParams pb = loaded.model->named_params();
      ASSERT_EQ(pa.size(), pb.size());
      for (std::size_t p = 0; p < pa.size(); ++p)
        for (std::size_t i = 0; i < pa[p].second.value().size(); ++i)
          EXPECT_EQ(pb[p].second.value().flat()[i],
                    nn::fp16_to_double(
                        nn::fp16_from_double(pa[p].second.value().flat()[i])));
    }
    std::filesystem::remove(path);
  }
}

// The accuracy gate: quantized predictions must track the fp64 bundle
// within a pinned mean-relative-error drift on real simulator samples.
// fp16 keeps ~3 significant digits of every weight; int8 is coarser.
// These bounds are deliberately tight — loosening them is a red flag,
// not a chore.
TEST(QuantizeBundle, PredictionDriftWithinPinnedBound) {
  const data::Dataset& ds = test_dataset();
  const core::ExtendedRouteNet model(small_config());
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);

  const std::string p64 = "/tmp/rnx_quant_drift64.rnxb";
  serve::save_bundle(p64, model, scaler, core::PredictionTarget::kDelay, 5);
  const serve::InferenceEngine full(p64);

  const auto drift_vs_full = [&](WeightEncoding enc) {
    const std::string pq = "/tmp/rnx_quant_driftq.rnxb";
    serve::save_bundle(pq, model, scaler, core::PredictionTarget::kDelay, 5,
                       enc);
    const serve::InferenceEngine quant(pq);
    double err_sum = 0.0;
    std::size_t count = 0;
    for (const auto& sample : ds.samples()) {
      const std::vector<double> a = full.predict(sample);
      const std::vector<double> b = quant.predict(sample);
      EXPECT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        err_sum += std::abs(b[i] - a[i]) / std::max(std::abs(a[i]), 1e-12);
        ++count;
      }
    }
    std::filesystem::remove(pq);
    return err_sum / static_cast<double>(count);
  };

  EXPECT_LT(drift_vs_full(WeightEncoding::kFp16), 5e-3);
  EXPECT_LT(drift_vs_full(WeightEncoding::kInt8), 2e-1);
  std::filesystem::remove(p64);
}

TEST(QuantizeBundle, CorruptQuantSectionRejectedByChecksum) {
  const data::Dataset& ds = test_dataset();
  const core::ExtendedRouteNet model(small_config());
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);
  const std::string path = "/tmp/rnx_quant_bitrot.rnxb";
  serve::save_bundle(path, model, scaler, core::PredictionTarget::kDelay, 5,
                     WeightEncoding::kInt8);
  std::string bytes = slurp(path);
  bytes[bytes.size() - 5] ^= 0x01;  // flip one quantized payload bit
  {
    std::ofstream f(path, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)serve::load_bundle(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
