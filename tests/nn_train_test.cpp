// Optimizers, initialization, serialization, and learning sanity: the
// substrate must actually train networks, not just pass gradchecks.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "nn/gru.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx::nn;
using rnx::util::RngStream;

std::vector<Var> vars_of(const NamedParams& np) {
  std::vector<Var> out;
  for (const auto& [n, v] : np) out.push_back(v);
  return out;
}

// ---- init ------------------------------------------------------------------

TEST(Init, GlorotBoundsAndSpread) {
  RngStream rng(1);
  const Tensor t = glorot_uniform(64, 64, rng);
  const double limit = std::sqrt(6.0 / 128.0);
  double maxabs = 0.0;
  for (const double x : t.flat()) {
    EXPECT_LE(std::abs(x), limit);
    maxabs = std::max(maxabs, std::abs(x));
  }
  EXPECT_GT(maxabs, 0.5 * limit);  // actually spread out
}

TEST(Init, HeNormalVariance) {
  RngStream rng(2);
  const Tensor t = he_normal(400, 50, rng);
  double ss = 0.0;
  for (const double x : t.flat()) ss += x * x;
  const double var = ss / static_cast<double>(t.size());
  EXPECT_NEAR(var, 2.0 / 400.0, 0.001);
}

TEST(Init, SeedDeterminism) {
  RngStream r1(3), r2(3);
  const Tensor a = glorot_uniform(4, 4, r1);
  const Tensor b = glorot_uniform(4, 4, r2);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.flat()[i], b.flat()[i]);
}

// ---- optimizers -------------------------------------------------------------

TEST(Sgd, DescendsQuadratic) {
  Var x(Tensor::scalar(10.0), true);
  Sgd opt({x}, 0.1);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    mul(x, x).backward();
    opt.step();
  }
  EXPECT_NEAR(x.value().item(), 0.0, 1e-6);
}

TEST(Sgd, MomentumAcceleratesOnRavine) {
  auto run = [](double momentum) {
    Var x(Tensor::scalar(10.0), true);
    Sgd opt({x}, 0.01, momentum);
    for (int i = 0; i < 60; ++i) {
      opt.zero_grad();
      mul(x, x).backward();
      opt.step();
    }
    return std::abs(x.value().item());
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Adam, DescendsIllConditionedQuadratic) {
  // f(x, y) = 100 x^2 + y^2 — plain SGD needs a tiny lr; Adam copes.
  Var x(Tensor::scalar(1.0), true);
  Var y(Tensor::scalar(1.0), true);
  Adam opt({x, y}, 0.05);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    add(scale(mul(x, x), 100.0), mul(y, y)).backward();
    opt.step();
  }
  EXPECT_NEAR(x.value().item(), 0.0, 1e-3);
  EXPECT_NEAR(y.value().item(), 0.0, 0.05);
  EXPECT_EQ(opt.steps_taken(), 400u);
}

TEST(Optimizer, RejectsNonTrainable) {
  const Var c = constant(Tensor::scalar(1.0));
  EXPECT_THROW(Sgd({c}, 0.1), std::invalid_argument);
  Var x(Tensor::scalar(1.0), true);
  EXPECT_THROW(Sgd({x}, 0.0), std::invalid_argument);
  EXPECT_THROW(Adam({x}, -1.0), std::invalid_argument);
}

TEST(Optimizer, GlobalNormClipping) {
  Var a(Tensor(1, 2, {3.0, 0.0}), true);
  Var b(Tensor(1, 2, {0.0, 4.0}), true);
  Sgd opt({a, b}, 0.1);
  sum_all(add(mul(a, constant(Tensor(1, 2, {3.0, 0.0}))),
              mul(b, constant(Tensor(1, 2, {0.0, 4.0})))))
      .backward();
  // grads: a -> (3,0), b -> (0,4): global norm 5.
  EXPECT_NEAR(opt.grad_global_norm(), 5.0, 1e-12);
  opt.clip_global_norm(2.5);
  EXPECT_NEAR(opt.grad_global_norm(), 2.5, 1e-12);
  // Clipping below threshold is a no-op.
  opt.clip_global_norm(100.0);
  EXPECT_NEAR(opt.grad_global_norm(), 2.5, 1e-12);
  EXPECT_THROW(opt.clip_global_norm(0.0), std::invalid_argument);
}

TEST(Optimizer, ZeroGradClears) {
  Var x(Tensor::scalar(2.0), true);
  Sgd opt({x}, 0.1);
  mul(x, x).backward();
  EXPECT_NE(x.grad()(0, 0), 0.0);
  opt.zero_grad();
  EXPECT_EQ(x.grad()(0, 0), 0.0);
}

// ---- learning sanity ----------------------------------------------------------

TEST(Learning, MlpSolvesXor) {
  RngStream rng(4);
  Mlp mlp({2, 8, 1}, Activation::kTanh, rng);
  const Tensor x(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  const Tensor t(4, 1, {0, 1, 1, 0});
  Adam opt(vars_of(mlp.named_params()), 0.05);
  const Var input = constant(x);
  double final_loss = 1.0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    opt.zero_grad();
    Var loss = mse_loss(mlp.forward(input), t);
    loss.backward();
    opt.step();
    final_loss = loss.value().item();
  }
  EXPECT_LT(final_loss, 1e-2);
  const Var pred = mlp.forward(input);
  EXPECT_LT(pred.value()(0, 0), 0.3);
  EXPECT_GT(pred.value()(1, 0), 0.7);
  EXPECT_GT(pred.value()(2, 0), 0.7);
  EXPECT_LT(pred.value()(3, 0), 0.3);
}

TEST(Learning, MlpRegressesSine) {
  RngStream rng(5);
  Mlp mlp({1, 16, 16, 1}, Activation::kTanh, rng);
  const int n = 64;
  Tensor x(n, 1), t(n, 1);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = -3.0 + 6.0 * i / (n - 1);
    t(i, 0) = std::sin(x(i, 0));
  }
  Adam opt(vars_of(mlp.named_params()), 0.01);
  const Var input = constant(x);
  for (int epoch = 0; epoch < 800; ++epoch) {
    opt.zero_grad();
    mse_loss(mlp.forward(input), t).backward();
    opt.step();
  }
  const double loss = mse_loss(mlp.forward(input), t).value().item();
  EXPECT_LT(loss, 5e-3);
}

TEST(Learning, GruLearnsToRememberFirstToken) {
  // Sequences of 4 steps; target = first input.  Forces the cell to keep
  // state across steps.
  RngStream rng(6);
  GRUCell cell(1, 6, rng);
  Mlp head({6, 1}, Activation::kNone, rng, "head");
  std::vector<Var> params = vars_of(cell.named_params());
  for (auto& v : vars_of(head.named_params())) params.push_back(v);
  Adam opt(params, 0.02);

  RngStream data_rng(7);
  double final_loss = 1.0;
  for (int epoch = 0; epoch < 300; ++epoch) {
    Tensor first(8, 1), rest1(8, 1), rest2(8, 1), rest3(8, 1);
    for (int i = 0; i < 8; ++i) {
      first(i, 0) = data_rng.uniform(-1, 1);
      rest1(i, 0) = data_rng.uniform(-1, 1);
      rest2(i, 0) = data_rng.uniform(-1, 1);
      rest3(i, 0) = data_rng.uniform(-1, 1);
    }
    opt.zero_grad();
    Var h = constant(Tensor::zeros(8, 6));
    h = cell.step(constant(first), h);
    h = cell.step(constant(rest1), h);
    h = cell.step(constant(rest2), h);
    h = cell.step(constant(rest3), h);
    Var loss = mse_loss(head.forward(h), first);
    loss.backward();
    opt.step();
    final_loss = loss.value().item();
  }
  EXPECT_LT(final_loss, 0.05);
}

// ---- serialization ------------------------------------------------------------

TEST(Serialize, RoundTripPreservesValues) {
  RngStream rng(8);
  Mlp a({3, 5, 2}, Activation::kRelu, rng, "m");
  const std::string path = "/tmp/rnx_weights_test.rnxw";
  {
    const NamedParams params = a.named_params();
    save_params(path, params);
  }
  RngStream rng2(99);  // different init
  Mlp b({3, 5, 2}, Activation::kRelu, rng2, "m");
  NamedParams pb = b.named_params();
  load_params(path, pb);
  const NamedParams pa = a.named_params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const auto& ta = pa[i].second.value();
    const auto& tb = pb[i].second.value();
    for (std::size_t j = 0; j < ta.size(); ++j)
      EXPECT_EQ(ta.flat()[j], tb.flat()[j]);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, NameMismatchRejected) {
  RngStream rng(9);
  Mlp a({2, 2}, Activation::kNone, rng, "alpha");
  Mlp b({2, 2}, Activation::kNone, rng, "beta");
  const std::string path = "/tmp/rnx_weights_test2.rnxw";
  save_params(path, a.named_params());
  NamedParams pb = b.named_params();
  EXPECT_THROW(load_params(path, pb), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, ShapeMismatchRejected) {
  RngStream rng(10);
  Mlp a({2, 3}, Activation::kNone, rng, "m");
  Mlp b({2, 4}, Activation::kNone, rng, "m");
  const std::string path = "/tmp/rnx_weights_test3.rnxw";
  save_params(path, a.named_params());
  NamedParams pb = b.named_params();
  EXPECT_THROW(load_params(path, pb), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, TruncatedFileRejected) {
  RngStream rng(11);
  Mlp a({4, 4}, Activation::kNone, rng, "m");
  const std::string path = "/tmp/rnx_weights_test4.rnxw";
  save_params(path, a.named_params());
  std::filesystem::resize_file(path, 24);
  NamedParams pa = a.named_params();
  EXPECT_THROW(load_params(path, pa), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(load_params("/tmp/definitely_missing.rnxw", pa),
               std::runtime_error);
}

}  // namespace
