// util::ThreadPool: index coverage, reuse, exception propagation, and the
// slot-reduction pattern the trainer's determinism rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

using rnx::util::ThreadPool;

TEST(ThreadPool, HardwareThreadsNonZero) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ZeroNormalizedToOneLane) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    ThreadPool pool(lanes);
    EXPECT_EQ(pool.size(), lanes);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, CountSmallerThanLanes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyJobIsNoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 50; ++job)
    pool.parallel_for(20, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, ExceptionPropagatesAfterAllIndicesRan) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          ++hits[i];
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The failing job still dispatched every index exactly once.
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The pool survives and the error does not resurface on the next job.
  std::atomic<int> ok{0};
  pool.parallel_for(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

// try_parallel_for refuses (returns false, runs nothing) while another
// job owns the pool, and plain parallel_for from a second thread queues
// instead of corrupting the in-flight job — the serving scheduler's
// fan-out contract (DESIGN.md §B2).
TEST(ThreadPool, TryParallelForRefusesWhileBusy) {
  ThreadPool pool(2);
  std::atomic<bool> inner_ran{false};
  std::atomic<int> refused{0}, outer_done{0};
  // One long outer job; a probe thread try-submits while it runs.
  std::atomic<bool> probe_may_run{false};
  std::thread probe([&] {
    while (!probe_may_run.load()) std::this_thread::yield();
    if (!pool.try_parallel_for(4, [&](std::size_t) { inner_ran = true; }))
      ++refused;
  });
  pool.parallel_for(64, [&](std::size_t) {
    probe_may_run = true;
    // Hold the job open long enough for the probe to observe "busy".
    while (refused.load() == 0 && !inner_ran.load())
      std::this_thread::yield();
    ++outer_done;
  });
  probe.join();
  EXPECT_EQ(outer_done.load(), 64);
  // Either the probe hit the busy window (refused, ran nothing inline)
  // or it landed after the job drained and ran normally — both are
  // valid schedules; what may never happen is refusal AND execution.
  EXPECT_NE(refused.load() == 1, inner_ran.load());

  // Once idle, try_parallel_for succeeds and runs every index.
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.try_parallel_for(8, [&](std::size_t) { ++count; }));
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ConcurrentParallelForCallsSerializeSafely) {
  ThreadPool pool(2);
  constexpr std::size_t kCallers = 4, kCount = 64;
  std::vector<std::atomic<int>> hits(kCallers * kCount);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c)
    callers.emplace_back([&, c] {
      pool.parallel_for(kCount,
                        [&](std::size_t i) { ++hits[c * kCount + i]; });
    });
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Slot reduction: results written to per-index slots and reduced in index
// order are identical for any lane count — the trainer's merge contract.
TEST(ThreadPool, SlotReductionIsLaneCountInvariant) {
  constexpr std::size_t kCount = 200;
  auto run = [&](std::size_t lanes) {
    ThreadPool pool(lanes);
    std::vector<double> slots(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) {
      slots[i] = 1.0 / (static_cast<double>(i) + 0.37);
    });
    double sum = 0.0;
    for (const double s : slots) sum += s;  // fixed order
    return sum;
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(7));
}

}  // namespace
