// Sharded dataset pipeline (DESIGN.md §D): parallel ordered-commit
// generation determinism, shard store round-trips, manifest integrity
// (typed errors), streaming source residency bounds, and the mixed
// cross-topology sampler.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <vector>

#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/sample_io.hpp"
#include "data/shards.hpp"
#include "data/source.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using data::Dataset;
using data::GeneratorConfig;
using data::Sample;

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  return cfg;
}

std::vector<std::uint64_t> digests(const std::vector<Sample>& samples) {
  std::vector<std::uint64_t> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(data::io::sample_digest(s));
  return out;
}

class TempDir {
 public:
  // PID-suffixed: ctest runs each test as its own process, potentially
  // in parallel — a fixed shared directory would let one process's
  // cleanup delete another's live store.
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              (name + "." + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// ---- parallel generation determinism ----------------------------------------

TEST(ParallelDatagen, BitwiseIdenticalForAnyThreadCount) {
  const auto cfg = fast_config();
  const auto serial =
      data::generate_dataset(topo::ring(4), 9, cfg, 71);
  const auto serial_digests = digests(serial);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto parallel =
        data::generate_dataset(topo::ring(4), 9, cfg, 71, threads);
    EXPECT_EQ(digests(parallel), serial_digests)
        << "threads=" << threads << " diverged from serial";
  }
}

TEST(ParallelDatagen, StreamCommitsInOrderWithMonotonicProgress) {
  const auto cfg = fast_config();
  std::vector<std::size_t> commit_order;
  std::size_t last_done = 0;
  bool monotonic = true;
  data::generate_dataset_stream(
      data::fixed_topology(topo::ring(4)), 7, cfg, 5, /*threads=*/4,
      [&](std::size_t i, Sample) { commit_order.push_back(i); },
      [&](std::size_t done, std::size_t total) {
        monotonic &= done == last_done + 1 && done <= total;
        last_done = done;
      });
  std::vector<std::size_t> expect(7);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(commit_order, expect);
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(last_done, 7u);
}

TEST(ParallelDatagen, WorkerExceptionPropagatesWithoutDeadlock) {
  GeneratorConfig cfg = fast_config();
  cfg.traffic = data::TrafficModel::kUniform;
  // A single-node topology draws a zero-total traffic matrix, which
  // generate_sample rejects — from a worker lane, mid-run.
  const topo::Topology one("one-node", topo::Graph(1));
  EXPECT_THROW((void)data::generate_dataset(one, 6, cfg, 3, 4),
               std::invalid_argument);
}

// ---- zero-demand guard (satellite bugfix) -----------------------------------

TEST(Generator, RejectsZeroTotalTrafficMatrix) {
  GeneratorConfig cfg = fast_config();
  cfg.traffic = data::TrafficModel::kUniform;
  const topo::Topology one("one-node", topo::Graph(1));
  util::RngStream rng(1);
  try {
    (void)data::generate_sample(one, cfg, rng);
    FAIL() << "zero-demand traffic matrix accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("traffic matrix total is zero"),
              std::string::npos)
        << e.what();
  }
}

// ---- shard store round trip -------------------------------------------------

TEST(ShardStore, RoundTripMatchesMonolithicSaveLoad) {
  const TempDir dir("rnx_shard_roundtrip");
  const auto cfg = fast_config();
  const auto samples = data::generate_dataset(topo::ring(4), 8, cfg, 13);

  // Monolithic reference.
  const std::string mono = dir.file("mono.rnxd");
  Dataset(samples).save(mono);
  const Dataset mono_loaded = Dataset::load(mono);

  // Sharded store, 3 samples per shard (trailing partial shard).
  const std::string manifest_path = dir.file("store.rnxm");
  data::ShardWriter writer(manifest_path, 3, 13, data::config_digest(cfg));
  for (const auto& s : samples) writer.add(s);
  const data::ShardManifest manifest = writer.finish();
  EXPECT_EQ(manifest.total_samples, 8u);
  EXPECT_EQ(manifest.shards.size(), 3u);
  EXPECT_EQ(manifest.shards[0].samples, 3u);
  EXPECT_EQ(manifest.shards[2].samples, 2u);
  EXPECT_EQ(manifest.seed, 13u);
  EXPECT_EQ(manifest.config_digest, data::config_digest(cfg));

  data::ShardedReader reader(manifest_path);
  EXPECT_EQ(reader.total_samples(), 8u);
  const Dataset sharded = reader.load_all();
  ASSERT_EQ(sharded.size(), mono_loaded.size());
  EXPECT_EQ(digests(sharded.samples()), digests(mono_loaded.samples()));

  // Every shard file is itself a valid .rnxd dataset.
  const Dataset shard0 = Dataset::load(reader.shard_path(0));
  EXPECT_EQ(shard0.size(), 3u);
  EXPECT_EQ(data::io::sample_digest(shard0[0]),
            data::io::sample_digest(mono_loaded[0]));
}

TEST(ShardStore, ManifestSniffDiscriminatesFormats) {
  const TempDir dir("rnx_shard_sniff");
  const auto samples = data::generate_dataset(topo::ring(4), 1,
                                              fast_config(), 3);
  const std::string mono = dir.file("a.rnxd");
  Dataset(samples).save(mono);
  data::ShardWriter writer(dir.file("b.rnxm"), 4, 3, 0);
  writer.add(samples[0]);
  (void)writer.finish();
  EXPECT_FALSE(data::is_manifest_file(mono));
  EXPECT_TRUE(data::is_manifest_file(dir.file("b.rnxm")));
  EXPECT_FALSE(data::is_manifest_file(dir.file("missing.rnxm")));
}

// ---- typed integrity errors -------------------------------------------------

class ShardErrorsTest : public ::testing::Test {
 protected:
  ShardErrorsTest() : dir_("rnx_shard_errors") {
    const auto samples =
        data::generate_dataset(topo::ring(4), 4, fast_config(), 17);
    data::ShardWriter writer(manifest(), 2, 17, 0);
    for (const auto& s : samples) writer.add(s);
    (void)writer.finish();
  }
  [[nodiscard]] std::string manifest() const {
    return dir_.file("store.rnxm");
  }
  TempDir dir_;
};

TEST_F(ShardErrorsTest, ChecksumMismatchIsTyped) {
  data::ShardedReader reader(manifest());
  // Flip one byte in the middle of shard 1's payload.
  const std::string shard = reader.shard_path(1);
  {
    std::fstream f(shard,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(200);
    char c = 0;
    f.seekg(200);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(200);
    f.write(&c, 1);
  }
  EXPECT_NO_THROW((void)reader.load_shard(0));  // untouched shard fine
  try {
    (void)reader.load_shard(1);
    FAIL() << "corrupt shard accepted";
  } catch (const data::ShardChecksumError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ShardErrorsTest, MissingShardIsTyped) {
  data::ShardedReader reader(manifest());
  std::filesystem::remove(reader.shard_path(0));
  try {
    (void)reader.load_shard(0);
    FAIL() << "missing shard accepted";
  } catch (const data::MissingShardError& e) {
    EXPECT_NE(std::string(e.what()).find("missing shard"),
              std::string::npos)
        << e.what();
  }
  // The typed errors share one catchable base.
  EXPECT_THROW((void)reader.load_shard(0), data::ShardError);
}

TEST_F(ShardErrorsTest, CorruptManifestIsTyped) {
  {
    std::fstream f(manifest(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);  // inside the body -> checksum mismatch
    const char c = 'X';
    f.write(&c, 1);
  }
  EXPECT_THROW(data::ShardedReader r(manifest()), data::ManifestError);
}

TEST(ShardErrors, GarbageAndMissingManifestAreTyped) {
  const TempDir dir("rnx_manifest_garbage");
  const std::string path = dir.file("junk.rnxm");
  {
    std::ofstream f(path, std::ios::binary);
    f << "definitely not a manifest";
  }
  EXPECT_THROW(data::ShardedReader r(path), data::ManifestError);
  EXPECT_THROW(data::ShardedReader r(dir.file("absent.rnxm")),
               data::ManifestError);
}

// ---- streaming source -------------------------------------------------------

TEST(StreamingSource, DeliversEverySampleInOrderAcrossPasses) {
  const TempDir dir("rnx_streaming_order");
  const auto samples =
      data::generate_dataset(topo::ring(4), 7, fast_config(), 23);
  data::ShardWriter writer(dir.file("s.rnxm"), 3, 23, 0);
  for (const auto& s : samples) writer.add(s);
  (void)writer.finish();

  data::StreamingShardSource src(dir.file("s.rnxm"), /*prefetch=*/2);
  EXPECT_FALSE(src.stable_addresses());
  EXPECT_EQ(src.size(), 7u);
  for (int pass = 0; pass < 2; ++pass) {
    src.reset();
    std::vector<std::uint64_t> seen;
    while (auto sp = src.next())
      seen.push_back(data::io::sample_digest(*sp));
    EXPECT_EQ(seen, digests(samples)) << "pass " << pass;
    EXPECT_EQ(src.next(), nullptr);  // stays exhausted until reset
  }
}

TEST(StreamingSource, ResidencyBoundedByShardPlusPrefetch) {
  const TempDir dir("rnx_streaming_residency");
  constexpr std::size_t kShard = 4, kPrefetch = 2, kCount = 16;
  const auto samples =
      data::generate_dataset(topo::ring(4), kCount, fast_config(), 29);
  data::ShardWriter writer(dir.file("s.rnxm"), kShard, 29, 0);
  for (const auto& s : samples) writer.add(s);
  (void)writer.finish();

  data::StreamingShardSource src(dir.file("s.rnxm"), kPrefetch);
  src.reset();
  std::size_t delivered = 0;
  while (auto sp = src.next()) {
    ++delivered;
    sp.reset();  // consumer holds at most one sample
  }
  EXPECT_EQ(delivered, kCount);
  // Never materialize the dataset: one loaded shard + the queue + the
  // consumer's single sample (+1 slack for the sample in flight inside
  // push/pop).
  EXPECT_LE(src.peak_live_samples(), kShard + kPrefetch + 2);
  EXPECT_LT(src.peak_live_samples(), kCount);
}

TEST(StreamingSource, BackgroundErrorSurfacesAtConsumption) {
  const TempDir dir("rnx_streaming_error");
  const auto samples =
      data::generate_dataset(topo::ring(4), 4, fast_config(), 31);
  data::ShardWriter writer(dir.file("s.rnxm"), 2, 31, 0);
  for (const auto& s : samples) writer.add(s);
  (void)writer.finish();
  {
    data::ShardedReader reader(dir.file("s.rnxm"));
    std::filesystem::remove(reader.shard_path(1));
  }
  data::StreamingShardSource src(dir.file("s.rnxm"), 8);
  src.reset();
  std::size_t got = 0;
  try {
    while (src.next()) ++got;
    FAIL() << "missing shard never surfaced";
  } catch (const data::MissingShardError&) {
    EXPECT_EQ(got, 2u);  // shard 0 drained before the error
  }
}

TEST(DatasetSource, AliasesInMemorySamples) {
  const Dataset ds(
      data::generate_dataset(topo::ring(4), 3, fast_config(), 37));
  data::DatasetSource src(ds);
  EXPECT_TRUE(src.stable_addresses());
  src.reset();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto sp = src.next();
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp.get(), &ds[i]);  // zero-copy: the dataset's own object
  }
  EXPECT_EQ(src.next(), nullptr);
}

// ---- mixed topology sampler -------------------------------------------------

TEST(MixedTopology, SpansFamiliesAndStaysValid) {
  GeneratorConfig cfg = fast_config();
  std::vector<Sample> samples(12);
  data::generate_dataset_stream(
      data::mixed_topology(), samples.size(), cfg, 41, /*threads=*/2,
      [&](std::size_t i, Sample s) { samples[i] = std::move(s); });
  std::set<std::string> names;
  for (const auto& s : samples) {
    EXPECT_NO_THROW(s.validate());
    EXPECT_GE(s.num_nodes, 8u);
    names.insert(s.topo_name);
  }
  // 12 draws over 4 families: at least three distinct names with
  // overwhelming probability (random topologies also encode their size).
  EXPECT_GE(names.size(), 3u);

  // And the mix is itself deterministic in (seed, threads).
  std::vector<Sample> again(12);
  data::generate_dataset_stream(
      data::mixed_topology(), again.size(), cfg, 41, /*threads=*/1,
      [&](std::size_t i, Sample s) { again[i] = std::move(s); });
  EXPECT_EQ(digests(samples), digests(again));
}

}  // namespace
