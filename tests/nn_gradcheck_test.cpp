// Numerical gradient verification of every differentiable op, the GRU
// cell, layers and composite expressions (DESIGN.md S3 acceptance bar:
// every backward pinned against central differences).
#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/gru.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx::nn;
using rnx::util::RngStream;

constexpr double kTol = 1e-7;

Var rand_param(std::size_t r, std::size_t c, RngStream& rng) {
  return Var(uniform_init(r, c, -1.0, 1.0, rng), true);
}

// ---- per-op checks (parameterized over shapes) -----------------------------

struct Shape {
  std::size_t rows;
  std::size_t cols;
};

class OpGradProperty : public ::testing::TestWithParam<Shape> {
 protected:
  RngStream rng_{static_cast<std::uint64_t>(GetParam().rows * 100 +
                                            GetParam().cols)};
};

TEST_P(OpGradProperty, AddSubMul) {
  const auto [r, c] = GetParam();
  Var a = rand_param(r, c, rng_);
  Var b = rand_param(r, c, rng_);
  std::vector<Var> params{a, b};
  auto rep = grad_check(
      [&] { return sum_all(mul(add(a, b), sub(a, b))); }, params);
  EXPECT_LT(rep.max_rel_err, kTol) << "entries=" << rep.entries;
}

TEST_P(OpGradProperty, AffineAndScale) {
  const auto [r, c] = GetParam();
  Var a = rand_param(r, c, rng_);
  std::vector<Var> params{a};
  auto rep = grad_check(
      [&] { return mean_all(affine(scale(a, 2.5), -1.5, 0.25)); }, params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST_P(OpGradProperty, Nonlinearities) {
  const auto [r, c] = GetParam();
  Var a = rand_param(r, c, rng_);
  std::vector<Var> params{a};
  for (auto fn : {&sigmoid, &tanh_op, &softplus}) {
    auto rep = grad_check([&] { return sum_all(fn(a)); }, params);
    EXPECT_LT(rep.max_rel_err, kTol);
  }
}

TEST_P(OpGradProperty, ReluAwayFromKink) {
  const auto [r, c] = GetParam();
  // Shift values away from 0 so the finite difference never straddles
  // the kink.
  Tensor t = uniform_init(r, c, 0.1, 1.0, rng_);
  for (std::size_t i = 0; i < t.size(); ++i)
    if (i % 2) t.flat()[i] = -t.flat()[i];
  Var a(std::move(t), true);
  std::vector<Var> params{a};
  auto rep = grad_check([&] { return sum_all(relu(a)); }, params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST_P(OpGradProperty, MatmulAndBias) {
  const auto [r, c] = GetParam();
  Var a = rand_param(r, c, rng_);
  Var w = rand_param(c, 3, rng_);
  Var bias = rand_param(1, 3, rng_);
  std::vector<Var> params{a, w, bias};
  auto rep = grad_check(
      [&] { return mean_all(add_bias(matmul(a, w), bias)); }, params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST_P(OpGradProperty, GatherRows) {
  const auto [r, c] = GetParam();
  Var a = rand_param(r, c, rng_);
  std::vector<Index> idx;
  for (std::size_t i = 0; i < 2 * r; ++i)
    idx.push_back(static_cast<Index>(i % r));  // repeats exercise accumulation
  std::vector<Var> params{a};
  auto rep = grad_check(
      [&] { return sum_all(mul(gather_rows(a, idx), gather_rows(a, idx))); },
      params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST_P(OpGradProperty, ScatterRows) {
  const auto [r, c] = GetParam();
  Var base = rand_param(r, c, rng_);
  Var rows = rand_param(1, c, rng_);
  const std::vector<Index> idx{static_cast<Index>(r - 1)};
  std::vector<Var> params{base, rows};
  auto rep = grad_check(
      [&] {
        const Var s = scatter_rows(base, idx, rows);
        return sum_all(mul(s, s));
      },
      params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST_P(OpGradProperty, SegmentSum) {
  const auto [r, c] = GetParam();
  Var a = rand_param(r, c, rng_);
  std::vector<Index> seg(r);
  for (std::size_t i = 0; i < r; ++i) seg[i] = static_cast<Index>(i % 3);
  std::vector<Var> params{a};
  auto rep = grad_check(
      [&] {
        const Var s = segment_sum(a, seg, 4);  // segment 3 stays empty
        return sum_all(mul(s, s));
      },
      params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST_P(OpGradProperty, ConcatCols) {
  const auto [r, c] = GetParam();
  Var a = rand_param(r, c, rng_);
  Var b = rand_param(r, c + 1, rng_);
  std::vector<Var> params{a, b};
  auto rep = grad_check(
      [&] {
        const Var cc = concat_cols(a, b);
        return mean_all(mul(cc, cc));
      },
      params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST_P(OpGradProperty, Losses) {
  const auto [r, c] = GetParam();
  Var pred = rand_param(r, c, rng_);
  const Tensor target = uniform_init(r, c, -1.0, 1.0, rng_);
  std::vector<Var> params{pred};
  for (int which = 0; which < 2; ++which) {
    auto rep = grad_check(
        [&] {
          return which == 0 ? mse_loss(pred, target)
                            : huber_loss(pred, target, 0.7);
        },
        params);
    EXPECT_LT(rep.max_rel_err, kTol) << "loss " << which;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpGradProperty,
                         ::testing::Values(Shape{1, 1}, Shape{3, 2},
                                           Shape{5, 4}, Shape{8, 6}));

// ---- GRU / layers -----------------------------------------------------------

TEST(GruGradient, SingleStepAllParams) {
  RngStream rng(3);
  GRUCell cell(3, 4, rng);
  Var x = rand_param(5, 3, rng);
  Var h = rand_param(5, 4, rng);
  std::vector<Var> params{x, h};
  for (auto& [name, v] : cell.named_params()) params.push_back(v);
  auto rep = grad_check([&] { return sum_all(cell.step(x, h)); }, params);
  EXPECT_LT(rep.max_rel_err, kTol) << "entries=" << rep.entries;
}

TEST(GruGradient, UnrolledSequenceBptt) {
  // Three steps with the same cell: gradients must flow through time and
  // accumulate over the shared weights.
  RngStream rng(5);
  GRUCell cell(2, 3, rng);
  Var x0 = rand_param(2, 2, rng);
  Var x1 = rand_param(2, 2, rng);
  Var x2 = rand_param(2, 2, rng);
  Var h0 = rand_param(2, 3, rng);
  std::vector<Var> params{x0, x1, x2, h0};
  for (auto& [name, v] : cell.named_params()) params.push_back(v);
  auto rep = grad_check(
      [&] {
        Var h = cell.step(x0, h0);
        h = cell.step(x1, h);
        h = cell.step(x2, h);
        return mean_all(mul(h, h));
      },
      params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST(LayerGradient, DenseAllActivations) {
  RngStream rng(7);
  for (const auto act : {Activation::kNone, Activation::kSigmoid,
                         Activation::kTanh, Activation::kSoftplus}) {
    Dense layer(3, 2, act, rng);
    Var x = rand_param(4, 3, rng);
    std::vector<Var> params{x};
    for (auto& [name, v] : layer.named_params()) params.push_back(v);
    auto rep = grad_check([&] { return sum_all(layer.forward(x)); }, params);
    EXPECT_LT(rep.max_rel_err, kTol) << "act " << static_cast<int>(act);
  }
}

TEST(LayerGradient, MlpEndToEnd) {
  RngStream rng(9);
  Mlp mlp({3, 8, 4, 1}, Activation::kTanh, rng);
  Var x = rand_param(6, 3, rng);
  const Tensor target = uniform_init(6, 1, -1.0, 1.0, rng);
  std::vector<Var> params{x};
  for (auto& [name, v] : mlp.named_params()) params.push_back(v);
  auto rep =
      grad_check([&] { return mse_loss(mlp.forward(x), target); }, params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

TEST(CompositeGradient, MessagePassingShapedExpression) {
  // A miniature of the RouteNet inner loop: gather -> GRU -> scatter ->
  // segment_sum -> GRU -> readout, all in one tape.
  RngStream rng(11);
  GRUCell rnn_p(3, 3, rng, "p");
  GRUCell rnn_l(3, 3, rng, "l");
  Mlp readout({3, 4, 1}, Activation::kRelu, rng, "r");
  Var paths = rand_param(4, 3, rng);
  Var links = rand_param(2, 3, rng);
  const std::vector<Index> path_rows{0, 1, 2, 3};
  const std::vector<Index> link_ids{0, 1, 0, 1};
  std::vector<Var> params{paths, links};
  for (auto& [n, v] : rnn_p.named_params()) params.push_back(v);
  for (auto& [n, v] : rnn_l.named_params()) params.push_back(v);
  auto rep = grad_check(
      [&] {
        const Var x = gather_rows(links, link_ids);
        const Var h = gather_rows(paths, path_rows);
        const Var h2 = rnn_p.step(x, h);
        const Var new_paths = scatter_rows(paths, path_rows, h2);
        const Var msg = segment_sum(h2, link_ids, 2);
        const Var new_links = rnn_l.step(msg, links);
        return add(mean_all(readout.forward(new_paths)),
                   mean_all(new_links));
      },
      params);
  EXPECT_LT(rep.max_rel_err, kTol);
}

}  // namespace
