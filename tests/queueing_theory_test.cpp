// Closed-form validation of the scenario engine (DESIGN.md §S).
//
// Every non-default (scheduling policy, traffic process) dimension is
// pinned against analytic queueing theory, the same way the default
// simulator is pinned against M/M/1/K in sim_test.cpp:
//
//   * Poisson + deterministic sizes  -> M/D/1 via Pollaczek-Khinchine;
//   * CBR + exponential sizes        -> D/M/1 via its fixed-point root;
//   * CBR + deterministic sizes      -> D/D/1 (zero queueing below rho=1);
//   * strict priority, two classes   -> M/M/1 non-preemptive closed forms;
//   * DRR, symmetric classes         -> equal throughput shares (matching
//                                       FIFO), where strict priority
//                                       starves the low class;
//   * on-off bursts                  -> rate conservation + strictly worse
//                                       delay/loss than Poisson at the
//                                       same average load.
//
// A parametrized sweep also runs every (policy, traffic) combination and
// asserts the conservation + determinism invariants, so all three
// schedulers and all three traffic models are exercised by ctest.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/mm1k.hpp"
#include "sim/simulator.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using sim::ScenarioConfig;
using sim::SchedulerPolicy;
using sim::SimConfig;
using sim::Simulator;
using sim::SimResult;
using sim::TrafficProcess;

constexpr double kCapBps = 1e6;
constexpr double kPktBits = 8000.0;
constexpr double kMu = kCapBps / kPktBits;  // 125 pkt/s service rate

// Single-hop scenario: one flow 0->1 over line(2) at load rho.
SimResult run_single_hop(double rho, std::uint32_t k, const SimConfig& base,
                         double window_s = 400.0, std::uint64_t seed = 1) {
  topo::Topology t = topo::line(2, kCapBps);
  t.set_all_queue_sizes(k);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(2);
  tm.set(0, 1, rho * kCapBps);
  SimConfig cfg = base;
  cfg.mean_packet_bits = kPktBits;
  cfg.window_s = window_s;
  cfg.warmup_s = 10.0;
  cfg.seed = seed;
  Simulator s(t, rs, tm, cfg);
  return s.run();
}

// Two flows sharing link 1->2 of a line(3) whose first hop is so fast
// that its queueing is negligible: flow 0->2 (class 0) arrives at the
// shared port essentially Poisson, flow 1->2 (class 1) is born there.
SimResult run_shared_link2(double rho_hi, double rho_lo, std::uint32_t k,
                           const SimConfig& base, double window_s = 400.0,
                           std::uint64_t seed = 1) {
  topo::Topology t = topo::line(3, kCapBps);
  // Speed up both directions of edge (0,1); the 1->2 port keeps kCapBps.
  for (topo::LinkId l = 0; l < t.num_links(); ++l) {
    const auto& link = t.graph().link(l);
    if ((link.src == 0 && link.dst == 1) || (link.src == 1 && link.dst == 0))
      t.set_link_capacity(l, 1e9);
  }
  t.set_all_queue_sizes(k);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(3);
  tm.set(0, 2, rho_hi * kCapBps);
  tm.set(1, 2, rho_lo * kCapBps);
  SimConfig cfg = base;
  cfg.mean_packet_bits = kPktBits;
  cfg.window_s = window_s;
  cfg.warmup_s = 10.0;
  cfg.seed = seed;
  cfg.flow_class = [](topo::NodeId src, topo::NodeId) -> std::uint32_t {
    return src == 0 ? 0u : 1u;  // 0->2 high priority, 1->2 low
  };
  Simulator s(t, rs, tm, cfg);
  return s.run();
}

SimResult run_shared_link(double rho_each, std::uint32_t k,
                          const SimConfig& base, double window_s = 400.0,
                          std::uint64_t seed = 1) {
  return run_shared_link2(rho_each, rho_each, k, base, window_s, seed);
}

// ---- M/D/1: Poisson arrivals, deterministic service ------------------------

TEST(QueueingTheory, Md1SojournMatchesPollaczekKhinchine) {
  const double rho = 0.7;
  SimConfig cfg;
  cfg.size_dist = sim::PacketSizeDist::kDeterministic;
  const SimResult res = run_single_hop(rho, 500, cfg);
  const auto& p = res.path(0, 1);
  ASSERT_GT(p.delivered, 20'000u);
  EXPECT_LT(p.loss_rate(), 1e-5);
  // Pollaczek-Khinchine with E[S^2] = 1/mu^2 (deterministic service):
  // W_q = rho / (2 mu (1 - rho)); T = 1/mu + W_q.
  const double theory = 1.0 / kMu + rho / (2.0 * kMu * (1.0 - rho));
  EXPECT_NEAR(p.mean_delay_s, theory, 0.05 * theory);
  // M/D/1 must queue strictly less than M/M/1 at the same load.
  EXPECT_LT(p.mean_delay_s, 0.8 * sim::mm1_mean_sojourn(rho * kMu, kMu));
}

// ---- D/M/1: CBR arrivals, exponential service ------------------------------

TEST(QueueingTheory, Dm1SojournMatchesFixedPointForm) {
  const double rho = 0.7;  // lambda = rho * mu, deterministic gap 1/lambda
  SimConfig cfg;
  cfg.scenario.traffic = TrafficProcess::kCbr;
  const SimResult res = run_single_hop(rho, 500, cfg);
  const auto& p = res.path(0, 1);
  ASSERT_GT(p.delivered, 20'000u);
  EXPECT_LT(p.loss_rate(), 1e-5);
  // D/M/1: sigma is the root of sigma = exp(-(mu/lambda)(1 - sigma));
  // T = 1 / (mu (1 - sigma)).
  double sigma = 0.5;
  for (int i = 0; i < 200; ++i) sigma = std::exp(-(1.0 / rho) * (1.0 - sigma));
  const double theory = 1.0 / (kMu * (1.0 - sigma));
  EXPECT_NEAR(p.mean_delay_s, theory, 0.05 * theory);
  // Deterministic arrivals queue strictly less than Poisson ones.
  EXPECT_LT(p.mean_delay_s, 0.8 * sim::mm1_mean_sojourn(rho * kMu, kMu));
}

// ---- D/D/1: CBR arrivals, deterministic service ----------------------------

TEST(QueueingTheory, Dd1HasNoQueueingBelowSaturation) {
  const double rho = 0.8;
  SimConfig cfg;
  cfg.scenario.traffic = TrafficProcess::kCbr;
  cfg.size_dist = sim::PacketSizeDist::kDeterministic;
  const SimResult res = run_single_hop(rho, 4, cfg, 100.0);
  const auto& p = res.path(0, 1);
  ASSERT_GT(p.delivered, 5'000u);
  // Arrivals are spaced 1/lambda > 1/mu apart, so every packet finds an
  // empty server: sojourn == service time exactly, zero variance, zero
  // loss even with a tiny buffer.
  EXPECT_EQ(p.dropped, 0u);
  EXPECT_NEAR(p.mean_delay_s, 1.0 / kMu, 1e-12);
  EXPECT_NEAR(p.min_delay_s, 1.0 / kMu, 1e-12);
  EXPECT_NEAR(p.max_delay_s, 1.0 / kMu, 1e-12);
  EXPECT_LT(p.jitter_s2, 1e-18);
  EXPECT_NEAR(res.links[0].utilization, rho, 0.01);
}

// ---- strict priority: two-class M/M/1 non-preemptive closed forms ----------

TEST(QueueingTheory, StrictPriorityMatchesTwoClassClosedForms) {
  const double rho_each = 0.35;  // rho_total = 0.7
  SimConfig cfg;
  cfg.scenario.policy = SchedulerPolicy::kStrictPriority;
  cfg.scenario.priority_classes = 2;
  const SimResult res = run_shared_link(rho_each, 500, cfg);
  const auto& hi = res.path(0, 2);
  const auto& lo = res.path(1, 2);
  ASSERT_GT(hi.delivered, 10'000u);
  ASSERT_GT(lo.delivered, 10'000u);
  EXPECT_LT(hi.loss_rate(), 1e-5);
  EXPECT_LT(lo.loss_rate(), 1e-5);

  // Non-preemptive M/M/1 priority with equal service rates: mean residual
  // work R = rho/mu; W_q1 = R / (1 - rho1); W_q2 = R / ((1 - rho1)
  // (1 - rho1 - rho2)); T_i = W_qi + 1/mu.  The high-priority flow also
  // crosses the 1e9-bps first hop (~8 us service), inside tolerance.
  const double r = 2.0 * rho_each / kMu;
  const double t_hi = r / (1.0 - rho_each) + 1.0 / kMu;
  const double t_lo =
      r / ((1.0 - rho_each) * (1.0 - 2.0 * rho_each)) + 1.0 / kMu;
  EXPECT_NEAR(hi.mean_delay_s, t_hi, 0.06 * t_hi);
  EXPECT_NEAR(lo.mean_delay_s, t_lo, 0.06 * t_lo);
  EXPECT_LT(hi.mean_delay_s, lo.mean_delay_s);
}

TEST(QueueingTheory, FifoTreatsBothClassesAlike) {
  // Control experiment: same two-flow load, FIFO port -> both flows see
  // the same M/M/1 sojourn, bracketed by the priority extremes.
  const double rho_each = 0.35;
  SimConfig cfg;  // default FIFO; flow_class set but irrelevant
  const SimResult res = run_shared_link(rho_each, 500, cfg);
  const auto& a = res.path(0, 2);
  const auto& b = res.path(1, 2);
  const double t_fifo = sim::mm1_mean_sojourn(2.0 * rho_each * kMu, kMu);
  EXPECT_NEAR(a.mean_delay_s, t_fifo, 0.06 * t_fifo);
  EXPECT_NEAR(b.mean_delay_s, t_fifo, 0.06 * t_fifo);
}

// ---- DRR: symmetric flows get equal shares ---------------------------------

TEST(QueueingTheory, DrrGivesSymmetricFlowsEqualShares) {
  // Overload the shared port (rho_total = 1.6) so throughput is
  // scheduler-allocated, not demand-limited.
  const double rho_each = 0.8;
  SimConfig drr_cfg;
  drr_cfg.scenario.policy = SchedulerPolicy::kDrr;
  drr_cfg.scenario.priority_classes = 2;
  const SimResult drr = run_shared_link(rho_each, 16, drr_cfg, 200.0);
  const auto& d0 = drr.path(0, 2);
  const auto& d1 = drr.path(1, 2);
  ASSERT_GT(d0.delivered + d1.delivered, 10'000u);
  const double drr_share =
      static_cast<double>(d0.delivered) /
      static_cast<double>(d0.delivered + d1.delivered);

  SimConfig fifo_cfg;
  const SimResult fifo = run_shared_link(rho_each, 16, fifo_cfg, 200.0);
  const auto& f0 = fifo.path(0, 2);
  const auto& f1 = fifo.path(1, 2);
  const double fifo_share =
      static_cast<double>(f0.delivered) /
      static_cast<double>(f0.delivered + f1.delivered);

  // Symmetric demand: both DRR and FIFO must split the link ~50/50, and
  // the two policies must agree with each other within CI tolerance.
  EXPECT_NEAR(drr_share, 0.5, 0.03);
  EXPECT_NEAR(fifo_share, 0.5, 0.03);
  EXPECT_NEAR(drr_share, fifo_share, 0.04);
}

TEST(QueueingTheory, StrictPriorityJumpsTheQueueUnderOverload) {
  // Same overload under strict priority.  Admission is shared drop-tail
  // without push-out (policy-independent by design, DESIGN.md §S), so
  // delivered *shares* stay symmetric — what priority reallocates is
  // *waiting*: a high-class packet overtakes the whole low-class
  // backlog, a low-class packet waits out nearly the full buffer.
  const double rho_each = 0.8;
  SimConfig cfg;
  cfg.scenario.policy = SchedulerPolicy::kStrictPriority;
  cfg.scenario.priority_classes = 2;
  const SimResult res = run_shared_link(rho_each, 16, cfg, 200.0);
  const auto& hi = res.path(0, 2);
  const auto& lo = res.path(1, 2);
  ASSERT_GT(hi.delivered, 5'000u);
  ASSERT_GT(lo.delivered, 5'000u);
  EXPECT_LT(hi.mean_delay_s, 0.35 * lo.mean_delay_s);
  const double hi_share =
      static_cast<double>(hi.delivered) /
      static_cast<double>(hi.delivered + lo.delivered);
  EXPECT_NEAR(hi_share, 0.5, 0.05);

  // FIFO control at the same load: one queue, both classes wait alike.
  SimConfig fifo_cfg;
  const SimResult fifo = run_shared_link(rho_each, 16, fifo_cfg, 200.0);
  EXPECT_NEAR(fifo.path(0, 2).mean_delay_s, fifo.path(1, 2).mean_delay_s,
              0.1 * fifo.path(1, 2).mean_delay_s);
}

TEST(QueueingTheory, DrrIsolatesLightClassFromHeavyClass) {
  // The WFQ property DRR approximates: a light class (0.2 of capacity)
  // sharing the port with an overloading heavy class (1.4 of capacity)
  // keeps a short lane of its own under DRR, instead of waiting behind
  // the heavy backlog as it does under FIFO.
  SimConfig drr_cfg;
  drr_cfg.scenario.policy = SchedulerPolicy::kDrr;
  drr_cfg.scenario.priority_classes = 2;
  const SimResult drr = run_shared_link2(0.2, 1.4, 16, drr_cfg, 200.0);
  const auto& light_drr = drr.path(0, 2);
  const auto& heavy_drr = drr.path(1, 2);
  ASSERT_GT(light_drr.delivered, 2'000u);
  EXPECT_LT(light_drr.mean_delay_s, 0.5 * heavy_drr.mean_delay_s);

  SimConfig fifo_cfg;
  const SimResult fifo = run_shared_link2(0.2, 1.4, 16, fifo_cfg, 200.0);
  const auto& light_fifo = fifo.path(0, 2);
  EXPECT_LT(light_drr.mean_delay_s, 0.5 * light_fifo.mean_delay_s);
}

// ---- on-off bursts ---------------------------------------------------------

TEST(QueueingTheory, OnOffConservesMeanRate) {
  const double rho = 0.5;
  SimConfig cfg;
  cfg.scenario.traffic = TrafficProcess::kOnOff;
  const SimResult res = run_single_hop(rho, 500, cfg, 600.0);
  const auto& p = res.path(0, 1);
  // Long-run average rate must match the traffic matrix: lambda * window.
  const double expected = rho * kMu * 600.0;
  EXPECT_NEAR(static_cast<double>(p.generated), expected, 0.10 * expected);
  EXPECT_EQ(p.generated, p.delivered + p.dropped);
}

TEST(QueueingTheory, OnOffBurstsQueueWorseThanPoisson) {
  // Same average load, peak rate 2x (duty 0.5): the queue sees transient
  // overload during bursts, so delay and tiny-queue loss must both
  // exceed Poisson's.  This is the regime where vanilla RouteNet breaks
  // ("Applying Graph-based Deep Learning To Realistic Network
  // Scenarios", Ferriol-Galmés et al., 2020).
  const double rho = 0.6;
  SimConfig onoff;
  onoff.scenario.traffic = TrafficProcess::kOnOff;
  SimConfig poisson;

  const auto d_onoff = run_single_hop(rho, 500, onoff).path(0, 1);
  const auto d_poisson = run_single_hop(rho, 500, poisson).path(0, 1);
  EXPECT_GT(d_onoff.mean_delay_s, 1.2 * d_poisson.mean_delay_s);
  EXPECT_GT(d_onoff.jitter_s2, d_poisson.jitter_s2);

  const auto l_onoff = run_single_hop(rho, 2, onoff).path(0, 1);
  const auto l_poisson = run_single_hop(rho, 2, poisson).path(0, 1);
  EXPECT_GT(l_onoff.loss_rate(), l_poisson.loss_rate());
}

// ---- full (policy, traffic) sweep: invariants ------------------------------

class ScenarioSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScenarioSweep, ConservationAndDeterminism) {
  SimConfig cfg;
  cfg.scenario.policy =
      static_cast<SchedulerPolicy>(std::get<0>(GetParam()));
  cfg.scenario.traffic =
      static_cast<TrafficProcess>(std::get<1>(GetParam()));
  cfg.scenario.priority_classes = 2;
  auto run = [&] { return run_shared_link(0.45, 8, cfg, 60.0, 5); };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.total_events, b.total_events);
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    const auto& pa = a.paths[i];
    EXPECT_EQ(pa.generated, pa.delivered + pa.dropped);
    EXPECT_GT(pa.delivered, 100u);
    EXPECT_EQ(pa.delivered, b.paths[i].delivered);
    EXPECT_DOUBLE_EQ(pa.mean_delay_s, b.paths[i].mean_delay_s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ScenarioSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),   // fifo, prio, drr
                       ::testing::Values(0, 1, 2)),  // poisson, cbr, onoff
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pinfo) {
      return std::string(sim::to_string(static_cast<SchedulerPolicy>(
                 std::get<0>(pinfo.param)))) +
             "_" +
             std::string(sim::to_string(
                 static_cast<TrafficProcess>(std::get<1>(pinfo.param))));
    });

// ---- degenerate single-class policies reduce to FIFO -----------------------

TEST(QueueingTheory, SingleClassPrioAndDrrAreExactlyFifo)
{
  SimConfig fifo;
  SimConfig prio;
  prio.scenario.policy = SchedulerPolicy::kStrictPriority;
  SimConfig drr;
  drr.scenario.policy = SchedulerPolicy::kDrr;
  const auto f = run_single_hop(0.9, 8, fifo, 60.0).path(0, 1);
  const auto p = run_single_hop(0.9, 8, prio, 60.0).path(0, 1);
  const auto d = run_single_hop(0.9, 8, drr, 60.0).path(0, 1);
  // With one class there is a single FIFO lane, so service order — and
  // therefore every statistic — is bitwise identical across policies.
  EXPECT_EQ(f.delivered, p.delivered);
  EXPECT_EQ(f.delivered, d.delivered);
  EXPECT_DOUBLE_EQ(f.mean_delay_s, p.mean_delay_s);
  EXPECT_DOUBLE_EQ(f.mean_delay_s, d.mean_delay_s);
  EXPECT_DOUBLE_EQ(f.jitter_s2, d.jitter_s2);
}

TEST(QueueingTheory, ScenarioConfigValidation) {
  ScenarioConfig sc;
  EXPECT_NO_THROW(sc.validate());
  sc.priority_classes = 0;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
  sc = ScenarioConfig{};
  sc.onoff_duty = 0.0;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
  sc = ScenarioConfig{};
  sc.onoff_duty = 1.5;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
  sc = ScenarioConfig{};
  sc.onoff_burst_pkts = -1.0;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
  sc = ScenarioConfig{};
  sc.drr_quantum_bits = -8.0;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
}

}  // namespace
