// Tape mechanics: gradient accumulation, graph reuse, NoGradGuard, and
// op forward values (backward correctness lives in nn_gradcheck_test.cpp).
#include <gtest/gtest.h>
#include <cmath>

#include "nn/autograd.hpp"
#include "nn/ops.hpp"

namespace {

using namespace rnx::nn;

Var param(std::initializer_list<double> vals, std::size_t rows,
          std::size_t cols) {
  return Var(Tensor(rows, cols, std::vector<double>(vals)), true);
}

TEST(Autograd, SimpleChainGradient) {
  Var x = param({2.0}, 1, 1);
  Var y = scale(x, 3.0);        // y = 3x
  Var loss = mul(y, y);         // loss = 9x^2 -> dloss/dx = 18x = 36
  loss.backward();
  EXPECT_NEAR(x.grad()(0, 0), 36.0, 1e-12);
}

TEST(Autograd, SharedSubexpressionAccumulates) {
  Var x = param({5.0}, 1, 1);
  Var y = add(x, x);  // y = 2x -> dy/dx = 2
  y.backward();
  EXPECT_NEAR(x.grad()(0, 0), 2.0, 1e-12);
}

TEST(Autograd, DiamondGraphAccumulates) {
  Var x = param({1.5}, 1, 1);
  Var a = scale(x, 2.0);
  Var b = scale(x, 3.0);
  Var loss = mul(a, b);  // 6x^2 -> d/dx = 12x = 18
  loss.backward();
  EXPECT_NEAR(x.grad()(0, 0), 18.0, 1e-12);
}

TEST(Autograd, BackwardTwiceAccumulatesUnlessCleared) {
  Var x = param({1.0}, 1, 1);
  Var loss = scale(x, 4.0);
  loss.backward();
  EXPECT_NEAR(x.grad()(0, 0), 4.0, 1e-12);
  loss.backward();  // second sweep accumulates
  EXPECT_NEAR(x.grad()(0, 0), 8.0, 1e-12);
  x.zero_grad();
  loss.backward();
  EXPECT_NEAR(x.grad()(0, 0), 4.0, 1e-12);
}

TEST(Autograd, ConstantsGetNoGradient) {
  Var x = param({2.0}, 1, 1);
  Var c = constant(Tensor::scalar(10.0));
  Var loss = mul(x, c);
  loss.backward();
  EXPECT_FALSE(c.requires_grad());
  EXPECT_NEAR(x.grad()(0, 0), 10.0, 1e-12);
}

TEST(Autograd, ConstantSubgraphIsPruned) {
  const Var a = constant(Tensor::scalar(1.0));
  const Var b = constant(Tensor::scalar(2.0));
  const Var y = add(a, b);
  EXPECT_FALSE(y.requires_grad());  // no parent needs gradients
}

TEST(Autograd, BackwardRequiresScalar) {
  Var x = param({1.0, 2.0}, 1, 2);
  Var y = scale(x, 2.0);
  EXPECT_THROW(y.backward(), std::logic_error);
}

TEST(Autograd, UndefinedVarThrows) {
  const Var v;
  EXPECT_FALSE(v.defined());
  EXPECT_THROW((void)v.value(), std::logic_error);
  EXPECT_THROW(v.backward(), std::logic_error);
}

TEST(Autograd, NoGradGuardSuppressesTape) {
  Var x = param({3.0}, 1, 1);
  {
    const NoGradGuard guard;
    EXPECT_TRUE(grad_disabled());
    Var y = mul(x, x);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_NEAR(y.value()(0, 0), 9.0, 1e-12);  // values still computed
  }
  EXPECT_FALSE(grad_disabled());
  Var y2 = mul(x, x);
  EXPECT_TRUE(y2.requires_grad());
}

TEST(Autograd, NoGradGuardNests) {
  const NoGradGuard outer;
  {
    const NoGradGuard inner;
    EXPECT_TRUE(grad_disabled());
  }
  EXPECT_TRUE(grad_disabled());  // outer still active
}

TEST(Autograd, DeepChainSurvives) {
  // 3000-deep chain: the iterative DFS must not overflow the stack.
  Var x = param({1.0}, 1, 1);
  Var y = x;
  for (int i = 0; i < 3000; ++i) y = scale(y, 1.001);
  y.backward();
  EXPECT_GT(x.grad()(0, 0), 1.0);
}

// ---- forward values of the ops ------------------------------------------

TEST(OpValues, AddSubMulAffine) {
  Var a = param({1, 2, 3, 4}, 2, 2);
  Var b = param({10, 20, 30, 40}, 2, 2);
  EXPECT_DOUBLE_EQ(add(a, b).value()(1, 1), 44.0);
  EXPECT_DOUBLE_EQ(sub(b, a).value()(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(mul(a, b).value()(0, 1), 40.0);
  EXPECT_DOUBLE_EQ(affine(a, 2.0, 1.0).value()(1, 0), 7.0);
  Var c = param({1}, 1, 1);
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

TEST(OpValues, MatmulAndBias) {
  Var a = param({1, 2, 3, 4}, 2, 2);
  Var b = param({1, 0, 0, 1}, 2, 2);  // identity
  const Var y = matmul(a, b);
  EXPECT_DOUBLE_EQ(y.value()(0, 1), 2.0);
  Var bias = param({100, 200}, 1, 2);
  const Var z = add_bias(a, bias);
  EXPECT_DOUBLE_EQ(z.value()(1, 0), 103.0);
  EXPECT_DOUBLE_EQ(z.value()(1, 1), 204.0);
  Var bad_bias = param({1, 2, 3}, 1, 3);
  EXPECT_THROW(add_bias(a, bad_bias), std::invalid_argument);
}

TEST(OpValues, Nonlinearities) {
  Var x = param({0.0, 100.0, -100.0}, 1, 3);
  const Var s = sigmoid(x);
  EXPECT_NEAR(s.value()(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(s.value()(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(s.value()(0, 2), 0.0, 1e-12);
  const Var t = tanh_op(x);
  EXPECT_NEAR(t.value()(0, 0), 0.0, 1e-12);
  const Var r = relu(x);
  EXPECT_DOUBLE_EQ(r.value()(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(r.value()(0, 2), 0.0);
  const Var sp = softplus(x);
  EXPECT_NEAR(sp.value()(0, 0), std::log(2.0), 1e-12);
  EXPECT_NEAR(sp.value()(0, 1), 100.0, 1e-9);   // stable for large x
  EXPECT_NEAR(sp.value()(0, 2), 0.0, 1e-9);
}

TEST(OpValues, GatherScatterSegment) {
  Var m = param({1, 2, 3, 4, 5, 6}, 3, 2);
  const Var g = gather_rows(m, {2, 0, 2});
  EXPECT_DOUBLE_EQ(g.value()(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.value()(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.value()(2, 1), 6.0);
  EXPECT_THROW(gather_rows(m, {3}), std::out_of_range);

  Var rows = param({10, 20}, 1, 2);
  const Var sc = scatter_rows(m, {1}, rows);
  EXPECT_DOUBLE_EQ(sc.value()(0, 0), 1.0);   // untouched
  EXPECT_DOUBLE_EQ(sc.value()(1, 0), 10.0);  // overwritten
  Var two_rows = param({1, 2, 3, 4}, 2, 2);
  EXPECT_THROW(scatter_rows(m, {0, 0}, two_rows), std::invalid_argument);

  const Var seg = segment_sum(m, {1, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(seg.value()(0, 0), 3.0);       // row 1 only
  EXPECT_DOUBLE_EQ(seg.value()(1, 0), 1.0 + 5.0); // rows 0 and 2
  EXPECT_THROW(segment_sum(m, {0, 0}, 2), std::invalid_argument);
  EXPECT_THROW(segment_sum(m, {0, 0, 5}, 2), std::out_of_range);
}

TEST(OpValues, SegmentSumEmptySegmentIsZero) {
  Var m = param({1, 2}, 1, 2);
  const Var seg = segment_sum(m, {2}, 4);
  EXPECT_DOUBLE_EQ(seg.value()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(seg.value()(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(seg.value()(3, 1), 0.0);
}

TEST(OpValues, ConcatAndReductions) {
  Var a = param({1, 2}, 2, 1);
  Var b = param({3, 4, 5, 6}, 2, 2);
  const Var c = concat_cols(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c.value()(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.value()(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(sum_all(b).value().item(), 18.0);
  EXPECT_DOUBLE_EQ(mean_all(b).value().item(), 4.5);
}

TEST(OpValues, Losses) {
  Var pred = param({1.0, 2.0}, 2, 1);
  const Tensor target(2, 1, {0.0, 4.0});
  EXPECT_NEAR(mse_loss(pred, target).value().item(), (1.0 + 4.0) / 2, 1e-12);
  EXPECT_NEAR(mae_loss(pred, target).value().item(), (1.0 + 2.0) / 2, 1e-12);
  // Huber delta=1: e=1 -> 0.5; e=-2 -> 1*(2-0.5)=1.5.
  EXPECT_NEAR(huber_loss(pred, target, 1.0).value().item(), (0.5 + 1.5) / 2,
              1e-12);
  EXPECT_THROW(huber_loss(pred, target, 0.0), std::invalid_argument);
  const Tensor bad(1, 1);
  EXPECT_THROW(mse_loss(pred, bad), std::invalid_argument);
}

}  // namespace
