// Tests for src/data: generation determinism, schema validation, scaling,
// dataset persistence and caching.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/normalize.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using data::Dataset;
using data::GeneratorConfig;
using data::Sample;
using data::Scaler;

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  return cfg;
}

Dataset tiny_dataset(std::size_t n = 4, std::uint64_t seed = 7) {
  return Dataset(
      data::generate_dataset(topo::ring(4), n, fast_config(), seed));
}

// ---- generator ---------------------------------------------------------------

TEST(Generator, SampleIsStructurallyValid) {
  const Dataset ds = tiny_dataset(2);
  for (const auto& s : ds.samples()) {
    EXPECT_NO_THROW(s.validate());
    EXPECT_EQ(s.num_nodes, 4u);
    EXPECT_EQ(s.num_links(), 8u);
    EXPECT_EQ(s.paths.size(), 12u);  // all ordered pairs of 4 nodes
  }
}

TEST(Generator, DeterministicForSameSeed) {
  const Dataset a = tiny_dataset(3, 11);
  const Dataset b = tiny_dataset(3, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].queue_pkts, b[i].queue_pkts);
    ASSERT_EQ(a[i].paths.size(), b[i].paths.size());
    for (std::size_t p = 0; p < a[i].paths.size(); ++p) {
      EXPECT_DOUBLE_EQ(a[i].paths[p].traffic_bps, b[i].paths[p].traffic_bps);
      EXPECT_DOUBLE_EQ(a[i].paths[p].mean_delay_s,
                       b[i].paths[p].mean_delay_s);
    }
  }
}

TEST(Generator, PrefixProperty) {
  // The first k samples of a count=n run equal a count=k run.
  const Dataset big = tiny_dataset(4, 13);
  const Dataset small = tiny_dataset(2, 13);
  for (std::size_t i = 0; i < small.size(); ++i)
    EXPECT_DOUBLE_EQ(big[i].paths[0].mean_delay_s,
                     small[i].paths[0].mean_delay_s);
}

TEST(Generator, SeedsProduceDifferentScenarios) {
  const Dataset a = tiny_dataset(1, 1);
  const Dataset b = tiny_dataset(1, 2);
  EXPECT_NE(a[0].paths[0].traffic_bps, b[0].paths[0].traffic_bps);
}

TEST(Generator, QueueMixRespectsProbabilities) {
  GeneratorConfig cfg = fast_config();
  cfg.p_tiny_queue = 0.0;
  Dataset all_std(
      data::generate_dataset(topo::ring(4), 2, cfg, 3));
  for (const auto& s : all_std.samples())
    for (const auto q : s.queue_pkts)
      EXPECT_EQ(q, topo::kStandardQueuePackets);

  cfg.p_tiny_queue = 1.0;
  Dataset all_tiny(
      data::generate_dataset(topo::ring(4), 2, cfg, 3));
  for (const auto& s : all_tiny.samples())
    for (const auto q : s.queue_pkts) EXPECT_EQ(q, topo::kTinyQueuePackets);
}

TEST(Generator, UtilizationTargetRecorded) {
  GeneratorConfig cfg = fast_config();
  cfg.util_lo = 0.6;
  cfg.util_hi = 0.7;
  const Dataset ds(data::generate_dataset(topo::ring(4), 3, cfg, 5));
  for (const auto& s : ds.samples()) {
    EXPECT_GE(s.max_utilization, 0.6);
    EXPECT_LE(s.max_utilization, 0.7);
  }
}

TEST(Generator, LabelsAreUsable) {
  const Dataset ds = tiny_dataset(3, 17);
  std::size_t usable = 0;
  for (const auto& s : ds.samples())
    for (const auto& p : s.paths)
      if (p.delivered >= 10 && p.mean_delay_s > 0.0) ++usable;
  // The vast majority of paths should carry usable labels.
  EXPECT_GT(usable, ds.total_paths() * 8 / 10);
}

TEST(Generator, ProgressCallbackFires) {
  std::size_t calls = 0;
  (void)data::generate_dataset(topo::ring(4), 3, fast_config(), 1,
                               [&](std::size_t done, std::size_t total) {
                                 ++calls;
                                 EXPECT_LE(done, total);
                               });
  EXPECT_EQ(calls, 3u);
}

// ---- sample validation ----------------------------------------------------------

TEST(SampleValidate, DetectsCorruption) {
  Dataset ds = tiny_dataset(1);
  Sample s = ds[0];
  EXPECT_NO_THROW(s.validate());
  Sample broken = s;
  broken.queue_pkts.pop_back();
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.paths[0].links[0] = 999;
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.paths[0].nodes.front() = broken.paths[0].nodes.back();
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.link_capacity_bps[0] = -1.0;
  EXPECT_THROW(broken.validate(), std::runtime_error);
}

TEST(SampleToTopology, RoundTripsAttributes) {
  const Dataset ds = tiny_dataset(1);
  const Sample& s = ds[0];
  const topo::Topology t = s.to_topology();
  EXPECT_EQ(t.num_nodes(), s.num_nodes);
  EXPECT_EQ(t.num_links(), s.num_links());
  for (topo::LinkId l = 0; l < t.num_links(); ++l)
    EXPECT_DOUBLE_EQ(t.link_capacity(l), s.link_capacity_bps[l]);
  for (topo::NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(t.queue_size(n), s.queue_pkts[n]);
}

// ---- scaler -------------------------------------------------------------------

TEST(Scaler, NormalizesToZeroMeanUnitVar) {
  const Dataset ds = tiny_dataset(6, 23);
  const Scaler sc = Scaler::fit(ds.samples());
  double sum = 0.0, ss = 0.0;
  std::size_t n = 0;
  for (const auto& s : ds.samples())
    for (const auto& p : s.paths) {
      const double z = sc.traffic(p.traffic_bps);
      sum += z;
      ss += z * z;
      ++n;
    }
  EXPECT_NEAR(sum / n, 0.0, 1e-9);
  EXPECT_NEAR(ss / n, 1.0, 1e-6);
}

TEST(Scaler, DelayTransformRoundTrips) {
  const Dataset ds = tiny_dataset(4, 29);
  const Scaler sc = Scaler::fit(ds.samples());
  for (const double d : {1e-4, 1e-3, 5e-3})
    EXPECT_NEAR(sc.target_to_delay(sc.delay_to_target(d)), d, 1e-12);
  EXPECT_THROW((void)sc.delay_to_target(0.0), std::invalid_argument);
}

TEST(Scaler, DegenerateChannelFallsBackToUnitScale) {
  GeneratorConfig cfg = fast_config();
  cfg.randomize_queues = false;       // all queues identical
  cfg.randomize_capacities = false;   // all capacities identical
  const Dataset ds(data::generate_dataset(topo::ring(4), 2, cfg, 31));
  const Scaler sc = Scaler::fit(ds.samples());
  EXPECT_DOUBLE_EQ(sc.queue_moments().stddev, 1.0);
  EXPECT_DOUBLE_EQ(sc.capacity_moments().stddev, 1.0);
}

TEST(Scaler, EmptyLabelsThrow) {
  std::vector<Sample> none;
  EXPECT_THROW(Scaler::fit(none), std::invalid_argument);
}

// ---- dataset container / persistence ----------------------------------------

TEST(Dataset, SplitAndShuffle) {
  Dataset ds = tiny_dataset(6, 37);
  const auto [a, b] = ds.split(2);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_THROW(ds.split(7), std::invalid_argument);

  util::RngStream rng(1);
  Dataset shuffled = ds;
  shuffled.shuffle(rng);
  EXPECT_EQ(shuffled.size(), ds.size());
  // Same multiset of samples (compare a stable fingerprint).
  auto fp = [](const Dataset& d) {
    std::vector<double> v;
    for (const auto& s : d.samples()) v.push_back(s.paths[0].traffic_bps);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(fp(shuffled), fp(ds));
}

TEST(Dataset, SaveLoadRoundTrip) {
  const std::string path = "/tmp/rnx_dataset_test.rnxd";
  const Dataset ds = tiny_dataset(3, 41);
  ds.save(path);
  const Dataset loaded = Dataset::load(path);
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded[i].topo_name, ds[i].topo_name);
    EXPECT_EQ(loaded[i].queue_pkts, ds[i].queue_pkts);
    ASSERT_EQ(loaded[i].paths.size(), ds[i].paths.size());
    for (std::size_t p = 0; p < ds[i].paths.size(); ++p) {
      EXPECT_EQ(loaded[i].paths[p].nodes, ds[i].paths[p].nodes);
      EXPECT_DOUBLE_EQ(loaded[i].paths[p].mean_delay_s,
                       ds[i].paths[p].mean_delay_s);
      EXPECT_EQ(loaded[i].paths[p].delivered, ds[i].paths[p].delivered);
    }
  }
  std::filesystem::remove(path);
}

TEST(Dataset, LoadRejectsGarbage) {
  const std::string path = "/tmp/rnx_dataset_garbage.rnxd";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a dataset at all";
  }
  EXPECT_THROW(Dataset::load(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(Dataset::load("/tmp/rnx_missing.rnxd"), std::runtime_error);
}

TEST(Dataset, CsvExportHasHeaderAndRows) {
  const std::string path = "/tmp/rnx_dataset_test.csv";
  const Dataset ds = tiny_dataset(2, 43);
  ds.export_csv(path);
  std::ifstream f(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(f, line)) ++lines;
  EXPECT_EQ(lines, 1 + ds.total_paths());
  std::filesystem::remove(path);
}

TEST(Dataset, LoadOrGenerateCaches) {
  const std::string path = "/tmp/rnx_cache_test/dir/ds.rnxd";
  std::filesystem::remove_all("/tmp/rnx_cache_test");
  std::size_t generator_calls = 0;
  auto gen = [&] {
    ++generator_calls;
    return tiny_dataset(2, 47);
  };
  const Dataset a = data::load_or_generate(path, 2, gen);
  EXPECT_EQ(generator_calls, 1u);
  const Dataset b = data::load_or_generate(path, 2, gen);
  EXPECT_EQ(generator_calls, 1u);  // served from cache
  EXPECT_EQ(b.size(), 2u);
  // Size mismatch forces regeneration.
  const Dataset c = data::load_or_generate(path, 3, [&] {
    ++generator_calls;
    return tiny_dataset(3, 47);
  });
  EXPECT_EQ(generator_calls, 2u);
  EXPECT_EQ(c.size(), 3u);
  std::filesystem::remove_all("/tmp/rnx_cache_test");
}

}  // namespace
