// Tests for src/data: generation determinism, schema validation, scaling,
// dataset persistence and caching.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/normalize.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using data::Dataset;
using data::GeneratorConfig;
using data::Sample;
using data::Scaler;

GeneratorConfig fast_config() {
  GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  return cfg;
}

Dataset tiny_dataset(std::size_t n = 4, std::uint64_t seed = 7) {
  return Dataset(
      data::generate_dataset(topo::ring(4), n, fast_config(), seed));
}

// ---- generator ---------------------------------------------------------------

TEST(Generator, SampleIsStructurallyValid) {
  const Dataset ds = tiny_dataset(2);
  for (const auto& s : ds.samples()) {
    EXPECT_NO_THROW(s.validate());
    EXPECT_EQ(s.num_nodes, 4u);
    EXPECT_EQ(s.num_links(), 8u);
    EXPECT_EQ(s.paths.size(), 12u);  // all ordered pairs of 4 nodes
  }
}

TEST(Generator, DeterministicForSameSeed) {
  const Dataset a = tiny_dataset(3, 11);
  const Dataset b = tiny_dataset(3, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].queue_pkts, b[i].queue_pkts);
    ASSERT_EQ(a[i].paths.size(), b[i].paths.size());
    for (std::size_t p = 0; p < a[i].paths.size(); ++p) {
      EXPECT_DOUBLE_EQ(a[i].paths[p].traffic_bps, b[i].paths[p].traffic_bps);
      EXPECT_DOUBLE_EQ(a[i].paths[p].mean_delay_s,
                       b[i].paths[p].mean_delay_s);
    }
  }
}

TEST(Generator, PrefixProperty) {
  // The first k samples of a count=n run equal a count=k run.
  const Dataset big = tiny_dataset(4, 13);
  const Dataset small = tiny_dataset(2, 13);
  for (std::size_t i = 0; i < small.size(); ++i)
    EXPECT_DOUBLE_EQ(big[i].paths[0].mean_delay_s,
                     small[i].paths[0].mean_delay_s);
}

TEST(Generator, SeedsProduceDifferentScenarios) {
  const Dataset a = tiny_dataset(1, 1);
  const Dataset b = tiny_dataset(1, 2);
  EXPECT_NE(a[0].paths[0].traffic_bps, b[0].paths[0].traffic_bps);
}

TEST(Generator, QueueMixRespectsProbabilities) {
  GeneratorConfig cfg = fast_config();
  cfg.p_tiny_queue = 0.0;
  Dataset all_std(
      data::generate_dataset(topo::ring(4), 2, cfg, 3));
  for (const auto& s : all_std.samples())
    for (const auto q : s.queue_pkts)
      EXPECT_EQ(q, topo::kStandardQueuePackets);

  cfg.p_tiny_queue = 1.0;
  Dataset all_tiny(
      data::generate_dataset(topo::ring(4), 2, cfg, 3));
  for (const auto& s : all_tiny.samples())
    for (const auto q : s.queue_pkts) EXPECT_EQ(q, topo::kTinyQueuePackets);
}

TEST(Generator, UtilizationTargetRecorded) {
  GeneratorConfig cfg = fast_config();
  cfg.util_lo = 0.6;
  cfg.util_hi = 0.7;
  const Dataset ds(data::generate_dataset(topo::ring(4), 3, cfg, 5));
  for (const auto& s : ds.samples()) {
    EXPECT_GE(s.max_utilization, 0.6);
    EXPECT_LE(s.max_utilization, 0.7);
  }
}

TEST(Generator, LabelsAreUsable) {
  const Dataset ds = tiny_dataset(3, 17);
  std::size_t usable = 0;
  for (const auto& s : ds.samples())
    for (const auto& p : s.paths)
      if (p.delivered >= 10 && p.mean_delay_s > 0.0) ++usable;
  // The vast majority of paths should carry usable labels.
  EXPECT_GT(usable, ds.total_paths() * 8 / 10);
}

TEST(Generator, ProgressCallbackFires) {
  std::size_t calls = 0;
  (void)data::generate_dataset(topo::ring(4), 3, fast_config(), 1,
                               [&](std::size_t done, std::size_t total) {
                                 ++calls;
                                 EXPECT_LE(done, total);
                               });
  EXPECT_EQ(calls, 3u);
}

// ---- generator config validation (DESIGN.md §S) ------------------------------

TEST(GeneratorValidation, RejectsOutOfRangeTinyQueueProbability) {
  GeneratorConfig cfg = fast_config();
  cfg.p_tiny_queue = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.p_tiny_queue = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // The throw must fire on generation too, not only on direct validate().
  util::RngStream rng(1);
  EXPECT_THROW((void)data::generate_sample(topo::ring(4), cfg, rng),
               std::invalid_argument);
}

TEST(GeneratorValidation, RejectsNonPositivePacketSize) {
  GeneratorConfig cfg = fast_config();
  cfg.mean_packet_bits = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mean_packet_bits = -8000.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(GeneratorValidation, RejectsZeroTargetPackets) {
  GeneratorConfig cfg = fast_config();
  cfg.target_packets = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(GeneratorValidation, RejectsInvertedUtilizationRange) {
  GeneratorConfig cfg = fast_config();
  cfg.util_lo = 0.9;
  cfg.util_hi = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(GeneratorValidation, RejectsBadScenario) {
  GeneratorConfig cfg = fast_config();
  cfg.scenario.priority_classes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---- scenario recording ------------------------------------------------------

TEST(GeneratorScenario, RecordsScenarioAndClasses) {
  GeneratorConfig cfg = fast_config();
  cfg.scenario.policy = rnx::sim::SchedulerPolicy::kDrr;
  cfg.scenario.traffic = rnx::sim::TrafficProcess::kOnOff;
  cfg.scenario.priority_classes = 3;
  const Dataset ds(data::generate_dataset(topo::ring(4), 2, cfg, 19));
  bool saw_nonzero_class = false;
  for (const auto& s : ds.samples()) {
    EXPECT_TRUE(s.scenario_recorded);
    EXPECT_EQ(s.scenario.policy, rnx::sim::SchedulerPolicy::kDrr);
    EXPECT_EQ(s.scenario.traffic, rnx::sim::TrafficProcess::kOnOff);
    EXPECT_EQ(s.scenario.priority_classes, 3u);
    for (const auto& p : s.paths) {
      EXPECT_LT(p.priority_class, 3u);
      saw_nonzero_class |= p.priority_class != 0;
    }
    EXPECT_NO_THROW(s.validate());
  }
  EXPECT_TRUE(saw_nonzero_class);  // 12 paths x 2 samples over 3 classes
}

TEST(GeneratorScenario, MixedModeSpansCombinations) {
  GeneratorConfig cfg = fast_config();
  cfg.mixed_scenarios = true;
  cfg.scenario.priority_classes = 2;
  const Dataset ds(data::generate_dataset(topo::ring(4), 12, cfg, 23));
  std::set<std::uint8_t> policies, traffics;
  for (const auto& s : ds.samples()) {
    EXPECT_TRUE(s.scenario_recorded);
    policies.insert(static_cast<std::uint8_t>(s.scenario.policy));
    traffics.insert(static_cast<std::uint8_t>(s.scenario.traffic));
  }
  // 12 uniform draws over 3 values miss a value with prob ~3*(2/3)^12.
  EXPECT_GE(policies.size(), 2u);
  EXPECT_GE(traffics.size(), 2u);
}

TEST(GeneratorScenario, ScenarioSurvivesSaveLoadRoundTrip) {
  const std::string path = "/tmp/rnx_scenario_roundtrip.rnxd";
  GeneratorConfig cfg = fast_config();
  cfg.scenario.policy = rnx::sim::SchedulerPolicy::kStrictPriority;
  cfg.scenario.traffic = rnx::sim::TrafficProcess::kCbr;
  cfg.scenario.priority_classes = 2;
  const Dataset ds(data::generate_dataset(topo::ring(4), 2, cfg, 29));
  ds.save(path);
  const Dataset loaded = Dataset::load(path);
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(loaded[i].scenario_recorded);
    EXPECT_EQ(loaded[i].scenario, ds[i].scenario);
    ASSERT_EQ(loaded[i].paths.size(), ds[i].paths.size());
    for (std::size_t p = 0; p < ds[i].paths.size(); ++p)
      EXPECT_EQ(loaded[i].paths[p].priority_class,
                ds[i].paths[p].priority_class);
  }
  std::filesystem::remove(path);
}

// Hand-written v1 file (the pre-scenario-engine layout): must load with
// the default scenario and scenario_recorded = false.
TEST(GeneratorScenario, V1DatasetsStillLoadWithoutScenario) {
  const std::string path = "/tmp/rnx_v1_dataset.rnxd";
  {
    std::ofstream f(path, std::ios::binary);
    auto put = [&f](const auto& v) {
      f.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    f.write("RNXD", 4);
    put(std::uint32_t{1});  // version 1
    put(std::uint64_t{1});  // one sample
    put(std::uint32_t{2});  // topo_name "v1"
    f.write("v1", 2);
    put(std::uint32_t{2});  // num_nodes
    put(std::uint64_t{1});  // one link: 0 -> 1
    put(std::uint32_t{0});
    put(std::uint32_t{1});
    put(std::uint64_t{1});  // capacities
    put(double{1e6});
    put(std::uint64_t{2});  // queues
    put(std::uint32_t{8});
    put(std::uint32_t{8});
    put(double{0.5});       // max_utilization
    put(std::uint64_t{1});  // one path
    put(std::uint32_t{0});  // src
    put(std::uint32_t{1});  // dst
    put(std::uint64_t{2});  // nodes
    put(std::uint32_t{0});
    put(std::uint32_t{1});
    put(std::uint64_t{1});  // links
    put(std::uint32_t{0});
    put(double{1e5});       // traffic_bps (no priority_class byte in v1)
    put(double{1e-3});      // mean_delay_s
    put(double{1e-6});      // jitter_s2
    put(double{0.0});       // loss_rate
    put(std::uint64_t{100});  // delivered
  }
  const Dataset loaded = Dataset::load(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FALSE(loaded[0].scenario_recorded);
  EXPECT_EQ(loaded[0].scenario, rnx::sim::ScenarioConfig{});
  EXPECT_EQ(loaded[0].paths[0].priority_class, 0u);
  EXPECT_DOUBLE_EQ(loaded[0].paths[0].mean_delay_s, 1e-3);
  EXPECT_EQ(loaded[0].paths[0].delivered, 100u);
  std::filesystem::remove(path);
}

// ---- sample validation ----------------------------------------------------------

TEST(SampleValidate, DetectsCorruption) {
  Dataset ds = tiny_dataset(1);
  Sample s = ds[0];
  EXPECT_NO_THROW(s.validate());
  Sample broken = s;
  broken.queue_pkts.pop_back();
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.paths[0].links[0] = 999;
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.paths[0].nodes.front() = broken.paths[0].nodes.back();
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.link_capacity_bps[0] = -1.0;
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.paths[0].priority_class = 9;  // >= scenario.priority_classes
  EXPECT_THROW(broken.validate(), std::runtime_error);
  broken = s;
  broken.scenario.onoff_duty = 2.0;
  EXPECT_THROW(broken.validate(), std::runtime_error);
}

TEST(SampleToTopology, RoundTripsAttributes) {
  const Dataset ds = tiny_dataset(1);
  const Sample& s = ds[0];
  const topo::Topology t = s.to_topology();
  EXPECT_EQ(t.num_nodes(), s.num_nodes);
  EXPECT_EQ(t.num_links(), s.num_links());
  for (topo::LinkId l = 0; l < t.num_links(); ++l)
    EXPECT_DOUBLE_EQ(t.link_capacity(l), s.link_capacity_bps[l]);
  for (topo::NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(t.queue_size(n), s.queue_pkts[n]);
}

// ---- scaler -------------------------------------------------------------------

TEST(Scaler, NormalizesToZeroMeanUnitVar) {
  const Dataset ds = tiny_dataset(6, 23);
  const Scaler sc = Scaler::fit(ds.samples());
  double sum = 0.0, ss = 0.0;
  std::size_t n = 0;
  for (const auto& s : ds.samples())
    for (const auto& p : s.paths) {
      const double z = sc.traffic(p.traffic_bps);
      sum += z;
      ss += z * z;
      ++n;
    }
  EXPECT_NEAR(sum / n, 0.0, 1e-9);
  EXPECT_NEAR(ss / n, 1.0, 1e-6);
}

TEST(Scaler, DelayTransformRoundTrips) {
  const Dataset ds = tiny_dataset(4, 29);
  const Scaler sc = Scaler::fit(ds.samples());
  for (const double d : {1e-4, 1e-3, 5e-3})
    EXPECT_NEAR(sc.target_to_delay(sc.delay_to_target(d)), d, 1e-12);
  EXPECT_THROW((void)sc.delay_to_target(0.0), std::invalid_argument);
}

TEST(Scaler, DegenerateChannelFallsBackToUnitScale) {
  GeneratorConfig cfg = fast_config();
  cfg.randomize_queues = false;       // all queues identical
  cfg.randomize_capacities = false;   // all capacities identical
  const Dataset ds(data::generate_dataset(topo::ring(4), 2, cfg, 31));
  const Scaler sc = Scaler::fit(ds.samples());
  EXPECT_DOUBLE_EQ(sc.queue_moments().stddev, 1.0);
  EXPECT_DOUBLE_EQ(sc.capacity_moments().stddev, 1.0);
}

TEST(Scaler, EmptyLabelsThrow) {
  std::vector<Sample> none;
  EXPECT_THROW(Scaler::fit(none), std::invalid_argument);
}

// ---- dataset container / persistence ----------------------------------------

TEST(Dataset, SplitAndShuffle) {
  Dataset ds = tiny_dataset(6, 37);
  const auto [a, b] = ds.split(2);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_THROW(ds.split(7), std::invalid_argument);

  util::RngStream rng(1);
  Dataset shuffled = ds;
  shuffled.shuffle(rng);
  EXPECT_EQ(shuffled.size(), ds.size());
  // Same multiset of samples (compare a stable fingerprint).
  auto fp = [](const Dataset& d) {
    std::vector<double> v;
    for (const auto& s : d.samples()) v.push_back(s.paths[0].traffic_bps);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(fp(shuffled), fp(ds));
}

TEST(Dataset, SaveLoadRoundTrip) {
  const std::string path = "/tmp/rnx_dataset_test.rnxd";
  const Dataset ds = tiny_dataset(3, 41);
  ds.save(path);
  const Dataset loaded = Dataset::load(path);
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded[i].topo_name, ds[i].topo_name);
    EXPECT_EQ(loaded[i].queue_pkts, ds[i].queue_pkts);
    ASSERT_EQ(loaded[i].paths.size(), ds[i].paths.size());
    for (std::size_t p = 0; p < ds[i].paths.size(); ++p) {
      EXPECT_EQ(loaded[i].paths[p].nodes, ds[i].paths[p].nodes);
      EXPECT_DOUBLE_EQ(loaded[i].paths[p].mean_delay_s,
                       ds[i].paths[p].mean_delay_s);
      EXPECT_EQ(loaded[i].paths[p].delivered, ds[i].paths[p].delivered);
    }
  }
  std::filesystem::remove(path);
}

TEST(Dataset, LoadRejectsGarbage) {
  const std::string path = "/tmp/rnx_dataset_garbage.rnxd";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a dataset at all";
  }
  EXPECT_THROW(Dataset::load(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(Dataset::load("/tmp/rnx_missing.rnxd"), std::runtime_error);
}

TEST(Dataset, CsvExportHasHeaderAndRows) {
  const std::string path = "/tmp/rnx_dataset_test.csv";
  const Dataset ds = tiny_dataset(2, 43);
  ds.export_csv(path);
  std::ifstream f(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(f, line)) ++lines;
  EXPECT_EQ(lines, 1 + ds.total_paths());
  std::filesystem::remove(path);
}

TEST(Dataset, LoadOrGenerateCaches) {
  const std::string path = "/tmp/rnx_cache_test/dir/ds.rnxd";
  std::filesystem::remove_all("/tmp/rnx_cache_test");
  std::size_t generator_calls = 0;
  auto gen = [&] {
    ++generator_calls;
    return tiny_dataset(2, 47);
  };
  const Dataset a = data::load_or_generate(path, 2, gen);
  EXPECT_EQ(generator_calls, 1u);
  const Dataset b = data::load_or_generate(path, 2, gen);
  EXPECT_EQ(generator_calls, 1u);  // served from cache
  EXPECT_EQ(b.size(), 2u);
  // Size mismatch forces regeneration.
  const Dataset c = data::load_or_generate(path, 3, [&] {
    ++generator_calls;
    return tiny_dataset(3, 47);
  });
  EXPECT_EQ(generator_calls, 2u);
  EXPECT_EQ(c.size(), 3u);
  std::filesystem::remove_all("/tmp/rnx_cache_test");
}

}  // namespace
