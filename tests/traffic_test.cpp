// Tests for src/topo/traffic: matrix generators and utilization scaling.
#include <gtest/gtest.h>

#include "topo/traffic.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx::topo;
using rnx::util::RngStream;

TEST(TrafficMatrix, SetGetAndTotal) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 100.0);
  tm.set(2, 0, 50.0);
  EXPECT_DOUBLE_EQ(tm.get(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(tm.get(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(tm.total(), 150.0);
}

TEST(TrafficMatrix, RejectsBadEntries) {
  TrafficMatrix tm(3);
  EXPECT_THROW(tm.set(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(tm.set(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(tm.set(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW((void)tm.get(5, 0), std::out_of_range);
}

TEST(TrafficMatrix, ScaleMultipliesEverything) {
  TrafficMatrix tm(2);
  tm.set(0, 1, 10.0);
  tm.set(1, 0, 20.0);
  tm.scale(2.5);
  EXPECT_DOUBLE_EQ(tm.get(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(tm.get(1, 0), 50.0);
  EXPECT_THROW(tm.scale(0.0), std::invalid_argument);
}

TEST(Generators, UniformWithinRangeAndFull) {
  RngStream rng(1);
  const TrafficMatrix tm = uniform_traffic(6, 10.0, 20.0, rng);
  for (NodeId s = 0; s < 6; ++s)
    for (NodeId d = 0; d < 6; ++d) {
      if (s == d) {
        EXPECT_DOUBLE_EQ(tm.get(s, d), 0.0);
      } else {
        EXPECT_GE(tm.get(s, d), 10.0);
        EXPECT_LT(tm.get(s, d), 20.0);
      }
    }
}

TEST(Generators, GravityTotalsMatch) {
  RngStream rng(2);
  const TrafficMatrix tm = gravity_traffic(8, 1234.5, rng);
  EXPECT_NEAR(tm.total(), 1234.5, 1e-6);
}

TEST(Generators, HotspotBoostsSomePairs) {
  RngStream r1(3), r2(3);
  const TrafficMatrix base = uniform_traffic(8, 1.0, 2.0, r1);
  const TrafficMatrix hot = hotspot_traffic(8, 1.0, 2.0, 4, 10.0, r2);
  // Same RNG stream: background identical, some entries boosted 10x.
  std::size_t boosted = 0;
  for (NodeId s = 0; s < 8; ++s)
    for (NodeId d = 0; d < 8; ++d) {
      if (s == d) continue;
      if (hot.get(s, d) > base.get(s, d) * 5.0) ++boosted;
    }
  EXPECT_GE(boosted, 1u);
  EXPECT_LE(boosted, 4u);
}

TEST(Load, PerLinkLoadMatchesHandComputation) {
  // line 0-1-2: directed links 0:(0->1) 1:(1->0) 2:(1->2) 3:(2->1).
  const Topology t = line(3, 10e6);
  const RoutingScheme rs = hop_count_routing(t);
  TrafficMatrix tm(3);
  tm.set(0, 2, 100.0);  // crosses 0->1 and 1->2
  tm.set(0, 1, 50.0);   // crosses 0->1
  tm.set(2, 1, 25.0);   // crosses 2->1
  const auto load = per_link_load_bps(t, rs, tm);
  const auto l01 = *t.graph().find_link(0, 1);
  const auto l12 = *t.graph().find_link(1, 2);
  const auto l21 = *t.graph().find_link(2, 1);
  const auto l10 = *t.graph().find_link(1, 0);
  EXPECT_DOUBLE_EQ(load[l01], 150.0);
  EXPECT_DOUBLE_EQ(load[l12], 100.0);
  EXPECT_DOUBLE_EQ(load[l21], 25.0);
  EXPECT_DOUBLE_EQ(load[l10], 0.0);
}

TEST(Load, MaxUtilizationUsesCapacity) {
  const Topology t = line(3, 1000.0);  // 1 kbps links
  const RoutingScheme rs = hop_count_routing(t);
  TrafficMatrix tm(3);
  tm.set(0, 2, 400.0);
  EXPECT_NEAR(max_link_utilization(t, rs, tm), 0.4, 1e-12);
}

TEST(Load, ScaleToMaxUtilizationHitsTarget) {
  const Topology t = geant2();
  const RoutingScheme rs = hop_count_routing(t);
  RngStream rng(7);
  TrafficMatrix tm = uniform_traffic(24, 1.0, 5.0, rng);
  scale_to_max_utilization(tm, t, rs, 0.75);
  EXPECT_NEAR(max_link_utilization(t, rs, tm), 0.75, 1e-9);
}

TEST(Load, ScaleEmptyMatrixThrows) {
  const Topology t = line(3);
  const RoutingScheme rs = hop_count_routing(t);
  TrafficMatrix tm(3);
  EXPECT_THROW(scale_to_max_utilization(tm, t, rs, 0.5),
               std::invalid_argument);
}

// Property: scaling preserves the matrix shape (ratios of entries).
class ScalingProperty : public ::testing::TestWithParam<double> {};

TEST_P(ScalingProperty, PreservesRatios) {
  const Topology t = nsfnet();
  const RoutingScheme rs = hop_count_routing(t);
  RngStream rng(11);
  TrafficMatrix tm = gravity_traffic(14, 1.0, rng);
  const double ratio_before = tm.get(0, 1) / tm.get(1, 0);
  scale_to_max_utilization(tm, t, rs, GetParam());
  EXPECT_NEAR(tm.get(0, 1) / tm.get(1, 0), ratio_before, 1e-9);
  EXPECT_NEAR(max_link_utilization(t, rs, tm), GetParam(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, ScalingProperty,
                         ::testing::Values(0.2, 0.5, 0.8, 0.95, 1.2));

}  // namespace
