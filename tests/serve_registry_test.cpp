// Multi-bundle serving: registry routing, v1/v2 bundle coexistence in
// one process, shared plan cache across engines, and stats conservation
// (DESIGN.md §B2).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "nn/serialize.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;

const data::Dataset& test_dataset() {
  static const data::Dataset ds = [] {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    return data::Dataset(data::generate_dataset(topo::nsfnet(), 4, gen, 23));
  }();
  return ds;
}

core::ModelConfig small_config(std::uint64_t seed = 5) {
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.readout_hidden = 12;
  mc.iterations = 2;
  mc.init_seed = seed;
  return mc;
}

serve::ModelBundle make_bundle(core::ModelConfig mc,
                               core::PredictionTarget target =
                                   core::PredictionTarget::kDelay) {
  serve::ModelBundle b;
  b.model = core::make_model(core::ModelKind::kExtended, mc);
  b.scaler = data::Scaler::fit(test_dataset().samples(), 5);
  b.target = target;
  b.min_delivered = 5;
  return b;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Mirror of save_bundle's v1 layout (pre-scenario: no scenario byte).
void write_v1_bundle(const std::string& path, const core::Model& model,
                     const data::Scaler& scaler) {
  std::ostringstream body(std::ios::binary);
  auto put = [&body](const auto& v) {
    body.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(std::uint8_t{1});   // kind: ext
  put(std::uint8_t{0});   // target: delay
  put(std::uint64_t{5});  // min_delivered
  const core::ModelConfig& mc = model.config();
  put(static_cast<std::uint64_t>(mc.state_dim));
  put(static_cast<std::uint64_t>(mc.readout_hidden));
  put(static_cast<std::uint64_t>(mc.iterations));
  put(static_cast<std::uint8_t>(mc.node_rule));
  put(static_cast<std::uint8_t>(mc.node_mean_aggregation ? 1 : 0));
  put(static_cast<std::uint8_t>(mc.fused_gru ? 1 : 0));
  put(mc.init_seed);
  for (const data::Moments* m :
       {&scaler.traffic_moments(), &scaler.capacity_moments(),
        &scaler.queue_moments(), &scaler.log_delay_moments(),
        &scaler.log_jitter_moments()}) {
    put(m->mean);
    put(m->stddev);
  }
  const nn::NamedParams params = model.named_params();
  nn::save_params(body, params);
  const std::string bytes = body.str();
  std::ofstream f(path, std::ios::binary);
  f.write("RNXB", 4);
  const std::uint32_t version = 1;
  f.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const auto size = static_cast<std::uint64_t>(bytes.size());
  f.write(reinterpret_cast<const char*>(&size), sizeof(size));
  const std::uint64_t sum = fnv1a64(bytes);
  f.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

serve::SchedulerConfig manual_cfg(std::size_t depth = 64) {
  serve::SchedulerConfig cfg;
  cfg.max_queue_depth = depth;
  cfg.max_batch_samples = 8;
  cfg.max_linger = std::chrono::microseconds(0);  // everything is ready
  cfg.manual_drain = true;
  return cfg;
}

TEST(ServeRegistry, UnknownModelNameIsATypedError) {
  serve::ModelRegistry registry;
  registry.add("delay", make_bundle(small_config()));

  EXPECT_EQ(registry.find("jitter"), nullptr);
  try {
    (void)registry.at("jitter");
    FAIL() << "unknown name accepted";
  } catch (const serve::UnknownModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("jitter"), std::string::npos) << what;
    EXPECT_NE(what.find("delay"), std::string::npos)
        << "should list registered names: " << what;
  }

  // Scheduler-level routing sheds with the kUnknownModel value.
  serve::BatchScheduler sched(manual_cfg());
  serve::Submitted sub =
      sched.submit(registry, "jitter", std::span(&test_dataset()[0], 1));
  EXPECT_EQ(sub.error, serve::ServeError::kUnknownModel);
  EXPECT_FALSE(sub.result.valid());
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.shed, 1u);
}

TEST(ServeRegistry, RejectsEmptyAndDuplicateNames) {
  serve::ModelRegistry registry;
  EXPECT_THROW(registry.add("", make_bundle(small_config())),
               std::invalid_argument);
  registry.add("m", make_bundle(small_config()));
  EXPECT_THROW(registry.add("m", make_bundle(small_config())),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"m"});
}

// One process serving a pre-scenario v1 bundle next to a v2
// scenario-featured bundle: both route, each keeps its own contract
// (the v1 model serves legacy samples; the feature-gated v2 model
// refuses them with the descriptive single-path error).
TEST(ServeRegistry, V1AndV2BundlesCoexistInOneRegistry) {
  const std::string v1_path = "/tmp/rnx_registry_v1.rnxb";
  const data::Dataset& ds = test_dataset();
  core::ModelConfig v1_mc = small_config(7);
  const std::unique_ptr<core::Model> v1_model =
      core::make_model(core::ModelKind::kExtended, v1_mc);
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);
  write_v1_bundle(v1_path, *v1_model, scaler);

  serve::ModelRegistry registry;
  registry.add("legacy", v1_path);
  core::ModelConfig v2_mc = small_config(9);
  v2_mc.scenario_features = true;
  registry.add("scenario", make_bundle(v2_mc));

  EXPECT_FALSE(registry.at("legacy").model().config().scenario_features);
  EXPECT_TRUE(registry.at("scenario").model().config().scenario_features);

  serve::BatchScheduler sched(manual_cfg(), registry.pool());
  data::Sample legacy_sample = ds[0];
  legacy_sample.scenario_recorded = false;  // as loaded from a v1 dataset

  // v1 model: serves the legacy sample, bitwise equal to direct predict.
  serve::Submitted v1 =
      sched.submit(registry, "legacy", std::span(&legacy_sample, 1));
  // v2 feature-gated model: must refuse the same sample through the
  // batch path with the same descriptive error as the single path.
  serve::Submitted v2 =
      sched.submit(registry, "scenario", std::span(&legacy_sample, 1));
  // v2 model with a scenario-recording sample: serves fine.
  serve::Submitted v2ok =
      sched.submit(registry, "scenario", std::span(&ds[1], 1));
  sched.flush();

  EXPECT_EQ(v1.result.get()[0],
            registry.at("legacy").predict(legacy_sample));
  std::string single_path_error;
  try {
    (void)registry.at("scenario").predict(legacy_sample);
  } catch (const std::runtime_error& e) {
    single_path_error = e.what();
  }
  ASSERT_NE(single_path_error.find("scenario"), std::string::npos);
  try {
    (void)v2.result.get();
    FAIL() << "feature-gated model served a scenario-less sample";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), single_path_error);
  }
  EXPECT_EQ(v2ok.result.get()[0],
            registry.at("scenario").predict(ds[1]));

  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.failed, 1u);
  std::filesystem::remove(v1_path);
}

TEST(ServeRegistry, StatsCountersAreConserved) {
  serve::ModelRegistry registry;
  registry.add("a", make_bundle(small_config(5)));
  registry.add("b", make_bundle(small_config(6)));
  const data::Dataset& ds = test_dataset();

  serve::BatchScheduler sched(manual_cfg(/*depth=*/3));
  std::vector<serve::Submitted> subs;
  for (std::size_t i = 0; i < 6; ++i)
    subs.push_back(sched.submit(registry, i % 2 ? "b" : "a",
                                std::span(&ds[i % ds.size()], 1)));
  std::size_t shed = 0;
  for (const serve::Submitted& s : subs)
    if (s.error == serve::ServeError::kOverloaded) ++shed;
  EXPECT_EQ(shed, 3u);  // depth 3, six arrivals, no drain in between

  sched.flush();
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.submitted, 6u);
  EXPECT_EQ(st.admitted + st.shed, st.submitted);  // enqueued == done + shed
  EXPECT_EQ(st.shed, 3u);
  EXPECT_EQ(st.completed + st.failed + st.cancelled + st.in_flight(),
            st.admitted);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.queue_depth, 0u);
  for (serve::Submitted& s : subs) {
    if (s.admitted()) {
      EXPECT_FALSE(s.result.get().empty());
    }
  }
}

// The registry's one plan cache serves every engine: a scenario queried
// against several bundles pays build_plan once (core::PlanCache sharing).
TEST(ServeRegistry, EnginesShareOnePlanCache) {
  serve::ModelRegistry registry;
  registry.add("delay", make_bundle(small_config(5)));
  registry.add("delay2", make_bundle(small_config(6)));
  const data::Dataset& ds = test_dataset();

  serve::BatchScheduler sched(manual_cfg());
  serve::Submitted a =
      sched.submit(registry, "delay", std::span(&ds[0], 1));
  serve::Submitted b =
      sched.submit(registry, "delay2", std::span(&ds[0], 1));
  sched.flush();
  a.result.get();
  b.result.get();

  const core::PlanCache::Stats pc = registry.plan_cache().stats();
  EXPECT_EQ(pc.size, 1u);    // same sample, same use_nodes: one entry
  EXPECT_EQ(pc.misses, 1u);  // built once...
  EXPECT_GE(pc.hits, 1u);    // ...reused by the second engine
}

}  // namespace
