// Cross-module integration: a miniature of the paper's full §3 protocol.
//
// These tests run the complete pipeline (simulate -> dataset -> scaler ->
// train both models -> evaluate) at reduced scale and assert the *shape*
// of the paper's findings: the extended architecture fits queue-varied
// data better than the original, and its advantage carries over to a
// topology never seen in training.
#include <gtest/gtest.h>

#include <filesystem>

#include "eval/experiment.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;

eval::Fig2Config mini_config() {
  eval::Fig2Config cfg;
  cfg.train_samples = 32;
  cfg.geant2_test_samples = 6;
  cfg.nsfnet_test_samples = 6;
  cfg.gen.target_packets = 150'000;  // ~270 pkts/path: clean labels
  cfg.gen.util_lo = 0.7;   // queue-dominant load regime
  cfg.gen.util_hi = 0.95;
  cfg.model.state_dim = 10;
  cfg.model.readout_hidden = 16;
  cfg.model.iterations = 3;
  cfg.train.epochs = 35;
  cfg.train.batch_samples = 4;
  cfg.train.lr = 2e-3;
  cfg.train.verbose = false;
  cfg.cache_dir.clear();  // no disk caching inside tests
  cfg.verbose = false;
  return cfg;
}

TEST(Integration, Fig2ProtocolShapeHolds) {
  util::set_log_level(util::LogLevel::kWarn);
  const eval::Fig2Result res = eval::run_fig2(mini_config());

  ASSERT_EQ(res.curves.size(), 4u);
  const auto& ext_g = res.curve("routenet-ext", "geant2");
  const auto& orig_g = res.curve("routenet", "geant2");
  const auto& ext_n = res.curve("routenet-ext", "nsfnet");
  EXPECT_THROW((void)res.curve("nope", "geant2"), std::out_of_range);

  // Each curve pools a substantial number of paths.
  EXPECT_GT(ext_g.summary.n, 1'000u);
  EXPECT_GT(ext_n.summary.n, 300u);

  // The paper's headline: with queue-size variation in the data, the
  // extended architecture is clearly more accurate than the original.
  EXPECT_LT(ext_g.summary.median_ape, orig_g.summary.median_ape);

  // Generalization: the extended model remains predictive on the unseen
  // topology (positively correlated, bounded error).
  EXPECT_GT(ext_n.summary.pearson, 0.3);

  // Training made progress on both models.
  ASSERT_FALSE(res.ext_history.empty());
  EXPECT_LT(res.ext_history.back().train_loss,
            res.ext_history.front().train_loss);
  EXPECT_LT(res.orig_history.back().train_loss,
            res.orig_history.front().train_loss);
}

TEST(Integration, DatasetCacheRoundTrip) {
  util::set_log_level(util::LogLevel::kWarn);
  eval::Fig2Config cfg = mini_config();
  cfg.train_samples = 3;
  cfg.geant2_test_samples = 2;
  cfg.nsfnet_test_samples = 2;
  cfg.cache_dir = "/tmp/rnx_integration_cache";
  std::filesystem::remove_all(cfg.cache_dir);

  const eval::Fig2Datasets first = eval::make_fig2_datasets(cfg);
  EXPECT_EQ(first.train.size(), 3u);
  // Three cache files must now exist.
  std::size_t files = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(cfg.cache_dir))
    files += e.is_regular_file() ? 1 : 0;
  EXPECT_EQ(files, 3u);

  // Second call loads from cache and yields identical labels.
  const eval::Fig2Datasets second = eval::make_fig2_datasets(cfg);
  ASSERT_EQ(second.train.size(), first.train.size());
  EXPECT_DOUBLE_EQ(second.train[0].paths[0].mean_delay_s,
                   first.train[0].paths[0].mean_delay_s);
  std::filesystem::remove_all(cfg.cache_dir);
}

TEST(Integration, TrainTestTopologiesMatchPaper) {
  // The protocol trains on GEANT2 only and evaluates on both GEANT2 and
  // NSFNET, mirroring §3 of the paper.
  eval::Fig2Config cfg = mini_config();
  cfg.train_samples = 2;
  cfg.geant2_test_samples = 2;
  cfg.nsfnet_test_samples = 2;
  const eval::Fig2Datasets ds = eval::make_fig2_datasets(cfg);
  for (const auto& s : ds.train.samples()) EXPECT_EQ(s.topo_name, "geant2");
  for (const auto& s : ds.geant2_test.samples())
    EXPECT_EQ(s.topo_name, "geant2");
  for (const auto& s : ds.nsfnet_test.samples())
    EXPECT_EQ(s.topo_name, "nsfnet");
  for (const auto& s : ds.nsfnet_test.samples())
    EXPECT_EQ(s.num_nodes, 14u);
}

}  // namespace
