// BoundedQueue shutdown-path regression tests.  The load-bearing one is
// CloseWakesBlockedPush: a producer parked in the blocking push() must
// wake and observe `false` when the consumer closes the queue —
// otherwise every streaming-training shutdown with a full prefetch
// queue deadlocks (the consumer stops popping, the producer never gets
// space, and join() hangs forever).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "util/bounded_queue.hpp"

namespace {

using rnx::util::BoundedQueue;

TEST(BoundedQueue, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));  // queue is now full

  std::atomic<bool> returned{false};
  std::thread producer([&] {
    const bool accepted = q.push(2);  // blocks: no space, nobody popping
    EXPECT_FALSE(accepted);           // close(), not space, woke us
    returned = true;
  });

  // Give the producer time to actually park on the space condvar.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());

  q.close();
  producer.join();
  EXPECT_TRUE(returned.load());

  // The tail that was queued before close() still drains...
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  // ...and only then does pop report end-of-stream.
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.pop(), std::nullopt);  // blocks until close
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueue, PushRefusedAfterClose) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));      // blocking push fails immediately
  EXPECT_FALSE(q.try_push(3));  // and so does the non-blocking one
  EXPECT_EQ(q.size(), 1u);      // neither leaked an item in
}

TEST(BoundedQueue, BlockedPushCompletesWhenSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> accepted{false};
  std::thread producer([&] { accepted = q.push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(accepted.load());
  EXPECT_EQ(q.pop(), std::optional<int>(1));  // frees the slot
  producer.join();
  EXPECT_TRUE(accepted.load());
  EXPECT_EQ(q.pop(), std::optional<int>(2));  // the unblocked item landed
}

}  // namespace
