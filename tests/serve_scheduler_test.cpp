// Deterministic rig for the micro-batching scheduler (DESIGN.md §B2).
//
// Every batching decision — linger expiry, full-batch cut, request
// atomicity, overload shedding, shutdown — is asserted *exactly*, with a
// scripted clock and manual drain: no sleeps, no real time, no flaky
// timing.  The one threaded test (the many-writer soak) asserts only
// schedule-independent facts: every request answered exactly once, every
// answer bitwise-identical to serial predict(), counters conserved.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "serve/inference.hpp"
#include "serve/scheduler.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rnx;
using std::chrono::microseconds;

const data::Dataset& test_dataset() {
  static const data::Dataset ds = [] {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    return data::Dataset(data::generate_dataset(topo::nsfnet(), 4, gen, 17));
  }();
  return ds;
}

serve::ModelBundle make_bundle(std::uint64_t init_seed = 5) {
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.readout_hidden = 12;
  mc.iterations = 2;
  mc.init_seed = init_seed;
  serve::ModelBundle b;
  b.model = core::make_model(core::ModelKind::kExtended, mc);
  b.scaler = data::Scaler::fit(test_dataset().samples(), 5);
  b.target = core::PredictionTarget::kDelay;
  b.min_delivered = 5;
  return b;
}

/// The rig's time source: starts at the steady-clock epoch, moves only
/// when the test says so.
struct ScriptedClock {
  std::chrono::steady_clock::time_point t{};
  void advance_us(std::int64_t us) { t += microseconds(us); }
  [[nodiscard]] auto fn() {
    return [this] { return t; };
  }
};

serve::SchedulerConfig manual_cfg(ScriptedClock& clock,
                                  std::size_t depth = 64,
                                  std::size_t max_batch = 8,
                                  std::int64_t linger_us = 100) {
  serve::SchedulerConfig cfg;
  cfg.max_queue_depth = depth;
  cfg.max_batch_samples = max_batch;
  cfg.max_linger = microseconds(linger_us);
  cfg.manual_drain = true;
  cfg.now = clock.fn();
  return cfg;
}

std::span<const data::Sample> one(std::size_t i) {
  return {&test_dataset()[i], 1};
}

TEST(ServeScheduler, LingerExpiryIsExact) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 8, 100));

  serve::Submitted sub = sched.submit(engine, one(0));
  ASSERT_TRUE(sub.admitted());
  EXPECT_EQ(sched.pump(), 0u);  // no linger elapsed, batch not full
  clock.advance_us(99);
  EXPECT_EQ(sched.pump(), 0u);  // one microsecond short
  clock.advance_us(1);
  EXPECT_EQ(sched.pump(), 1u);  // linger boundary is inclusive

  const serve::PredictionSet got = sub.result.get();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], engine.predict(test_dataset()[0]));
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.queue_depth, 0u);
}

TEST(ServeScheduler, FullBatchCutsWithoutLinger) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, /*max_batch=*/3, 100));

  std::vector<serve::Submitted> subs;
  for (std::size_t i = 0; i < 3; ++i) subs.push_back(sched.submit(engine, one(i)));
  // Clock never moved: the cut is the sample-count threshold, not time.
  EXPECT_EQ(sched.pump(), 1u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(subs[i].result.get()[0], engine.predict(test_dataset()[i]));
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.batch_samples, 3u);
  EXPECT_EQ(st.peak_batch_samples, 3u);
}

TEST(ServeScheduler, PartialBatchWaitsForLingerOrFill) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 3, 100));

  serve::Submitted a = sched.submit(engine, one(0));
  serve::Submitted b = sched.submit(engine, one(1));
  EXPECT_EQ(sched.pump(), 0u);  // 2 of 3 samples, linger running
  serve::Submitted c = sched.submit(engine, one(2));
  EXPECT_EQ(sched.pump(), 1u);  // third arrival fills the batch
  for (serve::Submitted* s : {&a, &b, &c})
    EXPECT_FALSE(s->result.get().empty());
}

TEST(ServeScheduler, RequestsAreNeverSplit) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, /*max_batch=*/3, 100));

  // Two 2-sample requests: 2 + 2 > 3, and requests are atomic, so the
  // scheduler must form two 2-sample batches, never a 3 + 1 split.
  serve::Submitted a =
      sched.submit(engine, std::span(&test_dataset()[0], 2));
  serve::Submitted b =
      sched.submit(engine, std::span(&test_dataset()[2], 2));
  clock.advance_us(100);
  EXPECT_EQ(sched.pump(), 2u);
  EXPECT_EQ(a.result.get().size(), 2u);
  EXPECT_EQ(b.result.get().size(), 2u);
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.batches, 2u);
  EXPECT_EQ(st.peak_batch_samples, 2u);
}

TEST(ServeScheduler, OversizedRequestFormsItsOwnBatch) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, /*max_batch=*/2, 100));

  serve::Submitted big =
      sched.submit(engine, std::span(&test_dataset()[0], 4));
  EXPECT_EQ(sched.pump(), 1u);  // 4 >= 2: full cut fires immediately
  EXPECT_EQ(big.result.get().size(), 4u);
  EXPECT_EQ(sched.stats().peak_batch_samples, 4u);
}

TEST(ServeScheduler, MultiEngineRequestsGroupByEngineInFifoOrder) {
  const serve::InferenceEngine a(make_bundle(5));
  const serve::InferenceEngine b(make_bundle(6));  // different weights
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 8, 100));

  serve::Submitted s0 = sched.submit(a, one(0));
  serve::Submitted s1 = sched.submit(a, one(1));
  serve::Submitted s2 = sched.submit(b, one(1));
  serve::Submitted s3 = sched.submit(a, one(2));
  clock.advance_us(100);
  // Contiguous same-engine runs: {a,a}, {b}, {a} — strict FIFO, no
  // reordering across the b request to merge the third a.
  EXPECT_EQ(sched.pump(), 3u);
  EXPECT_EQ(sched.stats().batches, 3u);

  EXPECT_EQ(s0.result.get()[0], a.predict(test_dataset()[0]));
  EXPECT_EQ(s1.result.get()[0], a.predict(test_dataset()[1]));
  EXPECT_EQ(s2.result.get()[0], b.predict(test_dataset()[1]));
  EXPECT_EQ(s3.result.get()[0], a.predict(test_dataset()[2]));
  // The two engines disagree on the shared sample (different weights),
  // so the routing assertion above is not vacuous.
  EXPECT_NE(a.predict(test_dataset()[1]), b.predict(test_dataset()[1]));
}

TEST(ServeScheduler, OverloadShedsWithTypedErrorInsteadOfBlocking) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, /*depth=*/2, 8, 100));

  serve::Submitted a = sched.submit(engine, one(0));
  serve::Submitted b = sched.submit(engine, one(1));
  serve::Submitted c = sched.submit(engine, one(2));
  EXPECT_TRUE(a.admitted());
  EXPECT_TRUE(b.admitted());
  EXPECT_EQ(c.error, serve::ServeError::kOverloaded);
  EXPECT_FALSE(c.result.valid());  // a shed request never owned a future

  serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.queue_depth, 2u);
  EXPECT_EQ(st.peak_queue_depth, 2u);

  // Draining reopens admission.
  EXPECT_EQ(sched.flush(), 1u);
  serve::Submitted d = sched.submit(engine, one(2));
  EXPECT_TRUE(d.admitted());
  sched.flush();
  st = sched.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.admitted + st.shed, st.submitted);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.in_flight(), 0u);
}

TEST(ServeScheduler, EmptyRequestCompletesImmediately) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  serve::Submitted sub = sched.submit(engine, {});
  ASSERT_TRUE(sub.admitted());
  ASSERT_EQ(sub.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(sub.result.get().empty());
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.batches, 0u);  // nothing was ever queued
}

TEST(ServeScheduler, ShutdownFailsPendingWithTypedError) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  serve::Submitted pending = sched.submit(engine, one(0));
  sched.shutdown();
  EXPECT_THROW(pending.result.get(), serve::ShutdownError);

  serve::Submitted after = sched.submit(engine, one(1));
  EXPECT_EQ(after.error, serve::ServeError::kShutdown);

  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.submitted, 1u);  // post-shutdown submissions not counted
  EXPECT_EQ(st.admitted,
            st.completed + st.failed + st.cancelled + st.in_flight());
}

TEST(ServeScheduler, LatencyCountersComeFromTheScriptedClock) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 8, 100));

  serve::Submitted a = sched.submit(engine, one(0));
  clock.advance_us(250);
  EXPECT_EQ(sched.pump(), 1u);
  serve::Submitted b = sched.submit(engine, one(1));
  clock.advance_us(100);
  EXPECT_EQ(sched.pump(), 1u);
  a.result.get();
  b.result.get();

  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.latency_us_max, 250u);
  EXPECT_EQ(st.latency_us_sum, 350u);
  EXPECT_DOUBLE_EQ(st.mean_latency_us(), 175.0);
}

TEST(ServeScheduler, FlushExecutesEverythingRegardlessOfLinger) {
  const serve::InferenceEngine a(make_bundle(5));
  const serve::InferenceEngine b(make_bundle(6));
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 8, 1'000'000));

  serve::Submitted s0 = sched.submit(a, one(0));
  serve::Submitted s1 = sched.submit(b, one(1));
  EXPECT_EQ(sched.pump(), 0u);  // a full second of linger left
  EXPECT_EQ(sched.flush(), 2u);
  EXPECT_FALSE(s0.result.get().empty());
  EXPECT_FALSE(s1.result.get().empty());
}

// The determinism contract: any grouping of requests into micro-batches
// yields outputs bitwise-identical to serial predict().
TEST(ServeScheduler, OutputsBitwiseIdenticalToSerialPredictForAnyBatchSize) {
  const serve::InferenceEngine engine(make_bundle());
  const data::Dataset& ds = test_dataset();
  std::vector<std::vector<double>> expected;
  for (const data::Sample& s : ds.samples()) expected.push_back(engine.predict(s));

  for (const std::size_t max_batch : {1u, 2u, 4u, 8u}) {
    ScriptedClock clock;
    serve::BatchScheduler sched(manual_cfg(clock, 64, max_batch, 100));
    std::vector<serve::Submitted> subs;
    for (std::size_t i = 0; i < ds.size(); ++i)
      subs.push_back(sched.submit(engine, one(i)));
    clock.advance_us(100);
    sched.pump();
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const serve::PredictionSet got = subs[i].result.get();
      ASSERT_EQ(got.size(), 1u) << "max_batch=" << max_batch;
      EXPECT_EQ(got[0], expected[i]) << "max_batch=" << max_batch;
    }
  }
}

TEST(ServeScheduler, ConfigIsValidated) {
  ScriptedClock clock;
  serve::SchedulerConfig cfg = manual_cfg(clock);
  cfg.max_queue_depth = 0;
  EXPECT_THROW(serve::BatchScheduler s(cfg), std::invalid_argument);
  cfg = manual_cfg(clock);
  cfg.max_batch_samples = 0;
  EXPECT_THROW(serve::BatchScheduler s(cfg), std::invalid_argument);
  cfg = manual_cfg(clock);
  cfg.max_linger = microseconds(-1);
  EXPECT_THROW(serve::BatchScheduler s(cfg), std::invalid_argument);
  cfg = manual_cfg(clock);
  cfg.manual_drain = false;  // scripted clock + drainer thread: rejected
  EXPECT_THROW(serve::BatchScheduler s(cfg), std::invalid_argument);
}

// Threaded-mode soak: many writers, real clock, real drainer.  Asserts
// only schedule-independent facts — exactly-once completion, bitwise
// equality with the serial path, counter conservation — so it cannot
// flake on timing.
TEST(ServeScheduler, ManyWriterSoakAnswersEveryRequestExactlyOnce) {
  const serve::InferenceEngine engine(make_bundle());
  const data::Dataset& ds = test_dataset();
  std::vector<std::vector<double>> expected;
  for (const data::Sample& s : ds.samples()) expected.push_back(engine.predict(s));

  util::ThreadPool pool(2);
  serve::SchedulerConfig cfg;
  cfg.max_queue_depth = 10'000;  // soak must not shed
  cfg.max_batch_samples = 8;
  cfg.max_linger = microseconds(50);
  serve::BatchScheduler sched(cfg, &pool);

  constexpr std::size_t kWriters = 8, kPerWriter = 25;
  std::atomic<std::size_t> mismatches{0}, answered{0};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w)
    writers.emplace_back([&, w] {
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        const std::size_t si = (w * 7 + i) % ds.size();
        serve::Submitted sub = sched.submit(engine, one(si));
        ASSERT_TRUE(sub.admitted());
        const serve::PredictionSet got = sub.result.get();
        ++answered;
        if (got.size() != 1 || got[0] != expected[si]) ++mismatches;
      }
    });
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(answered.load(), kWriters * kPerWriter);
  EXPECT_EQ(mismatches.load(), 0u);
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.submitted, kWriters * kPerWriter);
  EXPECT_EQ(st.admitted, st.submitted);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.completed, st.admitted);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.in_flight(), 0u);
  EXPECT_EQ(st.batch_samples, st.completed);  // single-sample requests
}

}  // namespace
